"""Storage faults against the sweep service: the journal's fail-loud
domain at both seams.

Admission: a submission whose ``queued`` records cannot persist is
rejected with 503 -- nothing is admitted, nothing is dispatchable, and
the client is told to retry (durability-before-visibility).

Executor: a ``dispatched``/``done`` record that cannot persist shuts
the server down with exit code 2, leaving the on-disk journal
replayable.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.faults import iofault
from repro.orchestrator import JobSpec, replay_journal
from repro.server import SweepClient, SweepServer
from repro.server.app import EXIT_JOURNAL


@pytest.fixture(autouse=True)
def _isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv(iofault.IOCHAOS_ENV, raising=False)
    monkeypatch.delenv(iofault.IOCHAOS_ONCE_ENV, raising=False)
    iofault.reset()
    yield
    iofault.set_scope("worker")
    iofault.reset()


def _spec(percent=100.0):
    return JobSpec(workload="swim", cycles=1500,
                   impedance_percent=percent, seed=11)


class _Service:
    def __init__(self, tmp_path, **kwargs):
        self.journal_path = str(tmp_path / "serve.journal")
        kwargs.setdefault("jobs", 1)
        self.server = SweepServer(self.journal_path, **kwargs)
        self.port = self.server.start()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.exit_code = None
        self.thread.start()

    def _run(self):
        self.exit_code = self.server.run()

    def url(self, path):
        return "http://127.0.0.1:%d%s" % (self.port, path)

    def stop(self):
        self.server.stop()
        self.thread.join(30.0)
        assert not self.thread.is_alive()


def _post_jobs(service, specs):
    body = json.dumps(
        {"specs": [s.to_dict() for s in specs]}).encode()
    request = urllib.request.Request(
        service.url("/jobs"), data=body,
        headers={"Content-Type": "application/json"})
    return urllib.request.urlopen(request, timeout=30)


class TestAdmissionFaults:
    def test_journal_fault_means_503_nothing_admitted(self, tmp_path,
                                                      monkeypatch):
        service = _Service(tmp_path)
        try:
            spec = _spec()
            monkeypatch.setenv(iofault.IOCHAOS_ENV,
                               "eio@serve=journal")
            iofault.reset()
            with pytest.raises(urllib.error.HTTPError) as info:
                _post_jobs(service, [spec])
            assert info.value.code == 503
            payload = json.loads(info.value.read())
            assert "not admitted" in payload["error"]
            assert info.value.headers["Retry-After"]
            monkeypatch.delenv(iofault.IOCHAOS_ENV)
            iofault.reset()
            # Nothing was admitted: the cell is unknown to the queue.
            with pytest.raises(urllib.error.HTTPError) as poll:
                urllib.request.urlopen(
                    service.url("/jobs/%s" % spec.content_hash()),
                    timeout=30)
            assert poll.value.code == 404
            metrics = service.server.telemetry.metrics.to_dict()
            assert metrics["counters"][
                "server.journal_write_errors"] >= 1
        finally:
            monkeypatch.delenv(iofault.IOCHAOS_ENV, raising=False)
            iofault.reset()
            service.stop()
        # The journal closed on the failed append, so the on-disk file
        # replays cleanly -- at worst it lost the record that was
        # never acknowledged.
        state = replay_journal(service.journal_path)
        assert state.specs == []

    def test_unscoped_fault_and_worker_prefix_do_not_hit_serve(
            self, tmp_path, monkeypatch):
        # worker=-scoped journal faults must not fire in the server
        # process: admission succeeds.
        monkeypatch.setenv(iofault.IOCHAOS_ENV,
                           "eio@worker=journal")
        iofault.reset()
        service = _Service(tmp_path)
        try:
            client = SweepClient(
                "http://127.0.0.1:%d" % service.port, retry_budget=3)
            results = client.wait([_spec()], poll_seconds=0.05,
                                  deadline_seconds=120)
            assert all(r["status"] == "ok" for r in results.values())
        finally:
            service.stop()
        assert service.exit_code == 0


class TestExecutorFaults:
    def test_mid_serve_journal_fault_exits_2(self, tmp_path,
                                             monkeypatch):
        service = _Service(tmp_path)
        try:
            # Journal write ordinals after arming: #1 is the admission
            # `queued` (must succeed -- the 202 is the durability
            # ACK), #2 is the executor's `dispatched` (fires).
            monkeypatch.setenv(iofault.IOCHAOS_ENV,
                               "eio@serve=journal:2")
            iofault.reset()
            response = _post_jobs(service, [_spec()])
            assert response.status == 202
            service.thread.join(60.0)
            assert not service.thread.is_alive()
            assert service.exit_code == EXIT_JOURNAL == 2
        finally:
            monkeypatch.delenv(iofault.IOCHAOS_ENV, raising=False)
            iofault.reset()
            service.server.stop()
        # The journal on disk holds the admitted cell and stays
        # replayable: a restarted server re-queues and finishes it.
        state = replay_journal(service.journal_path)
        assert len(state.pending_specs()) == 1
