"""Unit tests for the server's bounded admission queue."""

import threading

import pytest

from repro.orchestrator import JobSpec
from repro.server import (
    STATUS_DONE,
    STATUS_QUEUED,
    STATUS_RUNNING,
    JobQueue,
    QueueFull,
)


def _spec(percent):
    return JobSpec(workload="swim", cycles=500,
                   impedance_percent=percent, seed=11)


class TestAdmission:
    def test_report_in_submission_order(self):
        queue = JobQueue(limit=8)
        specs = [_spec(100.0), _spec(200.0)]
        report, fresh = queue.admit(specs)
        assert [r["job"] for r in report] == \
            [s.content_hash() for s in specs]
        assert all(r["status"] == STATUS_QUEUED for r in report)
        assert [job for job, _ in fresh] == \
            [s.content_hash() for s in specs]

    def test_resubmission_is_idempotent(self):
        queue = JobQueue(limit=8)
        queue.admit([_spec(100.0)])
        report, fresh = queue.admit([_spec(100.0), _spec(200.0)])
        assert fresh == [(s.content_hash(), s)
                         for s in [_spec(200.0)]]
        assert report[0]["status"] == STATUS_QUEUED
        assert queue.pending_count() == 2

    def test_duplicates_within_one_submission_collapse(self):
        queue = JobQueue(limit=8)
        report, fresh = queue.admit([_spec(100.0), _spec(100.0)])
        assert len(fresh) == 1
        assert len(report) == 2
        assert queue.pending_count() == 1

    def test_queue_full_is_all_or_nothing(self):
        queue = JobQueue(limit=1)
        queue.admit([_spec(100.0)])
        with pytest.raises(QueueFull) as excinfo:
            queue.admit([_spec(200.0), _spec(300.0)])
        assert excinfo.value.limit == 1
        assert excinfo.value.rejected == 2
        assert queue.pending_count() == 1
        assert queue.lookup(_spec(200.0).content_hash()) is None

    def test_known_cells_do_not_count_against_the_limit(self):
        queue = JobQueue(limit=1)
        queue.admit([_spec(100.0)])
        report, fresh = queue.admit([_spec(100.0)])   # repeat: free
        assert fresh == []
        assert report[0]["status"] == STATUS_QUEUED

    def test_boot_replay_bypasses_the_limit(self):
        queue = JobQueue(limit=1)
        _report, fresh = queue.admit(
            [_spec(p) for p in (100.0, 200.0, 300.0)],
            enforce_limit=False)
        assert len(fresh) == 3

    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError):
            JobQueue(limit=0)


class TestDispatch:
    def test_fifo_order_and_running_state(self):
        queue = JobQueue(limit=8)
        specs = [_spec(p) for p in (100.0, 200.0, 300.0)]
        queue.admit(specs)
        batch = queue.next_batch(limit=2)
        assert [job for job, _ in batch] == \
            [s.content_hash() for s in specs[:2]]
        for job, _ in batch:
            assert queue.lookup(job)[0] == STATUS_RUNNING
        assert queue.pending_count() == 1

    def test_complete_records_result_and_etag(self):
        queue = JobQueue(limit=8)
        spec = _spec(100.0)
        queue.admit([spec])
        (job, _),  = queue.next_batch()
        queue.complete(job, {"status": "ok"}, etag="abc")
        assert queue.lookup(job) == (STATUS_DONE, {"status": "ok"},
                                     "abc")

    def test_complete_direct_never_queues(self):
        queue = JobQueue(limit=8)
        spec = _spec(100.0)
        queue.complete_direct(spec, {"status": "ok"}, etag="e")
        assert queue.pending_count() == 0
        assert queue.lookup(spec.content_hash())[0] == STATUS_DONE
        assert queue.next_batch(timeout=0.01) == []

    def test_next_batch_blocks_until_admission(self):
        queue = JobQueue(limit=8)
        got = []

        def consumer():
            got.extend(queue.next_batch(timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        queue.admit([_spec(100.0)])
        thread.join(5.0)
        assert [job for job, _ in got] == [_spec(100.0).content_hash()]

    def test_kick_wakes_a_blocked_consumer(self):
        queue = JobQueue(limit=8)
        done = threading.Event()

        def consumer():
            queue.next_batch(timeout=30.0)
            done.set()

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        queue.kick()
        assert done.wait(5.0)


class TestInspection:
    def test_counts_cover_all_states(self):
        queue = JobQueue(limit=8)
        assert queue.counts() == {STATUS_QUEUED: 0, STATUS_RUNNING: 0,
                                  STATUS_DONE: 0}
        queue.admit([_spec(100.0), _spec(200.0)])
        queue.next_batch(limit=1)
        assert queue.counts() == {STATUS_QUEUED: 1, STATUS_RUNNING: 1,
                                  STATUS_DONE: 0}

    def test_idle_only_when_nothing_in_flight(self):
        queue = JobQueue(limit=8)
        assert queue.idle()
        queue.admit([_spec(100.0)])
        assert not queue.idle()
        (job, _), = queue.next_batch()
        assert not queue.idle()
        queue.complete(job, {"status": "ok"})
        assert queue.idle()
