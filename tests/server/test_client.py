"""Tests for the retrying sweep-service client.

The retry schedule, budget accounting, and 404-resubmission logic are
exercised against tiny stub HTTP servers (no real sweep execution);
``test_service.py`` covers the client against the real daemon.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.orchestrator import JobSpec
from repro.orchestrator.supervise import BackoffPolicy
from repro.server import (
    ServerError,
    ServerUnavailable,
    SweepClient,
)


def _spec(percent=100.0):
    return JobSpec(workload="swim", cycles=500,
                   impedance_percent=percent, seed=11)


class _StubHandler(BaseHTTPRequestHandler):
    """Scripted responses: the test enqueues (status, payload) pairs
    on the server; each request pops the next one."""

    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):
        pass

    def _respond(self):
        self.server.requests.append((self.command, self.path))
        status, payload = self.server.script.pop(0)
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _respond
    do_POST = _respond


@pytest.fixture
def stub():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _StubHandler)
    server.daemon_threads = True
    server.script = []
    server.requests = []
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(5.0)


def _client(server, budget=3, sleeps=None):
    return SweepClient(
        "http://127.0.0.1:%d" % server.server_address[1],
        retry_budget=budget,
        sleep=(sleeps.append if sleeps is not None else lambda _s: None))


class TestRetrySchedule:
    def test_backoff_is_the_seeded_policy_sequence(self):
        # Connection refused every time: a closed port, no server.
        sleeps = []
        client = SweepClient("http://127.0.0.1:1", retry_budget=4,
                             sleep=sleeps.append, timeout=0.5)
        with pytest.raises(ServerUnavailable) as excinfo:
            client.health()
        assert excinfo.value.attempts == 4
        expected = BackoffPolicy(base_seconds=0.1, factor=2.0,
                                 cap_seconds=5.0, seed=0)
        assert sleeps == [expected.delay(n) for n in range(3)]

    def test_two_clients_retry_on_identical_schedules(self):
        schedules = []
        for _ in range(2):
            sleeps = []
            client = SweepClient("http://127.0.0.1:1", retry_budget=3,
                                 sleep=sleeps.append, timeout=0.5)
            with pytest.raises(ServerUnavailable):
                client.health()
            schedules.append(sleeps)
        assert schedules[0] == schedules[1]

    def test_429_and_503_consume_budget_then_succeed(self, stub):
        sleeps = []
        stub.script = [(429, {"error": "shed"}),
                       (503, {"error": "draining"}),
                       (200, {"status": "ok"})]
        client = _client(stub, budget=3, sleeps=sleeps)
        assert client.health() == {"status": "ok"}
        assert client.requests_sent == 3
        assert len(sleeps) == 2

    def test_budget_exhaustion_raises_unavailable(self, stub):
        stub.script = [(503, {"error": "draining"})] * 2
        client = _client(stub, budget=2)
        with pytest.raises(ServerUnavailable) as excinfo:
            client.health()
        assert "HTTP 503" in excinfo.value.last_error
        assert excinfo.value.attempts == 2

    def test_terminal_400_is_never_retried(self, stub):
        stub.script = [(400, {"error": "malformed submission: nope"})]
        client = _client(stub, budget=5)
        with pytest.raises(ServerError) as excinfo:
            client.submit([_spec()])
        assert excinfo.value.status == 400
        assert "malformed submission" in str(excinfo.value)
        assert client.requests_sent == 1

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            SweepClient("http://127.0.0.1:1", retry_budget=0)


class TestWaitResubmission:
    def test_wait_resubmits_cells_the_server_forgot(self, stub):
        # A crashed-and-restarted server 404s for a never-ACKed cell;
        # wait() must resubmit it rather than poll forever.
        spec = _spec()
        job = spec.content_hash()
        receipt = {"jobs": [{"job": job, "status": "queued"}],
                   "queue": {"queued": 1, "running": 0, "done": 0}}
        stub.script = [
            (202, receipt),                          # initial submit
            (404, {"error": "unknown job"}),         # poll: forgotten
            (202, receipt),                          # resubmission
            (200, {"job": job, "status": "done",     # poll: done
                   "result": {"status": "ok", "value": 2.0}}),
        ]
        client = _client(stub, budget=2)
        results = client.wait([spec], poll_seconds=0.01)
        assert results == {job: {"status": "ok", "value": 2.0}}
        methods = [m for m, _p in stub.requests]
        assert methods == ["POST", "GET", "POST", "GET"]

    def test_wait_deadline_raises_timeout(self, stub):
        spec = _spec()
        job = spec.content_hash()
        receipt = {"jobs": [{"job": job, "status": "queued"}],
                   "queue": {"queued": 1, "running": 0, "done": 0}}
        still_queued = (200, {"job": job, "status": "queued"})
        stub.script = [(202, receipt)] + [still_queued] * 100
        client = _client(stub, budget=2)
        with pytest.raises(TimeoutError):
            client.wait([spec], poll_seconds=0.0, deadline_seconds=0.0)
