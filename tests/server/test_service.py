"""In-process end-to-end tests of the sweep service.

The server's executor loop runs in a background thread here (the
subprocess drain tests in ``test_drain.py`` exercise the real
main-thread + signal configuration); the HTTP surface, queue,
journal-backed durability, and client all run for real over a
loopback socket.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.orchestrator import (
    JobOutcome,
    JobSpec,
    JournalError,
    ResultCache,
    Runner,
    SweepJournal,
    replay_journal,
    report_json,
)
from repro.server import ServerError, SweepClient, SweepServer

pytestmark = pytest.mark.usefixtures("cache_env")

CYCLES = 1500


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def _specs(*percents):
    return [JobSpec(workload="swim", cycles=CYCLES,
                    impedance_percent=p, seed=11) for p in percents]


class _Service:
    """A running server + its executor thread, torn down cleanly."""

    def __init__(self, tmp_path, **kwargs):
        self.journal_path = str(tmp_path / "serve.journal")
        kwargs.setdefault("jobs", 1)
        self.server = SweepServer(self.journal_path, **kwargs)
        self.port = self.server.start()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.exit_code = None
        self.thread.start()
        self.client = SweepClient("http://127.0.0.1:%d" % self.port,
                                  retry_budget=3)

    def _run(self):
        self.exit_code = self.server.run()

    def stop(self):
        self.server.stop()
        self.thread.join(30.0)
        assert not self.thread.is_alive()


@pytest.fixture
def service(tmp_path):
    svc = _Service(tmp_path)
    yield svc
    svc.stop()


class TestEndToEnd:
    def test_submit_wait_poll(self, service):
        specs = _specs(100.0, 200.0)
        results = service.client.wait(specs, poll_seconds=0.05,
                                      deadline_seconds=120)
        assert set(results) == {s.content_hash() for s in specs}
        assert all(r["status"] == "ok" for r in results.values())

    def test_report_matches_local_runner_bytes(self, service,
                                               tmp_path):
        specs = _specs(100.0, 200.0)
        results = service.client.wait(specs, poll_seconds=0.05,
                                      deadline_seconds=120)
        outcomes = [JobOutcome(s, results[s.content_hash()],
                               cached=True, attempts=0,
                               source="server") for s in specs]
        served = report_json(outcomes, {"seed": 11})
        local_cache = ResultCache(root=str(tmp_path / "local-cache"))
        baseline = Runner(jobs=1, cache=local_cache,
                          progress=False).run(specs)
        assert served == report_json(baseline, {"seed": 11})

    def test_resubmission_runs_nothing_new(self, service):
        specs = _specs(100.0)
        service.client.wait(specs, poll_seconds=0.05,
                            deadline_seconds=120)
        jobs_before = service.client.metrics()["counters"][
            "orchestrator.jobs"]
        again = service.client.wait(specs, poll_seconds=0.05,
                                    deadline_seconds=30)
        assert again[specs[0].content_hash()]["status"] == "ok"
        jobs_after = service.client.metrics()["counters"][
            "orchestrator.jobs"]
        assert jobs_after == jobs_before

    def test_etag_304_round_trip(self, service):
        specs = _specs(100.0)
        service.client.wait(specs, poll_seconds=0.05,
                            deadline_seconds=120)
        job = specs[0].content_hash()
        found, payload, etag = service.client.poll(job)
        assert found and etag and payload["status"] == "done"
        found, payload2, etag2 = service.client.poll(job, etag=etag)
        assert found and payload2 is None and etag2 == etag
        assert service.client.metrics()["counters"][
            "server.not_modified"] >= 1

    def test_health_and_readiness(self, service):
        health = service.client.health()
        assert health["status"] == "ok"
        assert health["draining"] is False
        assert set(health["queue"]) == {"queued", "running", "done"}
        ready, info = service.client.ready()
        assert ready and info["ready"] is True


class TestRejections:
    def test_unknown_job_404(self, service):
        found, payload, etag = service.client.poll("ab" * 32)
        assert (found, payload, etag) == (False, None, None)

    def test_malformed_submissions_400(self, service):
        url = "http://127.0.0.1:%d/jobs" % service.port
        for body in (b"not json", b'{"specs": []}', b'{"specs": 5}',
                     b'{"specs": [{"workload": 9}]}', b'{"nope": 1}'):
            request = urllib.request.Request(url, data=body,
                                             method="POST")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400

    def test_oversize_body_413(self, service, monkeypatch):
        from repro.server import handlers
        monkeypatch.setattr(handlers, "MAX_BODY_BYTES", 64)
        with pytest.raises(ServerError) as excinfo:
            service.client.submit(_specs(100.0, 200.0))
        assert excinfo.value.status == 413

    def test_unknown_path_404(self, service):
        with pytest.raises(ServerError) as excinfo:
            service.client._request("GET", "/nope")
        assert excinfo.value.status == 404


class TestLoadShedding:
    def test_429_when_queue_full(self, tmp_path):
        # No executor: admitted cells stay pending, so the bound bites.
        server = SweepServer(str(tmp_path / "j.journal"), jobs=1,
                             queue_limit=2)
        port = server.start()
        client = SweepClient("http://127.0.0.1:%d" % port,
                             retry_budget=1)
        try:
            client.submit(_specs(100.0, 200.0))
            from repro.server.client import ServerUnavailable
            with pytest.raises(ServerUnavailable) as excinfo:
                client.submit(_specs(300.0))
            assert "HTTP 429" in excinfo.value.last_error
            assert client.metrics()["counters"]["server.shed"] == 1
        finally:
            server.stop()
            server.run()   # drains the stop flag and closes the journal

    def test_draining_server_rejects_with_503(self, tmp_path):
        server = SweepServer(str(tmp_path / "j.journal"), jobs=1)
        port = server.start()
        client = SweepClient("http://127.0.0.1:%d" % port,
                             retry_budget=1)
        try:
            server.draining = True
            from repro.server.client import ServerUnavailable
            with pytest.raises(ServerUnavailable) as excinfo:
                client.submit(_specs(100.0))
            assert "HTTP 503" in excinfo.value.last_error
            ready, _info = client.ready()
            assert not ready
        finally:
            server.draining = False
            server.stop()
            server.run()


class TestDurability:
    def test_admission_is_journalled_before_the_ack(self, tmp_path):
        server = SweepServer(str(tmp_path / "j.journal"), jobs=1)
        port = server.start()
        client = SweepClient("http://127.0.0.1:%d" % port,
                             retry_budget=2)
        try:
            specs = _specs(100.0, 200.0)
            receipt = client.submit(specs)
            assert {j["status"] for j in receipt["jobs"]} == {"queued"}
            # The ACK is durable: the journal already has the cells.
            state = replay_journal(server.journal_path)
            assert set(state.spec_hashes()) == \
                {s.content_hash() for s in specs}
        finally:
            server.stop()
            server.run()

    def test_boot_replay_serves_finished_and_requeues_pending(
            self, tmp_path):
        specs = _specs(100.0, 200.0)
        done, pending = specs
        path = str(tmp_path / "old.journal")
        cache = ResultCache(root=str(tmp_path / "cache"))
        with SweepJournal(path, fsync=False) as journal:
            journal.begin_sweep(specs, salt=cache.salt)
            journal.done(done.content_hash(),
                         {"status": "ok", "value": 1.0})
        server = SweepServer(path, cache=cache, jobs=1)
        try:
            status, result, etag = server.queue.lookup(
                done.content_hash())
            assert status == "done"
            assert result == {"status": "ok", "value": 1.0}
            assert etag
            assert server.queue.lookup(
                pending.content_hash())[0] == "queued"
            assert server.queue.pending_count() == 1
        finally:
            server.stop()
            server.run()

    def test_salt_mismatch_discards_replayed_results(self, tmp_path):
        spec, = _specs(100.0)
        path = str(tmp_path / "old.journal")
        with SweepJournal(path, fsync=False) as journal:
            journal.begin_sweep([spec], salt="v0.0-other")
            journal.done(spec.content_hash(), {"status": "ok"})
        server = SweepServer(path, jobs=1)
        try:
            # Stale result re-queued, not served.
            assert server.queue.lookup(
                spec.content_hash())[0] == "queued"
        finally:
            server.stop()
            server.run()

    def test_second_server_on_same_journal_fails_fast(self, tmp_path):
        path = str(tmp_path / "j.journal")
        server = SweepServer(path, jobs=1)
        try:
            with pytest.raises(JournalError, match="another live"):
                SweepServer(path, jobs=1)
        finally:
            server.stop()
            server.run()

    def test_replay_escape_hatch(self, tmp_path):
        # serve --no-replay wires replay=False through to the batch
        # runner; the default keeps replay sweeps on.
        server = SweepServer(str(tmp_path / "a.journal"), jobs=1)
        try:
            assert server.replay is True
        finally:
            server.stop()
            server.run()
        server = SweepServer(str(tmp_path / "b.journal"), jobs=1,
                             replay=False)
        try:
            assert server.replay is False
        finally:
            server.stop()
            server.run()

    def test_idle_compaction_bounds_the_journal(self, tmp_path):
        svc = _Service(tmp_path, compact_when_idle=True)
        try:
            specs = _specs(100.0)
            svc.client.wait(specs, poll_seconds=0.05,
                            deadline_seconds=120)
            deadline = threading.Event()
            for _ in range(200):
                counters = svc.client.metrics()["counters"]
                if counters.get("server.journal_compactions", 0) >= 1:
                    break
                deadline.wait(0.05)
            else:
                pytest.fail("idle compaction never ran")
            state = replay_journal(svc.journal_path)
            assert state.results   # compaction kept the done cells
        finally:
            svc.stop()
