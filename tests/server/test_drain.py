"""Subprocess tests of the daemon's signal behaviour.

These run ``repro-didt serve`` as a real child process -- executor on
the main thread, SIGTERM routed through the graceful-drain path --
and prove the durability contract end to end:

* SIGTERM -> exit 3, journal flushed with an ``interrupted`` record;
* a restarted server on the same journal finishes the admitted work
  and the final report is byte-identical to a local ``Runner`` run;
* a serve-scoped chaos kill (SIGKILL mid-dispatch, no warning at all)
  loses nothing that was acknowledged.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.orchestrator import (
    JobOutcome,
    JobSpec,
    ResultCache,
    Runner,
    replay_journal,
    report_json,
)
from repro.server import ServerUnavailable, SweepClient

CYCLES = 1500

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGTERM") or os.name == "nt",
    reason="POSIX signal semantics required")


def _specs():
    return [JobSpec(workload="swim", cycles=CYCLES,
                    impedance_percent=p, seed=11)
            for p in (100.0, 200.0, 300.0)]


class _Daemon:
    """One ``repro-didt serve`` child process."""

    def __init__(self, tmp_path, journal, extra_env=None):
        self.journal = str(journal)
        self.port_file = str(tmp_path / ("port-%d" % time.monotonic_ns()))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        env.pop("REPRO_CHAOS", None)
        env.pop("REPRO_CHAOS_ONCE", None)
        env.update(extra_env or {})
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--journal", self.journal, "--port", "0",
             "--port-file", self.port_file, "--jobs", "1",
             "--batch-limit", "1"],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE, text=True)
        self.port = None

    def wait_ready(self, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise AssertionError(
                    "server died during startup (exit %r): %s"
                    % (self.process.returncode,
                       self.process.stderr.read()))
            if os.path.exists(self.port_file):
                text = open(self.port_file).read().strip()
                if text:
                    self.port = int(text)
                    break
            time.sleep(0.05)
        else:
            raise AssertionError("server never wrote its port file")
        client = self.client(retry_budget=20)
        client.health()
        return client

    def client(self, retry_budget=8):
        return SweepClient("http://127.0.0.1:%d" % self.port,
                           retry_budget=retry_budget)

    def terminate_and_wait(self, timeout=60.0):
        self.process.send_signal(signal.SIGTERM)
        return self.process.wait(timeout=timeout)

    def kill_if_alive(self):
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=30)


def _local_baseline_report(tmp_path, specs):
    cache = ResultCache(root=str(tmp_path / "baseline-cache"))
    outcomes = Runner(jobs=1, cache=cache, progress=False).run(specs)
    return report_json(outcomes, {"seed": 11})


def _served_report(results, specs):
    outcomes = [JobOutcome(spec, results[spec.content_hash()],
                           cached=True, attempts=0, source="server")
                for spec in specs]
    return report_json(outcomes, {"seed": 11})


class TestGracefulDrain:
    def test_sigterm_drains_resumes_byte_identical(self, tmp_path):
        specs = _specs()
        journal = tmp_path / "serve.journal"
        daemon = _Daemon(tmp_path, journal)
        try:
            client = daemon.wait_ready()
            receipt = client.submit(specs)
            assert len(receipt["jobs"]) == len(specs)
            # Let the executor get into (or even through) the work,
            # then pull the plug.  Exit 3 is guaranteed either way.
            time.sleep(0.3)
            code = daemon.terminate_and_wait()
            assert code == 3, daemon.process.stderr.read()

            # The journal was flushed on the way down: every admitted
            # cell is recorded, and the drain left its marker.
            state = replay_journal(str(journal))
            assert set(state.spec_hashes()) == \
                {s.content_hash() for s in specs}
            assert state.interrupted
            assert not state.ended
        finally:
            daemon.kill_if_alive()

        # A restarted server picks the journal back up and finishes;
        # the assembled report is byte-identical to a local run.
        daemon2 = _Daemon(tmp_path, journal)
        try:
            client = daemon2.wait_ready()
            results = client.wait(specs, poll_seconds=0.1,
                                  deadline_seconds=240)
            assert _served_report(results, specs) == \
                _local_baseline_report(tmp_path, specs)
            counters = client.metrics()["counters"]
            assert counters.get("server.resumed_cells", 0) \
                + counters.get("server.requeued_cells", 0) \
                == len(specs)
            assert daemon2.terminate_and_wait() == 3
        finally:
            daemon2.kill_if_alive()

    def test_sigterm_while_idle_still_exits_3(self, tmp_path):
        daemon = _Daemon(tmp_path, tmp_path / "idle.journal")
        try:
            daemon.wait_ready()
            code = daemon.terminate_and_wait()
            assert code == 3
            state = replay_journal(str(tmp_path / "idle.journal"))
            assert state.interrupted
        finally:
            daemon.kill_if_alive()


class TestServeChaos:
    def test_sigkill_mid_dispatch_loses_nothing_acknowledged(
            self, tmp_path):
        specs = _specs()
        journal = tmp_path / "chaos.journal"
        daemon = _Daemon(tmp_path, journal,
                         extra_env={"REPRO_CHAOS": "kill@serve=1"})
        try:
            client = daemon.wait_ready()
            # The executor SIGKILLs itself dispatching cell 1, which
            # may beat the 202 out the door -- a lost ACK is exactly
            # the crash shape the resubmission contract covers.
            try:
                client.submit(specs)
            except ServerUnavailable:
                pass
            code = daemon.process.wait(timeout=120)
            assert code == -signal.SIGKILL
        finally:
            daemon.kill_if_alive()

        state = replay_journal(str(journal))
        assert set(state.spec_hashes()) == \
            {s.content_hash() for s in specs}
        assert not state.interrupted

        daemon2 = _Daemon(tmp_path, journal)
        try:
            client = daemon2.wait_ready()
            results = client.wait(specs, poll_seconds=0.1,
                                  deadline_seconds=240)
            assert _served_report(results, specs) == \
                _local_baseline_report(tmp_path, specs)
            assert daemon2.terminate_and_wait() == 3
        finally:
            daemon2.kill_if_alive()
