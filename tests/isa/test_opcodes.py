"""Tests for the opcode table and latency maps."""

import pytest

from repro.isa.opcodes import (
    DEFAULT_INTERVAL,
    DEFAULT_LATENCY,
    InstrClass,
    OPCODES,
    default_intervals,
    default_latencies,
)


class TestOpcodeTable:
    def test_stressmark_mnemonics_present(self):
        """Every mnemonic in the paper's Figure 8 loop must assemble."""
        for name in ("ldt", "divt", "stt", "ldq", "cmovne", "stq", "br"):
            assert name in OPCODES

    def test_classes_consistent(self):
        assert OPCODES["divt"].iclass is InstrClass.FDIV
        assert OPCODES["ldq"].iclass is InstrClass.LOAD
        assert OPCODES["stq"].iclass is InstrClass.STORE
        assert OPCODES["addq"].iclass is InstrClass.IALU
        assert OPCODES["mulq"].iclass is InstrClass.IMULT
        assert OPCODES["bne"].iclass is InstrClass.BRANCH

    def test_stores_do_not_write_registers(self):
        for name, op in OPCODES.items():
            if op.iclass is InstrClass.STORE:
                assert not op.writes_dest, name

    def test_conditional_flags(self):
        assert OPCODES["bne"].is_conditional
        assert not OPCODES["br"].is_conditional
        assert OPCODES["jsr"].is_call
        assert OPCODES["ret"].is_return

    def test_names_match_keys(self):
        for name, op in OPCODES.items():
            assert op.name == name


class TestClassProperties:
    def test_memory_classes(self):
        assert InstrClass.LOAD.is_memory
        assert InstrClass.STORE.is_memory
        assert not InstrClass.IALU.is_memory

    def test_fp_classes(self):
        for c in (InstrClass.FALU, InstrClass.FMULT, InstrClass.FDIV):
            assert c.is_floating_point
        assert not InstrClass.IMULT.is_floating_point

    def test_control(self):
        assert InstrClass.BRANCH.is_control
        assert not InstrClass.LOAD.is_control


class TestLatencies:
    def test_every_class_has_latency_and_interval(self):
        for c in InstrClass:
            assert c in DEFAULT_LATENCY
            assert c in DEFAULT_INTERVAL

    def test_divides_are_long_and_unpipelined(self):
        """The stressmark's low-current trough relies on long FP divides."""
        assert DEFAULT_LATENCY[InstrClass.FDIV] >= 10
        assert DEFAULT_INTERVAL[InstrClass.FDIV] == DEFAULT_LATENCY[InstrClass.FDIV]
        assert DEFAULT_INTERVAL[InstrClass.IDIV] == DEFAULT_LATENCY[InstrClass.IDIV]

    def test_simple_ops_single_cycle(self):
        assert DEFAULT_LATENCY[InstrClass.IALU] == 1

    def test_copies_are_independent(self):
        lat = default_latencies()
        lat[InstrClass.IALU] = 99
        assert DEFAULT_LATENCY[InstrClass.IALU] == 1
        ival = default_intervals()
        ival[InstrClass.IALU] = 99
        assert DEFAULT_INTERVAL[InstrClass.IALU] == 1
