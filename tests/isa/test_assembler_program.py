"""Tests for the assembler and the program sequencer."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instruction import Reg
from repro.isa.opcodes import InstrClass
from repro.isa.program import (
    Program,
    Sequencer,
    backward_taken_policy,
    loop_count_policy,
)

STRESSMARK_TEXT = """
loop:
    ldt   f1, 0(r4)
    divt  f3, f1, f2
    divt  f3, f3, f2
    stt   f3, 8(r4)
    ldq   r7, 8(r4)
    cmovne r3, r31, r7
    stq   r3, 0(r4)
    br    loop
"""


class TestAssembler:
    def test_stressmark_assembles(self):
        prog = assemble(STRESSMARK_TEXT)
        assert len(prog) == 8
        assert prog.labels == {"loop": 0}
        assert prog[7].target_index == 0

    def test_operand_decoding(self):
        prog = assemble("ldt f1, 16(r4)")
        inst = prog[0]
        assert inst.dest == Reg.parse("f1")
        assert inst.base == Reg.parse("r4")
        assert inst.displacement == 16

    def test_store_source_and_base(self):
        inst = assemble("stq r3, -8(r5)")[0]
        assert inst.srcs == (3,)
        assert inst.base == 5
        assert inst.displacement == -8

    def test_three_operand_alu(self):
        inst = assemble("addq r1, r2, r3")[0]
        assert inst.dest == 1
        assert inst.srcs == (2, 3)

    def test_comments_and_blank_lines(self):
        prog = assemble("""
        # full-line comment
        addq r1, r2, r3   # trailing comment
        nop ; semicolon comment
        """)
        assert len(prog) == 2

    def test_conditional_branch(self):
        prog = assemble("""
        top:
            subq r1, r1, r2
            bne r1, top
        """)
        inst = prog[1]
        assert inst.op.is_conditional
        assert inst.srcs == (1,)
        assert inst.target_index == 0

    def test_call_and_return(self):
        prog = assemble("""
            jsr func
            nop
        func:
            ret
        """)
        assert prog[0].op.is_call
        assert prog[0].target_index == 2
        assert prog[2].op.is_return

    def test_alpha_style_registers(self):
        inst = assemble("cmovne $3, $31, $7")[0]
        assert inst.dest == 3
        assert inst.srcs == (7,)  # $31 is the zero register, dropped

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate r1, r2")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble("addq r1, r2")

    def test_malformed_memory_operand(self):
        with pytest.raises(AssemblerError, match="memory operand"):
            assemble("ldq r1, r2")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a: nop\na: nop")

    def test_undefined_label(self):
        with pytest.raises(ValueError, match="undefined label"):
            assemble("br nowhere")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus r1\n")


class TestSequencer:
    def test_infinite_loop_bounded_by_max(self):
        prog = assemble(STRESSMARK_TEXT)
        stream = list(Sequencer(prog, max_instructions=100))
        assert len(stream) == 100

    def test_loop_iterates_in_order(self):
        prog = assemble(STRESSMARK_TEXT)
        stream = Sequencer(prog, max_instructions=16).run(16)
        names = [d.op.name for d in stream[:8]]
        assert names == ["ldt", "divt", "divt", "stt", "ldq", "cmovne",
                         "stq", "br"]
        assert [d.op.name for d in stream[8:]] == names

    def test_sequence_numbers_monotonic(self):
        prog = assemble(STRESSMARK_TEXT)
        stream = Sequencer(prog, max_instructions=50).run(50)
        assert [d.seq for d in stream] == list(range(50))

    def test_addresses_stable_across_iterations(self):
        prog = assemble(STRESSMARK_TEXT)
        stream = Sequencer(prog, max_instructions=32).run(32)
        loads = [d for d in stream if d.op.name == "ldt"]
        assert len({d.addr for d in loads}) == 1

    def test_reg_base_override(self):
        prog = assemble("ldq r1, 8(r4)")
        stream = list(Sequencer(prog, reg_bases={Reg.parse("r4"): 0x5000}))
        assert stream[0].addr == 0x5008

    def test_base_register_is_a_source(self):
        prog = assemble("ldq r1, 8(r4)")
        inst = list(Sequencer(prog))[0]
        assert Reg.parse("r4") in inst.srcs

    def test_falls_off_end(self):
        prog = assemble("nop\nnop\n")
        assert len(list(Sequencer(prog))) == 2

    def test_loop_count_policy(self):
        prog = assemble("""
        top:
            addq r1, r1, r2
            bne r1, top
        nop
        """)
        stream = list(Sequencer(prog, branch_policy=loop_count_policy(3)))
        # 3 iterations of (addq, bne) then the trailing nop.
        assert len(stream) == 7
        assert stream[-1].op.name == "nop"

    def test_backward_taken_policy_directionality(self):
        prog = assemble("""
        top:
            bne r1, forward
            bne r1, top
        forward:
            nop
        """)
        backward = prog[1]
        forward = prog[0]
        assert backward_taken_policy(backward, 0)
        assert not backward_taken_policy(forward, 0)

    def test_call_return_flow(self):
        prog = assemble("""
            jsr func
            br end
        func:
            addq r1, r1, r1
            ret
        end:
            nop
        """)
        names = [d.op.name for d in Sequencer(prog)]
        assert names == ["jsr", "addq", "ret", "br", "nop"]

    def test_return_without_call_ends_program(self):
        prog = assemble("ret\nnop")
        names = [d.op.name for d in Sequencer(prog)]
        assert names == ["ret"]

    def test_start_label(self):
        prog = assemble("""
            nop
        entry:
            addq r1, r1, r1
        """)
        names = [d.op.name for d in Sequencer(prog, start_label="entry")]
        assert names == ["addq"]

    def test_pc_mapping_roundtrip(self):
        prog = assemble(STRESSMARK_TEXT)
        for i in range(len(prog)):
            assert prog.index_of_pc(prog.pc_of(i)) == i
        with pytest.raises(ValueError):
            prog.index_of_pc(prog.base_pc - 4)


class TestProgram:
    def test_rejects_non_static_inst(self):
        with pytest.raises(TypeError):
            Program([object()])

    def test_empty_program_iterates_nothing(self):
        prog = Program([])
        assert list(Sequencer(prog)) == []
