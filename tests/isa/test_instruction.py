"""Tests for register helpers and instruction records."""

import pytest

from repro.isa.instruction import (
    DynamicInst,
    FZERO_REG,
    N_INT_REGS,
    Reg,
    StaticInst,
    ZERO_REG,
)
from repro.isa.opcodes import OPCODES


class TestReg:
    def test_int_and_fp_spaces_disjoint(self):
        assert Reg.int_reg(5) == 5
        assert Reg.fp_reg(5) == N_INT_REGS + 5

    @pytest.mark.parametrize("text,expected", [
        ("r0", 0), ("r31", 31), ("f0", 32), ("f31", 63),
        ("$7", 7), ("$f3", 35), (" r4 ", 4), ("R12", 12), ("F2", 34),
    ])
    def test_parse(self, text, expected):
        assert Reg.parse(text) == expected

    def test_parse_roundtrip(self):
        for index in range(64):
            assert Reg.parse(Reg.name(index)) == index

    @pytest.mark.parametrize("bad", ["", "x3", "r32", "f40", "r-1"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            Reg.parse(bad)

    def test_zero_registers(self):
        assert Reg.is_zero(ZERO_REG)
        assert Reg.is_zero(FZERO_REG)
        assert not Reg.is_zero(0)

    def test_name_range_check(self):
        with pytest.raises(ValueError):
            Reg.name(64)


class TestStaticInst:
    def test_zero_register_sources_dropped(self):
        inst = StaticInst(OPCODES["cmovne"], dest=3, srcs=(ZERO_REG, 7))
        assert inst.srcs == (7,)

    def test_requires_opcode(self):
        with pytest.raises(TypeError):
            StaticInst("addq")

    def test_repr_mentions_operands(self):
        inst = StaticInst(OPCODES["addq"], dest=1, srcs=(2, 3))
        text = repr(inst)
        assert "addq" in text and "r1" in text and "r2" in text


class TestDynamicInst:
    def _make(self, name, **kwargs):
        return DynamicInst(seq=0, pc=0x1000, op=OPCODES[name], **kwargs)

    def test_class_flags(self):
        assert self._make("ldq", addr=0x10).is_load
        assert self._make("stq", addr=0x10).is_store
        assert self._make("ldq", addr=0x10).is_mem
        assert self._make("bne", taken=True, target=0x2000).is_branch
        assert not self._make("addq").is_mem

    def test_next_pc_fallthrough(self):
        assert self._make("addq").next_pc == 0x1004

    def test_next_pc_taken_branch(self):
        inst = self._make("br", taken=True, target=0x2000)
        assert inst.next_pc == 0x2000

    def test_next_pc_not_taken_branch(self):
        inst = self._make("bne", taken=False, target=0x2000)
        assert inst.next_pc == 0x1004

    def test_repr(self):
        assert "ldq" in repr(self._make("ldq", addr=0x40))
        assert "taken" in repr(self._make("bne", taken=True, target=0x2000))
