"""Tests for the per-quadrant supply network and power split."""

import numpy as np
import pytest

from repro.pdn.quadrants import (
    N_QUADRANTS,
    QUADRANT_FLOORPLAN,
    QuadrantParameters,
    QuadrantPdn,
    split_power,
)
from repro.pdn.statespace import StateSpaceSimulator
from repro.power.model import PowerModel
from repro.power.params import STRUCTURES
from repro.uarch.activity import CycleActivity
from repro.uarch.config import MachineConfig


@pytest.fixture(scope="module")
def pdn():
    return QuadrantPdn(QuadrantParameters.representative())


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuadrantParameters(r0=0, l0=1e-12, c0=1e-6, rq=1e-3, lq=1e-12,
                               cq=1e-7)

    def test_representative(self):
        QuadrantParameters.representative()


class TestTopology:
    def test_state_dimensions(self, pdn):
        assert pdn.model.n_states == 2 + 2 * N_QUADRANTS
        assert pdn.model.n_inputs == N_QUADRANTS
        assert pdn.model.n_outputs == N_QUADRANTS

    def test_equilibrium_symmetric(self, pdn):
        x = pdn.model.equilibrium(np.full(N_QUADRANTS, 5.0))
        voltages = pdn.model.c @ x
        assert np.allclose(voltages, voltages[0])

    def test_self_impedance_exceeds_coupling(self, pdn):
        for f in (20e6, 50e6, 150e6):
            assert pdn.impedance(f, 0, 0) > pdn.impedance(f, 0, 1)

    def test_quadrants_symmetric(self, pdn):
        assert pdn.impedance(50e6, 1, 1) == pytest.approx(
            pdn.impedance(50e6, 3, 3), rel=1e-9)


class TestLocalDroop:
    def test_local_burst_droops_own_quadrant_deepest(self, pdn):
        sim = StateSpaceSimulator(pdn.discretize(),
                                  initial_current=np.full(4, 5.0))
        voltages = []
        for t in range(600):
            currents = np.full(4, 5.0)
            if (t // 30) % 2 == 0:
                currents[2] = 25.0
            voltages.append(sim.step(currents))
        voltages = np.array(voltages)
        mins = voltages.min(axis=0)
        assert int(np.argmin(mins)) == 2
        # The local droop is meaningfully deeper than its neighbours'.
        others = [mins[q] for q in range(4) if q != 2]
        assert mins[2] < min(others) - 0.002

    def test_uniform_load_droops_uniformly(self, pdn):
        sim = StateSpaceSimulator(pdn.discretize(),
                                  initial_current=np.full(4, 5.0))
        voltages = []
        for t in range(300):
            level = 25.0 if (t // 30) % 2 == 0 else 5.0
            voltages.append(sim.step(np.full(4, level)))
        voltages = np.array(voltages)
        mins = voltages.min(axis=0)
        assert np.allclose(mins, mins[0], atol=1e-9)


class TestPowerSplit:
    def test_floorplan_covers_every_structure_once(self):
        placed = [n for names in QUADRANT_FLOORPLAN.values() for n in names]
        assert sorted(placed) == sorted(STRUCTURES)

    def test_split_conserves_power(self):
        model = PowerModel(MachineConfig())
        activity = CycleActivity()
        activity.busy_int_alu = 4
        activity.l1d_accesses = 2
        breakdown = model.breakdown(activity)
        split = split_power(breakdown)
        assert split.sum() == pytest.approx(sum(breakdown.values()))

    def test_fu_activity_lands_in_execute_quadrant(self):
        model = PowerModel(MachineConfig())
        idle = model.breakdown(CycleActivity())
        busy_activity = CycleActivity()
        busy_activity.busy_int_alu = 8
        busy_activity.busy_fp_alu = 4
        busy = model.breakdown(busy_activity)
        delta = split_power(busy) - split_power(idle)
        assert int(np.argmax(delta)) == 2
        assert delta[0] == pytest.approx(0.0, abs=1e-12)
