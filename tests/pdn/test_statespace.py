"""Tests for the generic state-space PDN machinery."""

import numpy as np
import pytest

from repro.pdn.discrete import DiscretePdn
from repro.pdn.rlc import PdnParameters, SecondOrderPdn
from repro.pdn.statespace import (
    DiscreteStateSpace,
    StateSpacePdn,
    StateSpaceSimulator,
)


def canonical_as_statespace(pdn):
    """The canonical 2-state network expressed generically."""
    p = pdn.params
    a = np.array([[-p.resistance / p.inductance, -1.0 / p.inductance],
                  [1.0 / p.capacitance, 0.0]])
    b = np.array([[0.0], [-1.0 / p.capacitance]])
    w = np.array([p.vdd / p.inductance, 0.0])
    c = np.array([[0.0, 1.0]])
    return StateSpacePdn(a, b, w, c)


@pytest.fixture(scope="module")
def pdn():
    return SecondOrderPdn(PdnParameters.from_spec(peak_impedance=5e-3))


@pytest.fixture(scope="module")
def generic(pdn):
    return canonical_as_statespace(pdn)


class TestValidation:
    def test_shape_checks(self):
        a = np.eye(2)
        with pytest.raises(ValueError):
            StateSpacePdn(np.ones((2, 3)), np.ones((2, 1)), np.ones(2),
                          np.ones((1, 2)))
        with pytest.raises(ValueError):
            StateSpacePdn(a, np.ones((3, 1)), np.ones(2), np.ones((1, 2)))
        with pytest.raises(ValueError):
            StateSpacePdn(a, np.ones((2, 1)), np.ones(3), np.ones((1, 2)))
        with pytest.raises(ValueError):
            StateSpacePdn(a, np.ones((2, 1)), np.ones(2), np.ones((1, 3)))


class TestAgainstCanonical:
    """The generic machinery must agree exactly with the hand-unrolled
    two-state implementation."""

    def test_equilibrium(self, pdn, generic):
        x = generic.equilibrium(10.0)
        expected = DiscretePdn(pdn).equilibrium_state(10.0)
        assert np.allclose(x, expected)

    def test_impedance(self, pdn, generic):
        for f in (1e6, 50e6, 150e6):
            assert generic.impedance(f) == pytest.approx(pdn.impedance(f),
                                                         rel=1e-9)

    def test_batch_simulation(self, pdn, generic):
        rng = np.random.default_rng(5)
        cur = rng.uniform(0.0, 40.0, size=400)
        v_generic = generic.discretize().simulate(cur)
        v_specific = DiscretePdn(pdn).simulate(cur)
        assert np.max(np.abs(v_generic - v_specific)) < 1e-12

    def test_streaming_matches_batch(self, generic):
        rng = np.random.default_rng(6)
        cur = rng.uniform(0.0, 40.0, size=300)
        batch = generic.discretize().simulate(cur)
        sim = StateSpaceSimulator(generic.discretize(),
                                  initial_current=float(cur[0]))
        stream = np.array([sim.step(c) for c in cur])
        assert np.max(np.abs(batch - stream)) < 1e-12


class TestMultiInput:
    def _two_input_model(self, pdn):
        """Same network, load split across two half-current inputs."""
        p = pdn.params
        a = np.array([[-p.resistance / p.inductance, -1.0 / p.inductance],
                      [1.0 / p.capacitance, 0.0]])
        b = np.array([[0.0, 0.0],
                      [-1.0 / p.capacitance, -1.0 / p.capacitance]])
        w = np.array([p.vdd / p.inductance, 0.0])
        c = np.array([[0.0, 1.0]])
        return StateSpacePdn(a, b, w, c)

    def test_split_inputs_superpose(self, pdn):
        model = self._two_input_model(pdn)
        rng = np.random.default_rng(7)
        cur = rng.uniform(0.0, 30.0, size=200)
        halves = np.column_stack([cur / 2, cur / 2])
        v_split = model.discretize().simulate(halves)
        v_whole = DiscretePdn(pdn).simulate(cur)
        assert np.max(np.abs(v_split - v_whole)) < 1e-12

    def test_input_width_check(self, pdn):
        model = self._two_input_model(pdn)
        with pytest.raises(ValueError):
            model.discretize().simulate(np.zeros((10, 3)))

    def test_simulator_reset(self, pdn):
        model = self._two_input_model(pdn)
        sim = StateSpaceSimulator(model, initial_current=5.0)
        for _ in range(10):
            sim.step(np.array([20.0, 20.0]))
        sim.reset(5.0)
        assert sim.cycles == 0
        v_eq = pdn.params.vdd - pdn.params.resistance * 10.0
        assert sim.voltage == pytest.approx(v_eq, abs=1e-9)
