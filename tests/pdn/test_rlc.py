"""Unit tests for the continuous-time second-order PDN model."""

import math

import numpy as np
import pytest

from repro.pdn.rlc import (
    NOMINAL_CLOCK_HZ,
    NOMINAL_DC_RESISTANCE,
    NOMINAL_RESONANT_HZ,
    PdnParameters,
    SecondOrderPdn,
    default_pdn,
)


def make_pdn(peak=5e-3):
    return SecondOrderPdn(PdnParameters.from_spec(peak_impedance=peak))


class TestPdnParameters:
    def test_from_spec_resonant_frequency(self):
        pdn = make_pdn()
        assert pdn.resonant_hz == pytest.approx(NOMINAL_RESONANT_HZ, rel=1e-9)

    def test_from_spec_dc_resistance(self):
        pdn = make_pdn()
        assert pdn.dc_resistance == NOMINAL_DC_RESISTANCE

    def test_from_spec_peak_impedance_close(self):
        pdn = make_pdn(peak=5e-3)
        peak, freq = pdn.peak_impedance()
        # Approximation L/(R C) ignores the numerator R term; peak should be
        # within a few percent and never below the requested value.
        assert peak == pytest.approx(5e-3, rel=0.05)
        assert peak >= 5e-3
        assert freq == pytest.approx(NOMINAL_RESONANT_HZ, rel=0.05)

    def test_requires_underdamped_spec(self):
        with pytest.raises(ValueError):
            PdnParameters.from_spec(peak_impedance=0.5e-3)

    def test_requires_peak(self):
        with pytest.raises(ValueError):
            PdnParameters.from_spec()

    @pytest.mark.parametrize("field", ["resistance", "inductance", "capacitance", "vdd"])
    def test_rejects_nonpositive_components(self, field):
        kwargs = dict(resistance=1e-3, inductance=1e-12, capacitance=1e-6, vdd=1.0)
        kwargs[field] = 0.0
        with pytest.raises(ValueError):
            PdnParameters(**kwargs)


class TestSecondOrderPdn:
    def test_underdamped(self):
        pdn = make_pdn()
        assert 0.0 < pdn.zeta < 1.0

    def test_rejects_overdamped(self):
        # Huge R relative to sqrt(L/C) gives zeta >= 1.
        params = PdnParameters(resistance=1.0, inductance=1e-12, capacitance=1e-6)
        with pytest.raises(ValueError):
            SecondOrderPdn(params)

    def test_dc_impedance_equals_resistance(self):
        pdn = make_pdn()
        assert pdn.impedance(0.0) == pytest.approx(pdn.dc_resistance, rel=1e-12)

    def test_impedance_vector_matches_scalar(self):
        pdn = make_pdn()
        freqs = np.array([1e6, 5e7, 2e8])
        vec = pdn.impedance(freqs)
        for f, expected in zip(freqs, vec):
            assert pdn.impedance(float(f)) == pytest.approx(expected, rel=1e-12)

    def test_impedance_peak_at_resonance(self):
        pdn = make_pdn()
        peak, freq = pdn.peak_impedance()
        below = pdn.impedance(freq / 3.0)
        above = pdn.impedance(freq * 3.0)
        assert peak > below
        assert peak > above

    def test_resonant_period_cycles_matches_paper(self):
        # 50 MHz resonance at 3 GHz -> 60-cycle period (Figure 6).
        pdn = make_pdn()
        assert pdn.resonant_period_cycles(NOMINAL_CLOCK_HZ) == pytest.approx(60.0)

    def test_quality_factor(self):
        pdn = make_pdn()
        assert pdn.quality_factor == pytest.approx(1.0 / (2.0 * pdn.zeta))

    def test_poles_conjugate_pair_in_left_half_plane(self):
        pdn = make_pdn()
        p1, p2 = pdn.poles()
        assert p1 == p2.conjugate()
        assert p1.real < 0.0
        assert abs(p1) == pytest.approx(pdn.omega0, rel=1e-12)

    def test_settling_time_decreases_with_tolerance(self):
        pdn = make_pdn()
        assert pdn.settling_time(0.1) < pdn.settling_time(0.01)


class TestTimeDomain:
    def test_impulse_response_zero_before_t0(self):
        pdn = make_pdn()
        t = np.array([-1e-9, -1e-12])
        assert np.all(pdn.impulse_response(t) == 0.0)

    def test_impulse_response_initial_value(self):
        # h(0+) = 1/C: the whole impulse of charge lands on the capacitor.
        pdn = make_pdn()
        assert pdn.impulse_response(0.0) == pytest.approx(
            1.0 / pdn.params.capacitance, rel=1e-12)

    def test_step_response_settles_to_dc_resistance(self):
        pdn = make_pdn()
        t_late = 20.0 / pdn.alpha
        assert pdn.step_response(t_late) == pytest.approx(pdn.dc_resistance, rel=1e-6)

    def test_step_response_starts_at_zero(self):
        pdn = make_pdn()
        assert pdn.step_response(0.0) == pytest.approx(0.0, abs=1e-15)

    def test_step_is_integral_of_impulse(self):
        pdn = make_pdn()
        t_end = 3.0 / pdn.alpha
        t = np.linspace(0.0, t_end, 200001)
        h = pdn.impulse_response(t)
        integral = np.trapezoid(h, t)
        assert integral == pytest.approx(pdn.step_response(t_end), rel=1e-5)

    def test_step_overshoots_then_rings(self):
        # Underdamped network: the droop step response overshoots its final
        # value R (Figure 2, right).
        pdn = make_pdn()
        assert pdn.step_overshoot_ratio() > 1.5


class TestScaling:
    def test_scaled_peak_impedance(self):
        pdn = make_pdn()
        doubled = pdn.scaled_peak_impedance(2.0)
        p1, _ = pdn.peak_impedance()
        p2, _ = doubled.peak_impedance()
        assert p2 == pytest.approx(2.0 * p1, rel=0.02)

    def test_scaling_preserves_resonance_and_dc(self):
        pdn = make_pdn()
        scaled = pdn.scaled_peak_impedance(4.0)
        assert scaled.resonant_hz == pytest.approx(pdn.resonant_hz, rel=1e-6)
        assert scaled.dc_resistance == pdn.dc_resistance

    def test_scale_factor_must_be_positive(self):
        with pytest.raises(ValueError):
            make_pdn().scaled_peak_impedance(0.0)

    def test_default_pdn_percent(self):
        base = default_pdn(impedance_percent=100.0)
        double = default_pdn(impedance_percent=200.0)
        p1, _ = base.peak_impedance()
        p2, _ = double.peak_impedance()
        assert p2 == pytest.approx(2.0 * p1, rel=0.02)

    def test_repr_mentions_resonance(self):
        assert "50" in repr(make_pdn())
