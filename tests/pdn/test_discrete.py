"""Tests for the ZOH discrete PDN simulators, including agreement with the
reference convolution path and linear-system property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.pdn.convolve import convolve_voltage, pulse_response_kernel
from repro.pdn.discrete import DiscretePdn, PdnSimulator, cycles_for_settling
from repro.pdn.rlc import PdnParameters, SecondOrderPdn
from repro.pdn.waveforms import current_spike, worst_case_waveform


@pytest.fixture(scope="module")
def pdn():
    return SecondOrderPdn(PdnParameters.from_spec(peak_impedance=10e-3))


@pytest.fixture(scope="module")
def discrete(pdn):
    return DiscretePdn(pdn)


class TestDiscretePdn:
    def test_flat_current_gives_ir_drop(self, pdn, discrete):
        v = discrete.simulate(np.full(500, 20.0))
        expected = pdn.params.vdd - pdn.params.resistance * 20.0
        assert np.allclose(v, expected, atol=1e-12)

    def test_zero_current_gives_vdd(self, pdn, discrete):
        v = discrete.simulate(np.zeros(100))
        assert np.allclose(v, pdn.params.vdd)

    def test_empty_trace(self, discrete):
        assert discrete.simulate(np.empty(0)).size == 0

    def test_rejects_2d_input(self, discrete):
        with pytest.raises(ValueError):
            discrete.simulate(np.zeros((4, 4)))

    def test_step_up_causes_undershoot(self, pdn, discrete):
        cur = current_spike(2000, base=5.0, peak=25.0, start=10, width=1990)
        v = discrete.simulate(cur)
        final = pdn.params.vdd - pdn.params.resistance * 25.0
        # Underdamped network: the dip goes below the final IR-drop level.
        assert v.min() < final - 1e-3

    def test_step_down_causes_overshoot(self, pdn, discrete):
        cur = np.concatenate([np.full(10, 25.0), np.full(1990, 5.0)])
        v = discrete.simulate(cur, initial_current=25.0)
        final = pdn.params.vdd - pdn.params.resistance * 5.0
        assert v.max() > final + 1e-3

    def test_matches_convolution_on_worst_case(self, pdn, discrete):
        cur = worst_case_waveform(pdn, 5.0, 25.0, n_periods=6)
        v_rec = discrete.simulate(cur)
        v_conv = convolve_voltage(pdn, cur)
        assert np.max(np.abs(v_rec - v_conv)) < 1e-9

    def test_equilibrium_state(self, pdn, discrete):
        x = discrete.equilibrium_state(12.0)
        assert x[0] == pytest.approx(12.0)
        assert x[1] == pytest.approx(pdn.params.vdd - pdn.params.resistance * 12.0)

    def test_rejects_non_pdn(self):
        with pytest.raises(TypeError):
            DiscretePdn(object())


class TestPdnSimulator:
    def test_streaming_matches_batch(self, pdn, discrete):
        rng = np.random.default_rng(7)
        cur = rng.uniform(0.0, 30.0, size=1000)
        batch = discrete.simulate(cur, initial_current=cur[0])
        sim = PdnSimulator(discrete, initial_current=float(cur[0]))
        stream = sim.run(cur)
        assert np.max(np.abs(batch - stream)) < 1e-12

    def test_accepts_continuous_pdn(self, pdn):
        sim = PdnSimulator(pdn, initial_current=10.0)
        assert sim.voltage == pytest.approx(
            pdn.params.vdd - pdn.params.resistance * 10.0)

    def test_reset_restores_equilibrium(self, pdn):
        sim = PdnSimulator(pdn, initial_current=0.0)
        for _ in range(50):
            sim.step(30.0)
        sim.reset(10.0)
        assert sim.cycles == 0
        assert sim.voltage == pytest.approx(
            pdn.params.vdd - pdn.params.resistance * 10.0)

    def test_step_returns_pre_step_voltage(self, pdn):
        sim = PdnSimulator(pdn, initial_current=0.0)
        first = sim.step(30.0)
        # The first returned voltage predates any current change.
        assert first == pytest.approx(pdn.params.vdd)
        assert sim.voltage < first  # the 30 A draw has now begun to bite

    def test_cycle_counter(self, pdn):
        sim = PdnSimulator(pdn)
        for _ in range(17):
            sim.step(1.0)
        assert sim.cycles == 17


class TestKernel:
    def test_kernel_length_defaults_to_settling(self, pdn):
        k = pulse_response_kernel(pdn, tolerance=1e-6)
        assert k.size == cycles_for_settling(pdn, tolerance=1e-6)

    def test_kernel_sums_to_zero_ish(self, pdn):
        # The droop kernel integrates the impulse response over one cycle
        # per tap; its sum telescopes to ~S(infinity)-S(0) = R.
        k = pulse_response_kernel(pdn, tolerance=1e-9)
        assert k.sum() == pytest.approx(pdn.dc_resistance, rel=1e-3)

    def test_explicit_length(self, pdn):
        assert pulse_response_kernel(pdn, n_cycles=128).size == 128


class TestLinearityProperties:
    @given(hnp.arrays(np.float64, st.integers(10, 120),
                      elements=st.floats(0.0, 50.0, allow_nan=False)))
    @settings(max_examples=25, deadline=None)
    def test_recursion_matches_convolution(self, cur):
        pdn = SecondOrderPdn(PdnParameters.from_spec(peak_impedance=8e-3))
        v_rec = DiscretePdn(pdn).simulate(cur, initial_current=0.0)
        v_conv = convolve_voltage(pdn, cur, initial_current=0.0)
        assert np.max(np.abs(v_rec - v_conv)) < 1e-9

    @given(hnp.arrays(np.float64, 64, elements=st.floats(0.0, 20.0)),
           hnp.arrays(np.float64, 64, elements=st.floats(0.0, 20.0)))
    @settings(max_examples=25, deadline=None)
    def test_superposition_of_droops(self, a, b):
        """Droop is linear in current: droop(a+b) == droop(a) + droop(b)."""
        pdn = SecondOrderPdn(PdnParameters.from_spec(peak_impedance=8e-3))
        d = DiscretePdn(pdn)
        vdd = pdn.params.vdd
        droop_a = vdd - d.simulate(a, initial_current=0.0)
        droop_b = vdd - d.simulate(b, initial_current=0.0)
        droop_ab = vdd - d.simulate(a + b, initial_current=0.0)
        assert np.max(np.abs(droop_ab - (droop_a + droop_b))) < 1e-9

    @given(st.floats(0.0, 50.0))
    @settings(max_examples=25, deadline=None)
    def test_constant_current_is_equilibrium(self, level):
        pdn = SecondOrderPdn(PdnParameters.from_spec(peak_impedance=8e-3))
        v = DiscretePdn(pdn).simulate(np.full(64, level))
        expected = pdn.params.vdd - pdn.params.resistance * level
        assert np.allclose(v, expected, atol=1e-10)
