"""Bitwise parity of the vectorized multi-lane ZOH kernel.

The replay sweep path drives N impedance lanes through one
:func:`repro.pdn.discrete.zoh_recurrence_lanes` call instead of N
scalar :func:`repro.pdn.discrete.zoh_recurrence` runs.  The whole
capture/replay architecture rests on those two being **bit-identical**
per lane: numpy float64 elementwise arithmetic rounds exactly like
Python float scalar arithmetic, so as long as the lanes kernel keeps
the same operations in the same order, ``out[:, j]`` equals the scalar
voltages to the last ulp.  This tier pins that down with ``tobytes()``
comparisons -- any refactor of either kernel that re-associates a sum
fails here before it can corrupt a cached report.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdn.discrete import (
    DiscretePdn,
    PdnSimulator,
    zoh_recurrence,
    zoh_recurrence_lanes,
)


def _random_lane(rng):
    """Plausible-magnitude coefficients + state for one lane."""
    coeffs = tuple(rng.uniform(-1.5, 1.5) for _ in range(4)) + tuple(
        rng.uniform(-1e-3, 1e-3) for _ in range(4))
    return coeffs, rng.uniform(0.8, 1.2), rng.uniform(0.8, 1.2)


def _run_lanes(lanes, currents):
    """Run the batched kernel over per-lane (coeffs, x0, x1) tuples."""
    coeffs = np.empty((8, len(lanes)))
    x0 = np.empty(len(lanes))
    x1 = np.empty(len(lanes))
    for j, (lane_coeffs, lane_x0, lane_x1) in enumerate(lanes):
        coeffs[:, j] = lane_coeffs
        x0[j] = lane_x0
        x1[j] = lane_x1
    return zoh_recurrence_lanes(tuple(coeffs), x0, x1,
                                np.asarray(currents, dtype=float))


class TestKernelParity:
    def test_lanes_match_scalar_bitwise(self):
        rng = random.Random(7)
        lanes = [_random_lane(rng) for _ in range(6)]
        currents = [rng.uniform(0.0, 80.0) for _ in range(400)]
        out, fx0, fx1 = _run_lanes(lanes, currents)
        for j, (coeffs, x0, x1) in enumerate(lanes):
            volts, sx0, sx1 = zoh_recurrence(coeffs, x0, x1, currents)
            assert (np.ascontiguousarray(out[:, j]).tobytes()
                    == np.asarray(volts).tobytes())
            assert fx0[j].tobytes() == np.float64(sx0).tobytes()
            assert fx1[j].tobytes() == np.float64(sx1).tobytes()

    def test_empty_current_sequence(self):
        rng = random.Random(3)
        lanes = [_random_lane(rng) for _ in range(3)]
        out, fx0, fx1 = _run_lanes(lanes, [])
        assert out.shape == (0, 3)
        for j, (_coeffs, x0, x1) in enumerate(lanes):
            assert fx0[j] == x0
            assert fx1[j] == x1

    def test_single_lane(self):
        rng = random.Random(11)
        lane = _random_lane(rng)
        currents = [rng.uniform(0.0, 50.0) for _ in range(100)]
        out, _, _ = _run_lanes([lane], currents)
        volts, _, _ = zoh_recurrence(*lane, currents)
        assert out[:, 0].tobytes() == np.asarray(volts).tobytes()

    def test_nonfinite_current_propagates_identically(self):
        """A NaN/inf load current poisons the lane state exactly like
        the scalar recursion does (same cycle, same bit patterns per
        IEEE propagation), so a replayed diverging lane reports the
        same voltages the lockstep path would."""
        rng = random.Random(5)
        lanes = [_random_lane(rng) for _ in range(4)]
        currents = [rng.uniform(0.0, 50.0) for _ in range(60)]
        currents[20] = math.nan
        currents[40] = math.inf
        out, _, _ = _run_lanes(lanes, currents)
        for j, (coeffs, x0, x1) in enumerate(lanes):
            volts, _, _ = zoh_recurrence(coeffs, x0, x1, currents)
            assert (np.ascontiguousarray(out[:, j]).tobytes()
                    == np.asarray(volts).tobytes())

    def test_doctored_unstable_coefficients(self):
        """An unstable lane (spectral radius > 1) overflows to inf the
        same way in both kernels; stable sibling lanes are unaffected."""
        rng = random.Random(13)
        stable = _random_lane(rng)
        unstable = ((1.9, 0.4, 0.4, 1.9, 1e-3, 1e-3, 0.0, 0.0), 1.0, 1.0)
        currents = [rng.uniform(0.0, 50.0) for _ in range(1000)]
        with np.errstate(over="ignore", invalid="ignore"):
            out, _, _ = _run_lanes([stable, unstable], currents)
            for j, (coeffs, x0, x1) in enumerate((stable, unstable)):
                volts, _, _ = zoh_recurrence(coeffs, x0, x1, currents)
                assert (np.ascontiguousarray(out[:, j]).tobytes()
                        == np.asarray(volts).tobytes())
        assert np.isfinite(out[:, 0]).all()
        assert not np.isfinite(out[:, 1]).all()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           n=st.integers(0, 200),
           lanes=st.integers(1, 8))
    def test_parity_property(self, seed, n, lanes):
        rng = random.Random(seed)
        lane_params = [_random_lane(rng) for _ in range(lanes)]
        currents = [rng.uniform(0.0, 100.0) for _ in range(n)]
        out, fx0, fx1 = _run_lanes(lane_params, currents)
        assert out.shape == (n, lanes)
        for j, (coeffs, x0, x1) in enumerate(lane_params):
            volts, sx0, sx1 = zoh_recurrence(coeffs, x0, x1, currents)
            assert (np.ascontiguousarray(out[:, j]).tobytes()
                    == np.asarray(volts).tobytes())
            assert fx0[j].tobytes() == np.float64(sx0).tobytes()
            assert fx1[j].tobytes() == np.float64(sx1).tobytes()


class TestSimulatorLaneState:
    @pytest.mark.parametrize("impedance", [100.0, 200.0, 400.0])
    def test_lane_state_reproduces_step(self, impedance):
        """Driving a lane from ``PdnSimulator.lane_state()`` matches
        stepping the simulator itself, bit for bit -- the exact seam
        the replay engine relies on."""
        from repro.core import design_at

        design = design_at(impedance)
        sim = PdnSimulator(DiscretePdn(design.pdn,
                                       clock_hz=design.config.clock_hz))
        i_min, i_max = design.power_model.current_envelope()
        rng = random.Random(int(impedance))
        currents = [rng.uniform(i_min, i_max) for _ in range(250)]

        sim.reset(initial_current=i_min)
        coeffs, x0, x1 = sim.lane_state()
        out, _, _ = _run_lanes([(coeffs, x0, x1)], currents)

        sim.reset(initial_current=i_min)
        stepped = np.array([sim.step(u) for u in currents])
        assert out[:, 0].tobytes() == stepped.tobytes()

    def test_lane_state_is_reset_sensitive(self):
        """lane_state reflects the *current* state, so it must be read
        after ``reset`` -- pin that contract."""
        from repro.core import design_at

        design = design_at(150.0)
        sim = PdnSimulator(DiscretePdn(design.pdn,
                                       clock_hz=design.config.clock_hz))
        sim.reset(initial_current=0.0)
        _, x0_a, x1_a = sim.lane_state()
        sim.step(50.0)
        _, x0_b, x1_b = sim.lane_state()
        assert (x0_a, x1_a) != (x0_b, x1_b)
