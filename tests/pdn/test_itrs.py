"""Tests for the ITRS roadmap data behind Figure 1."""

import pytest

from repro.pdn.itrs import (
    halving_time_years,
    impedance_trend,
    relative_impedance_trend,
    roadmap,
    segment_gap_ratio,
)


class TestRoadmapData:
    def test_years_strictly_increasing(self):
        years = [p.year for p in roadmap()]
        assert years == sorted(years)
        assert len(set(years)) == len(years)

    def test_vdd_decreases(self):
        vdds = [p.vdd for p in roadmap()]
        assert all(a >= b for a, b in zip(vdds, vdds[1:]))

    def test_both_series_decrease(self):
        for segment in ("cost_performance", "high_performance"):
            _, values = impedance_trend(segment)
            assert all(a > b for a, b in zip(values, values[1:]))

    def test_normalized_to_2001_high_performance(self):
        _, values = impedance_trend("high_performance")
        assert values[0] == pytest.approx(1.0)

    def test_unknown_segment_rejected(self):
        with pytest.raises(ValueError):
            impedance_trend("mobile")

    def test_relative_trend_shapes(self):
        years, cost, high = relative_impedance_trend()
        assert len(years) == len(cost) == len(high)
        # Cost-performance systems tolerate higher impedance throughout.
        assert all(c > h for c, h in zip(cost, high))


class TestPaperClaims:
    def test_halving_time_3_to_5_years(self):
        """Paper: 'target impedance must drop rapidly, at roughly 2x every
        3-5 years' (Section 1)."""
        for segment in ("cost_performance", "high_performance"):
            assert 3.0 <= halving_time_years(segment) <= 5.0

    def test_segment_gap_shrinks(self):
        """Paper: 'the relative difference between target impedances of the
        cost-performance and high-performance systems is shrinking'."""
        first = roadmap()[0].year
        last = roadmap()[-1].year
        assert segment_gap_ratio(last) < segment_gap_ratio(first)

    def test_gap_ratio_unknown_year(self):
        with pytest.raises(KeyError):
            segment_gap_ratio(1999)
