"""Tests for the two-stage ladder network and its second-order fit."""

import numpy as np
import pytest

from repro.pdn.discrete import DiscretePdn
from repro.pdn.ladder import LadderParameters, LadderPdn, fit_second_order
from repro.pdn.waveforms import worst_case_waveform


@pytest.fixture(scope="module")
def ladder():
    return LadderPdn(LadderParameters.representative())


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            LadderParameters(r1=0.0, l1=1e-9, c1=1e-6, r2=1e-3, l2=1e-12,
                             c2=1e-6)

    def test_representative_is_valid(self):
        LadderParameters.representative()


class TestLadderFrequencyDomain:
    def test_two_resonances(self, ladder):
        peaks = ladder.resonances()
        assert len(peaks) == 2
        board, package = sorted(peaks)
        assert board < 5e6          # board stage: sub-MHz..low-MHz
        assert 30e6 < package < 80e6  # package stage: the paper's band

    def test_dc_impedance_is_total_resistance(self, ladder):
        assert ladder.impedance(1.0) == pytest.approx(ladder.dc_resistance,
                                                      rel=1e-3)

    def test_package_peak_in_band(self, ladder):
        peak, freq = ladder.peak_impedance()
        assert peak > ladder.dc_resistance
        assert 30e6 < freq < 80e6


class TestSecondOrderFit:
    def test_fit_matches_band_characteristics(self, ladder):
        fit = fit_second_order(ladder)
        l_peak, l_freq = ladder.peak_impedance()
        f_peak, f_freq = fit.peak_impedance()
        assert f_peak == pytest.approx(l_peak, rel=0.02)
        assert f_freq == pytest.approx(l_freq, rel=0.05)
        assert fit.dc_resistance == pytest.approx(ladder.dc_resistance)

    def test_fit_tracks_ladder_droop_in_band(self, ladder):
        """The paper's early-stage claim: the second-order abstraction
        captures the mid-frequency behaviour that matters for dI/dt."""
        fit = fit_second_order(ladder)
        wave = worst_case_waveform(fit, 17.0, 60.0, n_periods=8)
        v_ladder = ladder.discretize().simulate(wave, initial_current=17.0)
        v_fit = DiscretePdn(fit).simulate(wave, initial_current=17.0)
        droop_ladder = fit.params.vdd - v_ladder.min()
        droop_fit = fit.params.vdd - v_fit.min()
        # In-band droop agrees within ~25%; the residual is the board
        # stage's slow sag, which the validation bench quantifies.
        assert droop_fit == pytest.approx(droop_ladder, rel=0.25)

    def test_ladder_adds_low_frequency_sag(self, ladder):
        """What the abstraction loses: a sustained step rides down the
        board resonance, which the 2nd-order model cannot see."""
        fit = fit_second_order(ladder)
        n = 40000  # long enough to engage the ~500 kHz board stage
        step = np.full(n, 17.0)
        step[100:] = 60.0
        v_ladder = ladder.discretize().simulate(step, initial_current=17.0)
        v_fit = DiscretePdn(fit).simulate(step, initial_current=17.0)
        assert v_ladder.min() < v_fit.min() - 0.001
