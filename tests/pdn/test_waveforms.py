"""Tests for the canonical current stimuli and their Figure 3--6 behaviour."""

import numpy as np
import pytest

from repro.pdn.discrete import DiscretePdn
from repro.pdn.rlc import PdnParameters, SecondOrderPdn
from repro.pdn.waveforms import (
    current_spike,
    flat_current,
    notched_spike,
    pulse_train,
    resonant_square_wave,
    worst_case_waveform,
)


@pytest.fixture(scope="module")
def pdn():
    return SecondOrderPdn(PdnParameters.from_spec(peak_impedance=10e-3))


@pytest.fixture(scope="module")
def discrete(pdn):
    return DiscretePdn(pdn)


class TestBuilders:
    def test_flat(self):
        trace = flat_current(10, 3.0)
        assert trace.shape == (10,)
        assert np.all(trace == 3.0)

    def test_flat_rejects_empty(self):
        with pytest.raises(ValueError):
            flat_current(0, 1.0)

    def test_spike_placement(self):
        trace = current_spike(20, base=1.0, peak=9.0, start=5, width=3)
        assert np.all(trace[:5] == 1.0)
        assert np.all(trace[5:8] == 9.0)
        assert np.all(trace[8:] == 1.0)

    def test_spike_zero_width_is_flat(self):
        trace = current_spike(20, base=1.0, peak=9.0, start=5, width=0)
        assert np.all(trace == 1.0)

    def test_spike_rejects_negative_start(self):
        with pytest.raises(ValueError):
            current_spike(20, 1.0, 9.0, start=-1, width=3)

    def test_notched_spike_shape(self):
        trace = notched_spike(40, base=1.0, peak=9.0, start=5, width=20,
                              notch_start=8, notch_width=4)
        assert np.all(trace[13:17] == 1.0)  # the notch
        assert np.all(trace[5:13] == 9.0)
        assert np.all(trace[17:25] == 9.0)

    def test_notch_must_fit_in_spike(self):
        with pytest.raises(ValueError):
            notched_spike(40, 1.0, 9.0, start=5, width=10,
                          notch_start=8, notch_width=4)

    def test_pulse_train_count_and_period(self):
        trace = pulse_train(200, base=0.0, peak=1.0, start=10,
                            pulse_width=30, period=60, n_pulses=3)
        rising = np.flatnonzero(np.diff(trace) > 0) + 1
        assert list(rising) == [10, 70, 130]

    def test_pulse_train_width_le_period(self):
        with pytest.raises(ValueError):
            pulse_train(100, 0.0, 1.0, 0, pulse_width=61, period=60, n_pulses=1)

    def test_pulse_train_truncates_at_end(self):
        trace = pulse_train(50, base=0.0, peak=1.0, start=40,
                            pulse_width=30, period=60, n_pulses=2)
        assert np.all(trace[40:] == 1.0)
        assert trace.size == 50

    def test_resonant_square_wave_period(self, pdn):
        trace = resonant_square_wave(pdn, 240, 0.0, 1.0)
        # 60-cycle resonant period: 30 high, 30 low.
        assert np.all(trace[:30] == 1.0)
        assert np.all(trace[30:60] == 0.0)
        assert np.all(trace[60:90] == 1.0)

    def test_resonant_square_wave_lead_in(self, pdn):
        trace = resonant_square_wave(pdn, 240, 2.0, 8.0, start=50)
        assert np.all(trace[:50] == 2.0)
        assert trace[50] == 8.0

    def test_resonant_square_wave_validates_range(self, pdn):
        with pytest.raises(ValueError):
            resonant_square_wave(pdn, 100, 5.0, 1.0)

    def test_worst_case_waveform_starts_at_min(self, pdn):
        trace = worst_case_waveform(pdn, 3.0, 9.0)
        assert trace[0] == 3.0
        assert trace.max() == 9.0


class TestFigureBehaviours:
    """The qualitative results of the paper's Figures 3--6."""

    BASE = 5.0
    PEAK = 25.0

    def _min_voltage(self, discrete, trace):
        return discrete.simulate(trace, initial_current=self.BASE).min()

    def test_fig3_vs_fig4_wide_spike_digs_deeper(self, discrete):
        narrow = current_spike(600, self.BASE, self.PEAK, start=50, width=5)
        wide = current_spike(600, self.BASE, self.PEAK, start=50, width=30)
        assert self._min_voltage(discrete, wide) < self._min_voltage(discrete, narrow)

    def test_fig5_notch_recovers_voltage(self, discrete):
        wide = current_spike(600, self.BASE, self.PEAK, start=50, width=40)
        notched = notched_spike(600, self.BASE, self.PEAK, start=50, width=40,
                                notch_start=10, notch_width=15)
        assert self._min_voltage(discrete, notched) > self._min_voltage(discrete, wide)

    def test_fig6_second_resonant_pulse_digs_deeper(self, pdn, discrete):
        period = int(round(pdn.resonant_period_cycles()))
        trace = pulse_train(10 * period, self.BASE, self.PEAK, start=period,
                            pulse_width=period // 2, period=period, n_pulses=2)
        v = discrete.simulate(trace, initial_current=self.BASE)
        first_min = v[period:2 * period].min()
        second_min = v[2 * period:3 * period].min()
        assert second_min < first_min

    def test_off_resonance_train_is_milder(self, pdn, discrete):
        period = int(round(pdn.resonant_period_cycles()))
        on_res = pulse_train(20 * period, self.BASE, self.PEAK, start=0,
                             pulse_width=period // 2, period=period, n_pulses=10)
        off_res = pulse_train(20 * period, self.BASE, self.PEAK, start=0,
                              pulse_width=period // 2, period=2 * period,
                              n_pulses=10)
        assert (discrete.simulate(on_res, initial_current=self.BASE).min()
                < discrete.simulate(off_res, initial_current=self.BASE).min())

    def test_worst_case_beats_single_step(self, pdn, discrete):
        """The resonant square wave out-droops a sustained step of equal dI."""
        step = current_spike(1200, self.BASE, self.PEAK, start=50, width=1150)
        wave = worst_case_waveform(pdn, self.BASE, self.PEAK, n_periods=15)
        assert (discrete.simulate(wave, initial_current=self.BASE).min()
                < discrete.simulate(step, initial_current=self.BASE).min())
