"""Design-flow generality: the methodology, not the calibration point.

The paper's pitch is a *methodology* (Figure 13): analyze any machine
and package, solve thresholds, control.  These tests run the entire
flow on machines and packages deliberately unlike the calibrated
Table 1 / 50 MHz point, checking the pipeline end to end rather than
the tuned numbers.
"""

import pytest

from repro.control.thresholds import (
    design_pdn,
    solve_thresholds,
    worst_case_extremes,
)
from repro.power.model import PowerModel
from repro.uarch.config import MachineConfig


def narrow_machine():
    """A 4-wide, 2 GHz machine -- half of Table 1 in most dimensions."""
    return MachineConfig(
        clock_hz=2.0e9,
        fetch_width=4, decode_width=4, issue_width=4, commit_width=4,
        ruu_size=64, lsq_size=32, fetch_queue_size=16,
        n_int_alu=4, n_int_mult=1, n_fp_alu=2, n_fp_mult=1, n_mem_ports=2,
        l1d_size=32 * 1024, l1i_size=32 * 1024,
        l2_size=512 * 1024, memory_latency=200,
    )


class TestDesignFlowOnOtherMachines:
    @pytest.fixture(scope="class")
    def model(self):
        return PowerModel(narrow_machine())

    def test_target_impedance_solvable(self, model):
        pdn = design_pdn(model, impedance_percent=100.0,
                         resonant_hz=80e6, clock_hz=2.0e9)
        i_min, i_max = model.current_envelope()
        v_min, v_max = worst_case_extremes(pdn, i_min, i_max,
                                           clock_hz=2.0e9)
        assert max(1.0 - v_min, v_max - 1.0) <= 0.05 + 1e-6

    def test_thresholds_solvable_across_delays(self, model):
        pdn = design_pdn(model, impedance_percent=200.0,
                         resonant_hz=80e6, clock_hz=2.0e9)
        i_min, i_max = model.current_envelope()
        previous_low = 0.0
        # The 80 MHz resonance gives a 25-cycle period at 2 GHz, so the
        # delay budget is proportionally tighter than Table 3's: delay 3
        # here is like delay ~7 at the paper's 60-cycle period.
        for delay in (0, 1, 2):
            d = solve_thresholds(pdn, i_min, i_max, delay,
                                 i_reduce=model.gated_min_power(),
                                 i_boost=i_max, clock_hz=2.0e9)
            assert 0.95 < d.v_low < d.v_high < 1.05
            assert d.v_low >= previous_low
            previous_low = d.v_low

    def test_faster_resonance_shrinks_delay_budget(self, model):
        """A 25-cycle resonant period leaves less room for sensor delay
        than the paper's 60-cycle one: the solver goes infeasible at a
        proportionally smaller delay -- the physics scales correctly."""
        from repro.control.thresholds import ControlInfeasibleError
        pdn = design_pdn(model, impedance_percent=200.0,
                         resonant_hz=80e6, clock_hz=2.0e9)
        i_min, i_max = model.current_envelope()
        with pytest.raises(ControlInfeasibleError):
            solve_thresholds(pdn, i_min, i_max, delay=5,
                             i_reduce=model.gated_min_power(),
                             i_boost=i_max, clock_hz=2.0e9)

    def test_stressmark_tunes_to_other_resonances(self):
        """The auto-tuner must hit resonant periods other than 60."""
        from repro.control.thresholds import pdn_with_regulator
        from repro.workloads.stressmark import tune_stressmark
        config = narrow_machine()
        model = PowerModel(config)
        i_min, _ = model.current_envelope()
        # 80 MHz at 2 GHz -> a 25-cycle period.
        pdn = pdn_with_regulator(2.0e-3, i_min, resonant_hz=80e6)
        spec, measured = tune_stressmark(pdn, config)
        assert measured == pytest.approx(25.0, abs=3.0)

    def test_closed_loop_protects_on_narrow_machine(self):
        from repro.control.actuators import Actuator
        from repro.control.controller import ThresholdController
        from repro.control.loop import run_workload
        from repro.workloads.stressmark import stressmark_stream, \
            tune_stressmark

        config = narrow_machine()
        model = PowerModel(config)
        pdn = design_pdn(model, impedance_percent=320.0,
                         resonant_hz=80e6, clock_hz=2.0e9)
        i_min, i_max = model.current_envelope()
        spec, _ = tune_stressmark(pdn, config)
        base = run_workload(stressmark_stream(spec), pdn, config=config,
                            warmup_instructions=2000, max_cycles=8000)
        design = solve_thresholds(pdn, i_min, i_max, delay=1,
                                  i_reduce=model.gated_min_power(),
                                  i_boost=i_max, clock_hz=2.0e9)

        def factory(machine, power_model):
            return ThresholdController.from_design(
                design, actuator=Actuator("ideal"))
        controlled = run_workload(stressmark_stream(spec), pdn,
                                  config=config,
                                  controller_factory=factory,
                                  warmup_instructions=2000,
                                  max_cycles=8000)
        # The narrow machine's stressmark must endanger the cheap
        # package, and the solved controller must fix it.
        assert base.emergencies["emergency_cycles"] > 0
        assert controlled.emergencies["emergency_cycles"] == 0
