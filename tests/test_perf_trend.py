"""Tests for the perf-trend record format and its CI regression check.

``bench_perf_simulator --emit`` appends one per-commit record under
``benchmarks/results/``; ``tools/check_perf_trend.py`` diffs the two
newest records and warns when a tracked configuration's throughput
dropped more than 10%.  Neither lives on the import path, so both are
loaded by file location here.
"""

import importlib.util
import json
import os
import sys

import pytest

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), ".."))


def load_module(relpath, name):
    path = os.path.join(REPO_ROOT, relpath)
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    # bench_perf_simulator imports its sibling ``harness`` module.
    sys.path.insert(0, os.path.dirname(path))
    try:
        spec.loader.exec_module(module)
    finally:
        sys.path.remove(os.path.dirname(path))
    return module


@pytest.fixture(scope="module")
def checker():
    return load_module(os.path.join("tools", "check_perf_trend.py"),
                       "check_perf_trend")


@pytest.fixture(scope="module")
def bench():
    return load_module(
        os.path.join("benchmarks", "bench_perf_simulator.py"),
        "bench_perf_simulator")


META = {"cycles": 1000, "workload": "swim", "seed": 11}


def record(rates, meta=META, commit="c" * 40):
    return {"commit": commit, "meta": dict(meta),
            "figures": {name: {"cycles_per_sec": rate}
                        for name, rate in rates.items()}}


def tracked_rates(uncontrolled=1e6, controlled=5e5):
    return {"uncontrolled_steady_state_cell_swim": uncontrolled,
            "controlled_cell_swim": controlled,
            "controlled_cell_spec_swim": controlled,
            "replay_sweep_cells_swim": 80.0}


def write_trend(tmp_path, *records):
    path = tmp_path / "trend.jsonl"
    path.write_text("".join(json.dumps(r, sort_keys=True) + "\n"
                            for r in records))
    return str(path)


class TestAppendRecord:
    def test_record_shape_and_appending(self, bench, tmp_path):
        path = str(tmp_path / "results" / "trend.jsonl")
        bench.append_trend_record(path, META,
                                  tracked_rates())
        bench.append_trend_record(path, META,
                                  tracked_rates(uncontrolled=2e6))
        lines = open(path).read().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert set(first) == {"commit", "meta", "figures"}
        assert first["meta"] == META

    def test_default_path_is_under_results(self, bench):
        assert bench.default_trend_path().endswith(
            os.path.join("benchmarks", "results", "perf_trend.jsonl"))

    def test_committed_trend_parses(self, checker):
        # The seeded record in the repo must stay loadable.
        records = checker.load_records(
            os.path.join(REPO_ROOT, "benchmarks", "results",
                         "perf_trend.jsonl"))
        assert records
        for name in checker.TRACKED:
            assert name in records[-1]["figures"]


class TestCompare:
    def test_no_regression(self, checker):
        regressions, notes = checker.compare(
            record(tracked_rates()),
            record(tracked_rates(uncontrolled=0.95e6)), 0.10)
        assert regressions == [] and notes == []

    def test_drop_beyond_threshold_flagged(self, checker):
        regressions, _ = checker.compare(
            record(tracked_rates()),
            record(tracked_rates(uncontrolled=0.8e6)), 0.10)
        assert len(regressions) == 1
        assert "uncontrolled_steady_state_cell_swim" in regressions[0]
        assert "dropped 20.0%" in regressions[0]

    def test_improvement_never_flagged(self, checker):
        regressions, _ = checker.compare(
            record(tracked_rates()),
            record(tracked_rates(uncontrolled=5e6, controlled=5e6)),
            0.10)
        assert regressions == []

    def test_meta_mismatch_skips_the_comparison(self, checker):
        other = dict(META, cycles=2000)
        regressions, notes = checker.compare(
            record(tracked_rates()),
            record(tracked_rates(uncontrolled=1.0), meta=other), 0.10)
        assert regressions == []
        assert any("meta changed" in n for n in notes)

    def test_cells_per_sec_rate_key(self, checker):
        """The replay-sweep figure reports cells/sec, not cycles/sec;
        the checker must pick it up and flag drops."""
        def rec(rate):
            figures = {name: {"cycles_per_sec": 1e6}
                       for name in checker.TRACKED}
            figures["replay_sweep_cells_swim"] = {"cells_per_sec": rate}
            return {"commit": "c" * 40, "meta": dict(META),
                    "figures": figures}

        regressions, notes = checker.compare(rec(80.0), rec(75.0), 0.10)
        assert regressions == [] and notes == []
        regressions, _ = checker.compare(rec(80.0), rec(40.0), 0.10)
        assert len(regressions) == 1
        assert "cells_per_sec" in regressions[0]

    def test_missing_configuration_is_a_note(self, checker):
        current = record({"controlled_cell_swim": 5e5})
        regressions, notes = checker.compare(
            record(tracked_rates()), current, 0.10)
        assert regressions == []
        assert any("missing from latest" in n for n in notes)


class TestMain:
    def test_single_record_is_fine(self, checker, tmp_path, capsys):
        path = write_trend(tmp_path, record(tracked_rates()))
        assert checker.main([path]) == 0
        assert "nothing to compare yet" in capsys.readouterr().out

    def test_regression_warns_by_default(self, checker, tmp_path,
                                         capsys):
        path = write_trend(tmp_path, record(tracked_rates()),
                           record(tracked_rates(controlled=1e5)))
        assert checker.main([path]) == 0
        assert "WARNING" in capsys.readouterr().out

    def test_regression_fails_with_flag(self, checker, tmp_path):
        path = write_trend(tmp_path, record(tracked_rates()),
                           record(tracked_rates(controlled=1e5)))
        assert checker.main([path, "--fail"]) == 1

    def test_only_the_latest_pair_is_compared(self, checker, tmp_path):
        path = write_trend(tmp_path,
                           record(tracked_rates(uncontrolled=9e9)),
                           record(tracked_rates()),
                           record(tracked_rates(uncontrolled=0.95e6)))
        assert checker.main([path, "--fail"]) == 0

    def test_missing_file_is_a_usage_error(self, checker, tmp_path,
                                           capsys):
        assert checker.main([str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_record_is_a_usage_error(self, checker,
                                               tmp_path, capsys):
        path = tmp_path / "trend.jsonl"
        path.write_text('{"figures": {}}\n{not json\n')
        assert checker.main([str(path)]) == 2
        assert "line 2: unparsable" in capsys.readouterr().err

    def test_non_record_line_is_a_usage_error(self, checker, tmp_path):
        path = tmp_path / "trend.jsonl"
        path.write_text('{"no_figures": 1}\n')
        assert checker.main([str(path)]) == 2

    def test_custom_threshold(self, checker, tmp_path):
        path = write_trend(tmp_path, record(tracked_rates()),
                           record(tracked_rates(
                               uncontrolled=0.94e6)))
        assert checker.main([path, "--fail"]) == 0
        assert checker.main([path, "--fail",
                             "--threshold", "0.05"]) == 1
