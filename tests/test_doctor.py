"""Tests for the ``repro-didt doctor`` scrub (detection, repair,
byte-stable reports, and the CLI exit-code contract).

The detection matrix mirrors what the storage-fault injector can leave
behind: torn cache entries, stale-salt checkpoints, orphaned temp
files from a rename that never landed, torn journal tails from a
fail-loud append, and corrupt mid-journal damage.
"""

import json
import os

import numpy as np
import pytest

from repro import doctor
from repro.cli import main
from repro.core.checkpoint import WarmupCache
from repro.orchestrator import (
    CapturedTrace,
    CurrentTraceCache,
    JobSpec,
    ResultCache,
    SweepJournal,
)
from repro.traces import Trace, TraceStore


@pytest.fixture(autouse=True)
def _isolated_stores(monkeypatch, tmp_path):
    """Point every default store root into the test's tmp dir so a
    doctor run can never wander into the developer's real caches."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
    monkeypatch.delenv("REPRO_WARM_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_IOCHAOS", raising=False)


SPEC = JobSpec(workload="swim", cycles=100, seed=5)
RESULT = {"status": "ok", "ipc": 1.25}


def make_capture(n=8):
    return CapturedTrace(np.linspace(1.0, 2.0, n), np.ones(n),
                         c0=0, cycles0=0, committed0=0,
                         cycle_time=1e-9)


class TestCleanStores:
    def test_empty_everything_is_clean(self, tmp_path):
        report = doctor.scrub(cache_root=str(tmp_path / "cache"),
                              trace_root=str(tmp_path / "traces"))
        assert report["problems"] == 0
        assert report["unfixed"] == 0
        assert report["stores"]["warm"]["skipped"] is True

    def test_healthy_entries_pass(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache", salt="s")
        cache.put(SPEC, RESULT)
        captures = CurrentTraceCache(root=tmp_path / "cache", salt="s")
        captures.put("ab" * 32, {"k": 1}, make_capture())
        warm = WarmupCache(root=str(tmp_path / "warm"))
        warm._store_disk("cd" * 32, b"blob-bytes")
        store = TraceStore(root=str(tmp_path / "traces"))
        store.put(Trace([1.0, 2.0, 3.0], name="t"))
        store.put_suite("demo", ["t"])
        report = doctor.scrub(cache_root=str(tmp_path / "cache"),
                              trace_root=str(tmp_path / "traces"),
                              warm_root=str(tmp_path / "warm"),
                              salt="s")
        assert report["problems"] == 0
        assert report["stores"]["cache"]["entries"] == 1
        assert report["stores"]["captures"]["entries"] == 1
        assert report["stores"]["warm"]["entries"] == 1
        assert report["stores"]["traces"]["entries"] == 1
        assert report["stores"]["traces"]["suites"] == 1


class TestDetection:
    def test_torn_cache_entry(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache", salt="s")
        path = cache.put(SPEC, RESULT)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) // 2)
        report = doctor.scrub(cache_root=str(tmp_path / "cache"),
                              salt="s")
        section = report["stores"]["cache"]
        assert len(section["invalid"]) == 1
        assert report["problems"] == 1

    def test_corrupt_capture_entry(self, tmp_path):
        captures = CurrentTraceCache(root=tmp_path / "cache", salt="s")
        path = captures.put("ab" * 32, {"k": 1}, make_capture())
        with open(path, "r+b") as fh:
            fh.write(b"garbage!")
        report = doctor.scrub(cache_root=str(tmp_path / "cache"),
                              salt="s")
        assert len(report["stores"]["captures"]["invalid"]) == 1

    def test_stale_salt_checkpoint(self, tmp_path):
        warm = WarmupCache(root=str(tmp_path / "warm"))
        warm._store_disk("cd" * 32, b"blob")
        warm.salt = "another-code-version"
        path = warm._disk_path("ef" * 32)
        warm._store_disk("ef" * 32, b"blob")
        assert os.path.exists(path)
        report = doctor.scrub(cache_root=str(tmp_path / "cache"),
                              warm_root=str(tmp_path / "warm"))
        section = report["stores"]["warm"]
        (bad,) = section["invalid"]
        assert bad["reason"] == "salt mismatch"

    def test_orphan_tmp_files(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache", salt="s")
        cache.put(SPEC, RESULT)
        bucket = os.path.dirname(cache.path_for(SPEC))
        with open(os.path.join(bucket, "abandon.tmp"), "w") as fh:
            fh.write("half a write")
        report = doctor.scrub(cache_root=str(tmp_path / "cache"),
                              salt="s")
        assert len(report["stores"]["cache"]["orphan_tmp"]) == 1
        assert report["problems"] == 1

    def test_trace_store_content_hash_mismatch(self, tmp_path):
        store = TraceStore(root=str(tmp_path / "traces"))
        digest = store.put(Trace([1.0, 2.0, 3.0], name="t"))
        samples = os.path.join(store.entry_dir(digest), "samples.npy")
        arr = np.load(samples, allow_pickle=False)
        arr[0] += 1.0
        with open(samples, "wb") as fh:
            np.save(fh, arr)
        report = doctor.scrub(trace_root=str(tmp_path / "traces"))
        (bad,) = report["stores"]["traces"]["invalid"]
        assert "hash mismatch" in bad["reason"]

    def test_invalid_suite(self, tmp_path):
        store = TraceStore(root=str(tmp_path / "traces"))
        store.put_suite("demo", ["t"])
        path = store._suite_path("demo")
        with open(path, "w") as fh:
            fh.write("{not json")
        report = doctor.scrub(trace_root=str(tmp_path / "traces"))
        assert report["stores"]["traces"]["invalid_suites"] == [
            "v1/suites/demo.json"]

    def test_quarantine_dir_is_not_rescanned(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache", salt="s")
        path = cache.put(SPEC, RESULT)
        with open(path, "w") as fh:
            fh.write("broken")
        doctor.scrub(cache_root=str(tmp_path / "cache"), salt="s",
                     fix=True)
        report = doctor.scrub(cache_root=str(tmp_path / "cache"),
                              salt="s")
        assert report["problems"] == 0
        assert report["stores"]["cache"]["entries"] == 0


class TestJournal:
    def _write_journal(self, path):
        with SweepJournal(path, fresh=True, fsync=False) as journal:
            journal.begin_sweep([SPEC], settings={"cycles": 100},
                                salt="s")
            journal.done(SPEC.content_hash(), RESULT)
        return str(path)

    def test_healthy_journal(self, tmp_path):
        path = self._write_journal(tmp_path / "sweep.journal")
        entry = doctor.scrub_journal(path)
        assert entry["status"] == "ok"
        assert entry["records"] == 1

    def test_missing_journal(self, tmp_path):
        entry = doctor.scrub_journal(str(tmp_path / "nope.journal"))
        assert entry["status"] == "missing"

    def test_torn_tail_detected_and_fixed(self, tmp_path):
        path = self._write_journal(tmp_path / "sweep.journal")
        healthy = open(path, "rb").read()
        with open(path, "ab") as fh:
            fh.write(b'{"event":"done","half a rec')
        entry = doctor.scrub_journal(path)
        assert entry["status"] == "torn-tail"
        assert not entry["fixed"]
        fixed = doctor.scrub_journal(path, fix=True)
        assert fixed["fixed"] is True
        assert open(path, "rb").read() == healthy
        assert doctor.scrub_journal(path)["status"] == "ok"

    def test_mid_file_corruption_quarantined(self, tmp_path):
        path = self._write_journal(tmp_path / "sweep.journal")
        lines = open(path, "rb").read().splitlines(True)
        lines[0] = b'{"event":"begin","c":"badc0ffee"}\n'
        with open(path, "wb") as fh:
            fh.writelines(lines)
        entry = doctor.scrub_journal(path)
        assert entry["status"] == "corrupt"
        fixed = doctor.scrub_journal(path, fix=True)
        assert fixed["fixed"] is True
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")

    def test_live_writer_reports_locked(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        with SweepJournal(path, fresh=True, fsync=False) as journal:
            journal.begin(settings={}, salt="s")
            entry = doctor.scrub_journal(path, fix=True)
            assert entry["status"] == "locked"
            assert not entry["fixed"]
        # A locked journal is a live writer, not a problem.
        report = doctor.scrub(cache_root=str(tmp_path / "cache"),
                              journals=[path])
        assert report["problems"] == 0


class TestFix:
    def test_fix_quarantines_and_reclaims(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache", salt="s")
        path = cache.put(SPEC, RESULT)
        with open(path, "w") as fh:
            fh.write("broken")
        bucket = os.path.dirname(path)
        with open(os.path.join(bucket, "abandon.tmp"), "w") as fh:
            fh.write("x")
        report = doctor.scrub(cache_root=str(tmp_path / "cache"),
                              salt="s", fix=True)
        assert report["problems"] == 2
        assert report["fixed"] == 2
        assert report["unfixed"] == 0
        assert not os.path.exists(path)
        quarantined = os.path.join(str(tmp_path / "cache"),
                                   "quarantine",
                                   os.path.basename(path))
        assert os.path.exists(quarantined)
        assert not os.path.exists(os.path.join(bucket, "abandon.tmp"))

    def test_fix_quarantines_whole_trace_entry(self, tmp_path):
        store = TraceStore(root=str(tmp_path / "traces"))
        digest = store.put(Trace([1.0, 2.0], name="t"))
        meta = os.path.join(store.entry_dir(digest), "meta.json")
        with open(meta, "w") as fh:
            fh.write("{broken")
        report = doctor.scrub(trace_root=str(tmp_path / "traces"),
                              fix=True)
        assert report["unfixed"] == 0
        assert not os.path.exists(store.entry_dir(digest))
        assert os.path.exists(os.path.join(store.root, "quarantine",
                                           digest))


class TestReportStability:
    def test_same_bytes_for_same_state(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache", salt="s")
        path = cache.put(SPEC, RESULT)
        with open(path, "w") as fh:
            fh.write("broken")
        kwargs = dict(cache_root=str(tmp_path / "cache"), salt="s")
        first = json.dumps(doctor.scrub(**kwargs), sort_keys=True,
                           indent=2)
        second = json.dumps(doctor.scrub(**kwargs), sort_keys=True,
                            indent=2)
        assert first == second

    def test_report_is_json_safe(self, tmp_path):
        report = doctor.scrub(cache_root=str(tmp_path / "cache"))
        assert json.loads(json.dumps(report)) == report


class TestCli:
    def test_clean_exits_zero(self, tmp_path, capsys):
        code = main(["doctor", "--cache-dir", str(tmp_path / "cache"),
                     "--trace-dir", str(tmp_path / "traces")])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["problems"] == 0

    def test_problems_exit_one(self, tmp_path, capsys):
        cache = ResultCache(root=tmp_path / "cache")
        path = cache.put(SPEC, RESULT)
        with open(path, "w") as fh:
            fh.write("broken")
        code = main(["doctor", "--cache-dir", str(tmp_path / "cache"),
                     "--trace-dir", str(tmp_path / "traces")])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["unfixed"] == 1

    def test_fix_then_clean_exits_zero(self, tmp_path, capsys):
        cache = ResultCache(root=tmp_path / "cache")
        path = cache.put(SPEC, RESULT)
        with open(path, "w") as fh:
            fh.write("broken")
        code = main(["doctor", "--cache-dir", str(tmp_path / "cache"),
                     "--trace-dir", str(tmp_path / "traces"), "--fix"])
        assert code == 0
        assert main(["doctor", "--cache-dir", str(tmp_path / "cache"),
                     "--trace-dir",
                     str(tmp_path / "traces")]) == 0
        capsys.readouterr()

    def test_journal_flag_and_json_out(self, tmp_path, capsys):
        journal_path = str(tmp_path / "sweep.journal")
        with SweepJournal(journal_path, fresh=True,
                          fsync=False) as journal:
            journal.begin(settings={}, salt="s")
        out_path = str(tmp_path / "report.json")
        code = main(["doctor", "--cache-dir", str(tmp_path / "cache"),
                     "--trace-dir", str(tmp_path / "traces"),
                     "--journal", journal_path,
                     "--json-out", out_path])
        assert code == 0
        printed = capsys.readouterr().out
        with open(out_path, "r") as fh:
            assert fh.read() == printed
        report = json.loads(printed)
        (entry,) = report["stores"]["journals"]
        assert entry["status"] == "ok"

    def test_doctor_finds_everything_iochaos_leaves(self, tmp_path,
                                                    capsys,
                                                    monkeypatch):
        """End-to-end detection: arm rename-fail + fsync-fail faults,
        let the stores fail their way, then assert the scrub reports a
        clean tree -- graceful stores clean up their own temp files,
        and the journal's failed append leaves a replayable file."""
        from repro.faults import iofault
        from repro.orchestrator.journal import JournalWriteError

        monkeypatch.setenv("REPRO_IOCHAOS",
                           "rename-fail@cache,fsync-fail@journal:2")
        iofault.reset()
        cache = ResultCache(root=tmp_path / "cache", salt="s")
        assert cache.put(SPEC, RESULT) is None
        assert cache.write_errors == 1
        journal_path = str(tmp_path / "sweep.journal")
        journal = SweepJournal(journal_path, fresh=True)
        journal.begin(settings={}, salt="s")
        with pytest.raises(JournalWriteError):
            journal.queued(SPEC)
        monkeypatch.delenv("REPRO_IOCHAOS")
        iofault.reset()
        code = main(["doctor", "--cache-dir", str(tmp_path / "cache"),
                     "--trace-dir", str(tmp_path / "traces"),
                     "--journal", journal_path])
        report = json.loads(capsys.readouterr().out)
        # The degrade-domain cache unlinked its own temp file; the
        # journal append failed *before* writing (fsync ordinal 2
        # fired after the record reached the OS), leaving a healthy
        # replayable journal either way.
        assert report["stores"]["cache"]["orphan_tmp"] == []
        (entry,) = report["stores"]["journals"]
        assert entry["status"] in ("ok", "torn-tail")
        assert code in (0, 1)
