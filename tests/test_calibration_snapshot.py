"""Calibration regression snapshot.

The reproduction's experiment shapes rest on a calibrated operating
point: the power budget's envelope, the solved target impedance, the
tuned stressmark geometry, and the Table 3 anchor rows.  This module
pins those numbers (with tolerances generous enough for legitimate
numerical churn) so an accidental change to the power budget, solver, or
synthesizer shows up as a named failure here rather than as silent drift
across every bench.

If a change is *intentional* (e.g. a rebalanced power budget), update
the expected values below and re-verify EXPERIMENTS.md.
"""

import pytest

from repro.core import VoltageControlDesign, tune_stressmark
from repro.control.thresholds import solve_target_impedance
from repro.power.model import PowerModel
from repro.uarch.config import MachineConfig


@pytest.fixture(scope="module")
def model():
    return PowerModel(MachineConfig())


@pytest.fixture(scope="module")
def design():
    return VoltageControlDesign(impedance_percent=200.0)


class TestCalibrationSnapshot:
    def test_power_envelope(self, model):
        i_min, i_max = model.current_envelope()
        assert i_min == pytest.approx(17.4, abs=0.5)
        assert i_max == pytest.approx(66.5, abs=0.5)
        assert model.gated_min_power() == pytest.approx(15.6, abs=0.5)

    def test_target_impedance(self, model):
        i_min, i_max = model.current_envelope()
        target = solve_target_impedance(i_min, i_max)
        assert target == pytest.approx(1.29e-3, rel=0.05)

    def test_stressmark_geometry(self, design):
        spec, period = tune_stressmark(design.pdn, design.config)
        assert spec.n_divides == 2
        assert 18 <= spec.burst_groups <= 28
        assert period == pytest.approx(60.0, abs=2.0)

    def test_table3_anchor_rows(self, design):
        d0 = design.thresholds(delay=0)
        d6 = design.thresholds(delay=6)
        assert d0.v_low == pytest.approx(0.953, abs=0.003)
        assert d6.v_low == pytest.approx(0.978, abs=0.003)
        assert d0.window_mv > d6.window_mv

    def test_actuator_levers(self, design):
        fu_reduce, _ = design.response_currents("fu")
        coarse_reduce, _ = design.response_currents("fu_dl1_il1")
        assert fu_reduce == pytest.approx(36.4, abs=1.0)
        assert coarse_reduce == pytest.approx(15.6, abs=1.0)
