"""Tests for distributions, metrics, and text rendering."""

import numpy as np
import pytest

from repro.analysis.distributions import VoltageDistribution
from repro.analysis.metrics import (
    RunComparison,
    energy_increase_percent,
    performance_loss_percent,
)
from repro.analysis.tables import ascii_chart, format_table, sparkline


class FakeResult:
    def __init__(self, cycles, committed, energy, emergencies=0):
        self.cycles = cycles
        self.committed = committed
        self.energy = energy
        self.emergencies = {"emergency_cycles": emergencies}


class TestVoltageDistribution:
    def test_fractions_sum_to_one(self):
        rng = np.random.default_rng(0)
        d = VoltageDistribution(rng.normal(1.0, 0.005, 10000))
        assert d.fractions.sum() == pytest.approx(1.0)

    def test_narrow_vs_wide(self):
        rng = np.random.default_rng(0)
        narrow = VoltageDistribution(rng.normal(1.0, 0.002, 5000))
        wide = VoltageDistribution(rng.normal(1.0, 0.01, 5000))
        assert wide.std > narrow.std
        assert wide.spread_mv > narrow.spread_mv

    def test_mode(self):
        d = VoltageDistribution([0.99] * 100 + [1.02] * 5)
        assert d.mode_voltage() == pytest.approx(0.99, abs=0.005)

    def test_fraction_below(self):
        v = np.concatenate([np.full(300, 0.96), np.full(700, 1.01)])
        d = VoltageDistribution(v)
        assert d.fraction_below(0.98) == pytest.approx(0.3, abs=0.02)
        assert d.fraction_below(1.05) == pytest.approx(1.0, abs=0.02)

    def test_out_of_range_samples_clipped(self):
        d = VoltageDistribution([0.5, 1.5, 1.0])
        assert d.fractions.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            VoltageDistribution([])
        with pytest.raises(ValueError):
            VoltageDistribution([1.0], bins=0)
        with pytest.raises(ValueError):
            VoltageDistribution([1.0], v_min=1.1, v_max=0.9)

    def test_render(self):
        d = VoltageDistribution(np.full(100, 1.0))
        text = d.render(label="flat")
        assert "flat" in text
        assert "#" in text


class TestMetrics:
    def test_performance_loss(self):
        base = FakeResult(cycles=1000, committed=1000, energy=1.0)
        slow = FakeResult(cycles=1100, committed=1000, energy=1.0)
        assert performance_loss_percent(base, slow) == pytest.approx(10.0)

    def test_energy_increase(self):
        base = FakeResult(cycles=1000, committed=1000, energy=1.0)
        hot = FakeResult(cycles=1000, committed=1000, energy=1.05)
        assert energy_increase_percent(base, hot) == pytest.approx(5.0)

    def test_normalized_per_instruction(self):
        """Runs of different lengths compare fairly via CPI/EPI."""
        base = FakeResult(cycles=1000, committed=2000, energy=1.0)
        controlled = FakeResult(cycles=550, committed=1000, energy=0.55)
        assert performance_loss_percent(base, controlled) == pytest.approx(10.0)
        assert energy_increase_percent(base, controlled) == pytest.approx(10.0)

    def test_zero_commits_rejected(self):
        base = FakeResult(cycles=10, committed=0, energy=1.0)
        with pytest.raises(ValueError):
            performance_loss_percent(base, base)

    def test_run_comparison(self):
        base = FakeResult(1000, 1000, 1.0, emergencies=5)
        ctrl = FakeResult(1050, 1000, 1.02, emergencies=0)
        cmp = RunComparison.from_results("swim", base, ctrl)
        assert cmp.perf_loss_percent == pytest.approx(5.0)
        assert cmp.emergencies_eliminated

    def test_no_emergencies_to_eliminate(self):
        base = FakeResult(1000, 1000, 1.0, emergencies=0)
        cmp = RunComparison.from_results("x", base, base)
        assert not cmp.emergencies_eliminated


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["alpha", 1.5], ["b", 22.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "alpha" in text
        assert "22.25" in text
        # All data rows align on the separator width.
        assert len(lines[3]) == len(lines[4])

    def test_format_table_row_width_check(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_format_table_bools(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_sparkline(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == " "
        assert line[-1] == "@"

    def test_sparkline_flat_and_empty(self):
        assert sparkline([]) == ""
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_ascii_chart(self):
        chart = ascii_chart({"a": [0, 1, 2], "b": [2, 1, 0]},
                            width=20, height=5)
        assert "*" in chart and "o" in chart
        assert "a" in chart.splitlines()[-1]

    def test_ascii_chart_empty(self):
        assert ascii_chart({}) == ""
