"""Tests for the spectral danger analysis."""

import math

import numpy as np
import pytest

from repro.analysis.spectrum import (
    band_fraction,
    current_spectrum,
    danger_index,
    resonant_band_energy,
)
from repro.pdn.rlc import default_pdn

CLOCK = 3.0e9


@pytest.fixture(scope="module")
def pdn():
    return default_pdn(impedance_percent=200.0)


def sinusoid(freq, amplitude, n=6000, offset=20.0):
    t = np.arange(n) / CLOCK
    return offset + amplitude * np.sin(2 * math.pi * freq * t)


class TestCurrentSpectrum:
    def test_recovers_sinusoid(self):
        freqs, amps = current_spectrum(sinusoid(50e6, 4.0), CLOCK)
        peak = int(np.argmax(amps))
        assert freqs[peak] == pytest.approx(50e6, rel=0.02)
        assert amps[peak] == pytest.approx(4.0, rel=0.05)

    def test_dc_removed(self):
        freqs, amps = current_spectrum(np.full(1000, 35.0), CLOCK)
        assert np.max(amps) == pytest.approx(0.0, abs=1e-9)

    def test_too_short(self):
        with pytest.raises(ValueError):
            current_spectrum([1.0, 2.0], CLOCK)


class TestResonantBandEnergy:
    def test_on_resonance_counted(self, pdn):
        on = resonant_band_energy(sinusoid(50e6, 4.0), pdn, CLOCK)
        assert on == pytest.approx(4.0 / math.sqrt(2.0), rel=0.1)

    def test_off_resonance_ignored(self, pdn):
        off = resonant_band_energy(sinusoid(5e6, 4.0), pdn, CLOCK)
        assert off < 0.2

    def test_flat_trace_zero(self, pdn):
        assert resonant_band_energy(np.full(1000, 20.0), pdn, CLOCK) == 0.0


class TestDangerIndex:
    def test_resonant_tone_dominates(self, pdn):
        on = danger_index(sinusoid(50e6, 4.0), pdn, CLOCK)
        off = danger_index(sinusoid(5e6, 4.0), pdn, CLOCK)
        assert on > 5 * off

    def test_predicts_sinusoid_droop(self, pdn):
        """For a pure resonant tone, the index equals |Z(f0)| * amplitude."""
        amp = 4.0
        predicted = danger_index(sinusoid(50e6, amp, n=12000), pdn, CLOCK)
        expected = pdn.impedance(50e6) * amp
        assert predicted == pytest.approx(expected, rel=0.1)

    def test_scales_linearly(self, pdn):
        small = danger_index(sinusoid(50e6, 2.0), pdn, CLOCK)
        large = danger_index(sinusoid(50e6, 8.0), pdn, CLOCK)
        assert large == pytest.approx(4 * small, rel=0.05)


class TestBandFraction:
    def test_bounds(self, pdn):
        f = band_fraction(sinusoid(50e6, 4.0), pdn, CLOCK)
        assert 0.0 <= f <= 1.0
        assert f > 0.5  # a pure resonant tone is all in band

    def test_flat_is_zero(self, pdn):
        assert band_fraction(np.full(1000, 20.0), pdn, CLOCK) == 0.0


class TestOrdersWorkloads:
    def test_stressmark_out_danger_ranks_ammp(self, pdn):
        """The index must rank the resonant stressmark far above a
        stable workload's trace -- the Table 2 ordering."""
        from repro.core import VoltageControlDesign, get_profile
        from repro.core import stressmark_stream, tune_stressmark

        design = VoltageControlDesign(impedance_percent=200.0)
        spec, _ = tune_stressmark(design.pdn, design.config)
        sm = design.run(stressmark_stream(spec), delay=None,
                        warmup_instructions=2000, max_cycles=6000,
                        record_traces=True)
        ammp = design.run(get_profile("ammp").stream(seed=3), delay=None,
                          warmup_instructions=30000, max_cycles=6000,
                          record_traces=True)
        assert (danger_index(sm.currents, design.pdn)
                > 3 * danger_index(ammp.currents, design.pdn))
