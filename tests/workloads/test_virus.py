"""Tests for the maximum-power virus workload."""

import pytest

from repro.workloads.virus import max_power_virus, measure_peak_power


class TestVirusProfile:
    def test_profile_shape(self):
        profile = max_power_virus()
        assert profile.branch_fraction == 0.0
        assert len(profile.phases) == 1
        assert profile.phases[0].dep_distance >= 32

    def test_stream_has_no_conditional_branches(self):
        profile = max_power_virus(length=512)
        for inst in profile.stream(seed=0, max_instructions=1000):
            if inst.is_branch:
                assert not inst.op.is_conditional


class TestMeasurement:
    @pytest.fixture(scope="class")
    def measurement(self):
        return measure_peak_power(cycles=3000)

    def test_near_peak_ipc(self, measurement):
        """The virus must actually saturate the 8-wide machine."""
        assert measurement["ipc"] > 6.0

    def test_substantial_envelope_fraction(self, measurement):
        """It should reach well over half the model maximum..."""
        assert measurement["mean_fraction"] > 0.55

    def test_envelope_not_reachable(self, measurement):
        """...but no program reaches the model maximum itself: the
        envelope (and hence the target impedance) is conservative."""
        assert measurement["peak_power"] < measurement["model_max"]

    def test_virus_out_powers_spec(self, measurement):
        from repro.power.model import PowerModel
        from repro.power.trace import CurrentTrace
        from repro.uarch.config import MachineConfig
        from repro.uarch.core import Machine
        from repro.workloads.spec import get_profile

        config = MachineConfig()
        model = PowerModel(config)
        machine = Machine(config, get_profile("gzip").stream(seed=1))
        machine.fast_forward(30000)
        trace = CurrentTrace(config.clock_hz)
        machine.run(max_cycles=3000,
                    cycle_hook=lambda m, a: trace.append(model.power(a)))
        assert measurement["mean_power"] > trace.average_power()
