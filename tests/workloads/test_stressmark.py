"""Tests for the dI/dt stressmark builder and tuner."""

import numpy as np
import pytest

from repro.pdn.discrete import DiscretePdn
from repro.pdn.rlc import default_pdn
from repro.power import CurrentTrace, PowerModel
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine
from repro.workloads.stressmark import (
    StressmarkSpec,
    body_length,
    build_stressmark,
    measure_period,
    stressmark_stream,
    stressmark_text,
    tune_stressmark,
)


class TestSpec:
    def test_defaults_valid(self):
        StressmarkSpec()

    @pytest.mark.parametrize("kwargs", [
        dict(n_divides=0), dict(burst_groups=0), dict(unroll=0)])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            StressmarkSpec(**kwargs)


class TestBuilder:
    def test_text_assembles(self):
        program, spec = build_stressmark(StressmarkSpec(n_divides=3,
                                                        burst_groups=5))
        assert len(program) == body_length(spec)

    def test_body_length_formula(self):
        spec = StressmarkSpec(n_divides=2, burst_groups=4, unroll=2)
        # (ldt + 2 div + stt/ldq/cmovne + 4*8) * 2 + br
        assert body_length(spec) == (1 + 2 + 3 + 32) * 2 + 1

    def test_divide_chain_is_dependent(self):
        text = stressmark_text(StressmarkSpec(n_divides=4, burst_groups=1))
        # Chain: each divt reads f3 written by the previous one.
        assert text.count("divt  f3, f3, f2") == 3
        assert text.count("divt  f3, f1, f2") == 1

    def test_burst_depends_on_bridge(self):
        """Every store in the burst stores r3, the bridged divide result,
        so the burst cannot start before the trough ends."""
        text = stressmark_text(StressmarkSpec())
        assert "cmovne r3, r31, r7" in text
        for line in text.splitlines():
            if line.strip().startswith("stq"):
                assert "r3," in line


class TestTiming:
    def test_measured_period_scales_with_divides(self):
        cfg = MachineConfig()
        short = measure_period(StressmarkSpec(n_divides=1, burst_groups=4), cfg)
        long = measure_period(StressmarkSpec(n_divides=4, burst_groups=4), cfg)
        assert long > short + 30  # three extra 16-cycle divides

    def test_tuner_hits_resonant_period(self):
        cfg = MachineConfig()
        pdn = default_pdn(impedance_percent=200.0)
        spec, measured = tune_stressmark(pdn, cfg)
        target = pdn.resonant_period_cycles(cfg.clock_hz)
        assert measured == pytest.approx(target, abs=3.0)


class TestCurrentShape:
    """Section 3.2's requirement: a near-square current wave with a deep
    trough and a tall burst at the resonant frequency."""

    @pytest.fixture(scope="class")
    def trace(self):
        cfg = MachineConfig()
        pdn = default_pdn(impedance_percent=200.0)
        spec, _ = tune_stressmark(pdn, cfg)
        model = PowerModel(cfg)
        machine = Machine(cfg, stressmark_stream(
            spec, max_instructions=body_length(spec) * 40))
        trace = CurrentTrace(cfg.clock_hz)
        machine.run(max_cycles=100000,
                    cycle_hook=lambda m, a: trace.append(model.power(a)))
        return trace, model, pdn, cfg

    def test_swing_is_large(self, trace):
        t, model, _, _ = trace
        warm = t.currents[len(t.currents) // 2:]
        i_min, i_max = model.current_envelope()
        swing = warm.max() - warm.min()
        # The stressmark must mobilize most of the machine's current range.
        assert swing > 0.5 * (i_max - i_min)

    def test_trough_near_minimum(self, trace):
        t, model, _, _ = trace
        warm = t.currents[len(t.currents) // 2:]
        assert warm.min() < model.current_envelope()[0] * 1.1

    def test_voltage_emergency_at_200_percent(self, trace):
        """The paper: SPEC has no emergencies at 200% impedance, but the
        stressmark does."""
        t, _, pdn, _ = trace
        v = DiscretePdn(pdn).simulate(t.currents,
                                      initial_current=t.currents[0])
        warm = v[len(v) // 2:]
        assert warm.min() < 0.95 or warm.max() > 1.05

    def test_spectral_peak_near_resonance(self, trace):
        """The current waveform's energy concentrates at the package's
        resonant frequency -- that is what makes it a stressmark."""
        t, _, pdn, cfg = trace
        warm = t.currents[len(t.currents) // 2:]
        signal = warm - warm.mean()
        spectrum = np.abs(np.fft.rfft(signal))
        freqs = np.fft.rfftfreq(signal.size, d=1.0 / cfg.clock_hz)
        peak_freq = freqs[int(np.argmax(spectrum))]
        assert peak_freq == pytest.approx(pdn.resonant_hz, rel=0.2)
