"""Tests for the synthetic SPEC2000 profile suite."""

import pytest

from repro.power import CurrentTrace, PowerModel
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine
from repro.workloads.spec import (
    ACTIVE_BENCHMARKS,
    SPEC2000,
    SPEC_FP,
    SPEC_INT,
    get_profile,
)

SPEC2000_NAMES = {
    "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk",
    "gap", "vortex", "bzip2", "twolf",
    "wupwise", "swim", "mgrid", "applu", "mesa", "galgel", "art",
    "equake", "facerec", "ammp", "lucas", "fma3d", "sixtrack", "apsi",
}


class TestSuiteStructure:
    def test_all_26_benchmarks(self):
        assert set(SPEC2000) == SPEC2000_NAMES
        assert len(SPEC2000) == 26

    def test_int_fp_split(self):
        assert len(SPEC_INT) == 12
        assert len(SPEC_FP) == 14
        assert not set(SPEC_INT) & set(SPEC_FP)

    def test_active_benchmarks_exist(self):
        assert len(ACTIVE_BENCHMARKS) == 8
        for name in ACTIVE_BENCHMARKS:
            assert name in SPEC2000

    def test_names_match_keys(self):
        for name, profile in SPEC2000.items():
            assert profile.name == name

    def test_get_profile(self):
        assert get_profile("swim").name == "swim"
        with pytest.raises(KeyError, match="known:"):
            get_profile("nosuchbench")

    def test_every_profile_produces_a_stream(self):
        for profile in SPEC2000.values():
            stream = list(profile.stream(seed=1, max_instructions=50))
            assert len(stream) == 50


def run_profile(name, cycles=10000, warmup=60000):
    cfg = MachineConfig()
    model = PowerModel(cfg)
    machine = Machine(cfg, get_profile(name).stream(seed=11))
    machine.fast_forward(warmup)
    trace = CurrentTrace(cfg.clock_hz)
    machine.run(max_cycles=cycles,
                cycle_hook=lambda m, a: trace.append(model.power(a)))
    return machine, trace


class TestPaperCharacterizations:
    """Figure 10's qualitative observations, in current-trace form."""

    def test_ammp_low_ipc(self):
        machine, _ = run_profile("ammp")
        assert machine.stats.ipc < 1.0

    @staticmethod
    def _voltage_spread(trace):
        """Std-dev of the die voltage at 100% target impedance -- the
        width of the benchmark's Figure 10 distribution."""
        import numpy as np
        from repro.control.thresholds import pdn_with_regulator
        from repro.pdn.discrete import DiscretePdn
        currents = trace.currents
        pdn = pdn_with_regulator(1.3e-3, float(currents.min()))
        v = DiscretePdn(pdn).simulate(currents,
                                      initial_current=float(currents[0]))
        return float(np.std(v))

    def test_ammp_stable_vs_galgel_variable(self):
        """Paper, Figure 10: ammp's voltage is 'quite stable' while
        galgel 'varies across a wider range of voltage levels'."""
        _, ammp = run_profile("ammp")
        _, galgel = run_profile("galgel")
        assert (self._voltage_spread(galgel)
                > 1.5 * self._voltage_spread(ammp))

    def test_active_benchmarks_swing_more_than_ammp(self):
        _, ammp = run_profile("ammp")
        baseline = self._voltage_spread(ammp)
        for name in ("swim", "galgel"):
            _, t = run_profile(name)
            assert self._voltage_spread(t) > baseline

    def test_phased_profiles_have_multiple_phases(self):
        for name in ACTIVE_BENCHMARKS:
            assert len(get_profile(name).phases) >= 2, name

    def test_mcf_memory_bound(self):
        machine, _ = run_profile("mcf")
        assert machine.hierarchy.l1d.miss_rate > 0.1
        assert machine.stats.ipc < 1.0

    def test_gzip_healthy_ipc(self):
        machine, _ = run_profile("gzip")
        assert machine.stats.ipc > 0.8
