"""Tests for the synthetic workload generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.opcodes import InstrClass
from repro.workloads.synthesis import (
    KIND_OPCODES,
    Phase,
    SyntheticStream,
    WorkloadProfile,
)


def simple_profile(**kwargs):
    defaults = dict(
        name="test",
        phases=(Phase(length=500, mix={"ialu": 0.6, "load": 0.25,
                                       "store": 0.15}),),
        branch_fraction=0.1,
        code_insts=256,
    )
    defaults.update(kwargs)
    return WorkloadProfile(**defaults)


class TestPhaseValidation:
    def test_positive_length(self):
        with pytest.raises(ValueError):
            Phase(length=0, mix={"ialu": 1.0})

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown"):
            Phase(length=10, mix={"frobnicate": 1.0})

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            Phase(length=10, mix={"ialu": -1.0})

    def test_empty_mix(self):
        with pytest.raises(ValueError):
            Phase(length=10, mix={"ialu": 0.0})

    def test_dep_distance_bound(self):
        with pytest.raises(ValueError):
            Phase(length=10, mix={"ialu": 1.0}, dep_distance=0.5)

    def test_stride_fraction_range(self):
        with pytest.raises(ValueError):
            Phase(length=10, mix={"ialu": 1.0}, stride_fraction=1.5)


class TestProfileValidation:
    def test_needs_phases(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", phases=())

    def test_branch_fraction_range(self):
        with pytest.raises(ValueError):
            simple_profile(branch_fraction=0.6)

    def test_code_size_minimum(self):
        with pytest.raises(ValueError):
            simple_profile(code_insts=4)


class TestStreamStructure:
    def test_determinism(self):
        p = simple_profile()
        a = [(i.pc, i.op.name, i.addr, i.taken) for i in p.stream(seed=7, max_instructions=500)]
        b = [(i.pc, i.op.name, i.addr, i.taken) for i in p.stream(seed=7, max_instructions=500)]
        assert a == b

    def test_seeds_differ(self):
        p = simple_profile()
        a = [i.op.name for i in p.stream(seed=1, max_instructions=500)]
        b = [i.op.name for i in p.stream(seed=2, max_instructions=500)]
        assert a != b

    def test_max_instructions(self):
        p = simple_profile()
        assert len(list(p.stream(max_instructions=123))) == 123

    def test_sequence_numbers(self):
        p = simple_profile()
        seqs = [i.seq for i in p.stream(max_instructions=100)]
        assert seqs == list(range(100))

    def test_pc_chain_is_consistent(self):
        """Each instruction's next_pc must be the next instruction's pc --
        the invariant the fetch unit and branch predictor rely on."""
        p = simple_profile()
        stream = list(p.stream(max_instructions=2000))
        for prev, cur in zip(stream, stream[1:]):
            assert prev.next_pc == cur.pc

    def test_code_footprint_bounded(self):
        p = simple_profile(code_insts=256)
        stream = p.stream(max_instructions=5000)
        limit = SyntheticStream._CODE_BASE + 4 * stream.body_size
        pcs = {i.pc for i in stream}
        assert all(SyntheticStream._CODE_BASE <= pc < limit for pc in pcs)

    def test_body_size_near_code_insts(self):
        p = simple_profile(code_insts=256)
        stream = p.stream()
        # One phase of 500 slots: the body is one copy of the phase cycle.
        assert stream.body_size == 500

    def test_body_replicated_for_big_code(self):
        from repro.workloads.synthesis import Phase, WorkloadProfile
        p = WorkloadProfile(name="big",
                            phases=(Phase(length=100, mix={"ialu": 1.0}),),
                            branch_fraction=0.0, code_insts=1000)
        assert p.stream().body_size == pytest.approx(1000, abs=100)

    def test_body_is_stable_across_iterations(self):
        """The regression that kept predictors cold: the instruction at a
        given PC must be the same on every loop iteration."""
        p = simple_profile(code_insts=256)
        stream = p.stream(seed=3, max_instructions=3000)
        seen = {}
        for inst in stream:
            key = inst.pc
            sig = (inst.op.name, inst.dest, inst.srcs)
            if key in seen:
                assert seen[key] == sig
            else:
                seen[key] = sig

    def test_memory_ops_have_addresses(self):
        p = simple_profile()
        for inst in p.stream(max_instructions=2000):
            if inst.is_mem:
                assert inst.addr is not None
            else:
                assert inst.addr is None

    def test_loads_and_stores_in_disjoint_regions(self):
        p = simple_profile()
        loads = set()
        stores = set()
        for inst in p.stream(max_instructions=3000):
            if inst.is_load:
                loads.add(inst.addr)
            elif inst.is_store:
                stores.add(inst.addr)
        assert loads and stores
        assert not (loads & stores)

    def test_mix_respected(self):
        p = simple_profile()
        counts = {}
        total = 0
        for inst in p.stream(max_instructions=8000):
            if inst.is_branch:
                continue
            counts[inst.op.name] = counts.get(inst.op.name, 0) + 1
            total += 1
        assert counts["addq"] / total == pytest.approx(0.6, abs=0.05)
        assert counts["ldq"] / total == pytest.approx(0.25, abs=0.05)
        assert counts["stq"] / total == pytest.approx(0.15, abs=0.05)

    def test_branch_fraction_respected(self):
        p = simple_profile(branch_fraction=0.2)
        stream = list(p.stream(max_instructions=8000))
        frac = sum(1 for i in stream if i.is_branch) / len(stream)
        # Conditional sites plus the loop-closing branch.
        assert frac == pytest.approx(0.2, abs=0.05)

    def test_working_set_bounds_addresses(self):
        phase = Phase(length=1000, mix={"load": 1.0}, ws_lines=8)
        p = WorkloadProfile(name="ws", phases=(phase,), branch_fraction=0.0,
                            code_insts=64)
        lines = {i.addr // 64 for i in p.stream(max_instructions=2000)
                 if i.is_load}
        assert len(lines) <= 8


class TestPhases:
    def test_phases_alternate_mix(self):
        p = WorkloadProfile(
            name="p",
            phases=(Phase(length=100, mix={"ialu": 1.0}),
                    Phase(length=100, mix={"falu": 1.0})),
            branch_fraction=0.0,
            code_insts=200,
        )
        stream = list(p.stream(max_instructions=200))
        # Each phase region is its mix plus the region-closing jump.
        first = {i.op.name for i in stream[:100]}
        second = {i.op.name for i in stream[100:200]}
        assert first <= {"addq", "br"}
        assert "addq" in first
        assert second <= {"addt", "br"}
        assert "addt" in second

    def test_phase_cycle_repeats(self):
        p = WorkloadProfile(
            name="p",
            phases=(Phase(length=50, mix={"ialu": 1.0}),
                    Phase(length=50, mix={"falu": 1.0})),
            branch_fraction=0.0,
            code_insts=100,
        )
        stream = list(p.stream(max_instructions=250))
        names = [i.op.name for i in stream]
        assert "addq" in names[:49]
        assert "addt" in names[50:99]
        # Second trip around the super-loop repeats the pattern.
        assert "addq" in names[100:149]
        assert "addt" in names[150:199]


class TestPropertyBased:
    @given(st.integers(0, 2**16), st.integers(50, 400))
    @settings(max_examples=20, deadline=None)
    def test_stream_always_consistent(self, seed, n):
        p = simple_profile()
        stream = list(p.stream(seed=seed, max_instructions=n))
        assert len(stream) == n
        for prev, cur in zip(stream, stream[1:]):
            assert prev.next_pc == cur.pc
        for inst in stream:
            assert inst.is_mem == (inst.addr is not None)
