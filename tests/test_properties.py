"""Cross-cutting property-based tests (hypothesis).

Each class targets an invariant that must hold for *any* input, not a
specific scenario: cache inclusion/LRU laws, predictor accounting,
sequencer consistency, sensor monotonicity, emergency-counter algebra,
and the simulator's conservation of instructions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.emergencies import EmergencyCounter, count_emergencies
from repro.control.sensor import ThresholdSensor, VoltageLevel
from repro.uarch.cache import Cache
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine
from repro.workloads.synthesis import Phase, WorkloadProfile

addresses = st.integers(min_value=0, max_value=0xFFFFF).map(lambda a: a * 8)


class TestCacheProperties:
    @given(st.lists(addresses, min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_immediate_rereference_always_hits(self, addrs):
        cache = Cache("t", size=1024, assoc=2, line_size=64, hit_latency=1)
        for addr in addrs:
            cache.lookup(addr)
            assert cache.lookup(addr)

    @given(st.lists(addresses, min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_mru_line_never_evicted(self, addrs):
        cache = Cache("t", size=1024, assoc=2, line_size=64, hit_latency=1)
        for addr in addrs:
            cache.lookup(addr)
            # The line just touched must be resident.
            assert cache.contains(addr)

    @given(st.lists(addresses, min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_bounded_by_capacity(self, addrs):
        cache = Cache("t", size=512, assoc=2, line_size=64, hit_latency=1)
        for addr in addrs:
            cache.lookup(addr)
        resident = sum(len(ways) for ways in cache.sets)
        assert resident <= cache.size // cache.line_size

    @given(st.lists(addresses, min_size=1, max_size=100))
    @settings(max_examples=20, deadline=None)
    def test_misses_never_exceed_accesses(self, addrs):
        cache = Cache("t", size=512, assoc=2, line_size=64, hit_latency=1)
        for addr in addrs:
            cache.lookup(addr)
        assert 0 <= cache.misses <= cache.accesses == len(addrs)


class TestSensorProperties:
    @given(st.lists(st.floats(0.8, 1.2), min_size=1, max_size=60),
           st.integers(0, 6))
    @settings(max_examples=30, deadline=None)
    def test_delay_is_pure_shift(self, voltages, delay):
        """With no noise, a delayed sensor's outputs equal the zero-delay
        sensor's outputs shifted by the delay (after warm-up)."""
        fast = ThresholdSensor(0.96, 1.04, delay=0)
        slow = ThresholdSensor(0.96, 1.04, delay=delay)
        fast_levels = [fast.observe(v).level for v in voltages]
        slow_levels = [slow.observe(v).level for v in voltages]
        for i in range(delay, len(voltages)):
            assert slow_levels[i] == fast_levels[i - delay]

    @given(st.floats(0.8, 1.2))
    @settings(max_examples=50, deadline=None)
    def test_levels_partition_the_range(self, v):
        sensor = ThresholdSensor(0.96, 1.04, delay=0)
        level = sensor.observe(v).level
        if v < 0.96:
            assert level is VoltageLevel.LOW
        elif v > 1.04:
            assert level is VoltageLevel.HIGH
        else:
            assert level is VoltageLevel.NORMAL


class TestEmergencyCounterProperties:
    @given(st.lists(st.floats(0.8, 1.2), min_size=0, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_streaming_matches_batch(self, voltages):
        counter = EmergencyCounter()
        for v in voltages:
            counter.observe(v)
        assert counter.emergency_cycles == count_emergencies(voltages)
        assert counter.cycles == len(voltages)

    @given(st.lists(st.floats(0.8, 1.2), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_episode_and_cycle_relations(self, voltages):
        counter = EmergencyCounter()
        for v in voltages:
            counter.observe(v)
        assert counter.episodes <= counter.emergency_cycles
        assert (counter.undershoot_cycles + counter.overshoot_cycles
                == counter.emergency_cycles)
        assert 0.0 <= counter.frequency <= 1.0


class TestMachineConservation:
    @given(st.integers(0, 2**16), st.integers(100, 600))
    @settings(max_examples=8, deadline=None)
    def test_every_instruction_commits_exactly_once(self, seed, n):
        """The pipeline neither drops nor duplicates instructions, for
        arbitrary synthetic workloads."""
        profile = WorkloadProfile(
            name="prop",
            phases=(Phase(length=200, mix={"ialu": 0.5, "load": 0.2,
                                           "store": 0.15, "falu": 0.15}),),
            branch_fraction=0.1, code_insts=128)
        machine = Machine(MachineConfig().small(),
                          profile.stream(seed=seed, max_instructions=n))
        stats = machine.run(max_cycles=500000)
        assert machine.done
        assert stats.committed == n

    @given(st.integers(0, 2**16))
    @settings(max_examples=5, deadline=None)
    def test_flush_preserves_instruction_count(self, seed):
        profile = WorkloadProfile(
            name="prop",
            phases=(Phase(length=200, mix={"ialu": 0.6, "load": 0.25,
                                           "store": 0.15}),),
            branch_fraction=0.08, code_insts=128)
        n = 300
        machine = Machine(MachineConfig().small(),
                          profile.stream(seed=seed, max_instructions=n))
        machine.run(max_cycles=400)
        machine.flush_pipeline()
        machine.run(max_cycles=300000)
        assert machine.done
        assert machine.stats.committed == n


class TestVoltageSafetyInvariant:
    @given(st.integers(0, 1000))
    @settings(max_examples=5, deadline=None)
    def test_controlled_worst_case_never_escapes(self, phase_seed):
        """The solved thresholds hold for random phase offsets of the
        adversarial square wave, not just the offsets the solver swept."""
        import random

        from repro.control.thresholds import (
            _controlled_extremes,
            design_pdn,
            solve_thresholds,
        )
        from repro.power.model import PowerModel

        model = PowerModel(MachineConfig())
        pdn = design_pdn(model, impedance_percent=200.0)
        i_min, i_max = model.current_envelope()
        design = solve_thresholds(pdn, i_min, i_max, delay=2,
                                  i_reduce=model.gated_min_power(),
                                  i_boost=i_max)
        offset = random.Random(phase_seed).randrange(0, 60)
        for high_first in (True, False):
            v_min, v_max = _controlled_extremes(
                pdn, design.v_low, design.v_high, 2, i_min, i_max,
                design.i_reduce, design.i_boost, 3e9, 20, high_first,
                phase_offset=offset)
            # Allow a whisker of slack for offsets between solver grid
            # points; the spec band itself is 100 mV wide.
            assert v_min > 0.9495
            assert v_max < 1.0505
