"""Integration tests of the public design-flow facade."""

import pytest

from repro.core import (
    ACTUATOR_KINDS,
    VoltageControlDesign,
    get_profile,
    stressmark_stream,
    tune_stressmark,
)


@pytest.fixture(scope="module")
def design():
    return VoltageControlDesign(impedance_percent=200.0)


@pytest.fixture(scope="module")
def spec(design):
    spec, _ = tune_stressmark(design.pdn, design.config)
    return spec


class TestConstruction:
    def test_envelope_exposed(self, design):
        assert 0 < design.i_min < design.i_max

    def test_pdn_regulator_setpoint(self, design):
        v_eq = (design.pdn.params.vdd -
                design.pdn.params.resistance * design.i_min)
        assert v_eq == pytest.approx(1.0, abs=1e-9)

    def test_repr(self, design):
        assert "200" in repr(design)


class TestResponseCurrents:
    def test_ideal_spans_most_of_envelope(self, design):
        i_reduce, i_boost = design.response_currents("ideal")
        assert i_reduce < design.i_min
        assert i_boost == pytest.approx(design.i_max)

    def test_fu_lever_is_smallest(self, design):
        levers = {}
        for kind in ACTUATOR_KINDS:
            i_reduce, i_boost = design.response_currents(kind)
            levers[kind] = i_boost - i_reduce
        assert levers["fu"] < levers["fu_dl1"] < levers["fu_dl1_il1"]


class TestThresholds:
    def test_solution_cached(self, design):
        a = design.thresholds(delay=1)
        b = design.thresholds(delay=1)
        assert a is b

    def test_distinct_keys(self, design):
        assert design.thresholds(delay=1) is not design.thresholds(delay=2)

    def test_error_margining(self, design):
        clean = design.thresholds(delay=1)
        noisy = design.thresholds(delay=1, error=0.01)
        assert noisy.v_low > clean.v_low
        assert noisy.v_high < clean.v_high


class TestRuns:
    def test_uncontrolled_vs_controlled_stressmark(self, design, spec):
        base = design.run(stressmark_stream(spec), delay=None,
                          warmup_instructions=2000, max_cycles=6000)
        ctrl = design.run(stressmark_stream(spec), delay=2,
                          warmup_instructions=2000, max_cycles=6000)
        assert base.emergencies["emergency_cycles"] > 0
        assert ctrl.emergencies["emergency_cycles"] == 0

    def test_spec_benchmark_unaffected(self, design):
        """SPEC at 200%: no emergencies with or without the controller,
        and negligible performance impact (paper Sections 4.4/5.2)."""
        stream = get_profile("gzip").stream(seed=5)
        base = design.run(stream, delay=None, warmup_instructions=30000,
                          max_cycles=6000)
        stream2 = get_profile("gzip").stream(seed=5)
        ctrl = design.run(stream2, delay=2, warmup_instructions=30000,
                          max_cycles=6000)
        assert base.emergencies["emergency_cycles"] == 0
        assert ctrl.emergencies["emergency_cycles"] == 0
        cpi_base = base.cycles / base.committed
        cpi_ctrl = ctrl.cycles / ctrl.committed
        assert cpi_ctrl / cpi_base < 1.05

    def test_record_traces(self, design, spec):
        result = design.run(stressmark_stream(spec), delay=None,
                            warmup_instructions=1000, max_cycles=1500,
                            record_traces=True)
        assert result.voltages is not None
        assert result.voltages.shape == result.currents.shape
