"""Tests for machine snapshots, chunk sizing, and stall batching.

The speculative engine's correctness rests on three mechanisms proved
here in isolation: :class:`~repro.core.snapshot.MachineSnapshot`
restores a machine *exactly* (twin-machine lockstep comparison --
any restore defect desynchronizes cache/predictor timing and shows up
in the activity rows), :class:`~repro.core.snapshot.ChunkPolicy`
sizes chunks within its configured band, and
:meth:`~repro.uarch.core.Machine.stall_window` /
:meth:`~repro.uarch.core.Machine.advance_stall` batch pure stalls with
the same per-cycle activity a scalar loop would produce.
"""

import operator

import pytest

from repro.core.snapshot import ChunkPolicy, MachineSnapshot
from repro.pdn.discrete import PdnSimulator
from repro.power import PowerModel
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine
from repro.workloads.spec import get_profile


@pytest.fixture(scope="module")
def config():
    return MachineConfig()


@pytest.fixture(scope="module")
def model(config):
    return PowerModel(config)


def _machine(config, seed=11, warmup=3000):
    machine = Machine(config, get_profile("swim").stream(seed=seed))
    if warmup:
        machine.fast_forward(warmup)
    return machine


def _getter(model):
    return operator.attrgetter(*(model.batch_fields +
                                 ("committed", "fetched")))


def _assert_lockstep(a, b, getter, cycles):
    for _ in range(cycles):
        if a.done or b.done:
            break
        assert getter(a.step()) == getter(b.step())
    assert a.cycle == b.cycle
    assert a.stats.summary() == b.stats.summary()
    h_a, h_b = a.hierarchy, b.hierarchy
    for ca, cb in zip((h_a.l1d, h_a.l1i, h_a.l2),
                      (h_b.l1d, h_b.l1i, h_b.l2)):
        assert (ca.accesses, ca.misses) == (cb.accesses, cb.misses)
    assert h_a.memory_accesses == h_b.memory_accesses
    assert a.predictor.lookups == b.predictor.lookups
    assert a.predictor.mispredictions == b.predictor.mispredictions


class TestMachineSnapshot:
    def test_restore_is_exact(self, config, model):
        machine = _machine(config)
        twin = _machine(config)
        getter = _getter(model)
        snap = MachineSnapshot(machine)
        # Mutate well past the chunk sizes the engine uses: caches,
        # predictor tables, the window, and the stream all move.
        for _ in range(600):
            machine.step()
        snap.restore()
        _assert_lockstep(machine, twin, getter, 800)

    def test_restore_mid_actuation_state(self, config, model):
        machine = _machine(config)
        twin = _machine(config)
        getter = _getter(model)
        machine.fus.gated = twin.fus.gated = True
        machine.dl1.phantom = twin.dl1.phantom = True
        snap = MachineSnapshot(machine)
        machine.fus.gated = False
        machine.dl1.phantom = False
        for _ in range(50):
            machine.step()
        snap.restore()
        assert machine.fus.gated and machine.dl1.phantom
        _assert_lockstep(machine, twin, getter, 200)

    def test_discard_keeps_machine_live(self, config, model):
        machine = _machine(config)
        twin = _machine(config)
        getter = _getter(model)
        snap = MachineSnapshot(machine)
        for _ in range(200):
            assert getter(machine.step()) == getter(twin.step())
        snap.discard()
        assert machine._stream_log is None
        _assert_lockstep(machine, twin, getter, 200)

    def test_repeated_snapshot_cycles(self, config, model):
        machine = _machine(config)
        twin = _machine(config)
        getter = _getter(model)
        for i in range(6):
            snap = MachineSnapshot(machine)
            for _ in range(100):
                machine.step()
            if i % 2:
                snap.restore()
                for _ in range(100):
                    machine.step()
            else:
                snap.discard()
            for _ in range(100):
                twin.step()
        _assert_lockstep(machine, twin, getter, 200)

    def test_nested_snapshot_rejected(self, config):
        machine = _machine(config, warmup=0)
        snap = MachineSnapshot(machine)
        with pytest.raises(RuntimeError):
            MachineSnapshot(machine)
        snap.discard()
        MachineSnapshot(machine).discard()  # fresh one is fine again

    def test_snapshot_is_single_use(self, config):
        machine = _machine(config, warmup=0)
        snap = MachineSnapshot(machine)
        snap.restore()
        with pytest.raises(RuntimeError):
            snap.restore()
        with pytest.raises(RuntimeError):
            snap.discard()

    def test_pdn_state_roundtrip(self, config, model):
        from repro.control.thresholds import design_pdn

        pdn = design_pdn(model, impedance_percent=200.0)
        sim = PdnSimulator(pdn, clock_hz=config.clock_hz,
                           initial_current=20.0)
        machine = _machine(config, warmup=0)
        snap = MachineSnapshot(machine, pdn_sim=sim)
        before = (sim._x0, sim._x1, sim.cycles)
        for i in range(32):
            sim.step(20.0 + i)
        snap.restore()
        assert (sim._x0, sim._x1, sim.cycles) == before


class TestChunkPolicy:
    def test_defaults_within_band(self):
        policy = ChunkPolicy()
        assert (policy.minimum <= policy.next_chunk() <= policy.maximum)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkPolicy(initial=100, minimum=200, maximum=400)
        with pytest.raises(ValueError):
            ChunkPolicy(initial=500, minimum=200, maximum=400)

    def test_rollback_quarters_floored(self):
        policy = ChunkPolicy(initial=1024, minimum=64, maximum=2048)
        policy.rolled_back()
        assert policy.next_chunk() == 256
        for _ in range(10):
            policy.rolled_back()
        assert policy.next_chunk() == 64

    def test_commit_doubles_capped(self):
        policy = ChunkPolicy(initial=128, minimum=64, maximum=512)
        policy.committed()
        assert policy.next_chunk() == 256
        for _ in range(10):
            policy.committed()
        assert policy.next_chunk() == 512


class TestStallBatching:
    def test_advance_stall_matches_scalar_steps(self, config, model):
        # Twin machines: A steps every stall cycle, B takes one
        # canonical step and batches the rest.  The engine's run-length
        # power fold relies on the batched cycles having *identical*
        # activity rows, so that is asserted too.
        a = _machine(config)
        b = _machine(config)
        getter = _getter(model)
        batched = 0
        guard = 0
        while batched < 8 and guard < 20000 and not a.done:
            guard += 1
            w = a.stall_window()
            assert w == b.stall_window()
            if w <= 1:
                assert getter(a.step()) == getter(b.step())
                continue
            rows = [getter(a.step()) for _ in range(w)]
            canonical = getter(b.step())
            b.advance_stall(w - 1)
            assert all(row == canonical for row in rows)
            assert a.cycle == b.cycle
            assert a.stats.summary() == b.stats.summary()
            batched += 1
        assert batched == 8
        _assert_lockstep(a, b, getter, 400)

    def test_stall_window_zero_when_actuated(self, config):
        machine = _machine(config)
        while machine.stall_window() == 0:
            machine.step()
        machine.fus.gated = True
        assert machine.stall_window() == 0
        machine.fus.gated = False
        machine.il1.phantom = True
        assert machine.stall_window() == 0
        machine.il1.phantom = False
        assert machine.stall_window() > 0

    def test_stall_window_is_conservative(self, config, model):
        # Every cycle inside a reported window must commit nothing,
        # issue nothing, and fetch nothing (a pure stall).
        machine = _machine(config)
        fields = ("committed", "fetched", "issued_total", "dispatched",
                  "decoded")
        getter = operator.attrgetter(*fields)
        checked = 0
        guard = 0
        while checked < 200 and guard < 20000 and not machine.done:
            guard += 1
            w = machine.stall_window()
            before = getter(machine.step())
            if w <= 1:
                continue
            for _ in range(w - 1):
                assert getter(machine.step()) == before
                checked += 1
        assert checked >= 200
