"""Tests for the warm-state checkpoint cache."""

import pickle

import pytest

from repro.core.checkpoint import WarmupCache
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine
from repro.workloads.spec import get_profile
from repro.workloads.stressmark import StressmarkSpec, stressmark_stream


@pytest.fixture(scope="module")
def config():
    return MachineConfig()


def _factory(config, seed=11):
    return lambda: Machine(config, get_profile("swim").stream(seed=seed))


def _run_cycles(machine, n):
    return [machine.step().committed for _ in range(n)]


class TestWarmupCache:
    def test_hit_returns_equivalent_machine(self, config):
        cache = WarmupCache(root=False or None)
        desc = ("profile", "swim", 11)
        m1 = cache.warmed(config, desc, 2000, _factory(config))
        m2 = cache.warmed(config, desc, 2000, _factory(config))
        assert cache.misses == 1 and cache.hits == 1
        assert m1 is not m2
        # The clone must *behave* identically: same committed counts
        # over a timed region, same cache/predictor decisions.
        assert _run_cycles(m1, 500) == _run_cycles(m2, 500)
        assert m1.stats.committed == m2.stats.committed

    def test_clone_matches_direct_warmup(self, config):
        cache = WarmupCache(root=None)
        cached = cache.warmed(config, ("profile", "swim", 11), 2000,
                              _factory(config))
        direct = _factory(config)()
        direct.fast_forward(2000)
        assert _run_cycles(cached, 500) == _run_cycles(direct, 500)

    def test_key_separates_inputs(self, config):
        k = WarmupCache.key_for
        base = k(config, ("profile", "swim", 11), 2000)
        assert k(config, ("profile", "swim", 12), 2000) != base
        assert k(config, ("profile", "art", 11), 2000) != base
        assert k(config, ("profile", "swim", 11), 2001) != base
        other = MachineConfig(n_int_alu=config.n_int_alu + 1)
        assert k(other, ("profile", "swim", 11), 2000) != base

    def test_disk_persistence(self, config, tmp_path):
        desc = ("profile", "swim", 11)
        first = WarmupCache(root=str(tmp_path))
        warmed = first.warmed(config, desc, 2000, _factory(config))
        # A second cache (a different worker process) hits the disk.
        second = WarmupCache(root=str(tmp_path))
        clone = second.warmed(config, desc, 2000, _factory(config))
        assert second.hits == 1 and second.misses == 0
        assert _run_cycles(warmed, 300) == _run_cycles(clone, 300)

    def test_unpicklable_stream_falls_back(self, config):
        cache = WarmupCache(root=None)
        spec = StressmarkSpec()

        def factory():
            return Machine(config, stressmark_stream(spec))

        desc = ("stressmark", 200.0)
        m1 = cache.warmed(config, desc, 500, factory)
        m2 = cache.warmed(config, desc, 500, factory)
        # No caching, but both warmed and independent.
        assert cache.hits == 0 and cache.misses == 2
        assert m1 is not m2
        with pytest.raises(Exception):
            pickle.dumps(m1)

    def test_zero_warmup_skips_fast_forward(self, config):
        cache = WarmupCache(root=None)
        machine = cache.warmed(config, ("profile", "swim", 11), 0,
                               _factory(config))
        assert machine.cycle == 0

    def test_clear_resets(self, config):
        cache = WarmupCache(root=None)
        desc = ("profile", "swim", 11)
        cache.warmed(config, desc, 1000, _factory(config))
        cache.clear()
        assert cache.hits == 0 and cache.misses == 0
        cache.warmed(config, desc, 1000, _factory(config))
        assert cache.misses == 1


class TestDiskIntegrity:
    """The warm2 on-disk format: a checksummed header line guards the
    pickle blob, and anything untrustworthy degrades to a counted
    integrity miss -- bytes never reach ``pickle.loads`` unvalidated."""

    DESC = ("profile", "swim", 11)

    def _populate(self, config, tmp_path):
        cache = WarmupCache(root=str(tmp_path))
        cache.warmed(config, self.DESC, 2000, _factory(config))
        key = cache.key_for(config, self.DESC, 2000)
        return cache, key, cache._disk_path(key)

    def test_header_round_trip(self, config, tmp_path):
        import json

        _cache, key, path = self._populate(config, tmp_path)
        with open(path, "rb") as fh:
            head = fh.readline()
        header = json.loads(head.decode("ascii"))
        assert header["magic"] == "repro-warm"
        assert header["key"] == key

    def _expect_integrity_miss(self, config, tmp_path):
        fresh = WarmupCache(root=str(tmp_path))
        machine = fresh.warmed(config, self.DESC, 2000,
                               _factory(config))
        assert fresh.integrity_misses == 1
        assert fresh.misses == 1 and fresh.hits == 0
        return machine

    def test_truncated_entry_is_integrity_miss(self, config,
                                               tmp_path):
        import os

        _cache, _key, path = self._populate(config, tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) // 2)
        self._expect_integrity_miss(config, tmp_path)

    def test_corrupt_blob_is_integrity_miss(self, config, tmp_path):
        _cache, _key, path = self._populate(config, tmp_path)
        with open(path, "ab") as fh:
            fh.write(b"trailing garbage")
        self._expect_integrity_miss(config, tmp_path)

    def test_legacy_raw_pickle_is_integrity_miss(self, config,
                                                 tmp_path):
        """A schema-1 entry (bare pickle bytes, no header) must never
        reach ``pickle.loads``; it degrades to a counted re-warm."""
        _cache, _key, path = self._populate(config, tmp_path)
        with open(path, "rb") as fh:
            fh.readline()
            blob = fh.read()
        with open(path, "wb") as fh:
            fh.write(blob)
        machine = self._expect_integrity_miss(config, tmp_path)
        # The re-warm produced a usable machine all the same.
        assert _run_cycles(machine, 50)

    def test_renamed_entry_cannot_impersonate(self, config, tmp_path):
        import os
        import shutil

        cache, _key, path = self._populate(config, tmp_path)
        other_key = cache.key_for(config, ("profile", "swim", 12), 2000)
        other_path = cache._disk_path(other_key)
        os.makedirs(os.path.dirname(other_path), exist_ok=True)
        shutil.copy(path, other_path)
        assert cache.verify_entry(other_path) == "key mismatch"

    def test_write_fault_degrades_to_memory_only(self, config,
                                                 tmp_path, monkeypatch):
        from repro.faults import iofault

        monkeypatch.setenv(iofault.IOCHAOS_ENV, "enospc@warm")
        iofault.reset()
        cache = WarmupCache(root=str(tmp_path))
        machine = cache.warmed(config, self.DESC, 2000,
                               _factory(config))
        assert cache.write_errors == 1
        # The entry still serves from memory in this process...
        clone = cache.warmed(config, self.DESC, 2000, _factory(config))
        assert cache.hits == 1
        assert _run_cycles(machine, 200) == _run_cycles(clone, 200)
        monkeypatch.delenv(iofault.IOCHAOS_ENV)
        iofault.reset()
        # ...and no residue (temp files) reached the disk tree.
        leftovers = [name for _, _, names in __import__("os").walk(
            str(tmp_path)) for name in names]
        assert leftovers == []
