"""Tests for the warm-state checkpoint cache."""

import pickle

import pytest

from repro.core.checkpoint import WarmupCache
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine
from repro.workloads.spec import get_profile
from repro.workloads.stressmark import StressmarkSpec, stressmark_stream


@pytest.fixture(scope="module")
def config():
    return MachineConfig()


def _factory(config, seed=11):
    return lambda: Machine(config, get_profile("swim").stream(seed=seed))


def _run_cycles(machine, n):
    return [machine.step().committed for _ in range(n)]


class TestWarmupCache:
    def test_hit_returns_equivalent_machine(self, config):
        cache = WarmupCache(root=False or None)
        desc = ("profile", "swim", 11)
        m1 = cache.warmed(config, desc, 2000, _factory(config))
        m2 = cache.warmed(config, desc, 2000, _factory(config))
        assert cache.misses == 1 and cache.hits == 1
        assert m1 is not m2
        # The clone must *behave* identically: same committed counts
        # over a timed region, same cache/predictor decisions.
        assert _run_cycles(m1, 500) == _run_cycles(m2, 500)
        assert m1.stats.committed == m2.stats.committed

    def test_clone_matches_direct_warmup(self, config):
        cache = WarmupCache(root=None)
        cached = cache.warmed(config, ("profile", "swim", 11), 2000,
                              _factory(config))
        direct = _factory(config)()
        direct.fast_forward(2000)
        assert _run_cycles(cached, 500) == _run_cycles(direct, 500)

    def test_key_separates_inputs(self, config):
        k = WarmupCache.key_for
        base = k(config, ("profile", "swim", 11), 2000)
        assert k(config, ("profile", "swim", 12), 2000) != base
        assert k(config, ("profile", "art", 11), 2000) != base
        assert k(config, ("profile", "swim", 11), 2001) != base
        other = MachineConfig(n_int_alu=config.n_int_alu + 1)
        assert k(other, ("profile", "swim", 11), 2000) != base

    def test_disk_persistence(self, config, tmp_path):
        desc = ("profile", "swim", 11)
        first = WarmupCache(root=str(tmp_path))
        warmed = first.warmed(config, desc, 2000, _factory(config))
        # A second cache (a different worker process) hits the disk.
        second = WarmupCache(root=str(tmp_path))
        clone = second.warmed(config, desc, 2000, _factory(config))
        assert second.hits == 1 and second.misses == 0
        assert _run_cycles(warmed, 300) == _run_cycles(clone, 300)

    def test_unpicklable_stream_falls_back(self, config):
        cache = WarmupCache(root=None)
        spec = StressmarkSpec()

        def factory():
            return Machine(config, stressmark_stream(spec))

        desc = ("stressmark", 200.0)
        m1 = cache.warmed(config, desc, 500, factory)
        m2 = cache.warmed(config, desc, 500, factory)
        # No caching, but both warmed and independent.
        assert cache.hits == 0 and cache.misses == 2
        assert m1 is not m2
        with pytest.raises(Exception):
            pickle.dumps(m1)

    def test_zero_warmup_skips_fast_forward(self, config):
        cache = WarmupCache(root=None)
        machine = cache.warmed(config, ("profile", "swim", 11), 0,
                               _factory(config))
        assert machine.cycle == 0

    def test_clear_resets(self, config):
        cache = WarmupCache(root=None)
        desc = ("profile", "swim", 11)
        cache.warmed(config, desc, 1000, _factory(config))
        cache.clear()
        assert cache.hits == 0 and cache.misses == 0
        cache.warmed(config, desc, 1000, _factory(config))
        assert cache.misses == 1
