"""Tests for the process-wide design/stressmark caches."""

from repro.core import design_at, register_design, tuned_stressmark_spec
from repro.core import factory


class TestDesignAt:
    def test_same_level_returns_same_object(self):
        assert design_at(200) is design_at(200.0)

    def test_distinct_levels_are_distinct(self):
        # 200 is the default design point built by half the suite; a
        # second cheap probe at the same level must not collide.
        design = design_at(200)
        assert design.impedance_percent == 200.0

    def test_register_design_seeds_the_cache(self):
        class Sentinel:
            impedance_percent = 977.0
        sentinel = Sentinel()
        try:
            assert register_design(sentinel) is sentinel
            assert design_at(977.0) is sentinel
            assert design_at(977) is sentinel
        finally:
            factory._DESIGNS.pop(977.0, None)

    def test_register_design_first_wins(self):
        class Sentinel:
            impedance_percent = 978.0
        first, second = Sentinel(), Sentinel()
        try:
            register_design(first)
            assert register_design(second) is first
            assert design_at(978) is first
        finally:
            factory._DESIGNS.pop(978.0, None)


class TestTunedStressmark:
    def test_memoized_per_level(self):
        spec = tuned_stressmark_spec(200)
        assert tuned_stressmark_spec(200.0) is spec
        assert spec.n_divides >= 1
