"""Tests for trace replay through the PDN + sensor + controller loop."""

import numpy as np
import pytest

from repro.core import design_at
from repro.pdn.discrete import DiscretePdn, PdnSimulator
from repro.traces import (
    GROUP_WEIGHTS,
    Trace,
    TraceMachine,
    TraceReplayError,
    modulated_current,
    replay_trace,
)

IMPEDANCE = 200.0


@pytest.fixture(scope="module")
def design():
    return design_at(IMPEDANCE)


def square_trace(cycles=2000, high=64.0, low=20.0, half_period=30,
                 name="square"):
    """A square wave at the 200% design's resonant period (60 cycles),
    inside the design current envelope -- the classic dI/dt virus."""
    idx = np.arange(cycles)
    samples = np.where((idx // half_period) % 2 == 0, high, low)
    return Trace(samples.astype(np.float64), units="A", name=name)


def flat_trace(cycles=500, amps=42.0):
    return Trace(np.full(cycles, amps), units="A", name="flat")


class TestErrors:
    def test_clock_mismatch(self, design):
        trace = Trace([1.0, 2.0], clock_hz=2.0e9, name="slow")
        with pytest.raises(TraceReplayError,
                           match="trace slow is sampled at 2e\\+09 Hz "
                                 "but the design clocks at 3e\\+09 Hz"):
            replay_trace(trace, design, cycles=2)

    def test_warmup_consuming_the_trace(self, design):
        trace = flat_trace(cycles=100)
        with pytest.raises(TraceReplayError,
                           match="trace flat holds 100 samples, not "
                                 "more than the 100-cycle warm-up"):
            replay_trace(trace, design, cycles=10, warmup=100)

    def test_warmup_beyond_the_trace(self, design):
        with pytest.raises(TraceReplayError, match="warm-up skip"):
            replay_trace(flat_trace(cycles=100), design, cycles=10,
                         warmup=5000)


class TestUncontrolled:
    def test_result_shape(self, design):
        result = replay_trace(flat_trace(), design, cycles=200)
        assert result["status"] == "ok"
        assert result["error"] is None
        assert result["cycles"] == 200
        assert result["committed"] == 0
        assert result["ipc"] == 0.0
        assert result["controller"] is None
        assert result["energy"] > 0
        summary = result["emergencies"]
        assert summary["cycles"] == 200
        assert summary["v_min"] is not None

    def test_window_capped_at_trace_length(self, design):
        result = replay_trace(flat_trace(cycles=150), design,
                              cycles=10_000)
        assert result["cycles"] == 150

    def test_warmup_skips_the_head(self, design):
        trace = square_trace(cycles=400)
        full = replay_trace(trace, design, cycles=100, warmup=60)
        # Replaying the pre-sliced tail gives the identical result:
        # warm-up is a pure head skip.
        tail = Trace(trace.samples[60:], units="A", name="square")
        sliced = replay_trace(tail, design, cycles=100)
        assert full == sliced

    def test_vectorized_matches_lockstep_bitwise(self, design):
        trace = square_trace(cycles=1500)
        fast = replay_trace(trace, design, cycles=1500)
        slow = replay_trace(trace, design, cycles=1500,
                            force_lockstep=True)
        assert fast == slow   # bit-identical dicts, energy included

    def test_resonant_square_wave_causes_emergencies(self, design):
        result = replay_trace(square_trace(), design, cycles=2000)
        assert result["emergencies"]["emergency_cycles"] > 0

    def test_reuses_a_caller_pdn_sim(self, design):
        sim = PdnSimulator(DiscretePdn(design.pdn,
                                       clock_hz=design.config.clock_hz))
        trace = square_trace(cycles=500)
        one = replay_trace(trace, design, cycles=500, pdn_sim=sim)
        two = replay_trace(trace, design, cycles=500, pdn_sim=sim)
        assert one == two   # reset makes reuse invisible

    def test_watchdog_saved_and_restored(self, design):
        sim = PdnSimulator(DiscretePdn(design.pdn,
                                       clock_hz=design.config.clock_hz))
        sentinel = object()
        sim.watchdog = sentinel
        replay_trace(flat_trace(), design, cycles=100, pdn_sim=sim)
        assert sim.watchdog is sentinel

    def test_watchdog_restored_on_error(self, design):
        sim = PdnSimulator(DiscretePdn(design.pdn,
                                       clock_hz=design.config.clock_hz))
        sentinel = object()
        sim.watchdog = sentinel
        with pytest.raises(TraceReplayError):
            replay_trace(flat_trace(cycles=10), design, cycles=5,
                         warmup=10, pdn_sim=sim)
        assert sim.watchdog is sentinel


class TestControlled:
    def test_controller_reduces_emergencies(self, design):
        trace = square_trace()
        base = replay_trace(trace, design, cycles=2000)
        ctrl = replay_trace(trace, design, cycles=2000, delay=2)
        assert base["emergencies"]["emergency_cycles"] > 0
        assert ctrl["emergencies"]["emergency_cycles"] < \
            base["emergencies"]["emergency_cycles"]
        assert ctrl["controller"] is not None

    def test_deterministic(self, design):
        trace = square_trace()
        one = replay_trace(trace, design, cycles=1000, delay=2, seed=3)
        two = replay_trace(trace, design, cycles=1000, delay=2, seed=3)
        assert one == two

    def test_actuator_released_after_replay(self, design):
        # The controller may leave units gated at the final cycle; the
        # finally block releases them (observable via a fresh machine
        # never being touched -- here we just re-run and compare).
        trace = square_trace(cycles=800)
        one = replay_trace(trace, design, cycles=800, delay=2)
        two = replay_trace(trace, design, cycles=800, delay=2)
        assert one == two


class TestModulationModel:
    def test_weights_sum_to_one(self):
        assert sum(GROUP_WEIGHTS.values()) == pytest.approx(1.0)

    def test_untouched_machine_passes_through(self):
        machine = TraceMachine()
        assert modulated_current(40.0, machine, 20.0, 60.0) == 40.0

    def test_full_gate_reaches_the_floor(self):
        machine = TraceMachine()
        machine.fus.gated = True
        machine.dl1.gated = True
        machine.il1.gated = True
        assert modulated_current(40.0, machine, 20.0, 60.0) == \
            pytest.approx(20.0)

    def test_partial_gate_scales_the_span(self):
        machine = TraceMachine()
        machine.fus.gated = True   # weight 0.5
        assert modulated_current(40.0, machine, 20.0, 60.0) == \
            pytest.approx(20.0 + 0.5 * 20.0)

    def test_phantom_boosts_toward_the_ceiling(self):
        machine = TraceMachine()
        machine.dl1.phantom = True   # weight 0.3
        assert modulated_current(40.0, machine, 20.0, 60.0) == \
            pytest.approx(40.0 + 0.3 * 20.0)

    def test_gating_shadows_phantom(self):
        machine = TraceMachine()
        machine.fus.gated = True
        machine.il1.phantom = True
        assert modulated_current(40.0, machine, 20.0, 60.0) == \
            pytest.approx(30.0)

    def test_flush_is_a_counted_noop(self):
        machine = TraceMachine()
        machine.flush_pipeline()
        machine.flush_pipeline()
        assert machine.flushes == 2
