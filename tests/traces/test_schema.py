"""Tests for the trace schema: loaders, validation, content hashing.

The edge cases here are the exporter failure modes the schema promises
to reject loudly: truncated NPY files, CSV files naming both unit
columns, JSONL files with a torn final line (the mirror of the sweep
journal's torn-tail tests -- but a trace must *refuse*, not tolerate),
empty traces, and non-finite/negative samples with cycle indices.
"""

import io

import numpy as np
import pytest

from repro.pdn.rlc import NOMINAL_CLOCK_HZ
from repro.traces import (
    FORMATS,
    TRACE_SCHEMA,
    UNITS,
    Trace,
    TraceValidationError,
    detect_format,
    load_trace,
    trace_content_hash,
    validate_samples,
)


class TestValidateSamples:
    def test_accepts_finite_positive(self):
        out = validate_samples([1.0, 2.5, 0.0])
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 2.5, 0.0]

    def test_rejects_2d(self):
        with pytest.raises(TraceValidationError,
                           match=r"must be 1-D, got shape \(2, 2\)"):
            validate_samples([[1.0, 2.0], [3.0, 4.0]])

    def test_rejects_empty(self):
        with pytest.raises(TraceValidationError,
                           match="empty \\(no samples\\)"):
            validate_samples([])

    def test_nan_is_cycle_indexed(self):
        with pytest.raises(TraceValidationError,
                           match="non-finite sample nan at cycle 2"):
            validate_samples([1.0, 2.0, float("nan"), 3.0])

    def test_inf_is_cycle_indexed(self):
        with pytest.raises(TraceValidationError,
                           match="non-finite sample inf at cycle 0"):
            validate_samples([float("inf"), 1.0])

    def test_negative_is_cycle_indexed(self):
        with pytest.raises(TraceValidationError,
                           match="negative sample -5.0 at cycle 1"):
            validate_samples([1.0, -5.0, -6.0])

    def test_first_bad_cycle_wins(self):
        # A NaN before a negative: the report names the earlier cycle.
        with pytest.raises(TraceValidationError, match="at cycle 1"):
            validate_samples([1.0, float("nan"), -2.0])


class TestTrace:
    def test_unknown_units(self):
        with pytest.raises(TraceValidationError,
                           match="unknown units 'V' \\(known: A, W\\)"):
            Trace([1.0], units="V")

    @pytest.mark.parametrize("clock", [0, -1.0, float("nan"),
                                       float("inf"), "3e9", True])
    def test_bad_clock(self, clock):
        with pytest.raises(TraceValidationError,
                           match="clock_hz must be a positive finite"):
            Trace([1.0], clock_hz=clock)

    def test_defaults(self):
        trace = Trace([1.0, 2.0])
        assert trace.units == "A"
        assert trace.clock_hz == NOMINAL_CLOCK_HZ
        assert trace.name is None
        assert trace.n_samples == 2

    def test_watts_divide_by_nominal_volts(self):
        trace = Trace([2.0, 4.0], units="W")
        assert trace.currents(nominal_volts=2.0).tolist() == [1.0, 2.0]

    def test_amperes_pass_through(self):
        trace = Trace([2.0, 4.0], units="A")
        assert trace.currents(nominal_volts=2.0).tolist() == [2.0, 4.0]

    def test_meta_shape(self):
        trace = Trace([1.0], name="t")
        meta = trace.meta()
        assert meta["schema"] == TRACE_SCHEMA
        assert meta["name"] == "t"
        assert meta["units"] == "A"
        assert meta["n_samples"] == 1
        assert meta["hash"] == trace.content_hash()

    def test_constants(self):
        assert UNITS == ("A", "W")
        assert FORMATS == ("csv", "npy", "jsonl")


class TestContentHash:
    def test_stable(self):
        a = trace_content_hash("A", 3e9, [1.0, 2.0])
        b = trace_content_hash("A", 3e9, np.array([1.0, 2.0]))
        assert a == b and len(a) == 64

    def test_name_is_excluded(self):
        one = Trace([1.0, 2.0], name="alpha")
        two = Trace([1.0, 2.0], name="beta")
        assert one.content_hash() == two.content_hash()

    def test_units_clock_and_samples_all_matter(self):
        base = trace_content_hash("A", 3e9, [1.0, 2.0])
        assert trace_content_hash("W", 3e9, [1.0, 2.0]) != base
        assert trace_content_hash("A", 2e9, [1.0, 2.0]) != base
        assert trace_content_hash("A", 3e9, [1.0, 2.5]) != base


class TestDetectFormat:
    @pytest.mark.parametrize("path,fmt", [
        ("t.csv", "csv"), ("t.CSV", "csv"), ("t.npy", "npy"),
        ("t.jsonl", "jsonl"), ("t.ndjson", "jsonl"),
    ])
    def test_known_extensions(self, path, fmt):
        assert detect_format(path) == fmt

    def test_unknown_extension_is_a_usage_error(self):
        with pytest.raises(ValueError, match="cannot infer trace format"):
            detect_format("t.wav")


class TestCsvLoader:
    def write(self, tmp_path, text, name="t.csv"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def test_header_fixes_units(self, tmp_path):
        path = self.write(tmp_path, "cycle,current_a\n0,1.5\n1,2.5\n")
        trace = load_trace(path)
        assert trace.units == "A"
        assert trace.samples.tolist() == [1.5, 2.5]
        assert trace.name == "t"   # basename stem

    def test_power_header(self, tmp_path):
        path = self.write(tmp_path, "power_w\n3.0\n4.0\n")
        trace = load_trace(path)
        assert trace.units == "W"

    def test_mixed_units_rejected(self, tmp_path):
        path = self.write(tmp_path,
                          "current_a,power_w\n1.0,1.0\n")
        with pytest.raises(TraceValidationError,
                           match="mixed units: header names both "
                                 "current_a and power_w"):
            load_trace(path)

    def test_header_without_value_column(self, tmp_path):
        path = self.write(tmp_path, "cycle,volts\n0,1.0\n")
        with pytest.raises(TraceValidationError,
                           match="no value column in header"):
            load_trace(path)

    def test_units_conflicting_with_column(self, tmp_path):
        path = self.write(tmp_path, "current_a\n1.0\n")
        with pytest.raises(ValueError,
                           match="requested units 'W' conflict with "
                                 "the 'current_a' column"):
            load_trace(path, units="W")

    def test_headerless_needs_explicit_units(self, tmp_path):
        path = self.write(tmp_path, "1.0\n2.0\n")
        with pytest.raises(ValueError,
                           match="headerless CSV has no unit "
                                 "information"):
            load_trace(path)

    def test_headerless_with_units(self, tmp_path):
        path = self.write(tmp_path, "1.0\n2.0\n")
        trace = load_trace(path, units="W")
        assert trace.units == "W"
        assert trace.samples.tolist() == [1.0, 2.0]

    def test_empty_file(self, tmp_path):
        path = self.write(tmp_path, "")
        with pytest.raises(TraceValidationError,
                           match="empty \\(no samples\\)"):
            load_trace(path, units="A")

    def test_header_only(self, tmp_path):
        path = self.write(tmp_path, "current_a\n")
        with pytest.raises(TraceValidationError,
                           match="empty \\(header only\\)"):
            load_trace(path)

    def test_short_row_is_line_indexed(self, tmp_path):
        path = self.write(tmp_path, "cycle,current_a\n0,1.0\n1\n")
        with pytest.raises(TraceValidationError,
                           match="line 3: missing value column 1"):
            load_trace(path)

    def test_non_numeric_sample_is_line_indexed(self, tmp_path):
        path = self.write(tmp_path, "current_a\n1.0\noops\n")
        with pytest.raises(TraceValidationError,
                           match="line 3: non-numeric sample 'oops'"):
            load_trace(path)

    def test_negative_sample_is_cycle_indexed(self, tmp_path):
        path = self.write(tmp_path, "current_a\n1.0\n-2.0\n")
        with pytest.raises(TraceValidationError,
                           match="negative sample -2.0 at cycle 1"):
            load_trace(path)

    def test_errors_carry_the_path(self, tmp_path):
        path = self.write(tmp_path, "current_a\n-1.0\n")
        with pytest.raises(TraceValidationError, match="t.csv"):
            load_trace(path)


class TestNpyLoader:
    def write(self, tmp_path, array):
        path = tmp_path / "t.npy"
        buffer = io.BytesIO()
        np.save(buffer, array)
        path.write_bytes(buffer.getvalue())
        return str(path)

    def test_roundtrip(self, tmp_path):
        path = self.write(tmp_path, np.array([1.0, 2.0, 3.0]))
        trace = load_trace(path, units="A")
        assert trace.samples.tolist() == [1.0, 2.0, 3.0]

    def test_units_required(self, tmp_path):
        path = self.write(tmp_path, np.array([1.0]))
        with pytest.raises(ValueError,
                           match="NPY traces carry no unit "
                                 "information"):
            load_trace(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = self.write(tmp_path, np.arange(1000, dtype=np.float64))
        data = open(path, "rb").read()
        open(path, "wb").write(data[:len(data) // 2])
        with pytest.raises(TraceValidationError,
                           match="truncated or unreadable NPY"):
            load_trace(path, units="A")

    def test_garbage_bytes_rejected(self, tmp_path):
        path = tmp_path / "t.npy"
        path.write_bytes(b"this is not an npy file")
        with pytest.raises(TraceValidationError,
                           match="truncated or unreadable NPY"):
            load_trace(str(path), units="A")

    def test_non_numeric_dtype_rejected(self, tmp_path):
        path = self.write(tmp_path, np.array(["a", "b"]))
        with pytest.raises(TraceValidationError,
                           match="is not numeric"):
            load_trace(path, units="A")

    def test_2d_rejected(self, tmp_path):
        path = self.write(tmp_path, np.ones((2, 2)))
        with pytest.raises(TraceValidationError, match="must be 1-D"):
            load_trace(path, units="A")


class TestJsonlLoader:
    HEADER = '{"schema": 1, "units": "A", "clock_hz": 3e9}'

    def write(self, tmp_path, text, name="t.jsonl"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def test_roundtrip(self, tmp_path):
        path = self.write(tmp_path, self.HEADER + "\n1.5\n2.5\n")
        trace = load_trace(path)
        assert trace.units == "A"
        assert trace.clock_hz == 3e9
        assert trace.samples.tolist() == [1.5, 2.5]

    def test_header_name_wins_over_stem(self, tmp_path):
        path = self.write(
            tmp_path,
            '{"schema": 1, "units": "W", "name": "exported"}\n1.0\n')
        assert load_trace(path).name == "exported"

    def test_empty_file(self, tmp_path):
        path = self.write(tmp_path, "")
        with pytest.raises(TraceValidationError,
                           match="empty \\(no header line\\)"):
            load_trace(path)

    def test_torn_final_line_rejected(self, tmp_path):
        # The sweep journal tolerates its own torn tail on replay; an
        # imported trace must be re-exported instead.  Even though the
        # tail "2.5" parses, it could be a truncated "2.53".
        path = self.write(tmp_path, self.HEADER + "\n1.5\n2.5")
        with pytest.raises(TraceValidationError,
                           match="torn final line 3 \\(no trailing "
                                 "newline\\): '2.5'"):
            load_trace(path)

    def test_torn_tail_mentions_re_export(self, tmp_path):
        path = self.write(tmp_path, self.HEADER + "\n1.5\n2.")
        with pytest.raises(TraceValidationError,
                           match="re-export the trace"):
            load_trace(path)

    def test_unparsable_header(self, tmp_path):
        path = self.write(tmp_path, "not json\n1.0\n")
        with pytest.raises(TraceValidationError,
                           match="line 1: unparsable header"):
            load_trace(path)

    def test_header_must_be_an_object(self, tmp_path):
        path = self.write(tmp_path, "[1, 2]\n1.0\n")
        with pytest.raises(TraceValidationError,
                           match="header must be a JSON object"):
            load_trace(path)

    def test_future_schema_rejected(self, tmp_path):
        path = self.write(tmp_path,
                          '{"schema": 99, "units": "A"}\n1.0\n')
        with pytest.raises(TraceValidationError,
                           match="unsupported trace schema 99 \\(this "
                                 "code reads schema 1\\)"):
            load_trace(path)

    def test_units_conflict_is_a_usage_error(self, tmp_path):
        path = self.write(tmp_path, self.HEADER + "\n1.0\n")
        with pytest.raises(ValueError,
                           match="requested units 'W' conflict"):
            load_trace(path, units="W")

    def test_clock_conflict_is_a_usage_error(self, tmp_path):
        path = self.write(tmp_path, self.HEADER + "\n1.0\n")
        with pytest.raises(ValueError,
                           match="requested clock 2000000000.0 "
                                 "conflicts"):
            load_trace(path, clock_hz=2e9)

    def test_headerless_units_fall_back_to_argument(self, tmp_path):
        path = self.write(tmp_path, '{"schema": 1}\n1.0\n')
        assert load_trace(path, units="W").units == "W"

    def test_no_units_anywhere_is_a_usage_error(self, tmp_path):
        path = self.write(tmp_path, '{"schema": 1}\n1.0\n')
        with pytest.raises(ValueError,
                           match="jsonl header carries no units"):
            load_trace(path)

    def test_unparsable_sample_is_line_indexed(self, tmp_path):
        path = self.write(tmp_path, self.HEADER + "\n1.0\nnope\n")
        with pytest.raises(TraceValidationError,
                           match="line 3: unparsable sample 'nope'"):
            load_trace(path)

    def test_bool_sample_rejected(self, tmp_path):
        path = self.write(tmp_path, self.HEADER + "\n1.0\ntrue\n")
        with pytest.raises(TraceValidationError,
                           match="line 3: sample must be a number"):
            load_trace(path)

    def test_ndjson_extension(self, tmp_path):
        path = self.write(tmp_path, self.HEADER + "\n1.0\n",
                          name="t.ndjson")
        assert load_trace(path).samples.tolist() == [1.0]


class TestLoadTrace:
    def test_unknown_format_is_a_usage_error(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1.0\n")
        with pytest.raises(ValueError, match="unknown trace format"):
            load_trace(str(path), fmt="wav")

    def test_unknown_units_argument(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1.0\n")
        with pytest.raises(ValueError, match="unknown units 'V'"):
            load_trace(str(path), units="V")

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_trace(str(tmp_path / "nope.csv"), units="A")

    def test_explicit_name_overrides_stem(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("current_a\n1.0\n")
        assert load_trace(str(path), name="label").name == "label"
