"""Tests for the content-addressed trace store.

The store mirrors ``ResultCache`` discipline: atomic writes, and any
present-but-untrustworthy entry (torn write, hand edit, hash mismatch)
degrades to a counted miss, never a wrong replay.
"""

import json
import os

import pytest

from repro.traces import STORE_LAYOUT, Trace, TraceStore, default_trace_root


@pytest.fixture
def store(tmp_path):
    return TraceStore(root=str(tmp_path / "traces"))


def make_trace(samples=(1.0, 2.0, 3.0), name="fixture", **kwargs):
    return Trace(list(samples), name=name, **kwargs)


class TestRoot:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "env"))
        assert default_trace_root() == str(tmp_path / "env")
        assert TraceStore().root == str(tmp_path / "env")

    def test_default_is_per_user(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
        assert default_trace_root().endswith(
            os.path.join("repro-didt", "traces"))

    def test_nothing_created_until_put(self, store):
        assert not os.path.exists(store.root)
        assert store.list() == []
        assert store.list_suites() == {}


class TestPutGet:
    def test_roundtrip(self, store):
        trace = make_trace()
        digest = store.put(trace)
        assert len(digest) == 64
        back = store.get(digest)
        assert back.samples.tolist() == [1.0, 2.0, 3.0]
        assert back.units == trace.units
        assert back.clock_hz == trace.clock_hz
        assert back.name == "fixture"
        assert back.content_hash() == digest

    def test_put_is_idempotent(self, store):
        trace = make_trace()
        assert store.put(trace) == store.put(trace)
        assert len(store.list()) == 1

    def test_reimport_refreshes_the_name_label(self, store):
        digest = store.put(make_trace(name="old"))
        assert store.put(make_trace(name="new")) == digest
        assert store.get(digest).name == "new"

    def test_layout(self, store):
        digest = store.put(make_trace())
        directory = os.path.join(store.root, STORE_LAYOUT,
                                 digest[:2], digest)
        assert sorted(os.listdir(directory)) == \
            ["meta.json", "samples.npy"]

    def test_miss_returns_none(self, store):
        assert store.get("ab" * 32) is None
        assert store.meta_for("ab" * 32) is None
        assert store.integrity_misses == 0   # absent, not corrupt


class TestIntegrity:
    def entry(self, store, filename):
        digest = store.put(make_trace())
        return digest, os.path.join(store.entry_dir(digest), filename)

    def test_corrupt_samples_is_a_counted_miss(self, store):
        digest, path = self.entry(store, "samples.npy")
        with open(path, "wb") as fh:
            fh.write(b"garbage")
        assert store.get(digest) is None
        assert store.integrity_misses == 1

    def test_truncated_samples_is_a_counted_miss(self, store):
        digest, path = self.entry(store, "samples.npy")
        data = open(path, "rb").read()
        open(path, "wb").write(data[:len(data) - 4])
        assert store.get(digest) is None
        assert store.integrity_misses == 1

    def test_corrupt_meta_is_a_counted_miss(self, store):
        digest, path = self.entry(store, "meta.json")
        open(path, "w").write("{not json")
        assert store.meta_for(digest) is None
        assert store.get(digest) is None
        assert store.integrity_misses == 2

    def test_hash_mismatch_is_a_counted_miss(self, store):
        # A hand-edited meta whose hash does not match its directory.
        digest, path = self.entry(store, "meta.json")
        meta = json.load(open(path))
        meta["hash"] = "ab" * 32
        open(path, "w").write(json.dumps(meta))
        assert store.meta_for(digest) is None
        assert store.integrity_misses == 1

    def test_swapped_samples_fail_rehash(self, store):
        # samples.npy replaced by a *valid* npy of different content:
        # only the content-hash recomputation catches this.
        digest, path = self.entry(store, "samples.npy")
        other = TraceStore(root=store.root + "-other")
        other_digest = other.put(make_trace(samples=(9.0, 9.0, 9.0)))
        other_path = os.path.join(other.entry_dir(other_digest),
                                  "samples.npy")
        open(path, "wb").write(open(other_path, "rb").read())
        assert store.get(digest) is None
        assert store.integrity_misses == 1

    def test_corrupt_entry_disappears_from_list(self, store):
        digest, path = self.entry(store, "meta.json")
        open(path, "w").write("{")
        assert store.list() == []
        assert store.integrity_misses >= 1


class TestResolve:
    def test_by_full_hash(self, store):
        digest = store.put(make_trace())
        assert store.resolve(digest) == digest

    def test_by_name(self, store):
        digest = store.put(make_trace(name="alpha"))
        assert store.resolve("alpha") == digest

    def test_by_prefix(self, store):
        digest = store.put(make_trace())
        assert store.resolve(digest[:12]) == digest

    def test_unknown_lists_what_exists(self, store):
        store.put(make_trace(name="alpha"))
        with pytest.raises(KeyError, match="unknown trace 'nope'.*alpha"):
            store.resolve("nope")

    def test_unknown_in_empty_store(self, store):
        with pytest.raises(KeyError, match="store is empty"):
            store.resolve("nope")

    def test_unknown_full_hash(self, store):
        with pytest.raises(KeyError, match="no trace"):
            store.resolve("ab" * 32)

    def test_ambiguous_prefix(self, store):
        a = store.put(make_trace(samples=(1.0,), name="a"))
        b = store.put(make_trace(samples=(2.0,), name="b"))
        common = os.path.commonprefix([a, b])
        if len(common) >= 6:   # pragma: no cover - hash-dependent
            with pytest.raises(KeyError, match="ambiguous"):
                store.resolve(common)

    def test_name_wins_over_prefix(self, store):
        digest = store.put(make_trace(name="cafe42"))
        # 'cafe42' is a plausible hash prefix but matches the name.
        assert store.resolve("cafe42") == digest


class TestSuites:
    def test_roundtrip(self, store):
        store.put_suite("mine", ["swim", "trace:" + "ab" * 32])
        assert store.get_suite("mine") == ["swim", "trace:" + "ab" * 32]
        assert store.list_suites() == {
            "mine": ["swim", "trace:" + "ab" * 32]}

    def test_idempotent_for_identical_members(self, store):
        store.put_suite("mine", ["swim"])
        store.put_suite("mine", ["swim"])
        assert store.get_suite("mine") == ["swim"]

    def test_immutable_under_different_members(self, store):
        store.put_suite("mine", ["swim"])
        with pytest.raises(ValueError,
                           match="suites are immutable; pick a new "
                                 "name"):
            store.put_suite("mine", ["mgrid"])

    def test_bad_name_rejected(self, store):
        for name in ("", ".dot", "has space", "sl/ash"):
            with pytest.raises(ValueError, match="bad suite name"):
                store.put_suite(name, ["swim"])

    def test_empty_membership_rejected(self, store):
        with pytest.raises(ValueError, match="at least one workload"):
            store.put_suite("mine", [])

    def test_corrupt_suite_is_a_counted_miss(self, store):
        path = store.put_suite("mine", ["swim"])
        open(path, "w").write("{broken")
        assert store.get_suite("mine") is None
        assert store.integrity_misses == 1
        assert store.list_suites() == {}

    def test_missing_suite_is_none(self, store):
        assert store.get_suite("nope") is None


class TestStats:
    def test_counts_traces_and_suites(self, store):
        store.put(make_trace())
        store.put(make_trace(samples=(5.0, 6.0)))
        store.put_suite("mine", ["swim"])
        stats = store.stats()
        assert stats["traces"] == 2
        assert stats["samples"] == 5
        assert stats["suites"] == 1
        assert stats["bytes"] > 0
        assert stats["layout"] == STORE_LAYOUT
