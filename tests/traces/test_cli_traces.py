"""End-to-end CLI tests for trace import and suite sweeps.

Everything here runs through ``repro.cli.main`` against a per-test
trace store and result cache (``REPRO_TRACE_DIR`` / ``REPRO_CACHE_DIR``
monkeypatched), the same way CI's trace-suite smoke step drives the
installed CLI.
"""

import io
import json
import os
import threading

import numpy as np
import pytest

from repro.cli import main

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", ".."))
SAMPLE_CSV = os.path.join(REPO_ROOT, "examples", "sample_trace.csv")

CYCLES = 400


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path


@pytest.fixture
def square_csv(tmp_path):
    """A small resonant square-wave trace (period 60 at 200%)."""
    idx = np.arange(600)
    amps = np.where((idx // 30) % 2 == 0, 64.0, 20.0)
    path = tmp_path / "square.csv"
    path.write_text("cycle,current_a\n" + "".join(
        "%d,%.1f\n" % (i, a) for i, a in enumerate(amps)))
    return str(path)


@pytest.fixture
def imported(env, square_csv):
    code, text = run_cli("traces", "import", square_csv,
                         "--name", "fixture")
    assert code == 0
    digest = text.split("trace:", 1)[1].split()[0]
    return digest


class TestImportValidate:
    def test_import_prints_the_hash(self, env, square_csv):
        code, text = run_cli("traces", "import", square_csv,
                             "--name", "fixture")
        assert code == 0
        assert "imported %s as trace:" % square_csv in text
        assert "600 samples, units A, name fixture" in text

    def test_import_is_idempotent(self, env, square_csv, imported):
        code, text = run_cli("traces", "import", square_csv,
                             "--name", "fixture")
        assert code == 0
        assert imported in text
        code, text = run_cli("traces", "list")
        assert text.count(imported[:12]) == 1

    def test_validate_ok(self, env, square_csv):
        code, text = run_cli("traces", "validate", square_csv)
        assert code == 0
        assert text.startswith("valid: %s -- 600 samples" % square_csv)
        assert "units A" in text

    def test_validate_repo_example(self, env):
        # The README walkthrough fixture must always validate.
        code, text = run_cli("traces", "validate", SAMPLE_CSV)
        assert code == 0
        assert "4000 samples" in text

    def test_invalid_trace_exits_1(self, env, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("current_a\n1.0\n-5.0\n")
        code, _ = run_cli("traces", "validate", str(path))
        assert code == 1
        err = capsys.readouterr().err
        assert "error: invalid trace" in err
        assert "negative sample -5.0 at cycle 1" in err

    def test_unreadable_path_exits_2(self, env, tmp_path, capsys):
        code, _ = run_cli("traces", "validate",
                          str(tmp_path / "nope.csv"))
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_units_is_a_usage_error(self, env, tmp_path,
                                            capsys):
        path = tmp_path / "raw.csv"
        path.write_text("1.0\n2.0\n")
        code, _ = run_cli("traces", "validate", str(path))
        assert code == 2
        assert "pass units explicitly" in capsys.readouterr().err

    def test_units_conflict_is_a_usage_error(self, env, square_csv,
                                             capsys):
        code, _ = run_cli("traces", "import", square_csv,
                          "--units", "W")
        assert code == 2
        assert "conflict" in capsys.readouterr().err

    def test_trace_dir_flag_exports_the_env(self, env, tmp_path,
                                            square_csv):
        other = tmp_path / "elsewhere"
        code, _ = run_cli("traces", "import", square_csv,
                          "--trace-dir", str(other))
        assert code == 0
        assert os.environ["REPRO_TRACE_DIR"] == str(other)
        assert os.path.isdir(str(other))


class TestListAndSuite:
    def test_empty_store(self, env):
        code, text = run_cli("traces", "list")
        assert code == 0
        assert "trace store at" in text

    def test_list_shows_traces_and_suites(self, env, imported):
        code, _ = run_cli("traces", "suite", "demo", "fixture",
                          "stressmark")
        assert code == 0
        code, text = run_cli("traces", "list")
        assert code == 0
        assert "fixture" in text
        assert imported[:12] in text
        assert ("suite demo: trace:%s, stressmark" % imported) in text

    def test_suite_reports_membership(self, env, imported):
        code, text = run_cli("traces", "suite", "demo", "fixture")
        assert code == 0
        assert text.startswith("suite demo: 1 member(s)")

    def test_suite_accepts_prefixed_tokens(self, env, imported):
        code, _ = run_cli("traces", "suite", "demo",
                          "trace:" + imported[:12], "swim")
        assert code == 0
        _, text = run_cli("traces", "list")
        assert ("suite demo: trace:%s, swim" % imported) in text

    def test_unknown_member_exits_2(self, env, capsys):
        code, _ = run_cli("traces", "suite", "demo", "nope")
        assert code == 2
        assert "unknown trace 'nope'" in capsys.readouterr().err

    def test_redefinition_exits_2(self, env, imported, capsys):
        run_cli("traces", "suite", "demo", "fixture")
        code, _ = run_cli("traces", "suite", "demo", "swim")
        assert code == 2
        assert "immutable" in capsys.readouterr().err


class TestSweepSuite:
    def sweep(self, tmp_path, *extra):
        path = tmp_path / "report.json"
        code, _ = run_cli("sweep", "--impedances", "200",
                          "--controllers", "none", "fu_dl1_il1:2",
                          "--cycles", str(CYCLES), "--jobs", "1",
                          "--json", str(path), *extra)
        return code, path

    def test_suite_sweep_report(self, env, imported, tmp_path, capsys):
        run_cli("traces", "suite", "demo", "fixture")
        capsys.readouterr()
        code, path = self.sweep(tmp_path, "--suite", "demo")
        assert code == 0
        data = json.loads(path.read_text())
        token = "trace:" + imported
        assert data["settings"]["workloads"] == [token]
        assert data["settings"]["suites"] == {"demo": [token]}
        suite = data["suites"]["demo"]
        assert suite["cells"] == 2
        assert suite["failed"] == 0
        assert suite["controller"]["pairs"] == 1
        specs = [job["spec"] for job in data["jobs"]]
        assert {s["kind"] for s in specs} == {"trace"}
        assert {s["workload"] for s in specs} == {imported}
        # The human table lands on stderr alongside the counts line.
        err = capsys.readouterr().err
        assert "suite aggregates" in err
        assert "demo" in err

    def test_second_run_is_cached_and_byte_identical(
            self, env, imported, tmp_path, capsys):
        run_cli("traces", "suite", "demo", "fixture")
        _, path1 = self.sweep(tmp_path, "--suite", "demo")
        first = path1.read_bytes()
        capsys.readouterr()
        code, path2 = self.sweep(tmp_path, "--suite", "demo")
        assert code == 0
        assert path2.read_bytes() == first
        assert "2 cache hits, 0 executed" in capsys.readouterr().err

    def test_builtin_suite_without_a_store(self, env, tmp_path):
        code, path = self.sweep(tmp_path, "--suite",
                                "stressmark-family", "--warmup", "400")
        assert code == 0
        data = json.loads(path.read_text())
        assert data["settings"]["workloads"] == ["stressmark"]
        assert data["settings"]["suites"] == {
            "stressmark-family": ["stressmark"]}
        assert "stressmark-family" in data["suites"]

    def test_unknown_suite_exits_2(self, env, tmp_path, capsys):
        code, _ = self.sweep(tmp_path, "--suite", "nope")
        assert code == 2
        assert "unknown suite 'nope'" in capsys.readouterr().err

    def test_trace_token_without_a_suite(self, env, imported,
                                         tmp_path):
        code, path = self.sweep(tmp_path, "--workloads",
                                "trace:fixture")
        assert code == 0
        data = json.loads(path.read_text())
        assert data["settings"]["workloads"] == ["trace:" + imported]
        assert "suites" not in data["settings"]
        assert "suites" not in data

    def test_trace_shorter_than_warmup_exits_2(self, env, imported,
                                               tmp_path, capsys):
        code, _ = self.sweep(tmp_path, "--workloads", "trace:fixture",
                             "--warmup", "600")
        assert code == 2
        err = capsys.readouterr().err
        assert ("trace fixture (%s) holds 600 samples, not more than "
                "the 600-cycle --warmup skip" % imported[:12]) in err


class TestDefaultWorkloads:
    def test_bare_sweep_defaults_to_swim(self, env, tmp_path, capsys):
        # The sweep/campaign default grids are unified on
        # DEFAULT_WORKLOADS; a bare sweep is a valid 1-cell run, not a
        # usage error.
        path = tmp_path / "report.json"
        code, _ = run_cli("sweep", "--cycles", "250", "--warmup",
                          "400", "--jobs", "1", "--json", str(path))
        assert code == 0
        data = json.loads(path.read_text())
        assert data["settings"]["workloads"] == ["swim"]
        assert len(data["jobs"]) == 1

    def test_unknown_workload_is_a_clean_usage_error(self, env,
                                                     capsys):
        code, _ = run_cli("sweep", "--workloads", "nosuch",
                          "--jobs", "1")
        assert code == 2
        err = capsys.readouterr().err
        assert "error: unknown workload 'nosuch'" in err
        assert "Traceback" not in err

    def test_campaign_unknown_workload_is_clean(self, env, capsys):
        code, _ = run_cli("campaign", "nosuch", "--cycles", "100")
        assert code == 2
        err = capsys.readouterr().err
        assert "error: unknown workload(s) 'nosuch'" in err
        assert "Traceback" not in err

    def test_unknown_trace_ref_is_clean(self, env, capsys):
        code, _ = run_cli("sweep", "--workloads", "trace:nope",
                          "--jobs", "1")
        assert code == 2
        assert "unknown trace 'nope'" in capsys.readouterr().err


class TestSubmitSuite:
    def test_server_side_expansion_matches_sweep_bytes(
            self, env, imported, tmp_path, capsys):
        # Suites expand at admission on the server; the receipt drives
        # the client's report, which must be byte-identical to a local
        # sweep of the same suite.
        from repro.server import SweepServer

        run_cli("traces", "suite", "demo", "fixture")
        local = tmp_path / "local.json"
        code, _ = run_cli("sweep", "--suite", "demo",
                          "--impedances", "200",
                          "--controllers", "none", "fu_dl1_il1:2",
                          "--cycles", str(CYCLES), "--jobs", "1",
                          "--json", str(local))
        assert code == 0
        server = SweepServer(str(tmp_path / "serve.journal"), jobs=1)
        port = server.start()
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        try:
            served = tmp_path / "served.json"
            code, _ = run_cli(
                "submit", "--server", "http://127.0.0.1:%d" % port,
                "--suite", "demo", "--impedances", "200",
                "--controllers", "none", "fu_dl1_il1:2",
                "--cycles", str(CYCLES), "--poll-seconds", "0.05",
                "--deadline", "120", "--json", str(served))
            assert code == 0
            assert served.read_bytes() == local.read_bytes()
        finally:
            server.stop()
            thread.join(30.0)
            assert not thread.is_alive()
