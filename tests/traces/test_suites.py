"""Tests for the named-suite registry."""

import pytest

from repro.traces import (
    BUILTIN_SUITES,
    TraceStore,
    expand_suite,
    expand_suites,
    known_suites,
)
from repro.workloads.spec import ACTIVE_BENCHMARKS, SPEC2000, SPEC_FP, SPEC_INT


@pytest.fixture
def store(tmp_path):
    return TraceStore(root=str(tmp_path / "traces"))


class TestBuiltins:
    def test_all26_covers_spec2000(self):
        members = BUILTIN_SUITES["spec2000-all26"]
        assert len(members) == 26
        assert list(members) == sorted(SPEC2000)

    def test_int_fp_partition(self):
        assert set(BUILTIN_SUITES["spec2000-int"]) == set(SPEC_INT)
        assert set(BUILTIN_SUITES["spec2000-fp"]) == set(SPEC_FP)
        assert set(SPEC_INT) | set(SPEC_FP) == set(SPEC2000)

    def test_active8(self):
        assert BUILTIN_SUITES["spec2000-active8"] == \
            tuple(ACTIVE_BENCHMARKS)

    def test_stressmark_family(self):
        assert BUILTIN_SUITES["stressmark-family"] == ("stressmark",)

    def test_membership_is_immutable(self):
        assert isinstance(BUILTIN_SUITES["spec2000-all26"], tuple)


class TestExpand:
    def test_builtin_without_a_store(self):
        assert expand_suite("stressmark-family") == ["stressmark"]

    def test_unknown_lists_known(self):
        with pytest.raises(ValueError,
                           match="unknown suite 'nope' \\(known: .*"
                                 "spec2000-all26"):
            expand_suite("nope")

    def test_stored_suite(self, store):
        store.put_suite("mine", ["swim", "mgrid"])
        assert expand_suite("mine", store) == ["swim", "mgrid"]

    def test_builtin_shadows_stored(self, store):
        # put_suite is free to create the name, but expansion always
        # prefers the built-in: built-in names are reserved vocabulary.
        store.put_suite("stressmark-family", ["swim"])
        assert expand_suite("stressmark-family", store) == ["stressmark"]

    def test_known_suites_merges_store(self, store):
        store.put_suite("mine", ["swim"])
        names = known_suites(store)
        assert "mine" in names and "spec2000-all26" in names
        assert names == sorted(names)


class TestExpandMany:
    def test_concatenates_in_order(self, store):
        store.put_suite("mine", ["swim"])
        workloads, members = expand_suites(
            ["stressmark-family", "mine"], store)
        assert workloads == ["stressmark", "swim"]
        assert members == {"stressmark-family": ["stressmark"],
                           "mine": ["swim"]}

    def test_repeated_names_deduplicate(self):
        workloads, members = expand_suites(
            ["stressmark-family", "stressmark-family"])
        assert workloads == ["stressmark"]
        assert list(members) == ["stressmark-family"]

    def test_empty_request(self):
        assert expand_suites([]) == ([], {})
