"""Unit tests for per-suite aggregate rows and their table."""

import pytest

from repro.analysis.tables import format_suite_table
from repro.orchestrator import JobOutcome, JobSpec, suite_aggregates

HASH = "ab" * 32


def outcome(workload="swim", kind="run", delay=None, status="ok",
            emergency_cycles=0, v_min=0.95, impedance=200.0):
    kwargs = dict(workload=workload, cycles=1000, seed=1,
                  impedance_percent=impedance, kind=kind)
    if kind == "run":
        kwargs["warmup_instructions"] = 100
    if delay is not None:
        kwargs["delay"] = delay
    spec = JobSpec(**kwargs)
    result = {"status": status,
              "emergencies": {"emergency_cycles": emergency_cycles,
                              "v_min": v_min, "cycles": 1000}}
    return JobOutcome(spec, result)


class TestSuiteAggregates:
    def test_counts_and_worst_droop(self):
        rows = suite_aggregates(
            [outcome(emergency_cycles=10, v_min=0.93),
             outcome(delay=2, emergency_cycles=4, v_min=0.95)],
            {"mine": ["swim"]})
        row = rows["mine"]
        assert row["cells"] == 2
        assert row["failed"] == 0
        assert row["emergency_cycles"] == 14
        assert row["worst_v_min"] == 0.93

    def test_controller_wins_losses_ties(self):
        outcomes = [
            outcome(emergency_cycles=10),                     # baseline
            outcome(delay=2, emergency_cycles=4),             # win
            outcome(delay=4, emergency_cycles=10),            # tie
            outcome(delay=6, emergency_cycles=20),            # loss
        ]
        row = suite_aggregates(outcomes, {"mine": ["swim"]})["mine"]
        ctrl = row["controller"]
        assert ctrl == {"wins": 1, "losses": 1, "ties": 1, "pairs": 3}

    def test_controlled_cell_without_a_baseline_is_unpaired(self):
        row = suite_aggregates(
            [outcome(delay=2, emergency_cycles=4)],
            {"mine": ["swim"]})["mine"]
        assert row["controller"]["pairs"] == 0

    def test_membership_filters_by_token(self):
        outcomes = [outcome(workload="swim"),
                    outcome(workload="mgrid")]
        rows = suite_aggregates(outcomes, {"mine": ["mgrid"]})
        assert rows["mine"]["cells"] == 1

    def test_trace_cells_match_trace_tokens(self):
        outcomes = [outcome(workload=HASH, kind="trace",
                            emergency_cycles=7)]
        rows = suite_aggregates(outcomes,
                                {"mine": ["trace:" + HASH]})
        assert rows["mine"]["cells"] == 1
        assert rows["mine"]["emergency_cycles"] == 7
        # The bare hash is not a membership token.
        assert suite_aggregates(outcomes,
                                {"mine": [HASH]})["mine"]["cells"] == 0

    def test_failure_statuses_counted(self):
        row = suite_aggregates(
            [outcome(status="crashed", v_min=None),
             outcome(delay=2, status="diverged")],
            {"mine": ["swim"]})["mine"]
        # diverged is a *finding* (the watchdog fired), not an
        # orchestration failure.
        assert row["failed"] == 1

    def test_empty_suite_row(self):
        row = suite_aggregates([], {"mine": ["swim"]})["mine"]
        assert row["cells"] == 0
        assert row["worst_v_min"] is None

    def test_rows_sorted_by_name(self):
        rows = suite_aggregates([], {"zeta": ["swim"],
                                     "alpha": ["swim"]})
        assert list(rows) == ["alpha", "zeta"]


class TestFormatSuiteTable:
    def test_renders_rows(self):
        rows = suite_aggregates(
            [outcome(emergency_cycles=10, v_min=0.9180),
             outcome(delay=2, emergency_cycles=4)],
            {"mine": ["swim"]})
        text = format_suite_table(rows)
        assert "suite aggregates" in text
        assert "mine" in text
        assert "0.9180" in text
        assert "1/0/0" in text

    def test_empty_v_min_renders_dash(self):
        text = format_suite_table(
            suite_aggregates([], {"mine": ["swim"]}))
        assert "-" in text
