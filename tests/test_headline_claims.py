"""The paper's headline claims, as one end-to-end integration module.

Each test states a sentence from the paper's abstract/conclusions and
asserts the corresponding behaviour of this reproduction at reduced
scale.  These overlap intentionally with finer-grained tests elsewhere:
this file is the at-a-glance "does the reproduction still tell the
paper's story" check.
"""

import pytest

from repro.analysis.metrics import (
    energy_increase_percent,
    performance_loss_percent,
)
from repro.core import (
    VoltageControlDesign,
    get_profile,
    stressmark_stream,
    tune_stressmark,
)


@pytest.fixture(scope="module")
def design():
    return VoltageControlDesign(impedance_percent=200.0)


@pytest.fixture(scope="module")
def spec(design):
    spec, period = tune_stressmark(design.pdn, design.config)
    return spec


@pytest.fixture(scope="module")
def stressmark_baseline(design, spec):
    return design.run(stressmark_stream(spec), delay=None,
                      warmup_instructions=2000, max_cycles=10000)


class TestHeadlineClaims:
    def test_stressmark_resonates_at_package_frequency(self, design, spec):
        """'...a dI/dt stressmark that exercises the system at its
        resonant frequency.'"""
        _, period = tune_stressmark(design.pdn, design.config)
        target = design.pdn.resonant_period_cycles(design.config.clock_hz)
        assert period == pytest.approx(target, abs=3.0)

    def test_cheap_package_alone_is_unsafe(self, stressmark_baseline):
        """At 200% of target impedance, packaging alone no longer
        guarantees safe operation (the paper's premise)."""
        assert stressmark_baseline.emergencies["emergency_cycles"] > 0

    def test_controller_offers_bounds(self, design):
        """'our microarchitectural control proposals offer bounds on
        supply voltage fluctuations': the solved design's verified worst
        case sits inside the +/-5% band."""
        for delay in (0, 2, 4, 6):
            d = design.thresholds(delay=delay, actuator_kind="fu_dl1_il1")
            assert d.v_worst_low >= 0.95 - 1e-6
            assert d.v_worst_high <= 1.05 + 1e-6

    def test_controller_eliminates_emergencies(self, design, spec,
                                               stressmark_baseline):
        """'...can maintain safe operating voltages' -- zero emergencies
        on the worst software we can write."""
        controlled = design.run(stressmark_stream(spec), delay=2,
                                actuator_kind="fu_dl1_il1",
                                warmup_instructions=2000, max_cycles=10000)
        assert controlled.emergencies["emergency_cycles"] == 0

    def test_negligible_impact_on_mainstream_applications(self, design):
        """'...with almost no performance or energy impact' on real
        workloads."""
        for name in ("gzip", "swim"):
            base = design.run(get_profile(name).stream(seed=7), delay=None,
                              warmup_instructions=40000, max_cycles=8000)
            ctrl = design.run(get_profile(name).stream(seed=7), delay=2,
                              actuator_kind="fu_dl1_il1",
                              warmup_instructions=40000, max_cycles=8000)
            assert performance_loss_percent(base, ctrl) < 2.0
            assert energy_increase_percent(base, ctrl) < 5.0

    def test_stressmark_pays_tens_of_percent(self, design, spec,
                                             stressmark_baseline):
        """'the dI/dt stressmark sees performance/energy impact on the
        order of 20%' at large delays -- bounded, not free."""
        controlled = design.run(stressmark_stream(spec), delay=5,
                                actuator_kind="fu_dl1_il1",
                                warmup_instructions=2000, max_cycles=10000)
        loss = performance_loss_percent(stressmark_baseline, controlled)
        assert 3.0 < loss < 40.0

    def test_delay_budget_is_a_few_cycles(self, design):
        """'microarchitectural control can be built with delay values
        that are sufficiently small to allow safe operation' -- and the
        budget shrinks with delay (Table 3's trend)."""
        windows = [design.thresholds(delay=d).window_mv for d in (0, 3, 6)]
        assert windows[0] > windows[2] > 0
