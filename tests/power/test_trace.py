"""Tests for current-trace containers."""

import numpy as np
import pytest

from repro.power.trace import CurrentTrace


class TestCurrentTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            CurrentTrace(clock_hz=0.0)
        with pytest.raises(ValueError):
            CurrentTrace(clock_hz=1e9, vdd=0.0)

    def test_empty_trace(self):
        t = CurrentTrace(3e9)
        assert len(t) == 0
        assert t.average_power() == 0.0
        assert t.swing() == (0.0, 0.0)
        assert t.total_energy() == 0.0

    def test_energy(self):
        t = CurrentTrace(clock_hz=1e9)
        for _ in range(1000):
            t.append(10.0)  # 10 W for 1000 ns
        assert t.total_energy() == pytest.approx(10.0 * 1000e-9)

    def test_currents_respect_vdd(self):
        t = CurrentTrace(clock_hz=1e9, vdd=2.0)
        t.append(10.0)
        assert t.currents[0] == pytest.approx(5.0)

    def test_swing(self):
        t = CurrentTrace(1e9)
        for p in (10.0, 30.0, 20.0):
            t.append(p)
        assert t.swing() == (10.0, 30.0)

    def test_average_power(self):
        t = CurrentTrace(1e9)
        for p in (10.0, 20.0):
            t.append(p)
        assert t.average_power() == pytest.approx(15.0)

    def test_windowed_swing_sees_local_excursion(self):
        t = CurrentTrace(1e9)
        # Slow ramp: tiny local swing despite a big global one.
        for i in range(1000):
            t.append(10.0 + i * 0.01)
        assert t.windowed_max_swing(10) == pytest.approx(0.1, rel=0.2)
        assert t.swing()[1] - t.swing()[0] == pytest.approx(9.99, rel=0.01)

    def test_windowed_swing_shorter_than_window(self):
        t = CurrentTrace(1e9)
        t.append(5.0)
        t.append(9.0)
        assert t.windowed_max_swing(100) == pytest.approx(4.0)

    def test_windowed_swing_validation(self):
        with pytest.raises(ValueError):
            CurrentTrace(1e9).windowed_max_swing(0)
