"""Tests for the Wattch-style power model."""

import pytest

from repro.power.model import PowerModel
from repro.power.params import DL1_GROUP, FU_GROUP, IL1_GROUP, PowerParams
from repro.uarch.activity import CycleActivity
from repro.uarch.config import MachineConfig


@pytest.fixture
def config():
    return MachineConfig()


@pytest.fixture
def model(config):
    return PowerModel(config)


def idle_activity():
    return CycleActivity()


def busy_activity(config):
    a = CycleActivity()
    a.fetched = config.fetch_width
    a.l1i_accesses = 1
    a.bpred_lookups = 2
    a.decoded = config.decode_width
    a.dispatched = config.decode_width
    a.issued_int_alu = config.n_int_alu
    a.issued_fp_alu = config.n_fp_alu
    a.issued_mem_port = config.n_mem_ports
    a.busy_int_alu = config.n_int_alu
    a.busy_int_mult = config.n_int_mult
    a.busy_fp_alu = config.n_fp_alu
    a.busy_fp_mult = config.n_fp_mult
    a.busy_mem_port = config.n_mem_ports
    a.l1d_accesses = config.n_mem_ports
    a.l2_accesses = 1
    a.memory_accesses = 1
    a.writebacks = config.issue_width
    a.committed = config.commit_width
    a.regfile_reads = 2 * config.issue_width
    a.regfile_writes = config.issue_width
    return a


class TestPowerParams:
    def test_defaults_valid(self):
        p = PowerParams()
        assert p.total_structure_power > 0
        assert p.base_power == p.clock_power + p.static_power

    def test_vdd_positive(self):
        with pytest.raises(ValueError):
            PowerParams(vdd=0.0)

    def test_factor_ordering(self):
        with pytest.raises(ValueError):
            PowerParams(idle_factor=0.05, gated_factor=0.10)

    def test_negative_structure_power(self):
        with pytest.raises(ValueError):
            PowerParams(structures={"l1i": -1.0})

    def test_structures_copied(self):
        a = PowerParams()
        a.structures["l1i"] = 0.0
        assert PowerParams().structures["l1i"] != 0.0


class TestEnvelope:
    def test_ordering(self, model):
        assert model.gated_min_power() < model.min_power() < model.max_power()

    def test_idle_cycle_power_is_min(self, model):
        assert model.power(idle_activity()) == pytest.approx(model.min_power())

    def test_busy_cycle_near_max(self, model, config):
        p = model.power(busy_activity(config))
        assert p > 0.8 * model.max_power()
        assert p <= model.max_power() + 1e-9

    def test_current_envelope_scaling(self, config):
        m1 = PowerModel(config, PowerParams(vdd=1.0))
        m2 = PowerModel(config, PowerParams(vdd=2.0))
        assert m2.current_envelope()[1] == pytest.approx(
            m1.current_envelope()[1] / 2.0)


class TestConditionalClocking:
    def test_idle_structures_at_idle_factor(self, model):
        b = model.breakdown(idle_activity())
        p = model.params
        for name, watts in p.structures.items():
            assert b[name] == pytest.approx(watts * p.idle_factor)

    def test_activity_raises_power(self, model, config):
        idle = model.power(idle_activity())
        a = idle_activity()
        a.busy_int_alu = config.n_int_alu
        assert model.power(a) > idle

    def test_current_is_power_over_vdd(self, model, config):
        a = busy_activity(config)
        assert model.current(a) == pytest.approx(
            model.power(a) / model.params.vdd)


class TestActuation:
    def test_gated_groups_drop_below_idle(self, model):
        a = idle_activity()
        a.fu_gated = True
        a.dl1_gated = True
        a.il1_gated = True
        b = model.breakdown(a)
        p = model.params
        for name in FU_GROUP + DL1_GROUP + IL1_GROUP:
            assert b[name] == pytest.approx(
                p.structures[name] * p.gated_factor)
        assert model.power(a) == pytest.approx(model.gated_min_power())

    def test_gating_overrides_activity(self, model, config):
        a = busy_activity(config)
        a.fu_gated = True
        b = model.breakdown(a)
        p = model.params
        for name in FU_GROUP:
            assert b[name] == pytest.approx(
                p.structures[name] * p.gated_factor)

    def test_phantom_forces_full_power(self, model):
        a = idle_activity()
        a.fu_phantom = True
        b = model.breakdown(a)
        for name in FU_GROUP:
            assert b[name] == pytest.approx(model.params.structures[name])

    def test_phantom_raises_total(self, model):
        a = idle_activity()
        base = model.power(a)
        a.fu_phantom = True
        a.dl1_phantom = True
        a.il1_phantom = True
        assert model.power(a) > base

    def test_gated_fu_group_is_substantial(self, model):
        """The FU/DL1/IL1 actuator must control a meaningful fraction of
        max power or the paper's mechanism couldn't reshape current."""
        controllable = sum(model.params.structures[n]
                           for n in FU_GROUP + DL1_GROUP + IL1_GROUP)
        assert controllable / model.max_power() > 0.3


class TestEnergySpreading:
    def test_spreading_reduces_issue_spike(self, config):
        spread = PowerModel(config, PowerParams(spread_multicycle=True))
        lumped = PowerModel(config, PowerParams(spread_multicycle=False))
        a = idle_activity()
        a.issued_fp_mult = config.n_fp_mult  # two divides issued
        a.busy_fp_mult = config.n_fp_mult
        assert lumped.power(a) > spread.power(a)

    def test_spreading_conserves_energy_for_pipelined_ops(self, config):
        """A 1-cycle ALU op charges the same energy either way."""
        spread = PowerModel(config, PowerParams(spread_multicycle=True))
        lumped = PowerModel(config, PowerParams(spread_multicycle=False))
        a = idle_activity()
        a.issued_int_alu = 4
        a.busy_int_alu = 4
        assert spread.power(a) == pytest.approx(lumped.power(a))


class TestBreakdown:
    def test_breakdown_sums_to_power(self, model, config):
        a = busy_activity(config)
        assert sum(model.breakdown(a).values()) == pytest.approx(
            model.power(a))

    def test_all_structures_present(self, model):
        b = model.breakdown(idle_activity())
        for name in model.params.structures:
            assert name in b
        assert "base" in b


class TestFusedPowerEquivalence:
    """The fused fast-path ``power()`` must match ``breakdown()`` exactly
    for every activity pattern and actuation state."""

    _COUNTER_FIELDS = (
        "fetched", "l1i_accesses", "bpred_lookups", "decoded", "dispatched",
        "issued_int_alu", "issued_int_mult", "issued_fp_alu",
        "issued_fp_mult", "issued_mem_port", "busy_int_alu", "busy_int_mult",
        "busy_fp_alu", "busy_fp_mult", "busy_mem_port", "l1d_accesses",
        "l2_accesses", "memory_accesses", "writebacks", "committed",
        "regfile_reads", "regfile_writes")
    _FLAG_FIELDS = ("fu_gated", "fu_phantom", "dl1_gated", "dl1_phantom",
                    "il1_gated", "il1_phantom")

    @pytest.mark.parametrize("spread", [True, False])
    def test_randomized_equivalence(self, config, spread):
        import random
        rng = random.Random(42)
        model = PowerModel(config, PowerParams(spread_multicycle=spread))
        for _ in range(500):
            a = CycleActivity()
            for field in self._COUNTER_FIELDS:
                setattr(a, field, rng.randrange(0, 12))
            for flag in self._FLAG_FIELDS:
                setattr(a, flag, rng.random() < 0.3)
            assert model.power(a) == pytest.approx(
                sum(model.breakdown(a).values()), abs=1e-9)
