"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["analyze"])
        assert args.impedance == 200.0
        assert args.actuator == "ideal"

    def test_control_options(self):
        args = build_parser().parse_args(
            ["control", "swim", "--delay", "4", "--actuator", "fu_dl1"])
        assert args.workload == "swim"
        assert args.delay == 4
        assert args.actuator == "fu_dl1"


class TestListCommand:
    def test_lists_all_benchmarks(self):
        code, text = run_cli("list")
        assert code == 0
        for name in ("ammp", "galgel", "swim", "stressmark"):
            assert name in text


class TestAnalyzeCommand:
    def test_threshold_table(self):
        code, text = run_cli("analyze", "--max-delay", "2")
        assert code == 0
        assert "current envelope" in text
        assert "v_low" in text
        # Three delay rows.
        assert text.count("0.9") >= 3


class TestStressmarkCommand:
    def test_reports_emergencies(self):
        code, text = run_cli("stressmark", "--cycles", "6000")
        assert code == 0
        assert "tuned" in text
        assert "emergency cycles" in text


class TestCharacterizeCommand:
    def test_single_benchmark(self):
        code, text = run_cli("characterize", "gzip", "--cycles", "4000")
        assert code == 0
        assert "gzip" in text
        assert "mean V" in text


class TestControlCommand:
    def test_stressmark_controlled(self):
        code, text = run_cli("control", "stressmark", "--cycles", "6000")
        assert code == 0
        assert "uncontrolled" in text
        assert "perf loss" in text


class TestCampaignCommand:
    def test_campaign_table_and_json(self, tmp_path):
        path = tmp_path / "report.json"
        code, text = run_cli(
            "campaign", "swim", "--faults", "stuck_low", "--cycles",
            "2000", "--warmup", "8000", "--fault-start", "200",
            "--json", str(path))
        assert code == 0
        assert "fault campaign" in text
        assert "stuck_low" in text
        assert "baseline swim" in text
        import json
        data = json.loads(path.read_text())
        assert data["outcomes"][0]["fault"] == "stuck_low"

    def test_parser_rejects_unknown_fault(self):
        import pytest as _pytest
        with _pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--faults", "bogus"])
