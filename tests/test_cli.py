"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["analyze"])
        assert args.impedance == 200.0
        assert args.actuator == "ideal"

    def test_control_options(self):
        args = build_parser().parse_args(
            ["control", "swim", "--delay", "4", "--actuator", "fu_dl1"])
        assert args.workload == "swim"
        assert args.delay == 4
        assert args.actuator == "fu_dl1"


class TestListCommand:
    def test_lists_all_benchmarks(self):
        code, text = run_cli("list")
        assert code == 0
        for name in ("ammp", "galgel", "swim", "stressmark"):
            assert name in text


class TestAnalyzeCommand:
    def test_threshold_table(self):
        code, text = run_cli("analyze", "--max-delay", "2")
        assert code == 0
        assert "current envelope" in text
        assert "v_low" in text
        # Three delay rows.
        assert text.count("0.9") >= 3


class TestStressmarkCommand:
    def test_reports_emergencies(self):
        code, text = run_cli("stressmark", "--cycles", "6000")
        assert code == 0
        assert "tuned" in text
        assert "emergency cycles" in text


class TestCharacterizeCommand:
    def test_single_benchmark(self):
        code, text = run_cli("characterize", "gzip", "--cycles", "4000")
        assert code == 0
        assert "gzip" in text
        assert "mean V" in text


class TestControlCommand:
    def test_stressmark_controlled(self):
        code, text = run_cli("control", "stressmark", "--cycles", "6000")
        assert code == 0
        assert "uncontrolled" in text
        assert "perf loss" in text


class TestCampaignCommand:
    def test_campaign_table_and_json(self, tmp_path):
        path = tmp_path / "report.json"
        code, text = run_cli(
            "campaign", "swim", "--faults", "stuck_low", "--cycles",
            "2000", "--warmup", "8000", "--fault-start", "200",
            "--json", str(path))
        assert code == 0
        assert "fault campaign" in text
        assert "stuck_low" in text
        assert "baseline swim" in text
        import json
        data = json.loads(path.read_text())
        assert data["outcomes"][0]["fault"] == "stuck_low"

    def test_parser_rejects_unknown_fault(self):
        import pytest as _pytest
        with _pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--faults", "bogus"])


class TestSweepCommand:
    def sweep(self, tmp_path, *extra):
        path = tmp_path / "report.json"
        argv = ["sweep", "--workloads", "swim", "--impedances", "200",
                "--controllers", "none", "fu_dl1_il1:2",
                "--cycles", "250", "--warmup", "400", "--seed", "9",
                "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
                "--json", str(path)] + list(extra)
        code, text = run_cli(*argv)
        return code, path

    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep", "--workloads", "swim"])
        assert args.impedances == [200.0]
        assert args.controllers == ["none"]
        assert args.json == "-"
        assert not args.no_cache

    def test_bad_controller_token_is_an_error(self, tmp_path, capsys):
        code, _ = run_cli("sweep", "--workloads", "swim",
                          "--controllers", "warpdrive", "--jobs", "1")
        assert code == 2
        assert "unknown actuator" in capsys.readouterr().err

    def test_grid_report(self, tmp_path):
        import json
        code, path = self.sweep(tmp_path)
        assert code == 0
        data = json.loads(path.read_text())
        assert len(data["jobs"]) == 2
        statuses = [job["result"]["status"] for job in data["jobs"]]
        assert statuses == ["ok", "ok"]
        specs = [job["spec"] for job in data["jobs"]]
        assert specs[0]["delay"] is None
        assert specs[1]["delay"] == 2
        assert data["settings"]["workloads"] == ["swim"]

    def test_rerun_hits_cache_and_matches_bytes(self, tmp_path, capsys):
        _, path1 = self.sweep(tmp_path)
        first = path1.read_bytes()
        capsys.readouterr()
        code, path2 = self.sweep(tmp_path)
        assert code == 0
        assert path2.read_bytes() == first
        err = capsys.readouterr().err
        assert "2 cache hits, 0 executed" in err

    def test_invalidate_forces_execution(self, tmp_path, capsys):
        self.sweep(tmp_path)
        capsys.readouterr()
        code, _ = self.sweep(tmp_path, "--invalidate")
        assert code == 0
        err = capsys.readouterr().err
        assert "invalidated 2 cached cell(s)" in err
        assert "0 cache hits, 2 executed" in err
