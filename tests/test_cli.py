"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["analyze"])
        assert args.impedance == 200.0
        assert args.actuator == "ideal"

    def test_control_options(self):
        args = build_parser().parse_args(
            ["control", "swim", "--delay", "4", "--actuator", "fu_dl1"])
        assert args.workload == "swim"
        assert args.delay == 4
        assert args.actuator == "fu_dl1"


class TestListCommand:
    def test_lists_all_benchmarks(self):
        code, text = run_cli("list")
        assert code == 0
        for name in ("ammp", "galgel", "swim", "stressmark"):
            assert name in text


class TestAnalyzeCommand:
    def test_threshold_table(self):
        code, text = run_cli("analyze", "--max-delay", "2")
        assert code == 0
        assert "current envelope" in text
        assert "v_low" in text
        # Three delay rows.
        assert text.count("0.9") >= 3


class TestStressmarkCommand:
    def test_reports_emergencies(self):
        code, text = run_cli("stressmark", "--cycles", "6000")
        assert code == 0
        assert "tuned" in text
        assert "emergency cycles" in text


class TestCharacterizeCommand:
    def test_single_benchmark(self):
        code, text = run_cli("characterize", "gzip", "--cycles", "4000")
        assert code == 0
        assert "gzip" in text
        assert "mean V" in text


class TestControlCommand:
    def test_stressmark_controlled(self):
        code, text = run_cli("control", "stressmark", "--cycles", "6000")
        assert code == 0
        assert "uncontrolled" in text
        assert "perf loss" in text


class TestCampaignCommand:
    def test_campaign_table_and_json(self, tmp_path):
        path = tmp_path / "report.json"
        code, text = run_cli(
            "campaign", "swim", "--faults", "stuck_low", "--cycles",
            "2000", "--warmup", "8000", "--fault-start", "200",
            "--json", str(path))
        assert code == 0
        assert "fault campaign" in text
        assert "stuck_low" in text
        assert "baseline swim" in text
        import json
        data = json.loads(path.read_text())
        assert data["outcomes"][0]["fault"] == "stuck_low"

    def test_parser_rejects_unknown_fault(self):
        import pytest as _pytest
        with _pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--faults", "bogus"])


class TestSweepCommand:
    def sweep(self, tmp_path, *extra):
        path = tmp_path / "report.json"
        argv = ["sweep", "--workloads", "swim", "--impedances", "200",
                "--controllers", "none", "fu_dl1_il1:2",
                "--cycles", "250", "--warmup", "400", "--seed", "9",
                "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
                "--json", str(path)] + list(extra)
        code, text = run_cli(*argv)
        return code, path

    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep", "--workloads", "swim"])
        assert args.impedances == [200.0]
        assert args.controllers == ["none"]
        assert args.json == "-"
        assert not args.no_cache

    def test_bad_controller_token_is_an_error(self, tmp_path, capsys):
        code, _ = run_cli("sweep", "--workloads", "swim",
                          "--controllers", "warpdrive", "--jobs", "1")
        assert code == 2
        assert "unknown actuator" in capsys.readouterr().err

    def test_no_speculate_sets_env_and_matches_bytes(self, tmp_path):
        # The flag works by exporting REPRO_NO_SPECULATE (pool workers
        # inherit it); the speculative engine's bitwise parity means
        # the reports must still match exactly.
        import os
        code, spec_path = self.sweep(tmp_path)
        assert code == 0
        spec_bytes = spec_path.read_bytes()
        assert "REPRO_NO_SPECULATE" not in os.environ
        try:
            code, lock_path = self.sweep(tmp_path / "lock",
                                         "--no-speculate")
            assert code == 0
            assert os.environ.get("REPRO_NO_SPECULATE") == "1"
        finally:
            os.environ.pop("REPRO_NO_SPECULATE", None)
        assert lock_path.read_bytes() == spec_bytes

    def test_grid_report(self, tmp_path):
        import json
        code, path = self.sweep(tmp_path)
        assert code == 0
        data = json.loads(path.read_text())
        assert len(data["jobs"]) == 2
        statuses = [job["result"]["status"] for job in data["jobs"]]
        assert statuses == ["ok", "ok"]
        specs = [job["spec"] for job in data["jobs"]]
        assert specs[0]["delay"] is None
        assert specs[1]["delay"] == 2
        assert data["settings"]["workloads"] == ["swim"]

    def test_rerun_hits_cache_and_matches_bytes(self, tmp_path, capsys):
        _, path1 = self.sweep(tmp_path)
        first = path1.read_bytes()
        capsys.readouterr()
        code, path2 = self.sweep(tmp_path)
        assert code == 0
        assert path2.read_bytes() == first
        err = capsys.readouterr().err
        assert "2 cache hits, 0 executed" in err

    def test_invalidate_forces_execution(self, tmp_path, capsys):
        self.sweep(tmp_path)
        capsys.readouterr()
        code, _ = self.sweep(tmp_path, "--invalidate")
        assert code == 0
        err = capsys.readouterr().err
        assert "invalidated 2 cached cell(s)" in err
        assert "0 cache hits, 2 executed" in err

    def test_missing_workloads_falls_back_to_the_default(
            self, tmp_path, capsys):
        # sweep and campaign share one documented default grid
        # (DEFAULT_WORKLOADS == swim): a bare sweep is a 1-cell run,
        # not a usage error.
        import json
        path = tmp_path / "report.json"
        code, _ = run_cli("sweep", "--cycles", "250", "--warmup",
                          "400", "--jobs", "1",
                          "--cache-dir", str(tmp_path / "cache"),
                          "--json", str(path))
        assert code == 0
        data = json.loads(path.read_text())
        assert data["settings"]["workloads"] == ["swim"]
        assert len(data["jobs"]) == 1

    def test_failed_cell_exits_nonzero(self, tmp_path):
        import json
        path = tmp_path / "report.json"
        code, _ = run_cli(
            "sweep", "--workloads", "swim", "--impedances", "200",
            "--controllers", "none", "--cycles", "5000",
            "--warmup", "0", "--jobs", "1", "--timeout", "1e-6",
            "--no-cache", "--json", str(path))
        assert code == 1
        data = json.loads(path.read_text())
        assert data["jobs"][0]["result"]["status"] == "budget"


class TestSweepCrashTolerance:
    """The journal / resume / chaos surface of ``sweep``."""

    def sweep(self, tmp_path, *extra):
        path = tmp_path / "report.json"
        argv = ["sweep", "--workloads", "swim", "--impedances", "200",
                "--controllers", "none", "fu_dl1_il1:2",
                "--cycles", "250", "--warmup", "400", "--seed", "9",
                "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
                "--json", str(path)] + list(extra)
        code, text = run_cli(*argv)
        return code, path

    def test_journal_written_and_ended(self, tmp_path):
        from repro.orchestrator import replay_journal
        journal = tmp_path / "sweep.journal"
        code, _ = self.sweep(tmp_path, "--journal", str(journal))
        assert code == 0
        state = replay_journal(journal)
        assert state.ended
        assert len(state.specs) == 2
        assert state.pending_specs() == []

    def test_fresh_journal_refuses_to_overwrite(self, tmp_path, capsys):
        journal = tmp_path / "sweep.journal"
        self.sweep(tmp_path, "--journal", str(journal))
        capsys.readouterr()
        code, _ = self.sweep(tmp_path, "--journal", str(journal))
        assert code == 2
        assert "already exists" in capsys.readouterr().err

    def test_resume_replays_finished_cells(self, tmp_path, capsys):
        journal = tmp_path / "sweep.journal"
        _, path = self.sweep(tmp_path, "--journal", str(journal))
        first = path.read_bytes()
        capsys.readouterr()
        code, text = run_cli(
            "sweep", "--resume", str(journal), "--jobs", "1",
            "--no-cache", "--json", str(path))
        assert code == 0
        assert path.read_bytes() == first
        err = capsys.readouterr().err
        assert "resuming" in err
        assert "replayed 2 cell(s)" in err
        assert "2 cache hits, 0 executed, 0 errors" in err

    def test_resume_supplies_grid_and_settings(self, tmp_path):
        import json
        journal = tmp_path / "sweep.journal"
        self.sweep(tmp_path, "--journal", str(journal))
        path = tmp_path / "resumed.json"
        code, _ = run_cli("sweep", "--resume", str(journal),
                          "--jobs", "1", "--json", str(path))
        assert code == 0
        data = json.loads(path.read_text())
        assert data["settings"]["workloads"] == ["swim"]
        assert len(data["jobs"]) == 2

    def test_invalidate_with_resume_reruns_the_cells(self, tmp_path,
                                                     capsys):
        # --invalidate must beat the journal replay too: the whole
        # point of the flag is forcing a re-execution, so journalled
        # results may not short-circuit the invalidated cells.
        journal = tmp_path / "sweep.journal"
        _, path = self.sweep(tmp_path, "--journal", str(journal))
        first = path.read_bytes()
        capsys.readouterr()
        code, _ = run_cli(
            "sweep", "--resume", str(journal), "--invalidate",
            "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
            "--json", str(path))
        assert code == 0
        assert path.read_bytes() == first
        err = capsys.readouterr().err
        assert "0 cache hits, 2 executed" in err

    def test_resume_missing_journal_is_a_usage_error(self, tmp_path,
                                                     capsys):
        code, _ = run_cli("sweep", "--resume",
                          str(tmp_path / "nope.journal"), "--jobs", "1")
        assert code == 2
        assert "cannot resume" in capsys.readouterr().err

    def test_resume_and_journal_must_agree(self, tmp_path, capsys):
        journal = tmp_path / "sweep.journal"
        self.sweep(tmp_path, "--journal", str(journal))
        capsys.readouterr()
        code, _ = run_cli("sweep", "--resume", str(journal),
                          "--journal", str(tmp_path / "other.journal"),
                          "--jobs", "1")
        assert code == 2
        assert "same file" in capsys.readouterr().err

    def test_resume_with_explicit_superset_grid(self, tmp_path, capsys):
        journal = tmp_path / "sweep.journal"
        self.sweep(tmp_path, "--journal", str(journal))
        capsys.readouterr()
        path = tmp_path / "super.json"
        code, _ = run_cli(
            "sweep", "--resume", str(journal),
            "--workloads", "swim", "--impedances", "200",
            "--controllers", "none", "fu_dl1_il1:2", "fu_dl1_il1:4",
            "--cycles", "250", "--warmup", "400", "--seed", "9",
            "--jobs", "1", "--no-cache", "--json", str(path))
        assert code == 0
        err = capsys.readouterr().err
        assert "replayed 2 cell(s)" in err
        assert "3 jobs, 2 cache hits, 1 executed, 0 errors" in err

    def test_poison_spec_crashes_without_losing_siblings(
            self, tmp_path, monkeypatch, capsys):
        import json
        from repro.faults.chaos import CHAOS_ENV, CHAOS_ONCE_ENV
        from repro.orchestrator import JobSpec
        poison = JobSpec(workload="swim", cycles=250,
                         warmup_instructions=400, seed=9,
                         impedance_percent=200.0, delay=2)
        monkeypatch.setenv(CHAOS_ENV,
                           "kill@spec=%s" % poison.short_hash())
        monkeypatch.delenv(CHAOS_ONCE_ENV, raising=False)
        path = tmp_path / "report.json"
        code, _ = run_cli(
            "sweep", "--workloads", "swim", "--impedances", "200",
            "--controllers", "none", "fu_dl1_il1:2",
            "--cycles", "250", "--warmup", "400", "--seed", "9",
            "--jobs", "2", "--crash-retries", "0", "--no-cache",
            "--json", str(path))
        assert code == 1
        statuses = {job["spec"]["delay"]: job["result"]["status"]
                    for job in json.loads(path.read_text())["jobs"]}
        assert statuses[None] == "ok"
        assert statuses[2] == "crashed"
        assert "1 errors" in capsys.readouterr().err


class TestTraceCommand:
    def trace(self, tmp_path, *extra):
        argv = ["trace", "stressmark", "--cycles", "800",
                "--no-baseline"] + list(extra)
        return run_cli(*argv)

    def test_parser_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.workload == "stressmark"
        assert args.delay == 2
        assert args.actuator == "fu_dl1_il1"
        assert args.capacity == 65536
        assert not args.uncontrolled and not args.no_baseline

    def test_run_alias(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "stressmark"

    def test_controlled_summary(self, tmp_path):
        code, text = self.trace(tmp_path)
        assert code == 0
        assert "controlled trace:" in text
        assert "sensor transitions" in text

    def test_default_includes_baseline_track(self, tmp_path):
        import json
        path = tmp_path / "t.json"
        code, text = run_cli("trace", "stressmark", "--cycles", "800",
                             "--trace-out", str(path))
        assert code == 0
        assert "uncontrolled baseline" in text
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        procs = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert procs == {"uncontrolled", "controlled"}
        cats = {e.get("cat") for e in events if e["ph"] != "M"}
        assert {"sensor", "actuator", "emergency"} <= cats

    def test_chrome_trace_structure(self, tmp_path):
        import json
        path = tmp_path / "t.json"
        code, _ = self.trace(tmp_path, "--trace-out", str(path))
        assert code == 0
        trace = json.loads(path.read_text())
        assert set(trace) == {"traceEvents", "displayTimeUnit",
                              "otherData"}
        assert trace["otherData"]["workload"] == "stressmark"
        phases = [e["ph"] for e in trace["traceEvents"]]
        assert phases.count("B") == phases.count("E")

    def test_jsonl_and_metrics_outputs(self, tmp_path):
        import json
        jsonl = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        code, _ = self.trace(tmp_path, "--jsonl-out", str(jsonl),
                             "--metrics-out", str(metrics))
        assert code == 0
        lines = jsonl.read_text().strip().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert {"cycle", "kind", "name", "cat"} <= set(first)
        snapshot = json.loads(metrics.read_text())
        assert snapshot["histograms"]["loop.voltage"]["count"] == 800

    def test_uncontrolled_traces_emergencies(self, tmp_path):
        code, text = run_cli("trace", "stressmark", "--cycles", "800",
                             "--uncontrolled")
        assert code == 0
        assert "uncontrolled trace:" in text
        assert "first emergency at cycle" in text

    def test_trace_outputs_deterministic(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        self.trace(tmp_path, "--trace-out", str(a))
        self.trace(tmp_path, "--trace-out", str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_bad_capacity(self, tmp_path):
        code, _ = self.trace(tmp_path, "--capacity", "0")
        assert code == 2


class TestControlTraceFlags:
    def test_control_trace_and_metrics_out(self, tmp_path):
        import json
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        code, text = run_cli("control", "stressmark", "--cycles",
                             "2000", "--trace-out", str(trace_path),
                             "--metrics-out", str(metrics_path))
        assert code == 0
        assert "perf loss" in text
        trace = json.loads(trace_path.read_text())
        assert trace["otherData"]["workload"] == "stressmark"
        cats = {e.get("cat") for e in trace["traceEvents"]
                if e["ph"] != "M"}
        assert "sensor" in cats
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["gauges"]["loop.cycles"] == 2000


class TestSweepTelemetryFlags:
    def sweep(self, tmp_path, *extra):
        path = tmp_path / "report.json"
        argv = ["sweep", "--workloads", "swim", "--impedances", "200",
                "--controllers", "none",
                "--cycles", "250", "--warmup", "400", "--seed", "9",
                "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
                "--json", str(path)] + list(extra)
        code, text = run_cli(*argv)
        return code, path

    def test_execution_detail_opt_in(self, tmp_path):
        import json
        code, path = self.sweep(tmp_path, "--execution-detail")
        assert code == 0
        data = json.loads(path.read_text())
        assert len(data["execution"]) == len(data["jobs"]) == 1
        assert data["execution"][0]["cached"] is False
        code, path = self.sweep(tmp_path)
        assert "execution" not in json.loads(path.read_text())

    def test_default_report_bytes_unchanged_by_flags(self, tmp_path):
        import json
        _, path = self.sweep(tmp_path)
        baseline = json.loads(path.read_text())
        code, path = self.sweep(tmp_path, "--execution-detail")
        detailed = json.loads(path.read_text())
        assert detailed["jobs"] == baseline["jobs"]

    def test_metrics_out(self, tmp_path):
        import json
        metrics_path = tmp_path / "metrics.json"
        code, _ = self.sweep(tmp_path, "--metrics-out",
                             str(metrics_path))
        assert code == 0
        counters = json.loads(metrics_path.read_text())["counters"]
        assert counters["orchestrator.jobs"] == 1


class TestJournalCommand:
    """The ``journal compact`` maintenance subcommand."""

    def _journal_with_history(self, tmp_path):
        from repro.orchestrator import JobSpec, SweepJournal
        path = tmp_path / "sweep.journal"
        spec = JobSpec(workload="swim", cycles=250,
                       impedance_percent=200.0, seed=9)
        with SweepJournal(str(path), fsync=False) as journal:
            journal.begin_sweep([spec], salt="s1")
            journal.dispatched(spec.content_hash(), 1)
            journal.failed(spec.content_hash(), 1, "flake")
            journal.dispatched(spec.content_hash(), 2)
            journal.done(spec.content_hash(),
                         {"status": "ok", "value": 1.0})
        return path

    def test_compact_prints_stats_and_shrinks(self, tmp_path):
        import json
        from repro.orchestrator import replay_journal
        path = self._journal_with_history(tmp_path)
        code, text = run_cli("journal", "compact", str(path))
        assert code == 0
        stats = json.loads(text)
        assert stats["records_after"] < stats["records_before"]
        state = replay_journal(str(path))
        assert len(state.results) == 1

    def test_missing_journal_is_a_usage_error(self, tmp_path, capsys):
        code, _ = run_cli("journal", "compact",
                          str(tmp_path / "absent.journal"))
        assert code == 2
        assert "no journal" in capsys.readouterr().err

    def test_live_journal_is_refused(self, tmp_path, capsys):
        pytest.importorskip("fcntl")
        from repro.orchestrator import SweepJournal
        path = self._journal_with_history(tmp_path)
        journal = SweepJournal(str(path), fsync=False)
        try:
            code, _ = run_cli("journal", "compact", str(path))
        finally:
            journal.close()
        assert code == 2
        assert "another live writer" in capsys.readouterr().err

    def test_sweep_compacts_on_clean_completion(self, tmp_path,
                                                capsys):
        from repro.orchestrator import replay_journal
        journal = tmp_path / "sweep.journal"
        path = tmp_path / "report.json"
        code, _ = run_cli(
            "sweep", "--workloads", "swim", "--impedances", "200",
            "--cycles", "250", "--warmup", "400", "--seed", "9",
            "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
            "--json", str(path), "--journal", str(journal))
        assert code == 0
        assert "journal compacted" in capsys.readouterr().err
        state = replay_journal(str(journal))
        assert state.ended
        # Compacted on completion: begin + queued + done + end only.
        lines = [l for l in journal.read_text().splitlines() if l]
        assert len(lines) == 4


class TestCacheCommand:
    """The ``cache stats|clear`` maintenance subcommand."""

    def _populated_cache(self, tmp_path):
        from repro.orchestrator import JobSpec, ResultCache
        root = tmp_path / "cache"
        cache = ResultCache(root=str(root))
        spec = JobSpec(workload="swim", cycles=250,
                       impedance_percent=200.0, seed=9)
        cache.put(spec, {"status": "ok", "value": 1.0})
        return root, cache, spec

    def test_stats_counts_entries_and_bytes(self, tmp_path):
        import json
        root, _cache, _spec = self._populated_cache(tmp_path)
        code, text = run_cli("cache", "stats", "--cache-dir", str(root))
        assert code == 0
        info = json.loads(text)
        assert info["entries"] == 1
        assert info["bytes"] > 0
        assert info["invalid_entries"] == 0
        assert info["orphan_tmp"] == 0

    def test_stats_flags_corruption_and_orphans(self, tmp_path):
        import json
        root, cache, spec = self._populated_cache(tmp_path)
        entry = cache.path_for(spec)
        with open(entry, "a") as fh:
            fh.write("garbage")
        orphan = entry + ".tmp"
        with open(orphan, "w") as fh:
            fh.write("torn write")
        code, text = run_cli("cache", "stats", "--cache-dir", str(root))
        assert code == 0
        info = json.loads(text)
        assert info["invalid_entries"] == 1
        assert info["orphan_tmp"] == 1
        # --no-verify still counts files, just skips the parse.
        code, text = run_cli("cache", "stats", "--cache-dir",
                             str(root), "--no-verify")
        info = json.loads(text)
        assert info["entries"] == 1
        assert info["invalid_entries"] == 0

    def test_clear_removes_entries_and_orphans(self, tmp_path):
        import json
        import os
        root, cache, spec = self._populated_cache(tmp_path)
        orphan = cache.path_for(spec) + ".tmp"
        with open(orphan, "w") as fh:
            fh.write("torn write")
        code, text = run_cli("cache", "clear", "--cache-dir", str(root))
        assert code == 0
        summary = json.loads(text)
        assert summary["removed"] == 1
        assert summary["orphan_tmp_reclaimed"] == 1
        assert not os.path.exists(cache.path_for(spec))
        assert not os.path.exists(orphan)
        assert cache.get(spec) is None


class TestCaptureCacheCommand:
    """``cache stats|clear --captures`` against the capture cache."""

    def _populated_captures(self, tmp_path):
        import numpy as np
        from repro.orchestrator import JobSpec
        from repro.orchestrator.replay import capture_key, capture_meta
        from repro.orchestrator.tracecache import (CapturedTrace,
                                                   CurrentTraceCache)
        root = tmp_path / "cache"
        cache = CurrentTraceCache(root=str(root))
        spec = JobSpec(workload="swim", cycles=250,
                       impedance_percent=200.0, seed=9)
        key, meta = capture_key(spec), capture_meta(spec)
        trace = CapturedTrace(np.linspace(20.0, 30.0, 250),
                              np.ones(250), c0=400, cycles0=400,
                              committed0=350, cycle_time=1.0 / 3.0e9)
        cache.put(key, meta, trace)
        return root, cache, key, meta

    def test_stats_counts_entries_and_bytes(self, tmp_path):
        import json
        root, _cache, _key, _meta = self._populated_captures(tmp_path)
        code, text = run_cli("cache", "stats", "--captures",
                             "--cache-dir", str(root))
        assert code == 0
        info = json.loads(text)
        assert info["entries"] == 1
        assert info["bytes"] > 0
        assert info["invalid_entries"] == 0
        assert info["orphan_tmp"] == 0

    def test_stats_flags_corruption_and_orphans(self, tmp_path):
        import json
        root, cache, key, _meta = self._populated_captures(tmp_path)
        entry = cache.path_for(key)
        with open(entry, "r+b") as fh:
            fh.write(b"garbage")
        orphan = entry + ".tmp"
        with open(orphan, "w") as fh:
            fh.write("torn write")
        code, text = run_cli("cache", "stats", "--captures",
                             "--cache-dir", str(root))
        assert code == 0
        info = json.loads(text)
        assert info["invalid_entries"] == 1
        assert info["orphan_tmp"] == 1
        code, text = run_cli("cache", "stats", "--captures",
                             "--cache-dir", str(root), "--no-verify")
        info = json.loads(text)
        assert info["entries"] == 1
        assert info["invalid_entries"] == 0

    def test_clear_removes_entries_and_orphans(self, tmp_path):
        import json
        import os
        root, cache, key, meta = self._populated_captures(tmp_path)
        orphan = cache.path_for(key) + ".tmp"
        with open(orphan, "w") as fh:
            fh.write("torn write")
        code, text = run_cli("cache", "clear", "--captures",
                             "--cache-dir", str(root))
        assert code == 0
        summary = json.loads(text)
        assert summary["removed"] == 1
        assert summary["orphan_tmp_reclaimed"] == 1
        assert not os.path.exists(cache.path_for(key))
        assert not os.path.exists(orphan)
        assert cache.get(key, meta) is None

    def test_default_target_is_the_result_cache(self, tmp_path):
        # Without --captures the capture tree must be left alone.
        import json
        import os
        root, cache, key, _meta = self._populated_captures(tmp_path)
        code, text = run_cli("cache", "clear", "--cache-dir", str(root))
        assert code == 0
        assert json.loads(text)["removed"] == 0
        assert os.path.exists(cache.path_for(key))


class TestServeSubmitParsers:
    """Flag surface of the service subcommands (live-server behaviour
    is covered by tests/server/)."""

    def test_serve_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--journal", "j.journal"])
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.queue_limit == 1024
        assert args.batch_limit == 64
        assert args.request_timeout == 30.0
        assert args.port_file is None
        assert not args.no_replay
        assert not args.no_speculate

    def test_serve_execution_strategy_flags(self):
        # sweep/serve flag parity: both strategy escape hatches parse.
        args = build_parser().parse_args(
            ["serve", "--journal", "j.journal",
             "--no-replay", "--no-speculate"])
        assert args.no_replay
        assert args.no_speculate

    def test_serve_requires_journal(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_submit_defaults(self):
        args = build_parser().parse_args(
            ["submit", "--server", "http://127.0.0.1:1",
             "--workloads", "swim"])
        assert args.retry_budget == 8
        assert args.poll_seconds == 0.5
        assert args.json == "-"
        assert not args.no_wait

    def test_submit_requires_a_server(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--workloads", "swim"])
        # --workloads is optional (the default grid / --suite apply),
        # matching sweep.
        args = build_parser().parse_args(
            ["submit", "--server", "http://127.0.0.1:1"])
        assert args.workloads is None

    def test_submit_unreachable_server_exits_4(self, tmp_path, capsys):
        code, _ = run_cli(
            "submit", "--server", "http://127.0.0.1:1",
            "--workloads", "swim", "--cycles", "250",
            "--retry-budget", "1")
        assert code == 4
        assert "server unavailable" in capsys.readouterr().err

    def test_poll_unreachable_server_exits_4(self, tmp_path, capsys):
        code, _ = run_cli(
            "poll", "--server", "http://127.0.0.1:1",
            "--retry-budget", "1", "ab" * 32)
        assert code == 4


class TestSubmitAgainstLiveServer:
    """``submit``/``poll`` CLI against an in-process daemon."""

    @pytest.fixture
    def service(self, tmp_path, monkeypatch):
        import threading
        monkeypatch.setenv("REPRO_CACHE_DIR",
                           str(tmp_path / "server-cache"))
        from repro.server import SweepServer
        server = SweepServer(str(tmp_path / "serve.journal"), jobs=1)
        port = server.start()
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        yield "http://127.0.0.1:%d" % port
        server.stop()
        thread.join(30.0)

    def test_submit_report_matches_sweep_bytes(self, service,
                                               tmp_path):
        grid = ["--workloads", "swim", "--impedances", "200",
                "--controllers", "none", "--cycles", "250",
                "--warmup", "400", "--seed", "9"]
        served = tmp_path / "served.json"
        code, _ = run_cli("submit", "--server", service,
                          "--poll-seconds", "0.05",
                          "--json", str(served), *grid)
        assert code == 0
        local = tmp_path / "local.json"
        code, _ = run_cli("sweep", "--jobs", "1",
                          "--cache-dir", str(tmp_path / "local-cache"),
                          "--json", str(local), *grid)
        assert code == 0
        assert served.read_bytes() == local.read_bytes()

    def test_no_wait_prints_receipt_then_poll_converges(
            self, service, tmp_path):
        import json
        import time
        code, text = run_cli(
            "submit", "--server", service, "--no-wait",
            "--workloads", "swim", "--cycles", "250",
            "--warmup", "400", "--seed", "9")
        assert code == 0
        receipt = json.loads(text)
        (job,) = [j["job"] for j in receipt["jobs"]]
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            code, text = run_cli("poll", "--server", service, job)
            if code == 0:
                break
            time.sleep(0.1)
        assert code == 0
        payload = json.loads(text)["jobs"][job]
        assert payload["status"] == "done"
        assert payload["result"]["status"] == "ok"


class TestSweepStorageFaults:
    """The sweep CLI's storage-fault contract: cache faults are
    byte-transparent (exit 0, identical report); journal faults are
    fail-loud (exit 2, journal left replayable)."""

    @pytest.fixture(autouse=True)
    def _clean_iofault(self, monkeypatch):
        from repro.faults import iofault

        monkeypatch.delenv(iofault.IOCHAOS_ENV, raising=False)
        monkeypatch.delenv(iofault.IOCHAOS_ONCE_ENV, raising=False)
        iofault.reset()
        yield
        iofault.reset()

    def sweep(self, tmp_path, label, *extra):
        path = tmp_path / (label + ".json")
        argv = ["sweep", "--workloads", "swim", "--impedances", "200",
                "--controllers", "none",
                "--cycles", "250", "--warmup", "400", "--seed", "9",
                "--jobs", "1",
                "--cache-dir", str(tmp_path / (label + "-cache")),
                "--json", str(path)] + list(extra)
        code, _ = run_cli(*argv)
        return code, path

    def _arm(self, monkeypatch, chaos):
        from repro.faults import iofault

        monkeypatch.setenv(iofault.IOCHAOS_ENV, chaos)
        iofault.reset()

    @pytest.mark.parametrize("chaos", ["enospc@cache",
                                       "torn-write@captures"])
    def test_cache_faults_are_byte_transparent(self, tmp_path,
                                               monkeypatch, chaos):
        code, clean = self.sweep(tmp_path, "clean")
        assert code == 0
        self._arm(monkeypatch, chaos)
        code, faulted = self.sweep(tmp_path, "faulted")
        assert code == 0
        assert faulted.read_bytes() == clean.read_bytes()

    @pytest.mark.parametrize("chaos", ["fsync-fail@journal",
                                       "eio@journal"])
    def test_journal_fault_exits_2_and_stays_replayable(
            self, tmp_path, monkeypatch, capsys, chaos):
        from repro.orchestrator import replay_journal

        journal = tmp_path / "sweep.journal"
        self._arm(monkeypatch, chaos)
        code, path = self.sweep(tmp_path, "faulted",
                                "--journal", str(journal))
        assert code == 2
        assert not path.exists()
        assert "journal" in capsys.readouterr().err
        monkeypatch.delenv("REPRO_IOCHAOS")
        # Whatever reached the disk replays without error.
        replay_journal(str(journal))

    def test_late_journal_fault_leaves_resumable_journal(
            self, tmp_path, monkeypatch, capsys):
        from repro.faults import iofault
        from repro.orchestrator import replay_journal

        journal = tmp_path / "sweep.journal"
        # Writes: #1 begin, #2 queued, #3 dispatched -- the sweep dies
        # mid-run with its grid fully journalled.
        self._arm(monkeypatch, "eio@journal:3")
        code, _ = self.sweep(tmp_path, "faulted",
                             "--journal", str(journal))
        assert code == 2
        err = capsys.readouterr().err
        assert "--resume" in err
        monkeypatch.delenv("REPRO_IOCHAOS")
        iofault.reset()
        state = replay_journal(str(journal))
        assert len(state.pending_specs()) == 1
        # And the advertised recovery works: resume finishes the cell.
        report = tmp_path / "resumed.json"
        code, _ = run_cli(
            "sweep", "--resume", str(journal), "--jobs", "1",
            "--cache-dir", str(tmp_path / "faulted-cache"),
            "--json", str(report))
        assert code == 0
        assert replay_journal(str(journal)).ended

    def test_traces_import_fault_fails_loud(self, tmp_path,
                                            monkeypatch, capsys):
        import numpy as np

        trace_file = tmp_path / "trace.csv"
        trace_file.write_text(
            "\n".join(str(v) for v in np.linspace(10.0, 20.0, 64)))
        self._arm(monkeypatch, "enospc@traces")
        code, _ = run_cli("traces", "import", str(trace_file),
                          "--name", "t", "--clock-hz", "3e9",
                          "--units", "W",
                          "--trace-dir", str(tmp_path / "store"))
        assert code == 2
        assert "trace store write failed" in capsys.readouterr().err
