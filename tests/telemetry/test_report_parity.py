"""Telemetry must never change a result: byte-parity tests.

The caching and golden-report guarantees rest on one invariant --
telemetry is purely observational.  These tests compare, byte for
byte, every report surface with telemetry fully enabled against the
same run with the null defaults: worker results, content hashes,
merged orchestrator reports, campaign reports, and the cached
payloads on disk (which must carry no wall-clock or provenance keys).
"""

import json

from repro.faults.campaign import run_campaign
from repro.orchestrator import (
    JobSpec,
    ResultCache,
    Runner,
    report_json,
)
from repro.orchestrator.worker import execute_spec
from repro.telemetry import Telemetry


def tiny_spec(**overrides):
    kwargs = dict(workload="swim", cycles=200, warmup_instructions=400,
                  seed=5, impedance_percent=200.0)
    kwargs.update(overrides)
    return JobSpec(**kwargs)


def canonical(result):
    return json.dumps(result, sort_keys=True)


class TestContentHashParity:
    def test_content_hash_ignores_telemetry_entirely(self):
        # The spec has no telemetry field at all: the hash is a pure
        # function of the experiment knobs.
        spec = tiny_spec()
        assert "telemetry" not in spec.to_dict()
        assert spec.content_hash() == tiny_spec().content_hash()


class TestWorkerParity:
    def test_execute_spec_byte_identical_with_telemetry(self):
        spec = tiny_spec(delay=2, actuator_kind="fu_dl1_il1")
        plain = execute_spec(spec)
        instrumented = execute_spec(spec,
                                    telemetry=Telemetry.full())
        assert canonical(plain) == canonical(instrumented)

    def test_telemetry_actually_recorded_something(self):
        telemetry = Telemetry.full()
        execute_spec(tiny_spec(delay=2, actuator_kind="fu_dl1_il1"),
                     telemetry=telemetry)
        assert telemetry.metrics.gauge("loop.cycles").value == 200
        assert telemetry.profiler.counts()["pdn.step"] == 200


class TestRunnerReportParity:
    def test_merged_report_byte_identical(self):
        specs = [tiny_spec(seed=1),
                 tiny_spec(seed=2, delay=2, actuator_kind="fu_dl1_il1")]
        plain = Runner(jobs=1, progress=False).run(specs)
        instrumented = Runner(jobs=1, progress=False,
                              telemetry=Telemetry.full()).run(specs)
        assert report_json(plain) == report_json(instrumented)

    def test_cached_payload_has_no_wall_clock_keys(self, tmp_path):
        cache = ResultCache(root=tmp_path, salt="s")
        Runner(jobs=1, cache=cache, progress=False,
               telemetry=Telemetry.full()).run([tiny_spec()])
        payload_files = [p for p in tmp_path.rglob("*.json")]
        assert payload_files
        for path in payload_files:
            payload = json.loads(path.read_text())
            text = json.dumps(payload)
            for banned in ("wall_seconds", "attempts", "cached",
                           "seconds"):
                assert '"%s"' % banned not in text, (
                    "%s leaked into cached payload %s" % (banned, path))

    def test_cache_entries_shared_across_telemetry_modes(self, tmp_path):
        cache = ResultCache(root=tmp_path, salt="s")
        spec = tiny_spec()
        Runner(jobs=1, cache=cache, progress=False,
               telemetry=Telemetry.full()).run([spec])
        warm = Runner(jobs=1, cache=cache, progress=False).run([spec])[0]
        assert warm.cached


class TestCampaignParity:
    def test_campaign_report_byte_identical(self):
        kwargs = dict(workloads=["swim"], faults=["stuck_low"],
                      cycles=300, warmup_instructions=400, seed=3,
                      fault_start=50, budget_seconds=None, jobs=1)
        plain = run_campaign(**kwargs)
        instrumented = run_campaign(telemetry=Telemetry.full(), **kwargs)
        assert plain.to_json() == instrumented.to_json()
