"""Unit tests for the metrics registry."""

import json

import pytest

from repro.telemetry import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.telemetry.registry import validate_name


class TestValidateName:
    def test_accepts_dotted_lowercase(self):
        for name in ("loop", "loop.voltage", "a.b_c.d0", "x0_y"):
            assert validate_name(name) == name

    def test_rejects_bad_names(self):
        for name in ("", ".", "Loop", "loop.", ".loop", "loop..v",
                     "loop voltage", "loop-voltage", None, 3):
            with pytest.raises(ValueError):
                validate_name(name)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = MetricsRegistry().counter("hits")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        c = MetricsRegistry().counter("hits")
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0


class TestGauge:
    def test_none_until_set_then_last_wins(self):
        g = MetricsRegistry().gauge("ipc")
        assert g.value is None
        g.set(1.5)
        g.set(2.5)
        assert g.value == 2.5


class TestHistogram:
    def test_bucket_placement(self):
        h = MetricsRegistry().histogram("v", bounds=(1.0, 2.0, 3.0))
        # v <= bounds[i] lands in bucket i; above the last bound lands
        # in the overflow bucket.
        h.observe(0.5)     # bucket 0
        h.observe(1.0)     # bucket 0 (inclusive upper bound)
        h.observe(1.5)     # bucket 1
        h.observe(3.0)     # bucket 2
        h.observe(99.0)    # overflow
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.min == 0.5 and h.max == 99.0
        assert h.total == pytest.approx(105.0)

    def test_counts_has_overflow_bucket(self):
        h = MetricsRegistry().histogram("v", bounds=(0.0,))
        assert len(h.counts) == 2

    def test_rejects_bad_bounds(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.histogram("a", bounds=())
        with pytest.raises(ValueError):
            r.histogram("b", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            r.histogram("c", bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            r.histogram("d", bounds=(0.0, float("inf")))

    def test_rejects_non_finite_observation(self):
        h = MetricsRegistry().histogram("v", bounds=(1.0,))
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                h.observe(bad)
        assert h.count == 0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("b") is r.gauge("b")
        assert r.histogram("c", bounds=(1.0,)) is r.histogram("c")

    def test_cross_type_name_conflict(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ValueError):
            r.gauge("x")
        with pytest.raises(ValueError):
            r.histogram("x", bounds=(1.0,))

    def test_histogram_needs_bounds_first_use(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.histogram("h")
        r.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            r.histogram("h", bounds=(1.0, 3.0))

    def test_rejects_invalid_names(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.counter("Bad.Name")

    def test_scoped_prefixes_and_shares_storage(self):
        r = MetricsRegistry()
        s = r.scoped("orchestrator")
        s.counter("hits").inc(3)
        assert r.counter("orchestrator.hits").value == 3
        nested = s.scoped("cache")
        nested.gauge("size").set(7)
        assert r.gauge("orchestrator.cache.size").value == 7
        assert s.enabled is True

    def test_export_is_order_independent(self):
        def build(order):
            r = MetricsRegistry()
            for step in order:
                step(r)
            return r.to_json()

        steps = [
            lambda r: r.counter("b.hits").inc(2),
            lambda r: r.gauge("a.ipc").set(1.25),
            lambda r: r.histogram("c.v", bounds=(1.0, 2.0)).observe(1.5),
        ]
        assert build(steps) == build(list(reversed(steps)))

    def test_export_shape(self):
        r = MetricsRegistry()
        r.counter("hits").inc()
        r.gauge("ipc").set(2.0)
        r.histogram("v", bounds=(1.0,)).observe(0.5)
        d = json.loads(r.to_json())
        assert d == {
            "counters": {"hits": 1},
            "gauges": {"ipc": 2.0},
            "histograms": {"v": {"bounds": [1.0], "counts": [1, 0],
                                 "count": 1, "sum": 0.5,
                                 "min": 0.5, "max": 0.5}},
        }


class TestNullRegistry:
    def test_disabled_and_empty(self):
        assert NULL_METRICS.enabled is False
        assert isinstance(NULL_METRICS, NullMetricsRegistry)
        assert NULL_METRICS.to_dict() == {"counters": {}, "gauges": {},
                                          "histograms": {}}

    def test_all_lookups_are_shared_noop(self):
        c = NULL_METRICS.counter("anything")
        g = NULL_METRICS.gauge("else")
        h = NULL_METRICS.histogram("more")
        assert c is g is h
        c.inc(5)
        g.set(3)
        h.observe(1.0)
        assert c.value == 0
        assert NULL_METRICS.scoped("deep") is NULL_METRICS
