"""Unit tests for the trace-event summary helpers."""

from repro.analysis.tracestats import format_summary, summarize_events
from repro.telemetry import TraceRecorder


def _events():
    t = TraceRecorder()
    t.instant("sensor.level", "sensor", cycle=3)
    t.instant("sensor.level", "sensor", cycle=10)
    t.begin("emergency", "emergency", cycle=12)
    t.end("emergency", "emergency", cycle=20)
    t.begin("actuator.gate", "actuator", cycle=14)
    return t.events()


class TestSummarizeEvents:
    def test_counts_and_windows(self):
        s = summarize_events(_events(), last_cycle=30)
        assert s["events"] == 5
        assert s["counts"] == {"actuator.gate": 1, "emergency": 1,
                               "sensor.level": 2}
        assert s["windows"]["emergency"] == {"count": 1, "cycles": 8}
        # Open window closed at last_cycle.
        assert s["windows"]["actuator.gate"] == {"count": 1,
                                                 "cycles": 16}
        assert s["first_emergency_cycle"] == 12
        assert s["sensor_transitions"] == 2

    def test_open_window_closed_at_max_event_cycle_by_default(self):
        t = TraceRecorder()
        t.begin("emergency", "emergency", cycle=5)
        t.instant("x", "other", cycle=9)
        s = summarize_events(t.events())
        assert s["windows"]["emergency"] == {"count": 1, "cycles": 4}

    def test_unmatched_end_dropped(self):
        t = TraceRecorder()
        t.end("emergency", "emergency", cycle=7)
        s = summarize_events(t.events())
        assert s["windows"] == {}
        assert s["first_emergency_cycle"] == 7

    def test_empty(self):
        s = summarize_events([])
        assert s == {"events": 0, "counts": {}, "windows": {},
                     "first_emergency_cycle": None,
                     "sensor_transitions": 0}

    def test_deterministic(self):
        assert summarize_events(_events(), last_cycle=30) \
            == summarize_events(_events(), last_cycle=30)


class TestFormatSummary:
    def test_lines(self):
        text = format_summary(summarize_events(_events(), last_cycle=30))
        assert text.startswith("trace: 5 events")
        assert "sensor transitions: 2" in text
        assert "first emergency at cycle 12" in text

    def test_empty(self):
        assert format_summary(summarize_events([])) == "trace: 0 events"
