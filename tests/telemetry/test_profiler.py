"""Unit tests for the span profiler."""

import json

from repro.telemetry import NULL_PROFILER, SpanProfiler, Telemetry


class FakeClock:
    """A deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestSpanProfiler:
    def test_add_accumulates(self):
        p = SpanProfiler()
        p.add("pdn.step", 0.5)
        p.add("pdn.step", 0.25)
        p.add("controller.step", 1.0)
        assert p.counts() == {"controller.step": 1, "pdn.step": 2}
        report = p.report()
        assert report["pdn.step"] == {"count": 2, "seconds": 0.75}

    def test_span_context_manager(self):
        p = SpanProfiler(clock=FakeClock(step=1.0))
        with p.span("loop.run"):
            pass
        assert p.counts() == {"loop.run": 1}
        assert p.report()["loop.run"]["seconds"] == 1.0

    def test_span_records_on_exception(self):
        p = SpanProfiler(clock=FakeClock())
        try:
            with p.span("job"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert p.counts() == {"job": 1}

    def test_counts_sorted_and_deterministic(self):
        p = SpanProfiler()
        p.add("b", 1.0)
        p.add("a", 2.0)
        assert list(p.counts()) == ["a", "b"]
        text = p.report_json()
        assert list(json.loads(text)) == ["a", "b"]


class TestNullProfiler:
    def test_noop(self):
        assert NULL_PROFILER.enabled is False
        NULL_PROFILER.add("x", 1.0)
        with NULL_PROFILER.span("y"):
            pass
        assert NULL_PROFILER.counts() == {}


class TestTelemetryBundle:
    def test_default_is_all_null(self):
        t = Telemetry()
        assert not t.enabled
        assert not t.metrics.enabled
        assert not t.trace.enabled
        assert not t.profiler.enabled

    def test_full_enables_everything(self):
        t = Telemetry.full(capacity=16)
        assert t.enabled
        assert t.metrics.enabled and t.trace.enabled \
            and t.profiler.enabled
        assert t.trace.capacity == 16

    def test_partial(self):
        t = Telemetry(profiler=SpanProfiler())
        assert t.enabled
        assert t.profiler.enabled and not t.metrics.enabled
