"""Unit tests for the trace recorder and its exports."""

import json

import pytest

from repro.telemetry import (
    NULL_TRACE,
    TraceRecorder,
    merged_chrome_json,
    merged_chrome_trace,
)


class TestRecording:
    def test_events_inherit_current_cycle(self):
        t = TraceRecorder()
        t.cycle = 41
        t.instant("sensor.level", "sensor")
        t.cycle = 42
        t.begin("actuator.gate", "actuator", {"why": "low"})
        t.end("actuator.gate", "actuator", cycle=50)
        events = t.events()
        assert [e["cycle"] for e in events] == [41, 42, 50]
        assert events[0] == {"cycle": 41, "kind": "instant",
                             "name": "sensor.level", "cat": "sensor"}
        assert events[1]["args"] == {"why": "low"}

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TraceRecorder().event("bogus", "n", "c")

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_ring_buffer_evicts_oldest(self):
        t = TraceRecorder(capacity=3)
        for i in range(5):
            t.instant("e%d" % i, "cat", cycle=i)
        assert len(t) == 3
        assert t.dropped == 2
        assert [e["name"] for e in t.events()] == ["e2", "e3", "e4"]

    def test_clear(self):
        t = TraceRecorder(capacity=1)
        t.instant("a", "c")
        t.instant("b", "c")
        assert t.dropped == 1
        t.clear()
        assert len(t) == 0 and t.dropped == 0 and t.cycle == 0


class TestJsonl:
    def test_byte_stable_and_compact(self):
        def record():
            t = TraceRecorder()
            t.instant("sensor.level", "sensor",
                      {"to": "HIGH", "from": "NORMAL"}, cycle=7)
            t.begin("emergency", "emergency", cycle=9)
            return t.to_jsonl()

        text = record()
        assert text == record()
        lines = text.split("\n")
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"cycle": 7, "kind": "instant",
                         "name": "sensor.level", "cat": "sensor",
                         "args": {"from": "NORMAL", "to": "HIGH"}}
        # Compact separators, sorted keys: stable bytes.
        assert ": " not in lines[0]
        keys = [k for k in json.loads(lines[0])]
        assert keys == sorted(keys)

    def test_empty(self):
        assert TraceRecorder().to_jsonl() == ""


class TestChromeExport:
    def _recorder(self):
        t = TraceRecorder()
        t.instant("sensor.level", "sensor", cycle=5)
        t.begin("actuator.gate", "actuator", cycle=6)
        t.end("actuator.gate", "actuator", cycle=9)
        return t

    def test_structure(self):
        trace = self._recorder().chrome_trace(metadata={"workload": "w"})
        assert set(trace) == {"traceEvents", "displayTimeUnit",
                              "otherData"}
        assert trace["otherData"]["workload"] == "w"
        assert trace["otherData"]["dropped_events"] == 0
        events = trace["traceEvents"]
        phases = [e["ph"] for e in events]
        assert phases.count("B") == phases.count("E") == 1
        for e in events:
            assert e["pid"] == 0
            if e["ph"] != "M":
                assert isinstance(e["ts"], int)
                assert "cat" in e

    def test_category_threads_named_and_sorted(self):
        events = self._recorder().chrome_trace()["traceEvents"]
        names = {e["args"]["name"]: e["tid"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        # Categories sorted -> deterministic tids.
        assert names == {"actuator": 1, "sensor": 2}

    def test_unmatched_end_dropped(self):
        t = TraceRecorder()
        t.end("actuator.gate", "actuator", cycle=3)
        events = t.chrome_trace()["traceEvents"]
        assert all(e["ph"] != "E" for e in events)

    def test_unmatched_begin_autoclosed(self):
        t = TraceRecorder()
        t.begin("emergency", "emergency", cycle=10)
        t.instant("x", "emergency", cycle=20)
        events = t.chrome_trace()["traceEvents"]
        ends = [e for e in events if e["ph"] == "E"]
        assert len(ends) == 1
        assert ends[0]["ts"] == 21      # last cycle + 1

    def test_instant_scope(self):
        events = self._recorder().chrome_trace()["traceEvents"]
        insts = [e for e in events if e["ph"] == "i"]
        assert insts and all(e["s"] == "t" for e in insts)

    def test_json_byte_stable(self):
        a = self._recorder().to_chrome_json(metadata={"k": 1})
        b = self._recorder().to_chrome_json(metadata={"k": 1})
        assert a == b


class TestMergedChromeTrace:
    def test_sections_get_distinct_pids(self):
        base = TraceRecorder()
        base.begin("emergency", "emergency", cycle=3)
        base.end("emergency", "emergency", cycle=8)
        ctl = TraceRecorder()
        ctl.instant("sensor.level", "sensor", cycle=4)
        trace = merged_chrome_trace([("uncontrolled", base),
                                     ("controlled", ctl)])
        events = trace["traceEvents"]
        pids = {e["pid"] for e in events}
        assert pids == {0, 1}
        procs = {e["args"]["name"]: e["pid"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert procs == {"uncontrolled": 0, "controlled": 1}

    def test_dropped_counts_summed(self):
        a = TraceRecorder(capacity=1)
        a.instant("x", "c")
        a.instant("y", "c")
        b = TraceRecorder(capacity=1)
        b.instant("z", "c")
        trace = merged_chrome_trace([("a", a), ("b", b)])
        assert trace["otherData"]["dropped_events"] == 1

    def test_json_byte_stable(self):
        def build():
            t = TraceRecorder()
            t.instant("e", "c", cycle=1)
            return merged_chrome_json([("only", t)], metadata={"m": 2})
        assert build() == build()


class TestNullTrace:
    def test_disabled_and_records_nothing(self):
        assert NULL_TRACE.enabled is False
        NULL_TRACE.instant("a", "c")
        NULL_TRACE.begin("b", "c")
        NULL_TRACE.end("b", "c")
        assert len(NULL_TRACE) == 0
        assert NULL_TRACE.to_jsonl() == ""
        assert NULL_TRACE.chrome_trace()["otherData"]["dropped_events"] \
            == 0
