"""Golden-trace regression tests.

Each case runs a short controlled closed loop with a trace recorder
attached and compares the byte-stable JSONL export against a committed
golden file under ``tests/goldens/``.  The traces pin the *qualitative*
behaviour of the loop -- when the sensor flips, when the controller
acts, when emergencies occur -- so an accidental change to sensor
timing, controller sequencing, or event emission shows up as a byte
diff.

Regenerate after an intentional behaviour change with::

    pytest tests/telemetry/test_goldens.py --update-goldens
"""

import pathlib

import pytest

from repro.control.loop import ClosedLoopSimulation
from repro.core import (
    design_at,
    get_profile,
    stressmark_stream,
    tuned_stressmark_spec,
)
from repro.telemetry import Telemetry, TraceRecorder
from repro.uarch.core import Machine

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "goldens"

#: name -> run parameters.  The stressmark plus one synthesized
#: workload at two impedance levels (per the golden-trace spec).
CASES = {
    "stressmark_200": dict(workload="stressmark", impedance=200.0,
                           cycles=1500, warmup=2000),
    "swim_150": dict(workload="swim", impedance=150.0,
                     cycles=1500, warmup=4000),
    "swim_250": dict(workload="swim", impedance=250.0,
                     cycles=1500, warmup=4000),
}

SEED = 11
DELAY = 2
ACTUATOR = "fu_dl1_il1"


def record_case(case):
    """One controlled run of a golden case; returns the JSONL text."""
    design = design_at(case["impedance"])
    if case["workload"] == "stressmark":
        stream = stressmark_stream(
            tuned_stressmark_spec(case["impedance"]))
    else:
        stream = get_profile(case["workload"]).stream(seed=SEED)
    machine = Machine(design.config, stream)
    machine.fast_forward(case["warmup"])
    factory = design.controller_factory(delay=DELAY,
                                        actuator_kind=ACTUATOR,
                                        seed=SEED)
    controller = factory(machine, design.power_model)
    telemetry = Telemetry(trace=TraceRecorder())
    loop = ClosedLoopSimulation(machine, design.power_model, design.pdn,
                                controller=controller,
                                telemetry=telemetry)
    loop.run(max_cycles=case["cycles"])
    return telemetry.trace.to_jsonl()


@pytest.mark.parametrize("name", sorted(CASES))
def test_trace_matches_golden(name, update_goldens):
    path = GOLDEN_DIR / ("%s.jsonl" % name)
    text = record_case(CASES[name]) + "\n"
    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        pytest.skip("golden %s updated" % name)
    assert path.exists(), (
        "golden %s missing; run pytest with --update-goldens" % name)
    assert text == path.read_text(), (
        "trace for %s diverged from its golden; if the change is "
        "intentional, rerun with --update-goldens" % name)


def test_recording_is_deterministic_across_runs():
    """The same case recorded twice yields byte-identical JSONL."""
    case = CASES["stressmark_200"]
    assert record_case(case) == record_case(case)


def test_goldens_contain_expected_event_classes():
    """The committed stressmark golden must exercise the sensor and the
    actuator (the acceptance-level smoke for event coverage)."""
    path = GOLDEN_DIR / "stressmark_200.jsonl"
    if not path.exists():
        pytest.skip("golden not generated yet")
    text = path.read_text()
    assert '"cat":"sensor"' in text
    assert '"cat":"actuator"' in text
    assert '"cat":"controller"' in text
