"""Integration tests: the closed loop emits the right telemetry.

Each test runs a short real simulation through
:func:`~repro.orchestrator.worker.execute_spec` (the same path the
orchestrator and campaign use) with an enabled bundle and checks the
recorded events and metrics against the run's own result dict.
"""

from repro.orchestrator import JobSpec
from repro.orchestrator.worker import execute_spec
from repro.telemetry import Telemetry


def run(telemetry, **overrides):
    kwargs = dict(workload="stressmark", cycles=600,
                  warmup_instructions=2000, seed=5,
                  impedance_percent=200.0)
    kwargs.update(overrides)
    return execute_spec(JobSpec(**kwargs), telemetry=telemetry)


def events_by_cat(trace):
    by_cat = {}
    for e in trace.events():
        by_cat.setdefault(e["cat"], []).append(e)
    return by_cat


class TestEmergencyWindows:
    def test_uncontrolled_stressmark_traces_emergencies(self):
        telemetry = Telemetry.full()
        result = run(telemetry)
        assert result["emergencies"]["emergency_cycles"] > 0
        cats = events_by_cat(telemetry.trace)
        emergencies = cats.get("emergency", [])
        begins = [e for e in emergencies if e["kind"] == "begin"]
        ends = [e for e in emergencies if e["kind"] == "end"]
        assert begins
        # Windows pair up (the last may remain open at run end).
        assert len(begins) - len(ends) in (0, 1)
        assert begins[0]["args"]["kind"] in ("undershoot", "overshoot")
        # Summed closed-window durations never exceed the counted
        # emergency cycles.
        total = sum(e["cycle"] for e in ends) \
            - sum(b["cycle"] for b in begins[:len(ends)])
        assert 0 <= total <= result["emergencies"]["emergency_cycles"]

    def test_controlled_run_traces_sensor_and_actuator(self):
        telemetry = Telemetry.full()
        result = run(telemetry, delay=2, actuator_kind="fu_dl1_il1")
        cats = events_by_cat(telemetry.trace)
        assert cats.get("sensor"), "no sensor.level transitions traced"
        assert cats.get("controller"), "no controller.command events"
        assert cats.get("actuator"), "no actuation windows traced"
        transitions = result["controller"]["transitions"]
        assert len(cats["controller"]) == transitions

    def test_cycle_stamps_are_timed_region_indices(self):
        telemetry = Telemetry.full()
        result = run(telemetry, delay=2, actuator_kind="fu_dl1_il1")
        for e in telemetry.trace.events():
            assert 0 <= e["cycle"] <= result["cycles"]


class TestWatchdogEvents:
    def test_watchdog_trip_traced(self):
        telemetry = Telemetry.full()
        result = run(telemetry, watchdog_bounds=(1.49, 1.5))
        assert result["status"] == "diverged"
        trips = [e for e in telemetry.trace.events()
                 if e["cat"] == "watchdog"]
        assert len(trips) == 1
        assert trips[0]["name"] == "watchdog.trip"
        assert "message" in trips[0]["args"]


class TestFailsafeEvents:
    def test_stuck_sensor_traces_failsafe_entry(self):
        telemetry = Telemetry.full()
        result = run(telemetry, delay=2, actuator_kind="fu_dl1_il1",
                     fault="stuck_low", fault_start=0, stuck_cycles=50)
        assert result["controller"]["failsafe_transitions"] >= 1
        failsafe = [e for e in telemetry.trace.events()
                    if e["cat"] == "failsafe"]
        assert failsafe
        assert failsafe[0]["name"] == "failsafe.enter"
        assert failsafe[0]["args"]["reason"]

    def test_faulty_sensor_still_traces_levels(self):
        telemetry = Telemetry.full()
        run(telemetry, delay=2, actuator_kind="fu_dl1_il1",
            fault="stuck_high", fault_start=100, stuck_cycles=10**6)
        sensor = [e for e in telemetry.trace.events()
                  if e["cat"] == "sensor"]
        assert sensor, "FaultySensor must keep emitting transitions"
        # Exactly one transition lands the stuck level; no duplicate
        # emission from the wrapped inner sensor at the same cycle
        # with the same from/to pair.
        seen = [(e["cycle"], e["args"]["from"], e["args"]["to"])
                for e in sensor]
        assert len(seen) == len(set(seen))


class TestLoopMetrics:
    def test_voltage_histogram_and_gauges_match_result(self):
        telemetry = Telemetry.full()
        result = run(telemetry, delay=2, actuator_kind="fu_dl1_il1")
        snapshot = telemetry.metrics.to_dict()
        hist = snapshot["histograms"]["loop.voltage"]
        assert hist["count"] == result["cycles"]
        gauges = snapshot["gauges"]
        assert gauges["loop.cycles"] == result["cycles"]
        assert gauges["loop.committed"] == result["committed"]
        assert gauges["loop.ipc"] == result["ipc"]
        assert gauges["loop.emergency_cycles"] \
            == result["emergencies"]["emergency_cycles"]
        assert gauges["controller.transitions"] \
            == result["controller"]["transitions"]

    def test_profiler_spans_cover_hot_paths(self):
        telemetry = Telemetry.full()
        result = run(telemetry, delay=2, actuator_kind="fu_dl1_il1")
        counts = telemetry.profiler.counts()
        assert counts["pdn.step"] == result["cycles"]
        assert counts["controller.step"] == result["cycles"]
        assert counts["loop.run"] == 1
