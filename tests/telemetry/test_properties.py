"""Property-based tests (hypothesis) for the telemetry subsystem.

Invariants that must hold for *any* input: histogram bucket
conservation, ring-buffer eviction order, and the sensor's traced
transitions agreeing exactly with the level deltas of its returned
readings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.sensor import ThresholdSensor, VoltageLevel
from repro.telemetry import MetricsRegistry, TraceRecorder

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)

bounds_lists = st.lists(finite, min_size=1, max_size=8, unique=True) \
    .map(sorted)


class TestHistogramProperties:
    @given(bounds_lists, st.lists(finite, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_bucket_counts_conserve_observations(self, bounds, values):
        h = MetricsRegistry().histogram("h", bounds=bounds)
        for v in values:
            h.observe(v)
        assert sum(h.counts) == h.count == len(values)
        assert len(h.counts) == len(bounds) + 1

    @given(bounds_lists, st.lists(finite, min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_each_value_lands_in_its_bucket(self, bounds, values):
        h = MetricsRegistry().histogram("h", bounds=bounds)
        for v in values:
            before = list(h.counts)
            h.observe(v)
            changed = [i for i in range(len(h.counts))
                       if h.counts[i] != before[i]]
            assert len(changed) == 1
            i = changed[0]
            # Bucket i holds values v <= bounds[i] that exceed every
            # earlier bound; the last bucket is the overflow.
            if i < len(bounds):
                assert v <= bounds[i]
            if i > 0:
                assert v > bounds[i - 1]

    @given(bounds_lists, st.lists(finite, min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_min_max_sum_track_extremes(self, bounds, values):
        h = MetricsRegistry().histogram("h", bounds=bounds)
        for v in values:
            h.observe(v)
        assert h.min == min(values)
        assert h.max == max(values)
        assert abs(h.total - sum(values)) <= 1e-6 * max(
            1.0, abs(sum(values)))


class TestRingBufferProperties:
    @given(st.integers(min_value=1, max_value=16),
           st.lists(st.integers(min_value=0, max_value=10**6),
                    max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_retains_exactly_the_newest_window(self, capacity, cycles):
        t = TraceRecorder(capacity=capacity)
        for i, cycle in enumerate(cycles):
            t.instant("e%d" % i, "cat", cycle=cycle)
        kept = t.events()
        assert len(kept) == min(capacity, len(cycles))
        assert t.dropped == max(0, len(cycles) - capacity)
        # The survivors are the most recent events, in arrival order.
        expected = list(enumerate(cycles))[-capacity:]
        assert [(e["name"], e["cycle"]) for e in kept] \
            == [("e%d" % i, c) for i, c in expected]

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=32))
    @settings(max_examples=30, deadline=None)
    def test_length_never_exceeds_capacity(self, capacity, n):
        t = TraceRecorder(capacity=capacity)
        for i in range(n):
            t.instant("e", "c", cycle=i)
            assert len(t) <= capacity


class TestSensorTraceProperties:
    @given(st.lists(st.floats(min_value=0.5, max_value=1.5,
                              allow_nan=False), min_size=1,
                    max_size=120),
           st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_traced_transitions_match_reading_deltas(self, voltages,
                                                     delay):
        sensor = ThresholdSensor(0.95, 1.05, delay=delay)
        trace = TraceRecorder()
        sensor.attach_trace(trace)
        levels = [sensor.observe(v).level for v in voltages]
        # The traced instants are exactly the level changes of the
        # reading sequence (initial state is NORMAL).
        previous = [VoltageLevel.NORMAL] + levels[:-1]
        changes = [(p.name, l.name) for p, l in zip(previous, levels)
                   if l is not p]
        events = trace.events()
        assert all(e["name"] == "sensor.level" and e["cat"] == "sensor"
                   for e in events)
        assert [(e["args"]["from"], e["args"]["to"]) for e in events] \
            == changes
