"""Shared pytest configuration.

Adds the ``--update-goldens`` option used by the golden-trace
regression tier (``tests/telemetry/test_goldens.py``): with the flag,
golden files under ``tests/goldens/`` are rewritten from the current
simulation output instead of being compared against.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite the golden trace files from current output "
             "instead of comparing against them")


@pytest.fixture
def update_goldens(request):
    """Whether ``--update-goldens`` was passed."""
    return request.config.getoption("--update-goldens")
