"""Tests for the supervised pool: backoff determinism, crash recovery,
poison-spec isolation, and hang detection.

The pool tests arm real chaos faults (:mod:`repro.faults.chaos`) via
the environment and run real worker processes -- the same machinery the
``repro-didt sweep`` chaos tier exercises end to end.
"""

import pytest

from repro.faults.chaos import CHAOS_ENV, CHAOS_ONCE_ENV
from repro.orchestrator import BackoffPolicy, JobSpec, SupervisedPool
from repro.orchestrator.supervise import END_CRASHED, END_ERROR, END_OK


def tiny_spec(**overrides):
    kwargs = dict(workload="swim", cycles=200, warmup_instructions=400,
                  seed=5, impedance_percent=200.0)
    kwargs.update(overrides)
    return JobSpec(**kwargs)


class TestBackoffPolicy:
    def test_same_seed_same_sequence(self):
        a = BackoffPolicy(seed=7)
        b = BackoffPolicy(seed=7)
        assert [a.delay(n) for n in range(6)] \
            == [b.delay(n) for n in range(6)]

    def test_different_seed_different_sequence(self):
        a = BackoffPolicy(seed=7)
        b = BackoffPolicy(seed=8)
        assert [a.delay(n) for n in range(6)] \
            != [b.delay(n) for n in range(6)]

    def test_exponential_growth_up_to_cap(self):
        policy = BackoffPolicy(base_seconds=0.1, factor=2.0,
                               cap_seconds=0.5, jitter=0.0)
        assert [policy.delay(n) for n in range(5)] \
            == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_bounded(self):
        policy = BackoffPolicy(base_seconds=1.0, factor=1.0,
                               cap_seconds=10.0, jitter=0.25, seed=3)
        for n in range(50):
            assert 0.75 <= policy.delay(n) <= 1.25

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_seconds=-1)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy().delay(-1)


def fast_backoff():
    return BackoffPolicy(base_seconds=0.01, cap_seconds=0.05, seed=0)


class EventLog:
    def __init__(self):
        self.events = []

    def __call__(self, kind, **info):
        self.events.append((kind, info))

    def kinds(self):
        return [kind for kind, _info in self.events]


class TestSupervisedPool:
    def test_healthy_batch_completes(self):
        jobs = [(i, tiny_spec(seed=i)) for i in range(3)]
        results = SupervisedPool(workers=2,
                                 backoff=fast_backoff()).run(jobs)
        assert sorted(results) == [0, 1, 2]
        for end in results.values():
            assert end.kind == END_OK
            assert end.payload["status"] == "ok"
            assert end.crashes == 0

    def test_killed_worker_job_requeues_and_recovers(self, monkeypatch,
                                                     tmp_path):
        monkeypatch.setenv(CHAOS_ENV, "kill@1")
        monkeypatch.setenv(CHAOS_ONCE_ENV, str(tmp_path / "once"))
        log = EventLog()
        jobs = [(i, tiny_spec(seed=i)) for i in range(3)]
        results = SupervisedPool(workers=2, backoff=fast_backoff(),
                                 on_event=log).run(jobs)
        assert all(end.kind == END_OK for end in results.values())
        assert sum(end.crashes for end in results.values()) == 1
        kinds = log.kinds()
        # A replacement spawn ("worker_restart") is not guaranteed here:
        # the surviving worker may absorb the requeued job on its own.
        assert "crashed" in kinds and "requeued" in kinds
        assert "backoff" in kinds

    def test_interpreter_abort_is_a_crash_too(self, monkeypatch,
                                              tmp_path):
        monkeypatch.setenv(CHAOS_ENV, "exit@1")
        monkeypatch.setenv(CHAOS_ONCE_ENV, str(tmp_path / "once"))
        log = EventLog()
        jobs = [(i, tiny_spec(seed=i)) for i in range(2)]
        results = SupervisedPool(workers=1, backoff=fast_backoff(),
                                 on_event=log).run(jobs)
        assert all(end.kind == END_OK for end in results.values())
        reasons = [info["reason"] for kind, info in log.events
                   if kind == "crashed"]
        assert reasons and "exit code 86" in reasons[0]
        # A single-worker pool must respawn to make progress.
        assert "worker_restart" in log.kinds()

    def test_poison_spec_is_isolated(self, monkeypatch):
        specs = [tiny_spec(seed=i) for i in range(3)]
        poison = specs[1]
        monkeypatch.setenv(CHAOS_ENV,
                           "kill@spec=%s" % poison.short_hash())
        monkeypatch.delenv(CHAOS_ONCE_ENV, raising=False)
        results = SupervisedPool(workers=2, crash_retries=1,
                                 backoff=fast_backoff()).run(
            list(enumerate(specs)))
        assert results[1].kind == END_CRASHED
        assert results[1].crashes == 2
        assert "abandoned after 2 crash(es)" in results[1].payload
        assert results[0].kind == END_OK
        assert results[2].kind == END_OK

    def test_no_crash_retries_poisons_on_first_death(self, monkeypatch):
        spec = tiny_spec(seed=1)
        monkeypatch.setenv(CHAOS_ENV, "kill@spec=%s" % spec.short_hash())
        monkeypatch.delenv(CHAOS_ONCE_ENV, raising=False)
        results = SupervisedPool(workers=1, crash_retries=0,
                                 backoff=fast_backoff()).run([(0, spec)])
        assert results[0].kind == END_CRASHED
        assert results[0].crashes == 1

    def test_raise_budget_exhaustion_yields_error(self, monkeypatch):
        spec = tiny_spec(seed=1)
        monkeypatch.setenv(CHAOS_ENV, "oom@spec=%s" % spec.short_hash())
        monkeypatch.delenv(CHAOS_ONCE_ENV, raising=False)
        results = SupervisedPool(workers=1, retries=1,
                                 backoff=fast_backoff()).run([(0, spec)])
        assert results[0].kind == END_ERROR
        assert results[0].attempts == 2
        assert "MemoryError" in results[0].payload

    def test_crash_does_not_consume_raise_budget(self, monkeypatch,
                                                 tmp_path):
        # The first execution SIGKILLs its worker (once, sweep-wide);
        # the execution after that raises (also once).  With retries=1
        # the raise must still be retried -- a crash-requeued dispatch
        # is not allowed to eat the raise budget.
        spec = tiny_spec(seed=1)
        monkeypatch.setenv(CHAOS_ENV,
                           "kill@1,oom@spec=%s" % spec.short_hash())
        monkeypatch.setenv(CHAOS_ONCE_ENV, str(tmp_path / "once"))
        results = SupervisedPool(workers=1, retries=1,
                                 backoff=fast_backoff()).run([(0, spec)])
        assert results[0].kind == END_OK
        assert results[0].crashes == 1
        assert results[0].attempts == 3  # crash, raise, success

    def test_hung_worker_is_killed_and_job_requeued(self, monkeypatch,
                                                    tmp_path):
        monkeypatch.setenv(CHAOS_ENV, "hang@1")
        monkeypatch.setenv(CHAOS_ONCE_ENV, str(tmp_path / "once"))
        log = EventLog()
        results = SupervisedPool(workers=1, timeout_seconds=3.0,
                                 hang_grace=0.2, backoff=fast_backoff(),
                                 on_event=log).run(
            [(0, tiny_spec(seed=1))])
        assert results[0].kind == END_OK
        reasons = [info["reason"] for kind, info in log.events
                   if kind == "crashed"]
        assert reasons and "hung" in reasons[0]

    def test_empty_batch(self):
        assert SupervisedPool(workers=2).run([]) == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisedPool(workers=0)
        with pytest.raises(ValueError):
            SupervisedPool(workers=1, retries=-1)
        with pytest.raises(ValueError):
            SupervisedPool(workers=1, crash_retries=-1)
