"""Tests for the trace job kind and the shared grid builder."""

import pytest

from repro.orchestrator import (
    DEFAULT_WORKLOADS,
    JobSpec,
    KIND_TRACE,
    build_grid,
    canonical_workloads,
    parse_controller,
)
from repro.traces import Trace, TraceStore

HASH = "ab" * 32


def trace_spec(**kwargs):
    kwargs.setdefault("kind", KIND_TRACE)
    kwargs.setdefault("workload", HASH)
    kwargs.setdefault("cycles", 1000)
    return JobSpec(**kwargs)


@pytest.fixture
def store(tmp_path):
    return TraceStore(root=str(tmp_path / "traces"))


class TestTraceSpec:
    def test_workload_must_be_a_content_hash(self):
        with pytest.raises(ValueError,
                           match="64-hex content hash as workload"):
            trace_spec(workload="fixture")

    def test_uppercase_hash_rejected(self):
        with pytest.raises(ValueError, match="64-hex"):
            trace_spec(workload=HASH.upper())

    def test_faults_rejected(self):
        with pytest.raises(ValueError,
                           match="trace jobs cannot inject machine "
                                 "faults"):
            trace_spec(fault="stuck_low", delay=2)

    def test_watchdog_bounds_forced_none(self):
        spec = trace_spec(watchdog_bounds=(0.5, 1.5))
        assert spec.watchdog_bounds is None

    def test_warmup_defaults_to_zero_head_skip(self):
        assert trace_spec().warmup_instructions == 0
        # run-kind jobs keep their 60000-instruction default.
        run = JobSpec(workload="swim", cycles=1000)
        assert run.warmup_instructions == 60000

    def test_label_prefixes_the_short_hash(self):
        spec = trace_spec(delay=2)
        assert spec.label().startswith("trace:" + HASH[:12])
        assert "fu_dl1_il1:2" in spec.label()

    def test_dict_roundtrip_preserves_hash(self):
        spec = trace_spec(delay=2, error=0.01)
        back = JobSpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.content_hash() == spec.content_hash()
        assert back.kind == KIND_TRACE

    def test_hash_differs_from_run_kind(self):
        # Same knobs, different kind: must never collide in the cache.
        trace = trace_spec()
        assert trace.content_hash() != JobSpec(
            workload="swim", cycles=1000,
            warmup_instructions=0).content_hash()


class TestCanonicalWorkloads:
    def test_benchmarks_pass_through(self, store):
        canonical, _ = canonical_workloads(["swim", "stressmark"],
                                           store=store)
        assert canonical == ["swim", "stressmark"]

    def test_unknown_name_is_a_clean_error(self, store):
        with pytest.raises(ValueError,
                           match="unknown workload 'nosuch' \\(known: "
                                 ".*'trace:NAME'"):
            canonical_workloads(["nosuch"], store=store)

    def test_trace_token_resolves_to_full_hash(self, store):
        digest = store.put(Trace([1.0, 2.0], name="fixture"))
        canonical, _ = canonical_workloads(
            ["trace:fixture", "trace:" + digest[:12]], store=store)
        assert canonical == ["trace:" + digest] * 2

    def test_unknown_trace_is_a_value_error(self, store):
        # Never a raw KeyError traceback at the CLI boundary.
        with pytest.raises(ValueError, match="unknown trace 'nope'"):
            canonical_workloads(["trace:nope"], store=store)


class TestBuildGrid:
    def test_default_workloads_documented(self):
        assert DEFAULT_WORKLOADS == ("swim",)

    def test_cross_product(self, store):
        specs, settings = build_grid(
            ["swim"], [150.0, 250.0], ["none", "fu_dl1_il1:2"],
            cycles=500, warmup=100, seed=3, store=store)
        assert len(specs) == 4
        assert settings["workloads"] == ["swim"]
        assert settings["impedances"] == [150.0, 250.0]
        assert settings["seed"] == 3

    def test_trace_tokens_become_trace_jobs(self, store):
        digest = store.put(Trace([1.0] * 50, name="fixture"))
        specs, settings = build_grid(
            ["trace:fixture"], [200.0], ["none"], cycles=500,
            store=store)
        assert [s.kind for s in specs] == [KIND_TRACE]
        assert specs[0].workload == digest
        assert settings["workloads"] == ["trace:" + digest]

    def test_duplicate_cells_collapse(self, store):
        digest = store.put(Trace([1.0] * 50, name="fixture"))
        specs, _ = build_grid(
            ["trace:fixture", "trace:" + digest], [200.0], ["none"],
            cycles=500, store=store)
        assert len(specs) == 1

    def test_trace_shorter_than_warmup(self, store):
        store.put(Trace([1.0] * 50, name="short"))
        with pytest.raises(ValueError,
                           match="trace short \\(.*\\) holds 50 "
                                 "samples, not more than the 50-cycle "
                                 "--warmup skip"):
            build_grid(["trace:short"], [200.0], ["none"], cycles=10,
                       warmup=50, store=store)

    def test_bad_controller_token(self, store):
        with pytest.raises(ValueError, match="unknown actuator"):
            build_grid(["swim"], [200.0], ["warpdrive"], cycles=500,
                       store=store)


class TestParseController:
    def test_none(self):
        assert parse_controller("none") is None

    def test_defaults(self):
        assert parse_controller("fu_dl1_il1") == ("fu_dl1_il1", 2, 0.0)

    def test_full_form(self):
        assert parse_controller("ideal:4:0.01") == ("ideal", 4, 0.01)

    def test_bad_tokens(self):
        for token in ("a:b:c:d", "fu_dl1_il1:x", "warpdrive"):
            with pytest.raises(ValueError):
                parse_controller(token)
