"""The PR's acceptance scenario, as a test: an 8-cell grid run with
more than one worker merges to bytes identical to the serial run, and
an immediate re-run is served entirely from the cache."""

import pytest

from repro.orchestrator import JobSpec, ResultCache, Runner, report_json


def grid_specs():
    """2 workloads x 2 impedance levels x (uncontrolled, controlled)."""
    specs = []
    for workload in ("swim", "mgrid"):
        for percent in (150.0, 200.0):
            specs.append(JobSpec(workload=workload, cycles=250,
                                 warmup_instructions=400, seed=9,
                                 impedance_percent=percent))
            specs.append(JobSpec(workload=workload, cycles=250,
                                 warmup_instructions=400, seed=9,
                                 impedance_percent=percent, delay=2,
                                 actuator_kind="fu_dl1_il1"))
    return specs


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("orchestrator-cache")


@pytest.fixture(scope="module")
def parallel_report(cache_dir):
    specs = grid_specs()
    cache = ResultCache(root=cache_dir, salt="accept")
    outcomes = Runner(jobs=2, cache=cache, progress=False).run(specs)
    return outcomes, report_json(outcomes)


class TestAcceptance:
    def test_grid_is_at_least_eight_cells(self):
        assert len(grid_specs()) == 8

    def test_parallel_run_completes_every_cell(self, parallel_report):
        outcomes, _ = parallel_report
        assert [o.result["status"] for o in outcomes] == ["ok"] * 8

    def test_parallel_matches_serial_byte_for_byte(self, parallel_report):
        _, parallel_text = parallel_report
        serial = Runner(jobs=1, cache=None, progress=False).run(
            grid_specs())
        assert report_json(serial) == parallel_text

    def test_rerun_is_pure_cache_and_byte_identical(self, parallel_report,
                                                    cache_dir):
        _, parallel_text = parallel_report
        cache = ResultCache(root=cache_dir, salt="accept")
        again = Runner(jobs=2, cache=cache, progress=False).run(
            grid_specs())
        assert all(o.cached for o in again)
        assert all(o.attempts == 0 for o in again)
        assert report_json(again) == parallel_text
