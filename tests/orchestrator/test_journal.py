"""Tests for the durable sweep journal: per-record checksums,
truncated-tail tolerance, replay semantics, and resume edge cases."""

import pytest

from repro.orchestrator import (
    JobSpec,
    JournalError,
    SweepJournal,
    replay_journal,
)
from repro.orchestrator.journal import decode_record, encode_record


def tiny_spec(**overrides):
    kwargs = dict(workload="swim", cycles=200, warmup_instructions=400,
                  seed=5, impedance_percent=200.0)
    kwargs.update(overrides)
    return JobSpec(**kwargs)


def ok_result(seed=0):
    return {"status": "ok", "ipc": 1.0 + seed, "emergencies": {}}


SETTINGS = {"workloads": ["swim"], "cycles": 200}


class TestRecordCodec:
    def test_round_trip(self):
        line = encode_record({"event": "begin", "schema": 1})
        body = decode_record(line)
        assert body == {"event": "begin", "schema": 1}

    def test_checksum_is_order_independent(self):
        a = encode_record({"event": "done", "job": "ab"})
        b = encode_record({"job": "ab", "event": "done"})
        assert a == b

    def test_tampered_record_rejected(self):
        line = encode_record({"event": "done", "job": "ab"})
        with pytest.raises(JournalError, match="checksum"):
            decode_record(line.replace('"ab"', '"cd"'))

    def test_missing_checksum_rejected(self):
        with pytest.raises(JournalError, match="checksum"):
            decode_record('{"event":"begin"}')

    def test_unparsable_line_rejected(self):
        with pytest.raises(JournalError, match="unparsable"):
            decode_record('{"event":"beg')


class TestSweepJournal:
    def test_fresh_refuses_existing_journal(self, tmp_path):
        path = tmp_path / "sweep.journal"
        with SweepJournal(path, fsync=False) as journal:
            journal.begin()
        with pytest.raises(JournalError, match="already exists"):
            SweepJournal(path, fresh=True)

    def test_fresh_accepts_empty_file(self, tmp_path):
        path = tmp_path / "sweep.journal"
        path.write_text("")
        with SweepJournal(path, fresh=True, fsync=False) as journal:
            journal.begin()
        assert journal.records_written == 1

    def test_write_after_close_raises(self, tmp_path):
        journal = SweepJournal(tmp_path / "j", fsync=False)
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.begin()

    def test_resume_truncates_torn_tail_before_appending(self, tmp_path):
        # A writer SIGKILLed mid-record leaves a torn final line.  A
        # resume must not append onto the fragment: that would merge
        # two records into one corrupt *mid-file* line, which replay
        # rightly refuses -- permanently bricking the journal.
        path = tmp_path / "sweep.journal"
        spec = tiny_spec(seed=1)
        with SweepJournal(path, fsync=False) as journal:
            journal.begin_sweep([spec], salt="s1")
        with open(path, "a") as fh:
            fh.write('{"event":"done","job":"feed')  # torn final write
        with SweepJournal(path, fsync=False) as journal:
            journal.resumed()
        state = replay_journal(path)
        assert state.resumed
        assert not state.dropped_tail
        assert state.specs == [spec]

    def test_resume_survives_repeated_torn_tails(self, tmp_path):
        path = tmp_path / "sweep.journal"
        spec = tiny_spec(seed=1)
        with SweepJournal(path, fsync=False) as journal:
            journal.begin_sweep([spec], salt="s1")
        for _ in range(2):  # crash, resume, crash again, resume again
            with open(path, "a") as fh:
                fh.write('{"event":"dis')
            with SweepJournal(path, fsync=False) as journal:
                journal.resumed()
        state = replay_journal(path)
        assert state.resumed and state.specs == [spec]

    def test_resume_of_fully_torn_file_starts_clean(self, tmp_path):
        # The pathological case: the very first record was torn, so
        # there is no newline anywhere in the file.
        path = tmp_path / "sweep.journal"
        path.write_text('{"event":"beg')
        spec = tiny_spec(seed=1)
        with SweepJournal(path, fsync=False) as journal:
            journal.begin_sweep([spec], salt="s1")
        state = replay_journal(path)
        assert not state.dropped_tail
        assert state.specs == [spec]


class TestReplay:
    def write_full_run(self, path, specs, results=None):
        with SweepJournal(path, fsync=False) as journal:
            journal.begin_sweep(specs, settings=SETTINGS, salt="s1")
            for n, spec in enumerate(specs):
                journal.dispatched(spec.content_hash(), 1)
                journal.done(spec.content_hash(),
                             (results or {}).get(n, ok_result(n)))
            journal.end()

    def test_round_trip(self, tmp_path):
        path = tmp_path / "j"
        specs = [tiny_spec(seed=1), tiny_spec(seed=2)]
        self.write_full_run(path, specs)
        state = replay_journal(path)
        assert state.specs == specs
        assert state.settings == SETTINGS
        assert state.salt == "s1"
        assert state.ended and not state.interrupted
        assert not state.dropped_tail
        assert set(state.results) == set(state.spec_hashes())
        assert state.pending_specs() == []

    def test_truncated_tail_is_dropped_silently(self, tmp_path):
        path = tmp_path / "j"
        specs = [tiny_spec(seed=1), tiny_spec(seed=2)]
        self.write_full_run(path, specs)
        with open(path, "a") as fh:
            fh.write('{"event":"done","job":"feed')  # torn final write
        state = replay_journal(path)
        assert state.dropped_tail
        assert len(state.results) == 2

    def test_corruption_before_the_tail_raises(self, tmp_path):
        path = tmp_path / "j"
        self.write_full_run(path, [tiny_spec(seed=1)])
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-4] + 'XXX"'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="line 2"):
            replay_journal(path)

    def test_blank_line_mid_file_raises(self, tmp_path):
        path = tmp_path / "j"
        self.write_full_run(path, [tiny_spec(seed=1)])
        lines = path.read_text().splitlines()
        lines.insert(1, "")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt"):
            replay_journal(path)

    def test_duplicate_done_is_last_write_wins(self, tmp_path):
        path = tmp_path / "j"
        spec = tiny_spec(seed=1)
        with SweepJournal(path, fsync=False) as journal:
            journal.begin_sweep([spec], salt="s1")
            journal.done(spec.content_hash(), ok_result(1))
            journal.done(spec.content_hash(), ok_result(7))
        state = replay_journal(path)
        assert state.results[spec.content_hash()] == ok_result(7)

    def test_nondeterministic_terminal_is_not_reusable(self, tmp_path):
        path = tmp_path / "j"
        good, bad = tiny_spec(seed=1), tiny_spec(seed=2)
        with SweepJournal(path, fsync=False) as journal:
            journal.begin_sweep([good, bad], salt="s1")
            journal.done(good.content_hash(), ok_result(1))
            journal.done(bad.content_hash(),
                         {"status": "crashed", "error": "sigkill"})
        state = replay_journal(path)
        assert good.content_hash() in state.results
        assert bad.content_hash() not in state.results
        assert state.pending_specs() == [bad]
        assert state.statuses[bad.content_hash()] == "crashed"

    def test_done_supersedes_earlier_crash_record(self, tmp_path):
        path = tmp_path / "j"
        spec = tiny_spec(seed=1)
        with SweepJournal(path, fsync=False) as journal:
            journal.begin_sweep([spec], salt="s1")
            journal.crashed(spec.content_hash(), 1, "exit code -9")
            journal.dispatched(spec.content_hash(), 2)
            journal.done(spec.content_hash(), ok_result(1))
        state = replay_journal(path)
        assert state.results[spec.content_hash()] == ok_result(1)
        assert state.pending_specs() == []

    def test_interrupted_and_resumed_markers(self, tmp_path):
        path = tmp_path / "j"
        spec = tiny_spec(seed=1)
        with SweepJournal(path, fsync=False) as journal:
            journal.begin_sweep([spec], salt="s1")
            journal.interrupted()
        with SweepJournal(path, fsync=False) as journal:
            journal.resumed()
        state = replay_journal(path)
        assert state.interrupted and state.resumed and not state.ended

    def test_salt_mismatch_discards_results_keeps_specs(self, tmp_path):
        path = tmp_path / "j"
        specs = [tiny_spec(seed=1), tiny_spec(seed=2)]
        self.write_full_run(path, specs)
        state = replay_journal(path, expected_salt="other-code")
        assert state.specs == specs
        assert state.results == {}
        assert state.pending_specs() == specs

    def test_matching_salt_keeps_results(self, tmp_path):
        path = tmp_path / "j"
        self.write_full_run(path, [tiny_spec(seed=1)])
        assert len(replay_journal(path, expected_salt="s1").results) == 1

    def test_queued_hash_mismatch_raises(self, tmp_path):
        path = tmp_path / "j"
        record = encode_record({"event": "queued", "job": "00" * 32,
                                "spec": tiny_spec().to_dict()})
        path.write_text(record + "\n" + record + "\n")
        with pytest.raises(JournalError, match="does not match"):
            replay_journal(path)

    def test_unknown_event_is_skipped(self, tmp_path):
        path = tmp_path / "j"
        spec = tiny_spec(seed=1)
        with SweepJournal(path, fsync=False) as journal:
            journal.begin_sweep([spec], salt="s1")
            journal._write({"event": "from-the-future", "x": 1})
            journal.done(spec.content_hash(), ok_result(1))
        state = replay_journal(path)
        assert state.results[spec.content_hash()] == ok_result(1)

    def test_duplicate_queued_is_deduplicated(self, tmp_path):
        path = tmp_path / "j"
        spec = tiny_spec(seed=1)
        with SweepJournal(path, fsync=False) as journal:
            journal.begin_sweep([spec], salt="s1")
            journal.queued(spec)
        state = replay_journal(path)
        assert state.specs == [spec]


class TestWriteFaults:
    """The journal's fail-loud domain: an append that cannot persist
    raises :class:`JournalWriteError`, closes the writer, and leaves
    the on-disk file replayable (at worst a torn tail)."""

    @pytest.fixture(autouse=True)
    def _clean_iofault(self, monkeypatch):
        from repro.faults import iofault

        monkeypatch.delenv(iofault.IOCHAOS_ENV, raising=False)
        monkeypatch.delenv(iofault.IOCHAOS_ONCE_ENV, raising=False)
        iofault.reset()
        yield
        iofault.reset()

    def _arm(self, monkeypatch, chaos):
        from repro.faults import iofault

        monkeypatch.setenv(iofault.IOCHAOS_ENV, chaos)
        iofault.reset()

    def test_enospc_append_raises_and_closes(self, tmp_path,
                                             monkeypatch):
        from repro.orchestrator import JournalWriteError

        path = str(tmp_path / "sweep.journal")
        journal = SweepJournal(path, fsync=False)
        journal.begin(settings=SETTINGS, salt="s")
        self._arm(monkeypatch, "enospc@journal")
        with pytest.raises(JournalWriteError, match="queued"):
            journal.queued(tiny_spec())
        # Fail loud closed the handle: nothing can append after the
        # failed record.
        with pytest.raises(JournalError, match="closed"):
            journal.interrupted()
        # What reached the disk before the fault replays cleanly.
        state = replay_journal(path)
        assert state.settings == SETTINGS

    def test_torn_append_leaves_replayable_journal(self, tmp_path,
                                                   monkeypatch):
        from repro.orchestrator import JournalWriteError

        path = str(tmp_path / "sweep.journal")
        spec = tiny_spec()
        journal = SweepJournal(path, fsync=False)
        journal.begin_sweep([spec], settings=SETTINGS, salt="s")
        self._arm(monkeypatch, "torn-write@journal")
        with pytest.raises(JournalWriteError):
            journal.done(spec.content_hash(), ok_result())
        monkeypatch.delenv("REPRO_IOCHAOS")
        # The half-written record is exactly the torn tail replay
        # tolerates; every earlier record survives.
        state = replay_journal(path)
        assert state.dropped_tail
        assert state.spec_hashes() == [spec.content_hash()]
        assert state.pending_specs() == [spec]
        # And the next writer trims the fragment and appends cleanly.
        with SweepJournal(path, fsync=False) as resumed:
            resumed.resumed()
            resumed.done(spec.content_hash(), ok_result())
        healed = replay_journal(path)
        assert not healed.dropped_tail
        assert healed.pending_specs() == []

    def test_fsync_fail_raises_journal_write_error(self, tmp_path,
                                                   monkeypatch):
        from repro.orchestrator import JournalWriteError

        path = str(tmp_path / "sweep.journal")
        journal = SweepJournal(path, fsync=True)
        self._arm(monkeypatch, "fsync-fail@journal")
        with pytest.raises(JournalWriteError, match="begin"):
            journal.begin(salt="s")

    def test_error_carries_path_and_event(self, tmp_path,
                                          monkeypatch):
        from repro.orchestrator import JournalWriteError

        path = str(tmp_path / "sweep.journal")
        journal = SweepJournal(path, fsync=False)
        self._arm(monkeypatch, "eio@journal")
        with pytest.raises(JournalWriteError) as info:
            journal.begin(salt="s")
        assert info.value.path == path
        assert info.value.event == "begin"
        # JournalWriteError is a JournalError is a ValueError, so
        # existing broad handlers still catch it.
        assert isinstance(info.value, JournalError)
