"""Tests for journal compaction and writer exclusivity."""

import pytest

from repro.orchestrator import (
    JobSpec,
    JournalError,
    SweepJournal,
    compact_journal,
    compacted_records,
    replay_journal,
)

try:
    import fcntl  # noqa: F401 - availability probe only
    HAVE_FCNTL = True
except ImportError:
    HAVE_FCNTL = False

needs_fcntl = pytest.mark.skipif(not HAVE_FCNTL,
                                 reason="no fcntl on this platform")


def _spec(percent=100.0):
    return JobSpec(workload="swim", cycles=500,
                   impedance_percent=percent, seed=11)


def _ok(value=1.0):
    return {"status": "ok", "value": value}


def _write_history(path, resume_cycles=3):
    """A journal with the bloat of several resume cycles."""
    spec_a, spec_b = _spec(100.0), _spec(200.0)
    with SweepJournal(path, fsync=False) as journal:
        journal.begin_sweep([spec_a, spec_b],
                            settings={"seed": 11}, salt="s1")
        journal.dispatched(spec_a.content_hash(), 1)
        journal.failed(spec_a.content_hash(), 1, "flake")
        journal.dispatched(spec_a.content_hash(), 2)
        journal.done(spec_a.content_hash(), _ok(1.0))
        journal.interrupted()
    for _ in range(resume_cycles):
        with SweepJournal(path, fsync=False) as journal:
            journal.resumed()
            journal.done(spec_a.content_hash(), _ok(1.0))
            journal.dispatched(spec_b.content_hash(), 1)
            journal.interrupted()
    return spec_a, spec_b


class TestCompactedRecords:
    def test_replay_equivalence(self, tmp_path):
        path = tmp_path / "sweep.journal"
        _write_history(str(path))
        before = replay_journal(str(path))
        records = compacted_records(before)
        events = [r["event"] for r in records]
        assert events == ["begin", "queued", "queued", "done",
                          "interrupted"]

    def test_ended_journal_keeps_end_and_drops_interrupted(self,
                                                           tmp_path):
        path = tmp_path / "done.journal"
        spec = _spec()
        with SweepJournal(str(path), fsync=False) as journal:
            journal.begin_sweep([spec], salt="s1")
            journal.interrupted()   # an earlier life stopped early...
            journal.done(spec.content_hash(), _ok())
            journal.end()           # ...but this one completed
        records = compacted_records(replay_journal(str(path)))
        assert [r["event"] for r in records] == \
            ["begin", "queued", "done", "end"]


class TestCompactJournal:
    def test_shrinks_and_preserves_state(self, tmp_path):
        path = tmp_path / "sweep.journal"
        spec_a, spec_b = _write_history(str(path))
        before = replay_journal(str(path))
        stats = compact_journal(str(path), fsync=False)
        assert stats["records_after"] < stats["records_before"]
        assert stats["bytes_after"] < stats["bytes_before"]
        after = replay_journal(str(path))
        assert after.spec_hashes() == before.spec_hashes()
        assert after.results == before.results
        assert after.settings == before.settings
        assert after.salt == before.salt
        assert after.interrupted == before.interrupted
        assert after.ended == before.ended
        # Dispatched/failed/resumed bloat is gone; cell B is simply
        # pending again, which is what it was.
        assert after.statuses[spec_b.content_hash()] == "queued"
        assert after.pending_specs() == [spec_b]

    def test_compacted_journal_is_appendable(self, tmp_path):
        path = tmp_path / "sweep.journal"
        _spec_a, spec_b = _write_history(str(path))
        compact_journal(str(path), fsync=False)
        with SweepJournal(str(path), fsync=False) as journal:
            journal.resumed()
            journal.done(spec_b.content_hash(), _ok(2.0))
            journal.end()
        state = replay_journal(str(path))
        assert state.ended
        assert state.pending_specs() == []

    def test_idempotent(self, tmp_path):
        path = tmp_path / "sweep.journal"
        _write_history(str(path))
        compact_journal(str(path), fsync=False)
        first = path.read_bytes()
        stats = compact_journal(str(path), fsync=False)
        assert path.read_bytes() == first
        assert stats["records_before"] == stats["records_after"]

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            compact_journal(str(tmp_path / "absent.journal"))

    def test_torn_tail_is_dropped_not_kept(self, tmp_path):
        path = tmp_path / "sweep.journal"
        _write_history(str(path))
        with open(path, "ab") as fh:
            fh.write(b'{"event":"done","jo')   # killed mid-record
        compact_journal(str(path), fsync=False)
        state = replay_journal(str(path))
        assert not state.dropped_tail   # the fragment is gone for good

    def test_method_keeps_journal_writable(self, tmp_path):
        path = tmp_path / "sweep.journal"
        spec = _spec()
        journal = SweepJournal(str(path), fsync=False)
        journal.begin_sweep([spec], salt="s1")
        journal.done(spec.content_hash(), _ok())
        journal.dispatched(spec.content_hash(), 1)
        stats = journal.compact()
        assert stats["records_after"] == 3   # begin, queued, done
        journal.end()                        # still open for appends
        journal.close()
        assert replay_journal(str(path)).ended

    def test_method_on_closed_journal_raises(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "j"), fsync=False)
        journal.close()
        with pytest.raises(JournalError):
            journal.compact()


@needs_fcntl
class TestWriterExclusivity:
    def test_second_writer_fails_fast(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        journal = SweepJournal(path, fsync=False)
        try:
            with pytest.raises(JournalError, match="another live writer"):
                SweepJournal(path, fsync=False)
        finally:
            journal.close()

    def test_lock_released_on_close(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        SweepJournal(path, fsync=False).close()
        second = SweepJournal(path, fsync=False)
        second.close()

    def test_compact_refuses_live_journal(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        journal = SweepJournal(path, fsync=False)
        journal.begin(salt="s1")
        try:
            with pytest.raises(JournalError, match="another live writer"):
                compact_journal(path, fsync=False)
        finally:
            journal.close()

    def test_trim_waits_for_the_lock(self, tmp_path):
        # A second opener must fail *before* truncating the torn tail:
        # the fragment belongs to the live writer's in-flight record.
        path = str(tmp_path / "sweep.journal")
        journal = SweepJournal(path, fsync=False)
        journal.begin(salt="s1")
        with open(path, "ab") as fh:
            fh.write(b'{"torn')
        size = (tmp_path / "sweep.journal").stat().st_size
        with pytest.raises(JournalError):
            SweepJournal(path, fsync=False)
        assert (tmp_path / "sweep.journal").stat().st_size == size
        journal.close()


class TestCompactUnderStorageFaults:
    """The journal-compaction failure domain: a compaction that cannot
    land must leave the original journal byte-identical, readable, and
    unlocked -- compaction is maintenance, never a correctness risk."""

    @pytest.fixture(autouse=True)
    def _clean_iofault(self, monkeypatch):
        from repro.faults import iofault

        monkeypatch.delenv(iofault.IOCHAOS_ENV, raising=False)
        monkeypatch.delenv(iofault.IOCHAOS_ONCE_ENV, raising=False)
        iofault.reset()
        yield
        iofault.reset()

    def _faulted_compact(self, tmp_path, monkeypatch, chaos,
                         match=None):
        from repro.faults import iofault

        path = tmp_path / "sweep.journal"
        _write_history(str(path))
        original = path.read_bytes()
        monkeypatch.setenv(iofault.IOCHAOS_ENV, chaos)
        iofault.reset()
        with pytest.raises(OSError, match=match):
            compact_journal(str(path), fsync=False)
        monkeypatch.delenv(iofault.IOCHAOS_ENV)
        iofault.reset()
        return path, original

    def test_enospc_leaves_original_intact(self, tmp_path,
                                           monkeypatch):
        path, original = self._faulted_compact(
            tmp_path, monkeypatch, "enospc@journal",
            match="No space left")
        assert path.read_bytes() == original
        state = replay_journal(str(path))
        assert len(state.specs) == 2

    def test_rename_fail_leaves_original_intact(self, tmp_path,
                                                monkeypatch):
        path, original = self._faulted_compact(
            tmp_path, monkeypatch, "rename-fail@journal")
        assert path.read_bytes() == original
        # The failed rename's temp file was cleaned up too.
        leftovers = [name for name in path.parent.iterdir()
                     if name.name != path.name]
        assert leftovers == []

    @needs_fcntl
    def test_flock_released_after_failed_compact(self, tmp_path,
                                                 monkeypatch):
        path, _original = self._faulted_compact(
            tmp_path, monkeypatch, "enospc@journal")
        # A failed compaction must not leave the journal locked: a new
        # writer (the retrying sweep) opens it cleanly.
        journal = SweepJournal(str(path), fsync=False)
        journal.resumed()
        journal.close()

    def test_compact_method_reopens_after_failure(self, tmp_path,
                                                  monkeypatch):
        from repro.faults import iofault

        path = tmp_path / "sweep.journal"
        spec = _spec()
        journal = SweepJournal(str(path), fsync=False)
        journal.begin_sweep([spec], salt="s1")
        journal.done(spec.content_hash(), _ok())
        monkeypatch.setenv(iofault.IOCHAOS_ENV, "rename-fail@journal")
        iofault.reset()
        with pytest.raises(OSError):
            journal.compact()
        monkeypatch.delenv(iofault.IOCHAOS_ENV)
        iofault.reset()
        # The method's finally-reopen kept the journal appendable.
        journal.end()
        journal.close()
        assert replay_journal(str(path)).ended
