"""Tests for JobSpec canonicalization and content hashing."""

import pytest

from repro.orchestrator import KIND_THRESHOLDS, JobSpec


class TestCanonicalForm:
    def test_round_trips_through_dict(self):
        spec = JobSpec(workload="swim", cycles=1000, seed=7,
                       impedance_percent=150, delay=2, error=0.01,
                       actuator_kind="fu_dl1", fault="dropout",
                       fault_start=100, stuck_cycles=50)
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.to_dict() == spec.to_dict()

    def test_hash_stable_across_key_order(self):
        spec = JobSpec(workload="swim", delay=2, fault="stuck_low")
        shuffled = dict(reversed(list(spec.to_dict().items())))
        assert JobSpec.from_dict(shuffled).content_hash() == \
            spec.content_hash()

    def test_hash_insensitive_to_int_float_literals(self):
        a = JobSpec(workload="swim", impedance_percent=200)
        b = JobSpec(workload="swim", impedance_percent=200.0)
        assert a.content_hash() == b.content_hash()

    def test_hash_changes_with_any_knob(self):
        base = JobSpec(workload="swim", delay=2)
        assert JobSpec(workload="mgrid", delay=2).content_hash() != \
            base.content_hash()
        assert JobSpec(workload="swim", delay=3).content_hash() != \
            base.content_hash()
        assert JobSpec(workload="swim", delay=2,
                       seed=1).content_hash() != base.content_hash()

    def test_warmup_defaults_per_workload(self):
        assert JobSpec(workload="swim").warmup_instructions == 60000
        assert JobSpec(workload="stressmark").warmup_instructions == 2000

    def test_uncontrolled_normalizes_controller_knobs(self):
        a = JobSpec(workload="swim", delay=None, error=0.02,
                    actuator_kind="fu_dl1", fault_start=7, stuck_cycles=9)
        b = JobSpec(workload="swim", delay=None)
        assert a.content_hash() == b.content_hash()

    def test_immutable(self):
        spec = JobSpec(workload="swim")
        with pytest.raises(AttributeError):
            spec.cycles = 5


class TestValidation:
    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            JobSpec(workload="swim", delay=2, fault="gremlins")

    def test_fault_requires_controlled_loop(self):
        with pytest.raises(ValueError, match="controlled"):
            JobSpec(workload="swim", fault="dropout")

    def test_unknown_actuator_rejected(self):
        with pytest.raises(ValueError, match="unknown actuator"):
            JobSpec(workload="swim", delay=2, actuator_kind="warp")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec(workload="swim", kind="telepathy")

    def test_run_needs_workload(self):
        with pytest.raises(ValueError, match="workload"):
            JobSpec()

    def test_cycles_must_be_positive_int(self):
        with pytest.raises(ValueError):
            JobSpec(workload="swim", cycles=0)
        with pytest.raises(ValueError):
            JobSpec(workload="swim", cycles=2.5)

    def test_watchdog_bounds_ordered(self):
        with pytest.raises(ValueError, match="v_min < v_max"):
            JobSpec(workload="swim", watchdog_bounds=(1.2, 0.9))

    def test_from_dict_rejects_unknown_fields(self):
        data = JobSpec(workload="swim").to_dict()
        data["frobnicate"] = 1
        with pytest.raises(ValueError, match="unknown JobSpec fields"):
            JobSpec.from_dict(data)


class TestThresholdsKind:
    def test_normalizes_run_knobs(self):
        spec = JobSpec.thresholds(200, delay=3)
        assert spec.kind == KIND_THRESHOLDS
        assert spec.workload is None
        assert spec.cycles == 0
        assert spec.fault is None

    def test_requires_delay(self):
        with pytest.raises(ValueError, match="delay"):
            JobSpec(kind=KIND_THRESHOLDS)

    def test_round_trips(self):
        spec = JobSpec.thresholds(150, delay=4, actuator_kind="fu_dl1")
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_label_mentions_design_point(self):
        label = JobSpec.thresholds(150, delay=4).label()
        assert "thresholds" in label and "150" in label
