"""Tests for the batch runner: structured failures, retries, caching,
and serial-vs-parallel byte stability."""

import pytest

from repro.orchestrator import (
    JobSpec,
    ResultCache,
    Runner,
    report_json,
)
from repro.orchestrator.runner import default_jobs, merged_report
from repro.telemetry import MetricsRegistry, SpanProfiler, Telemetry


def tiny_spec(**overrides):
    kwargs = dict(workload="swim", cycles=200, warmup_instructions=400,
                  seed=5, impedance_percent=200.0)
    kwargs.update(overrides)
    return JobSpec(**kwargs)


#: Bounds the healthy loop (around 1.0 V nominal) can never leave, so
#: the watchdog trips on the very first sample: a deliberately
#: diverging, yet perfectly declarative, job.
DIVERGING_BOUNDS = (1.49, 1.5)


class TestStructuredFailures:
    def test_diverging_job_reports_without_killing_siblings(self):
        specs = [tiny_spec(seed=1),
                 tiny_spec(seed=2, watchdog_bounds=DIVERGING_BOUNDS),
                 tiny_spec(seed=3)]
        outcomes = Runner(jobs=2, progress=False).run(specs)
        statuses = [o.result["status"] for o in outcomes]
        assert statuses == ["ok", "diverged", "ok"]
        bad = outcomes[1].result
        assert "diverged" in bad["error"]
        assert bad["cycles"] >= 1

    def test_diverged_result_is_cached(self, tmp_path):
        cache = ResultCache(root=tmp_path, salt="s")
        spec = tiny_spec(watchdog_bounds=DIVERGING_BOUNDS)
        first = Runner(jobs=1, cache=cache, progress=False).run([spec])[0]
        assert first.result["status"] == "diverged"
        assert not first.cached
        second = Runner(jobs=1, cache=cache, progress=False).run([spec])[0]
        assert second.cached
        assert second.result == first.result

    def test_timeout_fires_under_tiny_budget(self, tmp_path):
        cache = ResultCache(root=tmp_path, salt="s")
        spec = tiny_spec(cycles=5000, warmup_instructions=0)
        runner = Runner(jobs=1, cache=cache, timeout_seconds=1e-6,
                        progress=False)
        outcome = runner.run([spec])[0]
        assert outcome.result["status"] == "budget"
        assert "wall-clock" in outcome.result["error"]
        # A timeout is transient: it must never be memoized.
        assert cache.get(spec) is None

    def test_merged_report_carries_structured_errors(self):
        def explode(spec, timeout_seconds=None):
            raise RuntimeError("flaky infrastructure")

        outcomes = Runner(jobs=1, retries=0, progress=False,
                          execute=explode).run([tiny_spec()])
        assert outcomes[0].result["status"] == "error"
        assert "flaky infrastructure" in outcomes[0].result["error"]
        text = report_json(outcomes)
        assert "flaky infrastructure" in text


class TestRetries:
    def test_transient_failure_retried_then_succeeds(self):
        calls = {"n": 0}

        def flaky(spec, timeout_seconds=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("worker lost")
            return {"status": "ok", "value": 42}

        outcome = Runner(jobs=1, retries=1, progress=False,
                         execute=flaky).run([tiny_spec()])[0]
        assert outcome.result == {"status": "ok", "value": 42}
        assert outcome.attempts == 2

    def test_retries_are_bounded(self):
        calls = {"n": 0}

        def always_down(spec, timeout_seconds=None):
            calls["n"] += 1
            raise OSError("still down")

        outcome = Runner(jobs=1, retries=2, progress=False,
                         execute=always_down).run([tiny_spec()])[0]
        assert outcome.result["status"] == "error"
        assert calls["n"] == 3

    def test_one_bad_job_does_not_kill_siblings(self):
        def partial(spec, timeout_seconds=None):
            if spec.seed == 2:
                raise RuntimeError("cursed cell")
            return {"status": "ok", "seed": spec.seed}

        outcomes = Runner(jobs=1, retries=0, progress=False,
                          execute=partial).run(
            [tiny_spec(seed=1), tiny_spec(seed=2), tiny_spec(seed=3)])
        assert [o.result["status"] for o in outcomes] == \
            ["ok", "error", "ok"]
        assert outcomes[2].result["seed"] == 3


class TestCaching:
    def test_second_run_is_all_hits_and_byte_identical(self, tmp_path):
        cache = ResultCache(root=tmp_path, salt="s")
        specs = [tiny_spec(seed=s) for s in (1, 2)]
        cold = Runner(jobs=1, cache=cache, progress=False).run(specs)
        warm = Runner(jobs=1, cache=cache, progress=False).run(specs)
        assert [o.cached for o in cold] == [False, False]
        assert [o.cached for o in warm] == [True, True]
        assert report_json(warm) == report_json(cold)

    def test_outcome_dict_hides_execution_provenance(self):
        outcome = Runner(jobs=1, progress=False).run([tiny_spec()])[0]
        assert set(outcome.to_dict()) == {"spec", "result"}


class TestWorkerResult:
    def test_result_shape(self):
        outcome = Runner(jobs=1, progress=False).run(
            [tiny_spec(delay=2, actuator_kind="fu_dl1_il1")])[0]
        result = outcome.result
        assert result["status"] == "ok"
        assert result["cycles"] == 200
        assert result["ipc"] > 0
        assert result["controller"]["actuator"] == "fu_dl1_il1"
        assert result["emergencies"]["cycles"] == 200

    def test_uncontrolled_has_no_controller_summary(self):
        result = Runner(jobs=1, progress=False).run([tiny_spec()])[0].result
        assert result["controller"] is None

    def test_thresholds_job(self):
        outcome = Runner(jobs=1, progress=False).run(
            [JobSpec.thresholds(200, delay=2)])[0]
        thresholds = outcome.result["thresholds"]
        assert thresholds["v_low"] < thresholds["v_high"]
        assert thresholds["window_mv"] > 0


class TestExecutionSidecar:
    def test_execution_dict_shape(self):
        outcome = Runner(jobs=1, progress=False).run([tiny_spec()])[0]
        ex = outcome.execution_dict()
        assert set(ex) == {"attempts", "cached", "wall_seconds"}
        assert ex["attempts"] == 1
        assert ex["cached"] is False
        assert ex["wall_seconds"] > 0

    def test_cache_hit_rows_show_zero_attempts(self, tmp_path):
        cache = ResultCache(root=tmp_path, salt="s")
        spec = tiny_spec()
        Runner(jobs=1, cache=cache, progress=False).run([spec])
        warm = Runner(jobs=1, cache=cache, progress=False).run([spec])[0]
        ex = warm.execution_dict()
        assert ex == {"attempts": 0, "cached": True,
                      "wall_seconds": None}

    def test_default_report_has_no_execution_section(self):
        outcomes = Runner(jobs=1, progress=False).run([tiny_spec()])
        report = merged_report(outcomes)
        assert set(report) == {"schema", "settings", "jobs"}

    def test_execution_section_is_aligned_and_opt_in(self, tmp_path):
        cache = ResultCache(root=tmp_path, salt="s")
        specs = [tiny_spec(seed=1), tiny_spec(seed=2)]
        Runner(jobs=1, cache=cache, progress=False).run([specs[0]])
        outcomes = Runner(jobs=1, cache=cache, progress=False).run(specs)
        report = merged_report(outcomes, execution=True)
        assert set(report) == {"schema", "settings", "jobs",
                               "execution"}
        assert len(report["execution"]) == len(report["jobs"]) == 2
        assert report["execution"][0]["cached"] is True
        assert report["execution"][0]["attempts"] == 0
        assert report["execution"][1]["cached"] is False
        assert report["execution"][1]["attempts"] == 1
        # The job cells themselves are identical either way.
        assert report["jobs"] == merged_report(outcomes)["jobs"]

    def test_retry_attempts_surface_in_sidecar(self):
        calls = {"n": 0}

        def flaky(spec, timeout_seconds=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("worker lost")
            return {"status": "ok"}

        outcome = Runner(jobs=1, retries=1, progress=False,
                         execute=flaky).run([tiny_spec()])[0]
        assert outcome.execution_dict()["attempts"] == 2

    def test_report_json_execution_passthrough(self):
        outcomes = Runner(jobs=1, progress=False).run([tiny_spec()])
        assert '"execution"' not in report_json(outcomes)
        assert '"execution"' in report_json(outcomes, execution=True)


class TestRunnerTelemetry:
    def _telemetry(self):
        return Telemetry(metrics=MetricsRegistry(),
                         profiler=SpanProfiler())

    def test_counts_jobs_hits_and_misses(self, tmp_path):
        cache = ResultCache(root=tmp_path, salt="s")
        specs = [tiny_spec(seed=1), tiny_spec(seed=2)]
        Runner(jobs=1, cache=cache, progress=False).run([specs[0]])
        telemetry = self._telemetry()
        Runner(jobs=1, cache=cache, progress=False,
               telemetry=telemetry).run(specs)
        counters = telemetry.metrics.to_dict()["counters"]
        assert counters["orchestrator.jobs"] == 2
        assert counters["orchestrator.cache_hits"] == 1
        assert counters["orchestrator.cache_misses"] == 1

    def test_counts_retries_and_errors(self):
        def always_down(spec, timeout_seconds=None):
            raise OSError("down")

        telemetry = self._telemetry()
        Runner(jobs=1, retries=2, progress=False, execute=always_down,
               telemetry=telemetry).run([tiny_spec()])
        counters = telemetry.metrics.to_dict()["counters"]
        assert counters["orchestrator.errors"] == 1
        assert counters["orchestrator.retries"] == 2

    def test_job_spans_recorded(self):
        telemetry = self._telemetry()
        Runner(jobs=1, progress=False, telemetry=telemetry).run(
            [tiny_spec()])
        counts = telemetry.profiler.counts()
        assert counts.get("orchestrator.job") == 1

    def test_outcomes_unchanged_by_telemetry(self):
        plain = Runner(jobs=1, progress=False).run([tiny_spec()])
        instrumented = Runner(jobs=1, progress=False,
                              telemetry=self._telemetry()).run(
            [tiny_spec()])
        assert report_json(plain) == report_json(instrumented)


class TestDefaults:
    def test_repro_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_repro_jobs_must_be_positive(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError):
            default_jobs()

    def test_bad_repro_jobs_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            default_jobs()

    def test_jobs_argument_validated(self):
        with pytest.raises(ValueError):
            Runner(jobs=0)


class TestStorageFaultDegradation:
    """The result cache's *degrade* failure domain, end to end: a
    sweep whose every cache write fails produces a byte-identical
    report, counts the failures, and leaves no residue on disk."""

    @pytest.fixture(autouse=True)
    def _clean_iofault(self, monkeypatch):
        from repro.faults import iofault

        monkeypatch.delenv(iofault.IOCHAOS_ENV, raising=False)
        monkeypatch.delenv(iofault.IOCHAOS_ONCE_ENV, raising=False)
        iofault.reset()
        yield
        iofault.reset()

    def test_cache_faults_never_change_results(self, tmp_path,
                                               monkeypatch):
        import os

        from repro.faults import iofault

        specs = [tiny_spec(seed=1), tiny_spec(seed=2)]
        clean_cache = ResultCache(root=tmp_path / "clean", salt="s")
        clean = Runner(jobs=1, cache=clean_cache,
                       progress=False).run(specs)
        monkeypatch.setenv(iofault.IOCHAOS_ENV, "enospc@cache")
        iofault.reset()
        faulted_cache = ResultCache(root=tmp_path / "faulted",
                                    salt="s")
        telemetry = Telemetry(metrics=MetricsRegistry(),
                              profiler=SpanProfiler())
        faulted = Runner(jobs=1, cache=faulted_cache, progress=False,
                         telemetry=telemetry).run(specs)
        assert report_json(faulted) == report_json(clean)
        assert faulted_cache.write_errors == 2
        counters = telemetry.metrics.to_dict()["counters"]
        assert counters["orchestrator.cache.write_errors"] == 2
        # Degrade cleans up after itself: no entries, no temp residue.
        leftovers = [name for _, _, names in
                     os.walk(str(tmp_path / "faulted"))
                     for name in names]
        assert leftovers == []

    def test_rename_fault_behaves_like_enospc(self, tmp_path,
                                              monkeypatch):
        import os

        from repro.faults import iofault

        monkeypatch.setenv(iofault.IOCHAOS_ENV, "rename-fail@cache")
        iofault.reset()
        cache = ResultCache(root=tmp_path, salt="s")
        spec = tiny_spec(seed=3)
        outcome = Runner(jobs=1, cache=cache,
                         progress=False).run([spec])[0]
        assert outcome.result["status"] == "ok"
        assert cache.write_errors == 1
        leftovers = [name for _, _, names in os.walk(str(tmp_path))
                     for name in names]
        assert leftovers == []
        # Disarmed, the very next sweep heals the cache.
        monkeypatch.delenv(iofault.IOCHAOS_ENV)
        iofault.reset()
        healed = Runner(jobs=1, cache=cache,
                        progress=False).run([spec])[0]
        assert healed.result == outcome.result
        assert os.path.exists(cache.path_for(spec))
