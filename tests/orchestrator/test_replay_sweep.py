"""Replay-sweep parity and trace-cache robustness.

The runner batches replay-eligible cells (uncontrolled or observe-only,
fixed workload) into :class:`~repro.orchestrator.replay.ReplayGroup`
units that capture the uarch+power trace once and replay it across
impedance/controller lanes.  The contract is *bitwise*: a replay sweep
and a ``replay=False`` lockstep sweep of the same grid produce
byte-identical :func:`~repro.orchestrator.runner.report_json` text, on
the serial path, the pool path, and through the capture cache -- this
module pins all of it, plus the capture cache's corrupt-entry
discipline and the hash-based suite-aggregate pairing.
"""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.orchestrator import (
    CurrentTraceCache,
    JobSpec,
    ReplayGroup,
    Runner,
    capture_key,
    execute_replay_group,
    replay_eligible,
    report_json,
)
from repro.orchestrator.replay import capture_trace
from repro.orchestrator.runner import JobOutcome, suite_aggregates
from repro.orchestrator.worker import execute_spec
from repro.telemetry import MetricsRegistry, Telemetry

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


@pytest.fixture(autouse=True)
def isolated_capture_cache(monkeypatch, tmp_path):
    """Every test gets a private capture-cache root (the per-process
    replay cache is keyed by ``REPRO_CACHE_DIR``, so pointing the env
    at a temp dir isolates both this process and pool workers)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield


def tiny_spec(**overrides):
    kwargs = dict(workload="swim", cycles=300, warmup_instructions=600,
                  seed=7, impedance_percent=200.0)
    kwargs.update(overrides)
    return JobSpec(**kwargs)


def observe_grid(**overrides):
    """A 3-impedance x 3-controller grid: uncontrolled, clean observe,
    and noisy observe -- all replay-eligible."""
    specs = []
    for impedance in (150.0, 250.0, 350.0):
        for delay, error in ((None, 0.0), (2, 0.0), (1, 0.02)):
            kwargs = dict(impedance_percent=impedance)
            if delay is not None:
                kwargs.update(delay=delay, error=error,
                              actuator_kind="observe")
            kwargs.update(overrides)
            specs.append(tiny_spec(**kwargs))
    return specs


def run_report(specs, replay, jobs=1):
    outcomes = Runner(jobs=jobs, progress=False, replay=replay).run(specs)
    return report_json(outcomes, settings={"grid": "test"})


class TestReplayEligibility:
    def test_eligible_cells(self):
        assert replay_eligible(tiny_spec())
        assert replay_eligible(tiny_spec(delay=2,
                                         actuator_kind="observe"))
        assert replay_eligible(tiny_spec(watchdog_bounds=(0.9, 1.1)))

    def test_actuating_faulted_and_stressmark_cells_stay_lockstep(self):
        assert not replay_eligible(tiny_spec(delay=2))
        assert not replay_eligible(
            tiny_spec(delay=2, actuator_kind="observe",
                      fault="stuck_low"))
        assert not replay_eligible(tiny_spec(workload="stressmark"))
        assert not replay_eligible(
            JobSpec(kind="thresholds", delay=2))

    def test_capture_key_ignores_lane_knobs(self):
        base = tiny_spec()
        assert capture_key(base) == capture_key(
            tiny_spec(impedance_percent=400.0, delay=3,
                      actuator_kind="observe",
                      watchdog_bounds=(0.9, 1.1)))
        assert capture_key(base) != capture_key(tiny_spec(seed=8))
        assert capture_key(base) != capture_key(tiny_spec(cycles=301))


class TestReportParity:
    def test_serial_replay_matches_lockstep_bytes(self):
        specs = observe_grid()
        assert run_report(specs, replay=True) == run_report(
            specs, replay=False)

    def test_pool_replay_matches_serial_lockstep_bytes(self):
        # Two workloads so the pool path sees two groups (one unit
        # would collapse to the inline path).
        specs = observe_grid() + observe_grid(workload="mgrid")
        assert run_report(specs, replay=True, jobs=2) == run_report(
            specs, replay=False)

    def test_diverged_lanes_match(self):
        bounds = (0.9965, 1.003)  # trips mid-run at high impedance
        specs = [tiny_spec(impedance_percent=p,
                           watchdog_bounds=bounds, **extra)
                 for p in (150.0, 300.0)
                 for extra in ({}, {"delay": 2,
                                    "actuator_kind": "observe"})]
        replayed = run_report(specs, replay=True)
        assert replayed == run_report(specs, replay=False)
        statuses = [job["result"]["status"]
                    for job in json.loads(replayed)["jobs"]]
        assert "diverged" in statuses

    def test_failsafe_lane_falls_back_to_exact_scalar_walk(self):
        # stuck_cycles=1 + noise latches the plausibility monitor, so
        # the vectorized controller fold must detect the trip and
        # replay the lane through the real controller state machine.
        spec = tiny_spec(impedance_percent=250.0, delay=1, error=0.03,
                         actuator_kind="observe", stuck_cycles=1,
                         watchdog_bounds=(0.2, 1.8))
        group_result = execute_replay_group(ReplayGroup([spec]))
        lane = group_result["results"][0]
        assert lane["controller"]["failsafe_active"]
        assert lane == execute_spec(spec)

    def test_mixed_grid_keeps_ineligible_cells_lockstep(self):
        actuating = tiny_spec(impedance_percent=250.0, delay=2)
        specs = observe_grid() + [actuating]
        outcomes = Runner(jobs=1, progress=False, replay=True).run(specs)
        assert (report_json(outcomes, settings={"grid": "test"})
                == run_report(specs, replay=False))
        # The actuating cell really ran: its controller summary names
        # the real actuator, not the observe stub.
        assert outcomes[-1].result["controller"]["actuator"] != "observe"

    def test_replay_telemetry_counters(self):
        telemetry = Telemetry(metrics=MetricsRegistry())
        specs = observe_grid()
        Runner(jobs=1, progress=False, replay=True,
               telemetry=telemetry).run(specs)
        metrics = telemetry.metrics
        assert metrics.counter("loop.replay_lanes").value == len(specs)
        assert metrics.counter(
            "orchestrator.replay.groups").value == 1
        assert metrics.counter(
            "orchestrator.capture.misses").value == 1
        # Same grid again: the capture comes back from the cache.
        telemetry2 = Telemetry(metrics=MetricsRegistry())
        Runner(jobs=1, progress=False, replay=True,
               telemetry=telemetry2).run(specs)
        assert telemetry2.metrics.counter(
            "orchestrator.capture.hits").value == 1
        assert telemetry2.metrics.counter(
            "orchestrator.capture.misses").value == 0

    def test_cached_capture_replays_identically(self):
        specs = observe_grid()
        first = run_report(specs, replay=True)   # capture miss
        second = run_report(specs, replay=True)  # capture hit
        assert first == second


class TestCaptureDeterminism:
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 3), cycles=st.sampled_from([150, 260]))
    def test_same_spec_same_checksum(self, seed, cycles):
        spec = tiny_spec(seed=seed, cycles=cycles,
                         warmup_instructions=400)
        trace_a, exc_a = capture_trace(spec)
        trace_b, exc_b = capture_trace(spec)
        assert exc_a is None and exc_b is None
        assert trace_a.checksum() == trace_b.checksum()
        assert trace_a.scalars() == trace_b.scalars()

    def test_checksum_stable_across_processes(self):
        spec = tiny_spec(cycles=200, warmup_instructions=400)
        trace, _ = capture_trace(spec)
        code = (
            "from repro.orchestrator.replay import capture_trace\n"
            "from repro.orchestrator.spec import JobSpec\n"
            "spec = JobSpec.from_dict(%r)\n"
            "print(capture_trace(spec)[0].checksum())\n"
            % (spec.to_dict(),))
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get(
            "PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True, text=True, check=True)
        assert proc.stdout.strip() == trace.checksum()


class TestTraceCacheIntegrity:
    def _group(self):
        return ReplayGroup([tiny_spec(impedance_percent=p)
                            for p in (150.0, 300.0)])

    def test_corrupt_entry_is_counted_integrity_miss(self, tmp_path):
        cache = CurrentTraceCache(root=tmp_path / "tc", salt="s")
        group = self._group()
        first = execute_replay_group(group, trace_cache=cache)
        assert first["capture"] == "miss"
        path = cache.path_for(capture_key(group.specs[0]))
        assert os.path.exists(path)
        with open(path, "r+b") as fh:
            fh.seek(0)
            fh.write(b"garbage!")
        again = execute_replay_group(group, trace_cache=cache)
        assert again["capture"] == "miss"
        assert cache.integrity_misses == 1
        assert again["results"] == first["results"]
        # The re-capture healed the entry.
        healed = execute_replay_group(group, trace_cache=cache)
        assert healed["capture"] == "hit"
        assert healed["results"] == first["results"]

    def test_truncated_entry_is_counted_integrity_miss(self, tmp_path):
        cache = CurrentTraceCache(root=tmp_path / "tc", salt="s")
        group = self._group()
        first = execute_replay_group(group, trace_cache=cache)
        path = cache.path_for(capture_key(group.specs[0]))
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
        again = execute_replay_group(group, trace_cache=cache)
        assert again["capture"] == "miss"
        assert cache.integrity_misses == 1
        assert again["results"] == first["results"]

    def test_wrong_salt_entry_misses(self, tmp_path):
        writer = CurrentTraceCache(root=tmp_path / "tc", salt="old")
        group = self._group()
        execute_replay_group(group, trace_cache=writer)
        reader = CurrentTraceCache(root=tmp_path / "tc", salt="new")
        key = capture_key(group.specs[0])
        assert reader.get(key, None) is None
        assert reader.integrity_misses == 0  # absent path, plain miss
        # Same salt but doctored meta: integrity miss.
        assert writer.get(key, {"tampered": True}) is None
        assert writer.integrity_misses == 1

    def test_budget_cut_capture_is_never_cached(self, tmp_path):
        cache = CurrentTraceCache(root=tmp_path / "tc", salt="s")
        # Long enough that the budget's sampled wall-clock check (every
        # 1024 cycles) actually fires mid-capture.
        group = ReplayGroup([tiny_spec(impedance_percent=p, cycles=4000)
                             for p in (150.0, 300.0)])
        result = execute_replay_group(group, trace_cache=cache,
                                      timeout_seconds=1e-9)
        assert {lane["status"] for lane in result["results"]} <= {
            "budget", "diverged"}
        assert not os.path.exists(
            cache.path_for(capture_key(group.specs[0])))


class TestSuiteAggregatePairing:
    def _outcome(self, spec, emergency_cycles):
        result = {
            "status": "ok", "error": None, "cycles": spec.cycles,
            "committed": spec.cycles, "ipc": 1.0, "energy": 1.0,
            "emergencies": {"emergency_cycles": emergency_cycles,
                            "v_min": 0.96},
            "controller": None,
        }
        return JobOutcome(spec, result)

    def test_pairing_is_by_spec_hash_not_list_order(self):
        """Two baselines differing only in watchdog bounds must pair
        with their own controlled cells; a tuple key over (workload,
        impedance, cycles, warmup, seed) collides them and scores the
        plain-bounds controlled cell against the wrong baseline."""
        wide = (0.2, 1.8)
        outcomes = [
            self._outcome(tiny_spec(), 10),
            self._outcome(tiny_spec(watchdog_bounds=wide), 2),
            # Controlled, no bounds: 5 < 10 is a win; against the
            # colliding wide-bounds baseline (2) it would be a loss.
            self._outcome(tiny_spec(delay=2, actuator_kind="observe"),
                          5),
            self._outcome(tiny_spec(delay=2, actuator_kind="observe",
                                    watchdog_bounds=wide), 1),
        ]
        rows = suite_aggregates(outcomes, {"spec2000": ["swim"]})
        record = rows["spec2000"]["controller"]
        assert record == {"wins": 2, "losses": 0, "ties": 0, "pairs": 2}

    def test_mixed_replay_lockstep_suite_rows_match(self):
        """The suites block is byte-identical whether the cells came
        off the replay path or the lockstep path."""
        suites = {"spec2000": ["swim"]}
        specs = observe_grid()
        replayed = Runner(jobs=1, progress=False, replay=True).run(specs)
        lockstep = Runner(jobs=1, progress=False,
                          replay=False).run(specs)
        assert (suite_aggregates(replayed, suites)
                == suite_aggregates(lockstep, suites))


class TestCaptureStorageFaults:
    """The capture cache's *degrade* failure domain: a store that
    cannot persist captures replays every lane from memory with
    bitwise-identical results, counts the failures, and leaves no
    residue."""

    @pytest.fixture(autouse=True)
    def _clean_iofault(self, monkeypatch):
        from repro.faults import iofault

        monkeypatch.delenv(iofault.IOCHAOS_ENV, raising=False)
        monkeypatch.delenv(iofault.IOCHAOS_ONCE_ENV, raising=False)
        iofault.reset()
        yield
        iofault.reset()

    def _group(self):
        return ReplayGroup([tiny_spec(impedance_percent=p)
                            for p in (150.0, 300.0)])

    @pytest.mark.parametrize("chaos", ["enospc@captures",
                                       "torn-write@captures",
                                       "rename-fail@captures"])
    def test_faulted_put_is_bitwise_transparent(self, tmp_path,
                                                monkeypatch, chaos):
        from repro.faults import iofault

        clean = execute_replay_group(
            self._group(),
            trace_cache=CurrentTraceCache(root=tmp_path / "clean",
                                          salt="s"))
        monkeypatch.setenv(iofault.IOCHAOS_ENV, chaos)
        iofault.reset()
        cache = CurrentTraceCache(root=tmp_path / "faulted", salt="s")
        faulted = execute_replay_group(self._group(),
                                       trace_cache=cache)
        assert faulted["results"] == clean["results"]
        assert faulted["capture"] == "miss"
        assert faulted["capture_write_error"] is True
        assert cache.write_errors == 1
        leftovers = [name for _, _, names in
                     os.walk(str(tmp_path / "faulted"))
                     for name in names]
        assert leftovers == []

    def test_runner_counts_capture_write_errors(self, tmp_path,
                                                monkeypatch):
        from repro.faults import iofault
        from repro.orchestrator import ResultCache

        monkeypatch.setenv(iofault.IOCHAOS_ENV, "enospc@captures")
        iofault.reset()
        telemetry = Telemetry(metrics=MetricsRegistry())
        runner = Runner(jobs=1, progress=False,
                        cache=ResultCache(root=tmp_path, salt="s"),
                        telemetry=telemetry)
        runner.trace_cache = CurrentTraceCache(root=tmp_path, salt="s")
        outcomes = runner.run([tiny_spec(impedance_percent=p)
                               for p in (150.0, 300.0)])
        assert all(o.result["status"] == "ok" for o in outcomes)
        counters = telemetry.metrics.to_dict()["counters"]
        assert counters["orchestrator.capture.write_errors"] == 1
