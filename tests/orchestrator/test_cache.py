"""Tests for the content-addressed result cache."""

import json
import os

import pytest

from repro.orchestrator import JobSpec, ResultCache
from repro.orchestrator.cache import default_cache_root, default_salt


@pytest.fixture
def spec():
    return JobSpec(workload="swim", cycles=100, seed=5)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path, salt="test-salt")


RESULT = {"status": "ok", "ipc": 1.25, "emergencies": {"cycles": 100}}


class TestHitMiss:
    def test_cold_cache_misses(self, cache, spec):
        assert cache.get(spec) is None
        assert cache.misses == 1

    def test_put_then_hit(self, cache, spec):
        cache.put(spec, RESULT)
        assert cache.get(spec) == RESULT
        assert cache.hits == 1

    def test_hit_across_dict_key_order(self, cache, spec):
        cache.put(spec, RESULT)
        shuffled = JobSpec.from_dict(
            dict(reversed(list(spec.to_dict().items()))))
        assert cache.get(shuffled) == RESULT

    def test_different_spec_misses(self, cache, spec):
        cache.put(spec, RESULT)
        other = JobSpec(workload="swim", cycles=101, seed=5)
        assert cache.get(other) is None

    def test_payload_bytes_are_stable(self, cache, spec):
        path1 = cache.put(spec, RESULT)
        data1 = open(path1, "rb").read()
        path2 = cache.put(spec, RESULT)
        assert path1 == path2
        assert open(path2, "rb").read() == data1


class TestSalt:
    def test_salt_change_invalidates(self, tmp_path, spec):
        ResultCache(root=tmp_path, salt="code-v1").put(spec, RESULT)
        assert ResultCache(root=tmp_path,
                           salt="code-v2").get(spec) is None
        assert ResultCache(root=tmp_path,
                           salt="code-v1").get(spec) == RESULT

    def test_default_salt_tracks_version(self):
        from repro import __version__
        assert __version__ in default_salt()


class TestCorruption:
    def test_garbage_entry_is_a_miss(self, cache, spec):
        cache.put(spec, RESULT)
        with open(cache.path_for(spec), "w") as fh:
            fh.write("{not json")
        assert cache.get(spec) is None

    def test_truncated_entry_is_a_miss(self, cache, spec):
        path = cache.put(spec, RESULT)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[:len(data) // 2])
        assert cache.get(spec) is None

    def test_spec_mismatch_is_a_miss(self, cache, spec):
        path = cache.put(spec, RESULT)
        payload = json.load(open(path))
        payload["spec"]["seed"] = 999
        with open(path, "w") as fh:
            json.dump(payload, fh)
        assert cache.get(spec) is None

    def test_result_without_status_is_a_miss(self, cache, spec):
        path = cache.put(spec, RESULT)
        payload = json.load(open(path))
        payload["result"] = {"weird": True}
        with open(path, "w") as fh:
            json.dump(payload, fh)
        assert cache.get(spec) is None

    def test_put_repairs_corrupted_entry(self, cache, spec):
        cache.put(spec, RESULT)
        with open(cache.path_for(spec), "w") as fh:
            fh.write("oops")
        assert cache.get(spec) is None
        cache.put(spec, RESULT)
        assert cache.get(spec) == RESULT


class TestIntegrity:
    def test_plain_miss_is_not_an_integrity_miss(self, cache, spec):
        assert cache.get(spec) is None
        assert cache.integrity_misses == 0

    def test_checksum_mismatch_is_an_integrity_miss(self, cache, spec):
        path = cache.put(spec, RESULT)
        payload = json.load(open(path))
        payload["result"]["ipc"] = 99.0  # edit result, keep checksum
        with open(path, "w") as fh:
            json.dump(payload, fh)
        assert cache.get(spec) is None
        assert cache.integrity_misses == 1

    def test_torn_entry_is_an_integrity_miss(self, cache, spec):
        path = cache.put(spec, RESULT)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[:len(data) // 2])
        assert cache.get(spec) is None
        assert cache.integrity_misses == 1

    def test_entry_without_checksum_is_an_integrity_miss(self, cache,
                                                         spec):
        path = cache.put(spec, RESULT)
        payload = json.load(open(path))
        del payload["checksum"]
        with open(path, "w") as fh:
            json.dump(payload, fh)
        assert cache.get(spec) is None
        assert cache.integrity_misses == 1

    def test_healthy_entry_round_trips(self, cache, spec):
        cache.put(spec, RESULT)
        assert cache.get(spec) == RESULT
        assert cache.integrity_misses == 0


class TestOrphanSweep:
    def orphan(self, cache, spec, name="stale.tmp"):
        directory = os.path.dirname(cache.path_for(spec))
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, name)
        with open(path, "w") as fh:
            fh.write("half-written")
        return path

    def test_aged_orphan_is_reclaimed(self, cache, spec):
        path = self.orphan(cache, spec)
        assert cache.sweep_orphans(max_age_seconds=0.0) == 1
        assert not os.path.exists(path)
        assert cache.integrity_misses == 1

    def test_fresh_orphan_is_left_alone(self, cache, spec):
        path = self.orphan(cache, spec)
        assert cache.sweep_orphans(max_age_seconds=3600.0) == 0
        assert os.path.exists(path)

    def test_real_entries_survive_the_sweep(self, cache, spec):
        cache.put(spec, RESULT)
        self.orphan(cache, spec)
        cache.sweep_orphans(max_age_seconds=0.0)
        assert cache.get(spec) == RESULT

    def test_disabled_cache_never_sweeps(self, tmp_path, spec):
        cache = ResultCache(root=tmp_path, salt="s", enabled=False)
        assert cache.sweep_orphans(max_age_seconds=0.0) == 0


class TestInvalidation:
    def test_invalidate_drops_entry(self, cache, spec):
        cache.put(spec, RESULT)
        assert cache.invalidate(spec) is True
        assert cache.get(spec) is None
        assert cache.invalidate(spec) is False

    def test_clear_drops_everything_under_salt(self, cache, spec):
        other = JobSpec(workload="mgrid", cycles=100, seed=5)
        cache.put(spec, RESULT)
        cache.put(other, RESULT)
        assert cache.clear() == 2
        assert cache.get(spec) is None
        assert cache.get(other) is None


class TestDisabled:
    def test_noop_everywhere(self, tmp_path, spec):
        cache = ResultCache(root=tmp_path, salt="s", enabled=False)
        assert cache.put(spec, RESULT) is None
        assert cache.get(spec) is None
        assert cache.invalidate(spec) is False
        assert list(os.scandir(tmp_path)) == []


class TestRoots:
    def test_env_var_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_root() == str(tmp_path / "custom")

    def test_falls_back_to_user_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_root().endswith(
            os.path.join(".cache", "repro-didt"))
