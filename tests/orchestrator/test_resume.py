"""Integration tests for crash-tolerant sweeps: Runner + SweepJournal,
graceful interruption, and resume-to-byte-identical reports."""

import pytest

from repro.orchestrator import (
    JobSpec,
    ResultCache,
    Runner,
    SweepInterrupted,
    SweepJournal,
    execute_spec,
    replay_journal,
    report_json,
)


def tiny_spec(**overrides):
    kwargs = dict(workload="swim", cycles=200, warmup_instructions=400,
                  seed=5, impedance_percent=200.0)
    kwargs.update(overrides)
    return JobSpec(**kwargs)


def journalled_runner(tmp_path, specs, salt="s1", **kwargs):
    journal = SweepJournal(tmp_path / "sweep.journal", fsync=False)
    journal.begin_sweep(specs, salt=salt)
    runner = Runner(jobs=1, progress=False, journal=journal, **kwargs)
    return runner, journal


class TestJournalledRun:
    def test_full_run_journals_every_cell(self, tmp_path):
        specs = [tiny_spec(seed=1), tiny_spec(seed=2)]
        runner, journal = journalled_runner(tmp_path, specs)
        outcomes = runner.run(specs)
        journal.end()
        journal.close()
        state = replay_journal(tmp_path / "sweep.journal")
        assert state.ended
        assert state.pending_specs() == []
        for outcome in outcomes:
            replayed = state.results[outcome.spec.content_hash()]
            assert replayed == outcome.result

    def test_cache_hits_are_journalled_too(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache", salt="s1")
        spec = tiny_spec(seed=1)
        Runner(jobs=1, cache=cache, progress=False).run([spec])
        runner, journal = journalled_runner(tmp_path, [spec], cache=cache)
        outcome = runner.run([spec])[0]
        journal.close()
        assert outcome.cached and outcome.source == "cache"
        state = replay_journal(tmp_path / "sweep.journal")
        assert state.results[spec.content_hash()] == outcome.result


class TestInterruption:
    def interrupt_after(self, n):
        calls = {"n": 0}

        def execute(spec, timeout_seconds=None):
            calls["n"] += 1
            if calls["n"] > n:
                raise KeyboardInterrupt()
            return execute_spec(spec, timeout_seconds=timeout_seconds)
        return execute

    def test_interrupt_yields_partial_outcomes_and_flushed_journal(
            self, tmp_path):
        specs = [tiny_spec(seed=n) for n in (1, 2, 3)]
        runner, journal = journalled_runner(
            tmp_path, specs, execute=self.interrupt_after(1))
        with pytest.raises(SweepInterrupted) as exc_info:
            runner.run(specs)
        journal.close()
        finished = exc_info.value.outcomes
        assert len(finished) == 1
        assert finished[0].result["status"] == "ok"
        state = replay_journal(tmp_path / "sweep.journal")
        assert state.interrupted and not state.ended
        assert state.pending_specs() == specs[1:]

    def test_resume_completes_byte_identical(self, tmp_path):
        specs = [tiny_spec(seed=n) for n in (1, 2, 3)]
        baseline = Runner(jobs=1, progress=False).run(specs)

        runner, journal = journalled_runner(
            tmp_path, specs, execute=self.interrupt_after(1))
        with pytest.raises(SweepInterrupted):
            runner.run(specs)
        journal.close()

        state = replay_journal(tmp_path / "sweep.journal")
        journal = SweepJournal(tmp_path / "sweep.journal", fsync=False)
        journal.resumed()
        resumed = Runner(jobs=1, progress=False, journal=journal,
                         resume_results=state.results).run(specs)
        journal.end()
        journal.close()

        assert report_json(resumed) == report_json(baseline)
        assert resumed[0].source == "journal"
        assert resumed[0].attempts == 0
        assert [o.source for o in resumed[1:]] == ["run", "run"]
        assert replay_journal(tmp_path / "sweep.journal").ended

    def test_resume_needs_no_cache(self, tmp_path):
        # The journal's done records carry full results, so a resume
        # works even when caching is off entirely.
        specs = [tiny_spec(seed=1), tiny_spec(seed=2)]
        runner, journal = journalled_runner(tmp_path, specs)
        first = runner.run(specs)
        journal.close()
        state = replay_journal(tmp_path / "sweep.journal")
        again = Runner(jobs=1, cache=None, progress=False,
                       resume_results=state.results).run(specs)
        assert all(o.source == "journal" for o in again)
        assert report_json(again) == report_json(first)


class TestGridChanges:
    def finished_state(self, tmp_path, specs):
        runner, journal = journalled_runner(tmp_path, specs)
        runner.run(specs)
        journal.close()
        return replay_journal(tmp_path / "sweep.journal")

    def test_resume_with_superset_runs_only_new_cells(self, tmp_path):
        old = [tiny_spec(seed=1), tiny_spec(seed=2)]
        state = self.finished_state(tmp_path, old)
        grid = old + [tiny_spec(seed=3)]
        outcomes = Runner(jobs=1, progress=False,
                          resume_results=state.results).run(grid)
        assert [o.source for o in outcomes] \
            == ["journal", "journal", "run"]
        assert all(o.result["status"] == "ok" for o in outcomes)

    def test_resume_with_subset_ignores_dropped_cells(self, tmp_path):
        old = [tiny_spec(seed=n) for n in (1, 2, 3)]
        state = self.finished_state(tmp_path, old)
        outcomes = Runner(jobs=1, progress=False,
                          resume_results=state.results).run([old[1]])
        assert len(outcomes) == 1
        assert outcomes[0].source == "journal"
        assert outcomes[0].spec == old[1]

    def test_journalled_failure_statuses_rerun(self, tmp_path):
        spec = tiny_spec(seed=1)
        journal = SweepJournal(tmp_path / "j", fsync=False)
        journal.begin_sweep([spec], salt="s1")
        journal.done(spec.content_hash(),
                     {"status": "error", "error": "flaky"})
        journal.close()
        state = replay_journal(tmp_path / "j")
        assert state.pending_specs() == [spec]
        outcomes = Runner(jobs=1, progress=False,
                          resume_results=state.results).run([spec])
        assert outcomes[0].source == "run"
        assert outcomes[0].result["status"] == "ok"
