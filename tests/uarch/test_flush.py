"""Tests for pipeline flush/replay (Section 6 recovery)."""

import pytest

from repro.isa import Sequencer, assemble
from repro.uarch import Machine, MachineConfig

PROGRAM = """
loop:
    ldq  r1, 0(r4)
    addq r2, r1, r1
    divt f3, f1, f2
    stq  r2, 8(r4)
    br   loop
"""


def running_machine(n_instructions=200, cycles=500):
    prog = assemble(PROGRAM)
    machine = Machine(MachineConfig(),
                      Sequencer(prog, max_instructions=n_instructions))
    machine.run(max_cycles=cycles)
    return machine


class TestFlush:
    def test_flush_empties_pipeline(self):
        machine = running_machine()
        machine.flush_pipeline()
        activity = machine.step()
        assert activity.ruu_occupancy == 0
        assert activity.issued_total == 0

    def test_no_instruction_lost(self):
        """Every squashed instruction replays: final committed count is
        unchanged by an arbitrary mid-run flush."""
        reference = running_machine(cycles=10**9)
        assert reference.done
        total = reference.stats.committed

        machine = running_machine(cycles=500)
        machine.flush_pipeline()
        machine.run()
        assert machine.stats.committed == total

    def test_flush_costs_cycles(self):
        clean = running_machine(cycles=10**9)
        flushed_machine = running_machine(cycles=500)
        for _ in range(3):
            flushed_machine.flush_pipeline()
            flushed_machine.run(max_cycles=flushed_machine.cycle + 50)
        flushed_machine.run()
        assert flushed_machine.stats.cycles > clean.stats.cycles
        assert flushed_machine.stats.flushes == 3

    def test_flush_restarts_after_penalty(self):
        machine = running_machine(cycles=500)
        machine.flush_pipeline()
        fetched_before = machine.stats.fetched
        for _ in range(machine.config.branch_penalty):
            machine.step()
        assert machine.stats.fetched == fetched_before  # refill hole
        machine.run(max_cycles=machine.cycle + 50)
        assert machine.stats.fetched > fetched_before

    def test_flush_empty_machine_is_safe(self):
        machine = Machine(MachineConfig(), [])
        assert machine.flush_pipeline() == 0
        assert machine.done

    def test_repeated_flushes_converge(self):
        machine = running_machine(n_instructions=50, cycles=400)
        for _ in range(5):
            machine.flush_pipeline()
        machine.run()
        assert machine.stats.committed == 50


class TestFlushRecoveryActuator:
    def test_flush_recovery_squashes_on_reduce(self):
        from repro.control.actuators import Actuator, ActuatorCommand
        machine = running_machine(cycles=500)
        act = Actuator("fu_dl1_il1", recovery="flush")
        act.apply(machine, ActuatorCommand.REDUCE)
        assert machine.stats.flushes == 1
        # Staying in REDUCE does not flush again.
        act.apply(machine, ActuatorCommand.REDUCE)
        assert machine.stats.flushes == 1
        # A fresh episode flushes anew.
        act.apply(machine, ActuatorCommand.NONE)
        act.apply(machine, ActuatorCommand.REDUCE)
        assert machine.stats.flushes == 2

    def test_freeze_recovery_never_flushes(self):
        from repro.control.actuators import Actuator, ActuatorCommand
        machine = running_machine(cycles=500)
        act = Actuator("fu_dl1_il1", recovery="freeze")
        act.apply(machine, ActuatorCommand.REDUCE)
        assert machine.stats.flushes == 0

    def test_recovery_validation(self):
        from repro.control.actuators import Actuator
        with pytest.raises(ValueError):
            Actuator("fu", recovery="rollback")
