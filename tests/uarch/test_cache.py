"""Tests for the set-associative caches and the memory hierarchy."""

import pytest

from repro.uarch.cache import Cache, MemoryHierarchy
from repro.uarch.config import MachineConfig


def small_cache(**kwargs):
    defaults = dict(name="t", size=1024, assoc=2, line_size=64, hit_latency=2)
    defaults.update(kwargs)
    return Cache(**defaults)


class TestCache:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert not c.lookup(0x1000)
        assert c.lookup(0x1000)

    def test_same_line_hits(self):
        c = small_cache()
        c.lookup(0x1000)
        assert c.lookup(0x1000 + 63)   # same 64-byte line
        assert not c.lookup(0x1000 + 64)  # next line

    def test_lru_within_set(self):
        c = small_cache()  # 1024/64 = 16 lines, 8 sets, 2 ways
        stride = 8 * 64  # same set
        a, b, d = 0x0, stride, 2 * stride
        c.lookup(a)
        c.lookup(b)
        c.lookup(a)      # a is MRU
        c.lookup(d)      # evicts b
        assert c.contains(a)
        assert not c.contains(b)
        assert c.contains(d)

    def test_contains_has_no_side_effects(self):
        c = small_cache()
        assert not c.contains(0x1000)
        assert c.accesses == 0
        assert not c.lookup(0x1000)  # still a miss: contains didn't fill

    def test_miss_rate(self):
        c = small_cache()
        for _ in range(4):
            c.lookup(0x40)
        assert c.miss_rate == pytest.approx(0.25)
        c.reset_stats()
        assert c.accesses == 0 and c.miss_rate == 0.0

    def test_line_of(self):
        c = small_cache()
        assert c.line_of(0x1003) == 0x1000
        assert c.line_of(0x1040) == 0x1040

    def test_dimension_checks(self):
        with pytest.raises(ValueError):
            small_cache(size=0)
        with pytest.raises(ValueError):
            Cache("bad", size=960, assoc=2, line_size=64, hit_latency=1)


class TestMemoryHierarchy:
    @pytest.fixture
    def hierarchy(self):
        return MemoryHierarchy(MachineConfig().small())

    def test_cold_access_reaches_memory(self, hierarchy):
        cfg = hierarchy.config
        result = hierarchy.data_access(0x8000)
        assert not result.l1_hit and not result.l2_hit
        assert result.latency == (cfg.l1d_latency + cfg.l2_latency +
                                  cfg.memory_latency)
        assert hierarchy.memory_accesses == 1

    def test_warm_access_hits_l1(self, hierarchy):
        hierarchy.data_access(0x8000)
        result = hierarchy.data_access(0x8000)
        assert result.l1_hit
        assert result.latency == hierarchy.config.l1d_latency

    def test_l1_victim_hits_l2(self, hierarchy):
        cfg = hierarchy.config
        # Fill one L1 set beyond its associativity; L2 (bigger) keeps all.
        l1_sets = hierarchy.l1d.n_sets
        stride = l1_sets * cfg.line_size
        addrs = [0x8000 + i * stride for i in range(cfg.l1d_assoc + 1)]
        for a in addrs:
            hierarchy.data_access(a)
        result = hierarchy.data_access(addrs[0])  # evicted from L1, in L2
        assert not result.l1_hit and result.l2_hit
        assert result.latency == cfg.l1d_latency + cfg.l2_latency

    def test_inst_and_data_are_split(self, hierarchy):
        hierarchy.inst_access(0x8000)
        result = hierarchy.data_access(0x8000)
        # D-side L1 misses, but L2 is unified so the I-fetch warmed it.
        assert not result.l1_hit
        assert result.l2_hit

    def test_reset_stats(self, hierarchy):
        hierarchy.data_access(0x8000)
        hierarchy.inst_access(0x4000)
        hierarchy.reset_stats()
        assert hierarchy.l1d.accesses == 0
        assert hierarchy.l1i.accesses == 0
        assert hierarchy.l2.accesses == 0
        assert hierarchy.memory_accesses == 0

    def test_table1_configuration(self):
        """The default hierarchy matches the paper's Table 1."""
        h = MemoryHierarchy(MachineConfig())
        assert h.l1d.size == 64 * 1024 and h.l1d.assoc == 2
        assert h.l1i.size == 64 * 1024 and h.l1i.assoc == 2
        assert h.l2.size == 2 * 1024 * 1024 and h.l2.assoc == 4
        assert h.l2.hit_latency == 16
        assert h.memory_latency == 300
