"""Tests for the combined branch predictor, BTB, and RAS."""

import pytest

from repro.isa.instruction import DynamicInst
from repro.isa.opcodes import OPCODES
from repro.uarch.branch import (
    BimodalTable,
    Btb,
    CombinedPredictor,
    GshareTable,
    ReturnAddressStack,
)
from repro.uarch.config import MachineConfig


def branch(pc, taken, target, name="bne", seq=0):
    return DynamicInst(seq=seq, pc=pc, op=OPCODES[name], taken=taken,
                       target=target)


@pytest.fixture
def predictor():
    return CombinedPredictor(MachineConfig().small())


class TestBimodal:
    def test_learns_taken(self):
        table = BimodalTable(64)
        for _ in range(3):
            table.update(0x100, taken=True)
        assert table.predict(0x100)

    def test_learns_not_taken(self):
        table = BimodalTable(64)
        for _ in range(3):
            table.update(0x100, taken=False)
        assert not table.predict(0x100)

    def test_counters_saturate(self):
        table = BimodalTable(64)
        for _ in range(10):
            table.update(0x100, taken=True)
        # Two not-taken outcomes flip a saturated counter to not-taken.
        table.update(0x100, taken=False)
        table.update(0x100, taken=False)
        assert not table.predict(0x100)

    def test_entries_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalTable(100)


class TestGshare:
    def test_history_disambiguates_one_pc(self):
        """Gshare learns a pattern at a single PC that bimodal cannot."""
        table = GshareTable(1024, history_bits=8)
        pattern = [True, True, False, False]
        # Train over the repeating pattern.
        for _ in range(100):
            for outcome in pattern:
                table.update(0x200, outcome)
        correct = 0
        for _ in range(10):
            for outcome in pattern:
                if table.predict(0x200) == outcome:
                    correct += 1
                table.update(0x200, outcome)
        assert correct == 40

    def test_entries_power_of_two(self):
        with pytest.raises(ValueError):
            GshareTable(100, history_bits=4)


class TestBtb:
    def test_miss_then_hit(self):
        btb = Btb(entries=64, assoc=2)
        assert btb.lookup(0x400) is None
        btb.insert(0x400, 0x999)
        assert btb.lookup(0x400) == 0x999

    def test_update_existing(self):
        btb = Btb(entries=64, assoc=2)
        btb.insert(0x400, 0x111)
        btb.insert(0x400, 0x222)
        assert btb.lookup(0x400) == 0x222

    def test_lru_eviction(self):
        btb = Btb(entries=8, assoc=2)  # 4 sets
        # Three PCs mapping to the same set (stride = 4 sets * 4 bytes).
        pcs = [0x0, 0x40, 0x80]
        btb.insert(pcs[0], 1)
        btb.insert(pcs[1], 2)
        btb.insert(pcs[2], 3)  # evicts pcs[0]
        assert btb.lookup(pcs[0]) is None
        assert btb.lookup(pcs[1]) == 2
        assert btb.lookup(pcs[2]) == 3

    def test_divisibility_check(self):
        with pytest.raises(ValueError):
            Btb(entries=10, assoc=4)


class TestRas:
    def test_lifo(self):
        ras = ReturnAddressStack(4)
        ras.push(0x10)
        ras.push(0x20)
        assert ras.pop() == 0x20
        assert ras.pop() == 0x10
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_positive_depth(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)


class TestCombinedPredictor:
    def test_learns_loop_branch(self, predictor):
        b = branch(0x500, taken=True, target=0x100)
        # Warm up: first encounters may miss direction or BTB target.
        for _ in range(8):
            pred = predictor.predict(b)
            predictor.update(b, pred)
        pred = predictor.predict(b)
        assert pred.taken
        assert pred.target == 0x100
        assert not predictor.update(b, pred)

    def test_cold_btb_is_a_misprediction(self, predictor):
        b = branch(0x500, taken=True, target=0x100, name="br")
        pred = predictor.predict(b)
        assert pred.target is None
        assert predictor.update(b, pred)  # wrong target -> misprediction

    def test_not_taken_needs_no_target(self, predictor):
        b = branch(0x500, taken=False, target=0x100)
        for _ in range(4):
            pred = predictor.predict(b)
            predictor.update(b, pred)
        pred = predictor.predict(b)
        assert not pred.taken
        assert not predictor.update(b, pred)

    def test_call_return_pair(self, predictor):
        call = branch(0x600, taken=True, target=0x800, name="jsr")
        ret = branch(0x810, taken=True, target=0x604, name="ret")
        # Calls push the RAS at predict time; the matching return pops it.
        pred_call = predictor.predict(call)
        predictor.update(call, pred_call)
        pred_ret = predictor.predict(ret)
        assert pred_ret.taken
        assert pred_ret.target == 0x604
        assert not predictor.update(ret, pred_ret)

    def test_accuracy_accounting(self, predictor):
        b = branch(0x500, taken=True, target=0x100)
        for _ in range(20):
            pred = predictor.predict(b)
            predictor.update(b, pred)
        assert predictor.lookups == 20
        assert 0.0 <= predictor.accuracy <= 1.0
        # After warm-up the loop branch is always right.
        assert predictor.accuracy > 0.8

    def test_accuracy_with_no_lookups(self, predictor):
        assert predictor.accuracy == 1.0

    def test_alternating_pattern_beats_bimodal(self):
        """The tournament should route a history-friendly pattern to gshare."""
        predictor = CombinedPredictor(MachineConfig().small())
        pattern = [True, False]
        mispredicts = 0
        total = 0
        for i in range(400):
            outcome = pattern[i % 2]
            b = branch(0x700, taken=outcome, target=0x300)
            pred = predictor.predict(b)
            if predictor.update(b, pred):
                mispredicts += 1
            total += 1
        # Bimodal alone would hover near 50%; gshare nails it after warmup.
        assert mispredicts / total < 0.2
