"""Tests for functional unit pools, gating, and phantom firing."""

import pytest

from repro.isa.opcodes import InstrClass
from repro.uarch.config import MachineConfig
from repro.uarch.fu import CLASS_POOL, FuComplex, FuPool, POOL_CLASSES


class TestFuPool:
    def test_pipelined_pool_accepts_per_cycle(self):
        pool = FuPool("alu", 2)
        assert pool.try_issue(1)
        assert pool.try_issue(1)
        assert not pool.try_issue(1)  # both slots claimed this cycle
        pool.tick()
        assert pool.try_issue(1)      # interval 1: free again next cycle

    def test_unpipelined_blocks_for_interval(self):
        pool = FuPool("div", 1)
        assert pool.try_issue(3)
        for _ in range(2):
            pool.tick()
            assert not pool.try_issue(3)
        pool.tick()
        assert pool.try_issue(3)

    def test_busy_counts(self):
        pool = FuPool("alu", 4)
        pool.try_issue(2)
        pool.try_issue(2)
        pool.tick()
        assert pool.busy == 2
        pool.tick()
        assert pool.busy == 2  # second (final) cycle of both ops
        pool.tick()
        assert pool.busy == 0

    def test_free_slots(self):
        pool = FuPool("alu", 3)
        pool.try_issue(5)
        assert pool.free_slots == 2

    def test_requires_units(self):
        with pytest.raises(ValueError):
            FuPool("none", 0)


class TestClassMapping:
    def test_every_class_has_a_pool(self):
        for iclass in InstrClass:
            assert iclass in CLASS_POOL

    def test_mapping_is_consistent(self):
        for pool, classes in POOL_CLASSES.items():
            for c in classes:
                assert CLASS_POOL[c] == pool

    def test_divides_share_multiplier_pools(self):
        assert CLASS_POOL[InstrClass.IDIV] == CLASS_POOL[InstrClass.IMULT]
        assert CLASS_POOL[InstrClass.FDIV] == CLASS_POOL[InstrClass.FMULT]


class TestFuComplex:
    @pytest.fixture
    def fus(self):
        return FuComplex(MachineConfig())

    def test_table1_counts(self, fus):
        assert fus.pools["int_alu"].count == 8
        assert fus.pools["int_mult"].count == 2
        assert fus.pools["fp_alu"].count == 4
        assert fus.pools["fp_mult"].count == 2
        assert fus.pools["mem_port"].count == 4
        assert fus.total_units == 20

    def test_issue_respects_pool_width(self, fus):
        for _ in range(2):
            assert fus.try_issue(InstrClass.FMULT)
        assert not fus.try_issue(InstrClass.FMULT)
        # Other pools unaffected.
        assert fus.try_issue(InstrClass.IALU)

    def test_gating_blocks_issue(self, fus):
        fus.gated = True
        assert not fus.try_issue(InstrClass.IALU)
        fus.gated = False
        assert fus.try_issue(InstrClass.IALU)

    def test_gating_freezes_cooldowns(self, fus):
        # Claim both FP mult/div units with 16-cycle unpipelined divides.
        assert fus.try_issue(InstrClass.FDIV)
        assert fus.try_issue(InstrClass.FDIV)
        fus.gated = True
        for _ in range(100):
            fus.tick()  # clocks stopped: no progress
        fus.gated = False
        # After gating lifts, both ops still need their full time.
        assert fus.pools["fp_mult"].cooldown == [16, 16]
        assert not fus.try_issue(InstrClass.FDIV)

    def test_unpipelined_divide_interval(self, fus):
        assert fus.try_issue(InstrClass.FDIV)
        fus.tick()
        assert fus.pools["fp_mult"].cooldown[0] == 15

    def test_issue_counts_reset_on_tick(self, fus):
        fus.try_issue(InstrClass.IALU)
        fus.try_issue(InstrClass.LOAD)
        counts = fus.issue_counts()
        assert counts["int_alu"] == 1
        assert counts["mem_port"] == 1
        fus.tick()
        assert fus.issue_counts()["int_alu"] == 0
