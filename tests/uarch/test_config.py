"""Tests for the machine configuration (Table 1)."""

import pytest

from repro.isa.opcodes import InstrClass
from repro.uarch.config import MachineConfig


class TestDefaults:
    def test_table1_core(self):
        cfg = MachineConfig()
        assert cfg.clock_hz == 3.0e9
        assert cfg.fetch_width == 8
        assert cfg.decode_width == 8
        assert cfg.ruu_size == 256
        assert cfg.lsq_size == 128
        assert cfg.branch_penalty == 10

    def test_table1_fus(self):
        cfg = MachineConfig()
        assert cfg.n_int_alu == 8
        assert cfg.n_int_mult == 2
        assert cfg.n_fp_alu == 4
        assert cfg.n_fp_mult == 2
        assert cfg.n_mem_ports == 4

    def test_table1_memory(self):
        cfg = MachineConfig()
        assert cfg.l1d_size == 64 * 1024 and cfg.l1d_assoc == 2
        assert cfg.l1i_size == 64 * 1024 and cfg.l1i_assoc == 2
        assert cfg.l2_size == 2 * 1024 * 1024 and cfg.l2_assoc == 4
        assert cfg.l2_latency == 16
        assert cfg.memory_latency == 300

    def test_table1_predictor(self):
        cfg = MachineConfig()
        assert cfg.btb_entries == 1024
        assert cfg.ras_entries == 64

    def test_cycle_time(self):
        assert MachineConfig().cycle_time == pytest.approx(1.0 / 3.0e9)


class TestValidation:
    def test_positive_widths(self):
        with pytest.raises(ValueError):
            MachineConfig(fetch_width=0)

    def test_positive_windows(self):
        with pytest.raises(ValueError):
            MachineConfig(ruu_size=0)

    def test_lsq_not_larger_than_ruu(self):
        with pytest.raises(ValueError):
            MachineConfig(ruu_size=16, lsq_size=32)

    def test_cache_divisibility(self):
        with pytest.raises(ValueError):
            MachineConfig(l1d_size=1000)


class TestSmall:
    def test_small_shape_preserved(self):
        small = MachineConfig().small()
        assert small.ruu_size < 256
        assert small.lsq_size <= small.ruu_size
        assert small.clock_hz == 3.0e9
        # Latency maps are intact.
        assert small.latencies[InstrClass.FDIV] >= 10

    def test_small_is_valid_config(self):
        # Construction runs the validators.
        MachineConfig().small()

    def test_latency_maps_are_copies(self):
        a = MachineConfig()
        b = MachineConfig()
        a.latencies[InstrClass.IALU] = 99
        assert b.latencies[InstrClass.IALU] == 1
