"""Fine-grained timing tests of the out-of-order core.

These pin down cycle-level behaviours the coarser end-to-end tests
don't: structural stalls (window, LSQ, fetch queue), store-to-load
forwarding, issue-width saturation, and in-order commit.
"""

import pytest

from repro.isa import Sequencer, assemble
from repro.uarch import Machine, MachineConfig


def machine_for(text, config=None, max_instructions=None, warm=True):
    cfg = config or MachineConfig()
    machine = Machine(cfg, Sequencer(assemble(text),
                                     max_instructions=max_instructions))
    if warm:
        # Touch code/data once so timing tests see steady-state caches.
        pass
    return machine


class TestStructuralStalls:
    def test_ruu_full_blocks_dispatch(self):
        cfg = MachineConfig()
        cfg.ruu_size = 8
        cfg.lsq_size = 8
        # A long divide chain keeps the head busy; independent adds
        # behind it can only occupy the 8-entry window.
        text = "divt f1, f1, f2\n" + "addq r1, r2, r3\n" * 40
        machine = machine_for(text, config=cfg)
        peak = 0
        while not machine.done and machine.cycle < 50000:
            activity = machine.step()
            peak = max(peak, activity.ruu_occupancy)
        assert peak <= 8
        assert machine.stats.committed == 41

    def test_lsq_full_blocks_memory_dispatch(self):
        cfg = MachineConfig()
        cfg.lsq_size = 4
        cfg.ruu_size = 64
        # The first load misses to memory and blocks commit; stores to
        # the same granule queue up behind it in the 4-entry LSQ.
        text = "ldq r1, 0(r4)\n" + "stq r1, 0(r4)\n" * 12
        machine = machine_for(text, config=cfg)
        peak = 0
        while not machine.done and machine.cycle < 50000:
            activity = machine.step()
            peak = max(peak, activity.lsq_occupancy)
        assert peak <= 4
        assert machine.stats.committed == 13

    def test_fetch_queue_bounded(self):
        cfg = MachineConfig()
        cfg.fetch_queue_size = 8
        # Dispatch stalls behind a full tiny window, so fetch piles into
        # the queue -- but never beyond its capacity.
        cfg.ruu_size = 4
        cfg.lsq_size = 4
        text = "divt f1, f1, f2\n" + "addq r1, r2, r3\n" * 60
        machine = machine_for(text, config=cfg)
        while not machine.done and machine.cycle < 60000:
            machine.step()
            assert len(machine._fetch_queue) <= 8
        assert machine.done


class TestForwarding:
    def test_store_load_forward_beats_cache_miss(self):
        """A load fed by an in-flight store must not pay the memory
        latency the cold cache would charge."""
        forward = machine_for("""
            addq r3, r2, r2
            stq  r3, 0(r4)
            ldq  r1, 0(r4)
        """)
        forward.run(max_cycles=100000)
        cold = machine_for("ldq r1, 0(r4)\n")
        cold.run(max_cycles=100000)
        # Both pay the cold I-fetch; the forwarding case must not pay a
        # *second* 300-cycle data miss on top.
        assert forward.stats.cycles < cold.stats.cycles + 100

    def test_forwarded_load_skips_dcache(self):
        machine = machine_for("""
            addq r3, r2, r2
            stq  r3, 0(r4)
            ldq  r1, 0(r4)
        """)
        machine.run(max_cycles=100000)
        # The load forwarded: only the store's commit touched the D-cache.
        assert machine.hierarchy.l1d.accesses == 1


class TestIssueWidth:
    def test_issue_never_exceeds_width(self):
        cfg = MachineConfig()
        cfg.issue_width = 4
        text = "\n".join("addq r%d, r20, r21" % (i % 16 + 1)
                         for i in range(64))
        machine = machine_for(text, config=cfg)
        while not machine.done and machine.cycle < 50000:
            activity = machine.step()
            assert activity.issued_total <= 4

    def test_pool_width_caps_class_issue(self):
        cfg = MachineConfig()
        text = "\n".join("mult f%d, f20, f21" % (i % 16 + 1)
                         for i in range(32))
        machine = machine_for(text, config=cfg)
        while not machine.done and machine.cycle < 50000:
            activity = machine.step()
            assert activity.issued_fp_mult <= cfg.n_fp_mult


class TestCommitOrder:
    def test_commit_is_in_order(self):
        """A slow head instruction holds back younger finished work."""
        machine = machine_for("""
            divt f1, f1, f2
            addq r1, r2, r3
            addq r4, r2, r3
        """)
        committed_at = {}
        while not machine.done and machine.cycle < 100000:
            before = machine.stats.committed
            machine.step()
            for k in range(before, machine.stats.committed):
                committed_at[k] = machine.cycle
        # The adds (seq 1, 2) cannot retire before the divide (seq 0).
        assert committed_at[0] <= committed_at[1] <= committed_at[2]

    def test_commit_width_respected(self):
        cfg = MachineConfig()
        cfg.commit_width = 2
        text = "addq r1, r2, r3\n" * 32
        machine = machine_for(text, config=cfg)
        while not machine.done and machine.cycle < 50000:
            activity = machine.step()
            assert activity.committed <= 2


class TestPhantomAccounting:
    def test_phantom_cycles_counted(self):
        machine = machine_for("addq r1, r2, r3\n" * 4)
        machine.fus.phantom = True
        for _ in range(7):
            machine.step()
        assert machine.stats.phantom_fu_cycles == 7
