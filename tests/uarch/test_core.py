"""End-to-end tests of the cycle-level core: correctness of retirement,
dependence timing, branch handling, cache effects, and the actuator hooks."""

import pytest

from repro.isa import Sequencer, assemble
from repro.isa.program import loop_count_policy
from repro.uarch import Machine, MachineConfig


def run_program(text, max_cycles=100000, config=None, policy=None,
                max_instructions=None):
    prog = assemble(text)
    seq = Sequencer(prog, branch_policy=policy,
                    max_instructions=max_instructions)
    machine = Machine(config or MachineConfig(), seq)
    stats = machine.run(max_cycles=max_cycles)
    return machine, stats


STRESSMARK = """
loop:
    ldt   f1, 0(r4)
    divt  f3, f1, f2
    divt  f3, f3, f2
    stt   f3, 8(r4)
    ldq   r7, 8(r4)
    cmovne r3, r31, r7
    stq   r3, 0(r4)
    stq   r3, 0(r4)
    stq   r3, 0(r4)
    stq   r3, 0(r4)
    stq   r3, 0(r4)
    stq   r3, 0(r4)
    br    loop
"""


class TestRetirement:
    def test_all_instructions_commit(self):
        machine, stats = run_program("addq r1, r2, r3\n" * 20)
        assert stats.committed == 20
        assert machine.done

    def test_commits_bounded_by_width(self):
        cfg = MachineConfig()
        machine, stats = run_program("addq r1, r2, r3\n" * 64, config=cfg)
        assert stats.committed == 64
        # 64 independent adds can't retire faster than commit_width.
        busy_cycles = [c for c in range(stats.cycles)]
        assert stats.cycles >= 64 / cfg.commit_width

    def test_done_empty_stream(self):
        machine = Machine(MachineConfig(), [])
        assert machine.done
        machine.step()  # stepping an empty machine is harmless
        assert machine.done

    def test_max_instructions_stops_run(self):
        prog = assemble(STRESSMARK)
        machine = Machine(MachineConfig(),
                          Sequencer(prog, max_instructions=10**9))
        stats = machine.run(max_cycles=50000, max_instructions=100)
        assert 100 <= stats.committed <= 100 + machine.config.commit_width


class TestDependenceTiming:
    def test_dependent_chain_serializes(self):
        # 30 chained adds: ~1 IPC once warm, far below the 8-wide peak.
        chain = "\n".join("addq r1, r1, r2" for _ in range(30))
        _, stats_chain = run_program(chain)
        wide = "\n".join("addq r%d, r2, r3" % (i % 20 + 1) for i in range(30))
        _, stats_wide = run_program(wide)
        assert stats_wide.cycles < stats_chain.cycles

    def test_divide_chain_is_slow(self):
        chain = "\n".join("divt f1, f1, f2" for _ in range(10))
        _, stats = run_program(chain)
        # Ten dependent 16-cycle divides: at least 160 execution cycles.
        assert stats.cycles >= 160

    def test_independent_divides_limited_by_units(self):
        # 4 independent FP divides on 2 unpipelined units: two waves.
        text = "\n".join("divt f%d, f10, f11" % i for i in range(4))
        machine, stats = run_program(text)
        assert stats.committed == 4
        lat = machine.config.latencies
        from repro.isa.opcodes import InstrClass
        assert stats.cycles >= 2 * lat[InstrClass.FDIV]


class TestBranches:
    def test_loop_predicts_after_warmup(self):
        machine, stats = run_program(
            STRESSMARK, max_cycles=200000, max_instructions=4000)
        # One cold-BTB miss on the first backward branch; then perfect.
        assert stats.mispredictions <= 2
        assert machine.predictor.accuracy > 0.99

    def test_misprediction_costs_cycles(self):
        # A data-dependent forward branch with pseudo-random outcomes
        # defeats the predictor; compare against the same loop with the
        # forward branch always falling through.
        import random
        text = """
        loop:
            addq r1, r2, r3
            bne r5, skip
            addq r1, r2, r3
        skip:
            addq r1, r2, r3
            br loop
        """

        def make_policy(randomize):
            def policy(inst, count):
                if inst.target_index <= inst.index:
                    return True  # the backward loop branch
                if not randomize:
                    return False
                return random.Random(count).random() < 0.5
            return policy

        def run(randomize):
            seq = Sequencer(assemble(text),
                            branch_policy=make_policy(randomize),
                            max_instructions=2000)
            machine = Machine(MachineConfig(), seq)
            return machine.run(max_cycles=100000)

        stats_hard = run(True)
        stats_easy = run(False)
        assert stats_hard.mispredictions > 4 * max(stats_easy.mispredictions, 1)
        assert stats_hard.cycles > stats_easy.cycles


class TestCacheEffects:
    def test_cold_start_stalls_fetch(self):
        machine, stats = run_program("addq r1, r2, r3\n")
        cfg = machine.config
        cold = cfg.l1i_latency + cfg.l2_latency + cfg.memory_latency
        assert stats.cycles >= cold

    def test_streaming_loads_miss(self):
        # Loads striding through distinct lines via distinct base regs.
        text = "\n".join("ldq r%d, 0(r%d)" % (i % 8 + 1, i % 16 + 9)
                         for i in range(8))
        machine, _ = run_program(text)
        assert machine.hierarchy.l1d.misses >= 4

    def test_repeated_loads_hit(self):
        text = "\n".join("ldq r%d, 0(r4)" % (i % 8 + 1) for i in range(16))
        machine, _ = run_program(text)
        assert machine.hierarchy.l1d.misses == 1


class TestStressmarkShape:
    """The whole point: the stressmark alternates stall and burst phases."""

    def test_activity_alternates(self):
        prog = assemble(STRESSMARK)
        machine = Machine(MachineConfig(),
                          Sequencer(prog, max_instructions=4000))
        issued = []
        machine.run(max_cycles=60000,
                    cycle_hook=lambda m, a: issued.append(a.issued_total))
        # Skip the cold-start region, then look for both idle cycles and
        # burst cycles.
        warm = issued[2000:]
        assert warm.count(0) > len(warm) * 0.2      # divide-stall troughs
        assert max(warm) >= 3                       # store/load bursts

    def test_ipc_is_low(self):
        _, stats = run_program(STRESSMARK, max_cycles=60000,
                               max_instructions=4000)
        assert stats.ipc < 0.5


class TestActuatorHooks:
    def test_fu_gating_stops_progress(self):
        prog = assemble("addq r1, r2, r3\n" * 200)
        machine = Machine(MachineConfig(), Sequencer(prog))
        machine.run(max_cycles=400)  # past the cold I-miss, mid-execution
        committed_before = machine.stats.committed
        machine.fus.gated = True
        for _ in range(50):
            machine.step()
        # Nothing executes or commits while all FUs are gated (loads
        # could, but this program has none in flight).
        assert machine.stats.committed == committed_before
        machine.fus.gated = False
        # Cold I-cache misses dominate this short program: allow time for
        # every line's 300-cycle memory fill.
        machine.run(max_cycles=machine.cycle + 15000)
        assert machine.stats.committed == 200

    def test_dl1_gating_blocks_loads_then_recovers(self):
        text = "loop:\n" + "ldq r1, 0(r4)\nldq r2, 8(r4)\n" * 4 + "br loop\n"
        prog = assemble(text)
        machine = Machine(MachineConfig(),
                          Sequencer(prog, max_instructions=400))
        machine.run(max_cycles=1000)
        machine.dl1.gated = True
        l1d_before = machine.hierarchy.l1d.accesses
        for _ in range(50):
            machine.step()
        assert machine.hierarchy.l1d.accesses == l1d_before
        machine.dl1.gated = False
        machine.run(max_cycles=machine.cycle + 5000)
        assert machine.stats.committed == 400

    def test_il1_gating_stalls_fetch(self):
        prog = assemble("addq r1, r2, r3\n" * 100)
        machine = Machine(MachineConfig(), Sequencer(prog))
        machine.il1.gated = True
        for _ in range(500):
            machine.step()
        assert machine.stats.fetched == 0
        machine.il1.gated = False
        machine.run(max_cycles=5000)
        assert machine.stats.committed == 100

    def test_gating_is_counted(self):
        prog = assemble("addq r1, r2, r3\n" * 10)
        machine = Machine(MachineConfig(), Sequencer(prog))
        machine.fus.gated = True
        machine.dl1.gated = True
        for _ in range(10):
            machine.step()
        assert machine.stats.gated_fu_cycles == 10
        assert machine.stats.gated_dl1_cycles == 10
        assert machine.stats.gated_il1_cycles == 0

    def test_phantom_does_not_change_timing(self):
        prog_text = "addq r1, r2, r3\n" * 100

        def run(phantom):
            machine = Machine(MachineConfig(),
                              Sequencer(assemble(prog_text)))
            if phantom:
                machine.fus.phantom = True
            stats = machine.run(max_cycles=10000)
            return stats.cycles

        assert run(True) == run(False)


class TestActivityRecord:
    def test_occupancy_reported(self):
        prog = assemble(STRESSMARK)
        machine = Machine(MachineConfig(),
                          Sequencer(prog, max_instructions=500))
        peak_ruu = 0
        def hook(m, a):
            nonlocal peak_ruu
            peak_ruu = max(peak_ruu, a.ruu_occupancy)
        machine.run(max_cycles=20000, cycle_hook=hook)
        assert peak_ruu > 0

    def test_snapshot_roundtrip(self):
        machine = Machine(MachineConfig(), [])
        snap = machine.step().snapshot()
        assert snap["cycle"] == 0
        assert snap["fetched"] == 0
        assert "fu_gated" in snap


class TestWrongPathModel:
    def _run(self, model_wrong_path):
        import random
        from repro.power import PowerModel
        text = """
        loop:
            addq r1, r2, r3
            bne r5, skip
            addq r1, r2, r3
        skip:
            addq r1, r2, r3
            br loop
        """

        def coin_flip(inst, count):
            if inst.target_index <= inst.index:
                return True
            return random.Random(count).random() < 0.5

        cfg = MachineConfig(model_wrong_path=model_wrong_path)
        machine = Machine(cfg, Sequencer(assemble(text),
                                         branch_policy=coin_flip,
                                         max_instructions=1500))
        machine.fast_forward(500)
        model = PowerModel(cfg)
        powers = []
        machine.run(max_cycles=8000,
                    cycle_hook=lambda m, a: powers.append(model.power(a)))
        return machine, powers

    def test_timing_is_unchanged(self):
        quiet, _ = self._run(False)
        chasing, _ = self._run(True)
        assert quiet.stats.cycles == chasing.stats.cycles
        assert quiet.stats.committed == chasing.stats.committed
        assert quiet.stats.mispredictions == chasing.stats.mispredictions

    def test_shadow_cycles_burn_more_power(self):
        """With wrong-path modeling on, the mispredict shadow keeps the
        front end hot, raising energy while IPC stays identical."""
        quiet_machine, quiet_powers = self._run(False)
        _, chasing_powers = self._run(True)
        assert quiet_machine.stats.mispredictions > 10
        assert sum(chasing_powers) > sum(quiet_powers) * 1.02
