"""Tests for the RUU entries and load/store queue ordering rules."""

import pytest

from repro.isa.instruction import DynamicInst
from repro.isa.opcodes import OPCODES
from repro.uarch.window import (
    LoadStoreQueue,
    RuuEntry,
    ST_DONE,
    ST_EXECUTING,
    ST_READY,
    ST_WAITING,
    granule_of,
)


def mem_entry(name, addr, seq=0):
    inst = DynamicInst(seq=seq, pc=0x1000 + 4 * seq, op=OPCODES[name],
                       addr=addr)
    return RuuEntry(inst)


class TestGranule:
    def test_eight_byte_blocks(self):
        assert granule_of(0x1000) == granule_of(0x1007)
        assert granule_of(0x1000) != granule_of(0x1008)


class TestRuuEntry:
    def test_initial_state(self):
        e = mem_entry("ldq", 0x1000)
        assert e.state == ST_WAITING
        assert e.deps == 0
        assert e.waiters == []

    def test_seq_and_class(self):
        e = mem_entry("stq", 0x1000, seq=5)
        assert e.seq == 5
        assert e.iclass.is_memory


class TestLoadStoreQueue:
    def test_capacity(self):
        lsq = LoadStoreQueue(2)
        lsq.dispatch(mem_entry("ldq", 0x0, seq=0))
        lsq.dispatch(mem_entry("ldq", 0x8, seq=1))
        assert lsq.full
        with pytest.raises(RuntimeError):
            lsq.dispatch(mem_entry("ldq", 0x10, seq=2))

    def test_positive_capacity(self):
        with pytest.raises(ValueError):
            LoadStoreQueue(0)

    def test_older_unissued_store_blocks_load(self):
        lsq = LoadStoreQueue(8)
        store = mem_entry("stq", 0x1000, seq=0)
        load = mem_entry("ldq", 0x1000, seq=1)
        lsq.dispatch(store)
        lsq.dispatch(load)
        assert lsq.blocking_store(load) is store

    def test_younger_store_does_not_block(self):
        """The regression that deadlocked the stressmark: a load must not
        wait on a *later* store to the same address."""
        lsq = LoadStoreQueue(8)
        load = mem_entry("ldq", 0x1000, seq=0)
        store = mem_entry("stq", 0x1000, seq=1)
        lsq.dispatch(load)
        lsq.dispatch(store)
        assert lsq.blocking_store(load) is None

    def test_different_granules_do_not_conflict(self):
        lsq = LoadStoreQueue(8)
        store = mem_entry("stq", 0x1000, seq=0)
        load = mem_entry("ldq", 0x1008, seq=1)
        lsq.dispatch(store)
        lsq.dispatch(load)
        assert lsq.blocking_store(load) is None

    def test_issued_store_stops_blocking_and_forwards(self):
        lsq = LoadStoreQueue(8)
        store = mem_entry("stq", 0x1000, seq=0)
        load = mem_entry("ldq", 0x1000, seq=1)
        lsq.dispatch(store)
        lsq.dispatch(load)
        store.state = ST_EXECUTING
        assert lsq.blocking_store(load) is None
        assert lsq.load_forwards(load)

    def test_no_forward_from_younger_store(self):
        lsq = LoadStoreQueue(8)
        load = mem_entry("ldq", 0x1000, seq=0)
        store = mem_entry("stq", 0x1000, seq=1)
        lsq.dispatch(load)
        lsq.dispatch(store)
        store.state = ST_DONE
        assert not lsq.load_forwards(load)

    def test_blocking_store_is_oldest_conflicting(self):
        lsq = LoadStoreQueue(8)
        s0 = mem_entry("stq", 0x1000, seq=0)
        s1 = mem_entry("stq", 0x1000, seq=1)
        load = mem_entry("ldq", 0x1000, seq=2)
        for e in (s0, s1, load):
            lsq.dispatch(e)
        assert lsq.blocking_store(load) is s0
        s0.state = ST_EXECUTING
        assert lsq.blocking_store(load) is s1

    def test_commit_in_order(self):
        lsq = LoadStoreQueue(8)
        a = mem_entry("ldq", 0x0, seq=0)
        b = mem_entry("stq", 0x8, seq=1)
        lsq.dispatch(a)
        lsq.dispatch(b)
        with pytest.raises(RuntimeError):
            lsq.commit(b)
        lsq.commit(a)
        lsq.commit(b)
        assert len(lsq) == 0
