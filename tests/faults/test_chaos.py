"""Tests for process-level chaos injection (parsing, triggering, and
the fire-once marker).  The destructive modes (``kill``/``exit``) are
exercised for real, in worker children, by
``tests/orchestrator/test_supervise.py``."""

import pytest

from repro.faults.chaos import (
    CHAOS_ENV,
    CHAOS_MODES,
    CHAOS_ONCE_ENV,
    ONCE_MARKER,
    ChaosSet,
    ProcessChaos,
)


class TestParse:
    def test_ordinal_trigger(self):
        chaos = ProcessChaos.parse("kill@3")
        assert chaos.mode == "kill"
        assert chaos.ordinal == 3
        assert chaos.spec_prefix is None

    def test_spec_trigger(self):
        chaos = ProcessChaos.parse("oom@spec=3F9A")
        assert chaos.mode == "oom"
        assert chaos.spec_prefix == "3f9a"
        assert chaos.ordinal is None

    def test_once_dir_is_threaded_through(self, tmp_path):
        chaos = ProcessChaos.parse("exit@1", once_dir=str(tmp_path))
        assert chaos.once_dir == str(tmp_path)

    @pytest.mark.parametrize("text", [
        "kill", "kill@", "@2", "kill@zero", "warp@2", "kill@0",
        "kill@spec=", "kill@spec=xyz",
    ])
    def test_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            ProcessChaos.parse(text)

    def test_exactly_one_trigger_required(self):
        with pytest.raises(ValueError):
            ProcessChaos("kill")
        with pytest.raises(ValueError):
            ProcessChaos("kill", ordinal=1, spec_prefix="ab")

    def test_every_documented_mode_parses(self):
        for mode in CHAOS_MODES:
            assert ProcessChaos.parse("%s@1" % mode).mode == mode


class TestFromEnv:
    def test_unset_means_disarmed(self):
        assert ProcessChaos.from_env(environ={}) is None
        assert ProcessChaos.from_env(environ={CHAOS_ENV: ""}) is None

    def test_armed_from_environment(self, tmp_path):
        environ = {CHAOS_ENV: "oom@2", CHAOS_ONCE_ENV: str(tmp_path)}
        chaos = ProcessChaos.from_env(environ=environ)
        assert chaos.mode == "oom"
        assert chaos.ordinal == 2
        assert chaos.once_dir == str(tmp_path)


class TestTrigger:
    def test_ordinal_matching(self):
        chaos = ProcessChaos("oom", ordinal=2)
        assert not chaos.matches(1)
        assert chaos.matches(2)
        assert not chaos.matches(3)

    def test_spec_prefix_matching(self):
        chaos = ProcessChaos("oom", spec_prefix="ab12")
        assert chaos.matches(1, "ab12ff00")
        assert not chaos.matches(1, "ab11ff00")
        assert not chaos.matches(1, None)

    def test_no_match_is_a_noop(self):
        chaos = ProcessChaos("oom", ordinal=5)
        assert chaos.fire(1) is False
        assert not chaos.fired

    def test_oom_raises_memory_error(self):
        chaos = ProcessChaos("oom", ordinal=1)
        with pytest.raises(MemoryError, match="chaos"):
            chaos.fire(1)
        assert chaos.fired

    def test_hang_returns_after_its_sleep(self):
        chaos = ProcessChaos("hang", ordinal=1, hang_seconds=0.01)
        assert chaos.fire(1) is True


class TestFireOnce:
    def test_first_claim_wins(self, tmp_path):
        first = ProcessChaos("oom", ordinal=1, once_dir=str(tmp_path))
        second = ProcessChaos("oom", ordinal=1, once_dir=str(tmp_path))
        with pytest.raises(MemoryError):
            first.fire(1)
        assert (tmp_path / ONCE_MARKER).exists()
        assert second.fire(1) is False
        assert not second.fired

    def test_marker_survives_for_later_processes(self, tmp_path):
        (tmp_path / ONCE_MARKER).write_text("123\n")
        chaos = ProcessChaos("oom", ordinal=1, once_dir=str(tmp_path))
        assert chaos.fire(1) is False


class TestChaosSet:
    def test_single_fault_stays_a_process_chaos(self):
        chaos = ProcessChaos.from_env(environ={CHAOS_ENV: "kill@2"})
        assert isinstance(chaos, ProcessChaos)

    def test_list_builds_set_with_distinct_markers(self, tmp_path):
        environ = {CHAOS_ENV: "kill@1,oom@spec=ab",
                   CHAOS_ONCE_ENV: str(tmp_path)}
        chaos = ProcessChaos.from_env(environ=environ)
        assert isinstance(chaos, ChaosSet)
        assert [fault.mode for fault in chaos.faults] == ["kill", "oom"]
        assert len({fault.marker for fault in chaos.faults}) == 2

    def test_faults_fire_once_each_independently(self, tmp_path):
        environ = {CHAOS_ENV: "oom@1,oom@2",
                   CHAOS_ONCE_ENV: str(tmp_path)}
        chaos = ProcessChaos.from_env(environ=environ)
        with pytest.raises(MemoryError):
            chaos.fire(1)
        with pytest.raises(MemoryError):
            chaos.fire(2)
        # Each fault's own marker is claimed; neither re-fires.
        assert chaos.fire(1) is False
        assert chaos.fire(2) is False

    def test_malformed_member_rejected(self):
        with pytest.raises(ValueError):
            ProcessChaos.from_env(environ={CHAOS_ENV: "kill@1,warp@2"})


class TestScopes:
    """The ``serve=`` trigger prefix and per-scope arming."""

    def test_default_scope_is_worker(self):
        assert ProcessChaos.parse("kill@2").scope == "worker"

    def test_serve_prefix_selects_serve_scope(self):
        chaos = ProcessChaos.parse("kill@serve=2")
        assert chaos.scope == "serve"
        assert chaos.ordinal == 2

    def test_serve_prefix_composes_with_spec_trigger(self):
        chaos = ProcessChaos.parse("hang@serve=spec=3f9a")
        assert chaos.scope == "serve"
        assert chaos.spec_prefix == "3f9a"

    def test_empty_serve_trigger_rejected(self):
        with pytest.raises(ValueError):
            ProcessChaos.parse("kill@serve=")

    def test_unknown_scope_rejected(self):
        with pytest.raises(ValueError):
            ProcessChaos("kill", ordinal=1, scope="moon")
        with pytest.raises(ValueError):
            ProcessChaos.from_env(environ={}, scope="moon")

    def test_from_env_filters_by_scope(self):
        environ = {CHAOS_ENV: "kill@serve=1"}
        assert ProcessChaos.from_env(environ=environ) is None
        chaos = ProcessChaos.from_env(environ=environ, scope="serve")
        assert chaos.scope == "serve"
        assert chaos.mode == "kill"

    def test_mixed_list_arms_each_side_once(self, tmp_path):
        environ = {CHAOS_ENV: "kill@2,exit@serve=1",
                   CHAOS_ONCE_ENV: str(tmp_path)}
        worker = ProcessChaos.from_env(environ=environ)
        serve = ProcessChaos.from_env(environ=environ, scope="serve")
        assert isinstance(worker, ProcessChaos)
        assert worker.mode == "kill" and worker.scope == "worker"
        assert isinstance(serve, ProcessChaos)
        assert serve.mode == "exit" and serve.scope == "serve"
        # Markers are assigned over the full list before filtering, so
        # the two sides can never share a fire-once marker.
        assert worker.marker != serve.marker

    def test_repr_shows_scope(self):
        assert "serve" in repr(ProcessChaos.parse("kill@serve=2"))
