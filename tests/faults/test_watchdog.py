"""Tests for the numeric watchdogs, run budgets, and loop guards."""

import math

import pytest

from repro.control.loop import ClosedLoopSimulation
from repro.control.thresholds import design_pdn
from repro.faults.watchdog import (
    NumericWatchdog,
    RunBudget,
    SimulationBudgetExceeded,
    SimulationDiverged,
)
from repro.pdn.discrete import PdnSimulator
from repro.power import PowerModel
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine
from repro.workloads.spec import get_profile


@pytest.fixture(scope="module")
def config():
    return MachineConfig()


@pytest.fixture(scope="module")
def model(config):
    return PowerModel(config)


@pytest.fixture(scope="module")
def pdn(model):
    return design_pdn(model, impedance_percent=200.0)


class TestNumericWatchdog:
    def test_validation(self):
        with pytest.raises(ValueError):
            NumericWatchdog(v_min=1.0, v_max=0.5)
        with pytest.raises(ValueError):
            NumericWatchdog(tail=0)

    def test_passes_sane_voltages(self):
        w = NumericWatchdog(v_min=0.5, v_max=1.5)
        for cycle, v in enumerate((1.0, 0.94, 1.06, 0.51, 1.49)):
            w.check(cycle, v)  # no raise

    def test_nan_raises_with_context(self):
        w = NumericWatchdog(tail=4)
        for cycle in range(6):
            w.check(cycle, 1.0 + cycle * 0.001)
        with pytest.raises(SimulationDiverged) as info:
            w.check(6, float("nan"))
        err = info.value
        assert err.cycle == 6
        assert math.isnan(err.value)
        assert err.reason == "non-finite"
        # Tail holds the most recent samples including the bad one.
        assert len(err.trace_tail) == 4
        assert err.trace_tail[-2] == pytest.approx(1.005)

    def test_out_of_bounds_raises(self):
        w = NumericWatchdog(v_min=0.5, v_max=1.5)
        with pytest.raises(SimulationDiverged) as info:
            w.check(3, 1.7)
        assert info.value.reason == "out-of-bounds"
        assert info.value.cycle == 3

    def test_for_nominal(self):
        w = NumericWatchdog.for_nominal(1.0, fraction=0.25)
        w.check(0, 0.8)
        with pytest.raises(SimulationDiverged):
            w.check(1, 0.7)

    def test_reset_clears_tail(self):
        w = NumericWatchdog(tail=8)
        w.check(0, 1.0)
        w.reset()
        with pytest.raises(SimulationDiverged) as info:
            w.check(1, float("inf"))
        assert info.value.trace_tail == [float("inf")]


class TestRunBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunBudget(max_cycles=0)
        with pytest.raises(ValueError):
            RunBudget(max_seconds=-1.0)
        with pytest.raises(ValueError):
            RunBudget(check_every=0)

    def test_cycle_budget(self):
        b = RunBudget(max_cycles=5)
        b.start()
        for cycle in range(5):
            b.check(cycle)
        with pytest.raises(SimulationBudgetExceeded) as info:
            b.check(5)
        assert info.value.kind == "cycles"
        assert info.value.limit == 5

    def test_wall_clock_budget(self):
        b = RunBudget(max_seconds=0.0, check_every=1)
        b.start()
        with pytest.raises(SimulationBudgetExceeded) as info:
            b.check(0)
        assert info.value.kind == "wall-clock"

    def test_budget_is_reusable(self):
        b = RunBudget(max_cycles=3)
        for _ in range(2):
            b.start()
            for cycle in range(3):
                b.check(cycle)
            with pytest.raises(SimulationBudgetExceeded):
                b.check(3)


class TestPdnSimulatorWatchdog:
    def test_attached_watchdog_catches_doctored_divergence(self, pdn,
                                                           config):
        sim = PdnSimulator(pdn, clock_hz=config.clock_hz,
                           initial_current=20.0,
                           watchdog=NumericWatchdog(v_min=0.5, v_max=1.5))
        # Corrupt the recursion into an unstable one: the voltage state
        # grows geometrically until the watchdog trips.
        sim._a10 = 0.0
        sim._a11 = 1.5
        sim._b1 = 0.0
        sim._e1 = 0.0
        with pytest.raises(SimulationDiverged) as info:
            for _ in range(64):
                sim.step(20.0)
        assert info.value.reason == "out-of-bounds"
        assert info.value.trace_tail  # post-mortem context present

    def test_no_watchdog_by_default(self, pdn, config):
        sim = PdnSimulator(pdn, clock_hz=config.clock_hz)
        assert sim.watchdog is None


class TestClosedLoopGuards:
    def test_rejects_bad_nominal(self, config, model, pdn):
        machine = Machine(config, [])
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                ClosedLoopSimulation(machine, model, pdn, nominal=bad)

    def test_divergent_pdn_aborts_structured(self, config, model, pdn):
        """The acceptance scenario: a divergent PDN config aborts via
        SimulationDiverged, not NaN output or a hang."""
        machine = Machine(config, get_profile("swim").stream(seed=2))
        machine.fast_forward(2000)
        doctored = PdnSimulator(pdn, clock_hz=config.clock_hz)
        doctored._a10 = 0.0
        doctored._a11 = 1.02     # slow geometric divergence
        doctored._b1 = 0.0
        doctored._e1 = 0.0
        loop = ClosedLoopSimulation(machine, model, pdn,
                                    pdn_sim=doctored)
        with pytest.raises(SimulationDiverged) as info:
            loop.run(max_cycles=20000)
        err = info.value
        assert err.reason in ("non-finite", "out-of-bounds")
        assert err.cycle < 20000
        assert len(err.trace_tail) >= 1

    def test_budget_aborts_run(self, config, model, pdn):
        machine = Machine(config, get_profile("swim").stream(seed=2))
        machine.fast_forward(2000)
        budget = RunBudget(max_cycles=100)
        loop = ClosedLoopSimulation(machine, model, pdn, budget=budget)
        with pytest.raises(SimulationBudgetExceeded):
            loop.run(max_cycles=20000)
        assert machine.cycle <= 101

    def test_watchdog_disabled_with_false(self, config, model, pdn):
        machine = Machine(config, [])
        loop = ClosedLoopSimulation(machine, model, pdn, watchdog=False)
        assert loop.watchdog is None

    def test_shared_pdn_sim_is_reset(self, config, model, pdn):
        sim = PdnSimulator(pdn, clock_hz=config.clock_hz)
        sim.step(30.0)
        sim.step(30.0)
        machine = Machine(config, [])
        loop = ClosedLoopSimulation(machine, model, pdn, pdn_sim=sim)
        assert loop.pdn_sim is sim
        assert sim.cycles == 0
        i_min, _ = model.current_envelope()
        eq = sim.discrete.equilibrium_state(i_min)
        assert sim.voltage == pytest.approx(eq[1])
