"""Tests for the fault-campaign runner and its report."""

import json

import pytest

from repro.core import VoltageControlDesign
from repro.faults.campaign import (
    FAULT_LIBRARY,
    CampaignReport,
    FaultRunOutcome,
    run_campaign,
)

CAMPAIGN_KW = dict(workloads=("swim",), cycles=2000,
                   warmup_instructions=8000, seed=3, fault_start=200,
                   stuck_cycles=300, budget_seconds=None)


@pytest.fixture(scope="module")
def design():
    return VoltageControlDesign(impedance_percent=200.0)


@pytest.fixture(scope="module")
def small_report(design):
    return run_campaign(faults=["stuck_low", "stuck_released", "dropout"],
                        design=design, **CAMPAIGN_KW)


class TestRunCampaign:
    def test_unknown_fault_rejected(self, design):
        with pytest.raises(ValueError, match="unknown fault"):
            run_campaign(faults=["gremlins"], design=design, **CAMPAIGN_KW)

    def test_matrix_shape(self, small_report):
        assert len(small_report.outcomes) == 3
        assert {o.fault for o in small_report.outcomes} == {
            "stuck_low", "stuck_released", "dropout"}
        assert set(small_report.baselines) == {"swim"}

    def test_all_runs_complete(self, small_report):
        for o in small_report.outcomes:
            assert o.status == "ok"
            assert o.cycles == 2000
            assert o.error is None

    def test_stuck_low_activates_failsafe(self, small_report):
        o = {x.fault: x for x in small_report.outcomes}["stuck_low"]
        assert o.failsafe_active
        assert o.failsafe_transitions == 1
        assert "stuck at LOW" in o.failsafe_reason

    def test_baseline_does_not_degrade(self, small_report):
        base = small_report.baselines["swim"]
        assert base["failsafe_transitions"] == 0
        assert base["status"] == "ok"

    def test_metrics_relative_to_baseline(self, small_report):
        for o in small_report.outcomes:
            assert o.emergencies_missed >= 0
            assert o.ipc_lost_percent is not None

    def test_report_is_reproducible(self, design, small_report):
        again = run_campaign(
            faults=["stuck_low", "stuck_released", "dropout"],
            design=design, **CAMPAIGN_KW)
        assert again.to_json() == small_report.to_json()

    def test_json_round_trips(self, small_report):
        data = json.loads(small_report.to_json())
        assert data["settings"]["seed"] == 3
        assert len(data["outcomes"]) == 3
        for entry in data["outcomes"]:
            assert set(entry) == set(FaultRunOutcome.FIELDS)


class TestReportHelpers:
    def test_worst_picks_most_missed(self):
        def outcome(fault, missed):
            return FaultRunOutcome(
                workload="w", fault=fault, status="ok", cycles=1,
                committed=1, ipc=1.0, emergency_cycles=missed,
                emergencies_missed=missed, ipc_lost_percent=0.0,
                failsafe_transitions=0, failsafe_active=False,
                failsafe_reason=None, v_min=1.0, v_max=1.0, error=None)
        report = CampaignReport({}, {}, [outcome("a", 1), outcome("b", 9)])
        assert report.worst().fault == "b"

    def test_worst_of_empty(self):
        assert CampaignReport({}, {}, []).worst() is None

    def test_outcome_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            FaultRunOutcome(bogus=1)


class TestFaultLibrary:
    @pytest.mark.parametrize("name", sorted(FAULT_LIBRARY))
    def test_factories_build(self, name):
        bundle = FAULT_LIBRARY[name](100, 7)
        faults = bundle.get("sensor", []) + bundle.get("actuator", [])
        assert faults
        for fault in faults:
            assert not fault.active(99)
            assert fault.active(100)


class TestOrchestratedCampaign:
    """The campaign now routes through the orchestrator; the report
    must not depend on worker count or cache state."""

    def test_parallel_report_matches_serial(self, design, small_report):
        parallel = run_campaign(
            faults=["stuck_low", "stuck_released", "dropout"],
            design=design, jobs=2, **CAMPAIGN_KW)
        assert parallel.to_json() == small_report.to_json()

    def test_cached_rerun_matches_and_skips_simulation(self, design,
                                                       small_report,
                                                       tmp_path):
        from repro.orchestrator import ResultCache
        cache = ResultCache(root=tmp_path, salt="campaign")
        kwargs = dict(faults=["stuck_low", "stuck_released", "dropout"],
                      design=design, jobs=1, cache=cache, **CAMPAIGN_KW)
        cold = run_campaign(**kwargs)
        assert cache.hits == 0
        warm = run_campaign(**kwargs)
        # 1 baseline + 3 faults, every cell served from cache.
        assert cache.hits == 4
        assert warm.to_json() == cold.to_json() == small_report.to_json()
