"""Tests for the sensor/actuator fault injectors."""

import pytest

from repro.control.actuators import Actuator, ActuatorCommand
from repro.control.sensor import ThresholdSensor, VoltageLevel
from repro.faults.injectors import (
    BurstNoiseFault,
    DelayedReleaseFault,
    DriftFault,
    DropoutFault,
    FaultWindow,
    FaultyActuator,
    FaultySensor,
    StuckGatedFault,
    StuckLevelFault,
    StuckReleasedFault,
)
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine


def sensor(**kwargs):
    defaults = dict(v_low=0.96, v_high=1.04, delay=0, error=0.0, seed=3)
    defaults.update(kwargs)
    return ThresholdSensor(**defaults)


@pytest.fixture
def machine():
    return Machine(MachineConfig().small(), [])


class TestFaultWindow:
    def test_open_ended(self):
        w = FaultWindow(start=10)
        assert not w.active(9)
        assert w.active(10)
        assert w.active(10 ** 9)

    def test_bounded(self):
        w = FaultWindow(start=5, duration=3)
        assert [w.active(c) for c in range(4, 9)] == [
            False, True, True, True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultWindow(start=-1)
        with pytest.raises(ValueError):
            FaultWindow(duration=0)


class TestStuckLevel:
    def test_forces_level_regardless_of_voltage(self):
        s = FaultySensor(sensor(), [StuckLevelFault(VoltageLevel.LOW)])
        for v in (1.0, 1.06, 0.94):
            assert s.observe(v).level is VoltageLevel.LOW

    def test_respects_window(self):
        s = FaultySensor(sensor(),
                         [StuckLevelFault(VoltageLevel.LOW, start=2)])
        assert s.observe(1.0).level is VoltageLevel.NORMAL
        assert s.observe(1.0).level is VoltageLevel.NORMAL
        assert s.observe(1.0).level is VoltageLevel.LOW

    def test_requires_voltage_level(self):
        with pytest.raises(TypeError):
            StuckLevelFault("low")


class TestDropout:
    def test_holds_stale_reading(self):
        s = FaultySensor(sensor(), [DropoutFault(rate=1.0, seed=1)])
        first = s.observe(0.94)           # LOW, nothing stale to hold yet
        assert first.level is VoltageLevel.LOW
        # Every later reading is dropped: the stale LOW persists.
        assert s.observe(1.0).level is VoltageLevel.LOW
        assert s.observe(1.0).level is VoltageLevel.LOW

    def test_zero_rate_is_transparent(self):
        s = FaultySensor(sensor(), [DropoutFault(rate=0.0, seed=1)])
        assert s.observe(1.0).level is VoltageLevel.NORMAL
        assert s.observe(0.94).level is VoltageLevel.LOW

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            DropoutFault(rate=1.5)


class TestDrift:
    def test_negative_drift_eventually_reads_low(self):
        s = FaultySensor(sensor(), [DriftFault(rate=-1e-3)])
        levels = [s.observe(1.0).level for _ in range(100)]
        assert levels[0] is VoltageLevel.NORMAL
        assert levels[-1] is VoltageLevel.LOW

    def test_rides_through_sensor_delay(self):
        s = FaultySensor(sensor(delay=3), [DriftFault(rate=-0.05)])
        levels = [s.observe(1.0).level for _ in range(6)]
        # Cycle 0's drifted value (0.95) only surfaces after the delay.
        assert levels[0] is VoltageLevel.LOW  # warm-up reports oldest
        assert all(lv is VoltageLevel.LOW for lv in levels[3:])


class TestBurstNoise:
    def test_quiet_between_bursts(self):
        f = BurstNoiseFault(amplitude=0.5, period=10, burst=2, seed=7)
        s = FaultySensor(sensor(), [f])
        observed = [s.observe(1.0).observed for _ in range(10)]
        assert observed[2:] == [1.0] * 8       # outside the burst
        assert any(abs(v - 1.0) > 0 for v in observed[:2])

    def test_noise_bounded(self):
        f = BurstNoiseFault(amplitude=0.05, period=4, burst=4, seed=7)
        s = FaultySensor(sensor(), [f])
        for _ in range(200):
            assert abs(s.observe(1.0).observed - 1.0) <= 0.05 + 1e-12


class TestDeterminism:
    """Same seed => identical fault behaviour (the campaign guarantee)."""

    @pytest.mark.parametrize("make_fault", [
        lambda: DropoutFault(rate=0.5, seed=9),
        lambda: BurstNoiseFault(amplitude=0.06, period=16, burst=4, seed=9),
    ])
    def test_two_instances_agree(self, make_fault):
        trace = [1.0 - 0.002 * (i % 50) for i in range(300)]
        runs = []
        for _ in range(2):
            s = FaultySensor(sensor(seed=4), [make_fault()])
            runs.append([(r.level, r.observed)
                         for r in map(s.observe, trace)])
        assert runs[0] == runs[1]

    def test_reset_restores_fault_state(self):
        s = FaultySensor(sensor(seed=4), [DropoutFault(rate=0.5, seed=9)])
        trace = [1.0, 0.94, 1.0, 0.95, 1.0] * 20
        first = [s.observe(v).level for v in trace]
        s.reset()
        second = [s.observe(v).level for v in trace]
        assert first == second


class TestFaultySensorWrapper:
    def test_delegates_attributes(self):
        s = FaultySensor(sensor(delay=2), [])
        assert s.v_low == 0.96
        assert s.delay == 2
        assert s.window_mv == pytest.approx(80.0)

    def test_rejects_non_sensor(self):
        with pytest.raises(TypeError):
            FaultySensor(object())

    def test_rejects_actuator_faults(self):
        with pytest.raises(TypeError):
            FaultySensor(sensor(), [StuckGatedFault()])


class TestActuatorFaults:
    def test_stuck_gated_ignores_none(self, machine):
        a = FaultyActuator(Actuator("fu"), [StuckGatedFault()])
        a.apply(machine, ActuatorCommand.NONE)
        assert machine.fus.gated

    def test_stuck_released_ignores_reduce(self, machine):
        a = FaultyActuator(Actuator("fu"), [StuckReleasedFault()])
        a.apply(machine, ActuatorCommand.REDUCE)
        assert not machine.fus.gated

    def test_delayed_release_holds_gating(self, machine):
        a = FaultyActuator(Actuator("fu"), [DelayedReleaseFault(extra=2)])
        a.apply(machine, ActuatorCommand.REDUCE)
        assert machine.fus.gated
        a.apply(machine, ActuatorCommand.NONE)   # held (1 of 2)
        assert machine.fus.gated
        a.apply(machine, ActuatorCommand.NONE)   # held (2 of 2)
        assert machine.fus.gated
        a.apply(machine, ActuatorCommand.NONE)   # finally releases
        assert not machine.fus.gated

    def test_release_bypasses_faults(self, machine):
        a = FaultyActuator(Actuator("fu"), [StuckGatedFault()])
        a.apply(machine, ActuatorCommand.NONE)
        assert machine.fus.gated
        a.release(machine)
        assert not machine.fus.gated

    def test_delegates_attributes(self):
        a = FaultyActuator(Actuator("fu_dl1"), [])
        assert a.kind == "fu_dl1"
        assert a.response_groups() == ("fu", "dl1")

    def test_rejects_sensor_faults(self):
        with pytest.raises(TypeError):
            FaultyActuator(Actuator("fu"),
                           [StuckLevelFault(VoltageLevel.LOW)])
