"""Tests for storage-fault injection (parsing, triggering, scoping,
and the write/fsync/replace seams).  The store-level consequences --
caches degrading to counted misses, the journal failing loud -- are
exercised where the stores live (``tests/orchestrator``,
``tests/core/test_checkpoint.py``, ``tests/server``)."""

import errno
import io
import os

import pytest

from repro.faults import iofault
from repro.faults.iofault import (
    IO_MODES,
    IO_ONCE_MARKER,
    IO_TARGETS,
    IOCHAOS_ENV,
    IOCHAOS_ONCE_ENV,
    IoFault,
    IoFaultSet,
)


@pytest.fixture(autouse=True)
def _clean_iofault(monkeypatch):
    """Each test starts disarmed, worker-scoped, with fresh counters."""
    monkeypatch.delenv(IOCHAOS_ENV, raising=False)
    monkeypatch.delenv(IOCHAOS_ONCE_ENV, raising=False)
    iofault.set_scope("worker")
    iofault.reset()
    yield
    iofault.set_scope("worker")
    iofault.reset()


class TestParse:
    def test_always_trigger(self):
        fault = IoFault.parse("enospc@cache")
        assert fault.mode == "enospc"
        assert fault.target == "cache"
        assert fault.ordinal is None and fault.every is None
        assert fault.scope is None

    def test_ordinal_trigger(self):
        fault = IoFault.parse("fsync-fail@journal:2")
        assert fault.mode == "fsync-fail"
        assert fault.target == "journal"
        assert fault.ordinal == 2

    def test_every_trigger(self):
        fault = IoFault.parse("torn-write@captures:every=3")
        assert fault.every == 3
        assert fault.ordinal is None

    def test_scope_prefixes(self):
        assert IoFault.parse("eio@serve=journal").scope == "serve"
        assert IoFault.parse("eio@worker=cache").scope == "worker"
        fault = IoFault.parse("rename-fail@serve=journal:1")
        assert fault.scope == "serve" and fault.ordinal == 1

    def test_once_dir_is_threaded_through(self, tmp_path):
        fault = IoFault.parse("enospc@cache", once_dir=str(tmp_path))
        assert fault.once_dir == str(tmp_path)

    def test_every_documented_mode_parses(self):
        for mode in IO_MODES:
            assert IoFault.parse("%s@cache" % mode).mode == mode

    def test_every_documented_target_parses(self):
        for target in IO_TARGETS:
            assert IoFault.parse("eio@%s" % target).target == target

    @pytest.mark.parametrize("text", [
        "enospc", "enospc@", "@cache", "warp@cache", "enospc@disk",
        "enospc@cache:zero", "enospc@cache:0", "enospc@cache:every=x",
        "enospc@cache:every=0", "enospc@serve=", "eio@moon=cache",
    ])
    def test_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            IoFault.parse(text)

    def test_ordinal_and_every_are_exclusive(self):
        with pytest.raises(ValueError):
            IoFault("enospc", "cache", ordinal=1, every=2)

    def test_mode_op_mapping(self):
        assert IoFault.parse("enospc@cache").op == "write"
        assert IoFault.parse("eio@cache").op == "write"
        assert IoFault.parse("torn-write@cache").op == "write"
        assert IoFault.parse("fsync-fail@journal").op == "fsync"
        assert IoFault.parse("rename-fail@traces").op == "replace"


class TestFromEnv:
    def test_unset_means_disarmed(self):
        assert IoFault.from_env(environ={}) is None
        assert IoFault.from_env(environ={IOCHAOS_ENV: ""}) is None

    def test_single_fault_set(self, tmp_path):
        environ = {IOCHAOS_ENV: "enospc@cache:2",
                   IOCHAOS_ONCE_ENV: str(tmp_path)}
        armed = IoFault.from_env(environ=environ)
        assert isinstance(armed, IoFaultSet)
        (fault,) = armed.faults
        assert fault.ordinal == 2
        assert fault.once_dir == str(tmp_path)

    def test_list_gets_distinct_markers(self, tmp_path):
        environ = {IOCHAOS_ENV: "enospc@cache,fsync-fail@journal",
                   IOCHAOS_ONCE_ENV: str(tmp_path)}
        armed = IoFault.from_env(environ=environ)
        assert len(armed.faults) == 2
        assert len({fault.marker for fault in armed.faults}) == 2

    def test_scope_filtering(self):
        environ = {IOCHAOS_ENV: "eio@serve=journal"}
        assert IoFault.from_env(environ=environ) is None
        armed = IoFault.from_env(environ=environ, scope="serve")
        assert armed.faults[0].target == "journal"

    def test_unscoped_faults_arm_everywhere(self):
        environ = {IOCHAOS_ENV: "enospc@cache"}
        for scope in ("worker", "serve"):
            armed = IoFault.from_env(environ=environ, scope=scope)
            assert armed is not None

    def test_mixed_list_filters_per_side(self, tmp_path):
        environ = {
            IOCHAOS_ENV: "enospc@worker=cache,eio@serve=journal",
            IOCHAOS_ONCE_ENV: str(tmp_path)}
        worker = IoFault.from_env(environ=environ)
        serve = IoFault.from_env(environ=environ, scope="serve")
        assert [f.target for f in worker.faults] == ["cache"]
        assert [f.target for f in serve.faults] == ["journal"]
        # Markers are assigned over the full list before filtering.
        assert worker.faults[0].marker != serve.faults[0].marker

    def test_unknown_scope_rejected(self):
        with pytest.raises(ValueError):
            IoFault.from_env(environ={}, scope="moon")


class TestTrigger:
    def test_ordinal_counts_only_matching_operations(self):
        fault = IoFault("enospc", "cache", ordinal=2)
        # Wrong op and wrong target never count.
        assert not fault.matches("fsync", "cache")
        assert not fault.matches("write", "journal")
        assert not fault.matches("write", "cache")   # 1st
        assert fault.matches("write", "cache")       # 2nd: fires
        assert not fault.matches("write", "cache")   # 3rd

    def test_every_fires_periodically(self):
        fault = IoFault("eio", "warm", every=2)
        hits = [fault.matches("write", "warm") for _ in range(6)]
        assert hits == [False, True, False, True, False, True]

    def test_always_fires_every_time(self):
        fault = IoFault("rename-fail", "traces")
        assert fault.should_fire("replace", "traces")
        assert fault.should_fire("replace", "traces")
        assert fault.fired == 2

    def test_error_codes(self):
        enospc = IoFault("enospc", "cache").error()
        assert enospc.errno == errno.ENOSPC
        for mode in ("eio", "torn-write", "fsync-fail", "rename-fail"):
            assert IoFault(mode, "cache").error().errno == errno.EIO


class TestFireOnce:
    def test_first_claim_wins(self, tmp_path):
        first = IoFault("enospc", "cache", once_dir=str(tmp_path))
        second = IoFault("enospc", "cache", once_dir=str(tmp_path))
        assert first.should_fire("write", "cache")
        assert (tmp_path / IO_ONCE_MARKER).exists()
        assert not second.should_fire("write", "cache")
        assert second.fired == 0

    def test_marker_survives_for_later_processes(self, tmp_path):
        (tmp_path / IO_ONCE_MARKER).write_text("123\n")
        fault = IoFault("enospc", "cache", once_dir=str(tmp_path))
        assert not fault.should_fire("write", "cache")


class TestSeams:
    def test_disabled_seams_pass_through(self, tmp_path):
        path = tmp_path / "plain.txt"
        with open(path, "w") as fh:
            iofault.write("cache", fh, "hello\n")
            iofault.fsync("cache", fh.fileno())
        iofault.replace("cache", str(path), str(tmp_path / "moved.txt"))
        assert (tmp_path / "moved.txt").read_text() == "hello\n"

    def test_enospc_write_writes_nothing(self, monkeypatch):
        monkeypatch.setenv(IOCHAOS_ENV, "enospc@cache")
        buf = io.StringIO()
        with pytest.raises(OSError) as info:
            iofault.write("cache", buf, "payload")
        assert info.value.errno == errno.ENOSPC
        assert buf.getvalue() == ""

    def test_torn_write_writes_half(self, monkeypatch):
        monkeypatch.setenv(IOCHAOS_ENV, "torn-write@journal")
        buf = io.StringIO()
        with pytest.raises(OSError) as info:
            iofault.write("journal", buf, "0123456789")
        assert info.value.errno == errno.EIO
        assert buf.getvalue() == "01234"

    def test_fsync_fail(self, monkeypatch, tmp_path):
        monkeypatch.setenv(IOCHAOS_ENV, "fsync-fail@journal")
        with open(tmp_path / "j", "w") as fh:
            fh.write("x")
            with pytest.raises(OSError):
                iofault.fsync("journal", fh.fileno())
        # Other targets stay healthy.
        with open(tmp_path / "k", "w") as fh:
            iofault.fsync("cache", fh.fileno())

    def test_rename_fail_leaves_source(self, monkeypatch, tmp_path):
        monkeypatch.setenv(IOCHAOS_ENV, "rename-fail@traces")
        src = tmp_path / "a"
        src.write_text("x")
        with pytest.raises(OSError):
            iofault.replace("traces", str(src), str(tmp_path / "b"))
        assert src.exists()
        assert not (tmp_path / "b").exists()

    def test_ordinal_counts_across_seam_calls(self, monkeypatch):
        monkeypatch.setenv(IOCHAOS_ENV, "eio@cache:3")
        for _ in range(2):
            buf = io.StringIO()
            iofault.write("cache", buf, "ok")
            assert buf.getvalue() == "ok"
        with pytest.raises(OSError):
            iofault.write("cache", io.StringIO(), "boom")

    def test_rearming_on_env_change(self, monkeypatch):
        monkeypatch.setenv(IOCHAOS_ENV, "eio@cache")
        with pytest.raises(OSError):
            iofault.write("cache", io.StringIO(), "x")
        monkeypatch.delenv(IOCHAOS_ENV)
        buf = io.StringIO()
        iofault.write("cache", buf, "x")
        assert buf.getvalue() == "x"

    def test_scope_gates_seams(self, monkeypatch):
        monkeypatch.setenv(IOCHAOS_ENV, "eio@serve=journal")
        buf = io.StringIO()
        iofault.write("journal", buf, "fine in a worker")
        assert buf.getvalue() == "fine in a worker"
        iofault.set_scope("serve")
        with pytest.raises(OSError):
            iofault.write("journal", io.StringIO(), "boom")

    def test_once_marker_gates_seams(self, monkeypatch, tmp_path):
        monkeypatch.setenv(IOCHAOS_ENV, "enospc@cache")
        monkeypatch.setenv(IOCHAOS_ONCE_ENV, str(tmp_path))
        with pytest.raises(OSError):
            iofault.write("cache", io.StringIO(), "x")
        # The marker is claimed: every later write proceeds healthy.
        buf = io.StringIO()
        iofault.write("cache", buf, "x")
        assert buf.getvalue() == "x"
        assert os.path.exists(os.path.join(str(tmp_path),
                                           IO_ONCE_MARKER))
