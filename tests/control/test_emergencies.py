"""Tests for emergency definition and accounting."""

import numpy as np
import pytest

from repro.control.emergencies import (
    EmergencyCounter,
    count_emergencies,
    is_emergency,
)


class TestIsEmergency:
    @pytest.mark.parametrize("v,expected", [
        (1.0, False), (0.951, False), (1.049, False),
        (0.949, True), (1.051, True), (0.5, True), (1.5, True),
    ])
    def test_five_percent_band(self, v, expected):
        assert is_emergency(v) == expected

    def test_bounds_are_exclusive(self):
        # Exactly 5% is "swings greater than 5%": not yet an emergency.
        assert not is_emergency(0.95)
        assert not is_emergency(1.05)

    def test_custom_nominal(self):
        assert is_emergency(1.80, nominal=2.0)
        assert not is_emergency(1.91, nominal=2.0)


class TestCountEmergencies:
    def test_counts(self):
        v = np.array([1.0, 0.94, 0.96, 1.06, 1.0])
        assert count_emergencies(v) == 2

    def test_empty(self):
        assert count_emergencies([]) == 0

    def test_accepts_list(self):
        assert count_emergencies([0.9, 1.0]) == 1


class TestEmergencyCounter:
    def test_validation(self):
        with pytest.raises(ValueError):
            EmergencyCounter(nominal=0.0)
        with pytest.raises(ValueError):
            EmergencyCounter(fraction=1.5)

    def test_basic_accounting(self):
        c = EmergencyCounter()
        for v in (1.0, 0.94, 0.93, 1.0, 1.06, 1.0):
            c.observe(v)
        assert c.cycles == 6
        assert c.emergency_cycles == 3
        assert c.undershoot_cycles == 2
        assert c.overshoot_cycles == 1
        assert c.frequency == pytest.approx(0.5)

    def test_episodes_group_consecutive_cycles(self):
        c = EmergencyCounter()
        for v in (0.94, 0.93, 1.0, 0.94, 1.0, 1.06, 1.06):
            c.observe(v)
        assert c.episodes == 3

    def test_extremes(self):
        c = EmergencyCounter()
        for v in (1.0, 0.97, 1.02):
            c.observe(v)
        assert c.v_min == pytest.approx(0.97)
        assert c.v_max == pytest.approx(1.02)

    def test_empty_summary(self):
        s = EmergencyCounter().summary()
        assert s["cycles"] == 0
        assert s["frequency"] == 0.0
        assert s["v_min"] is None

    def test_any_flag(self):
        c = EmergencyCounter()
        c.observe(1.0)
        assert not c.any
        c.observe(0.90)
        assert c.any


class TestNonFiniteRejection:
    def test_nan_rejected(self):
        c = EmergencyCounter()
        c.observe(1.0)
        with pytest.raises(ValueError, match="non-finite"):
            c.observe(float("nan"))
        # The counts were not corrupted by the bad sample.
        assert c.cycles == 1
        assert c.v_min == pytest.approx(1.0)

    def test_inf_rejected(self):
        c = EmergencyCounter()
        with pytest.raises(ValueError, match="non-finite"):
            c.observe(float("inf"))
        with pytest.raises(ValueError, match="non-finite"):
            c.observe(float("-inf"))
        assert c.cycles == 0
