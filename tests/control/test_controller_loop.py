"""Tests for the threshold controller FSM and the closed loop."""

import pytest

from repro.control.actuators import Actuator, ActuatorCommand
from repro.control.controller import ThresholdController
from repro.control.loop import ClosedLoopSimulation, run_workload
from repro.control.sensor import ThresholdSensor
from repro.control.thresholds import (
    ThresholdDesign,
    design_pdn,
    solve_thresholds,
)
from repro.power import PowerModel
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine
from repro.workloads.stressmark import (
    StressmarkSpec,
    stressmark_stream,
    tune_stressmark,
)


@pytest.fixture(scope="module")
def config():
    return MachineConfig()


@pytest.fixture(scope="module")
def model(config):
    return PowerModel(config)


@pytest.fixture(scope="module")
def pdn200(model):
    return design_pdn(model, impedance_percent=200.0)


@pytest.fixture(scope="module")
def design200(model, pdn200):
    i_min, i_max = model.current_envelope()
    return solve_thresholds(pdn200, i_min, i_max, delay=2,
                            i_reduce=model.gated_min_power(),
                            i_boost=i_max)


@pytest.fixture(scope="module")
def tuned_spec(config, pdn200):
    spec, _ = tune_stressmark(pdn200, config)
    return spec


class TestControllerFsm:
    def _controller(self, delay=0):
        sensor = ThresholdSensor(v_low=0.96, v_high=1.04, delay=delay)
        return ThresholdController(sensor, actuator=Actuator("ideal"))

    def test_requires_sensor(self):
        with pytest.raises(TypeError):
            ThresholdController(object())

    def test_low_voltage_reduces(self):
        machine = Machine(MachineConfig().small(), [])
        ctrl = self._controller()
        assert ctrl.step(machine, 0.94) is ActuatorCommand.REDUCE
        assert machine.fus.gated

    def test_high_voltage_boosts(self):
        machine = Machine(MachineConfig().small(), [])
        ctrl = self._controller()
        assert ctrl.step(machine, 1.06) is ActuatorCommand.BOOST
        assert machine.fus.phantom

    def test_normal_releases(self):
        machine = Machine(MachineConfig().small(), [])
        ctrl = self._controller()
        ctrl.step(machine, 0.94)
        assert ctrl.step(machine, 1.0) is ActuatorCommand.NONE
        assert not machine.fus.gated

    def test_transition_counting(self):
        machine = Machine(MachineConfig().small(), [])
        ctrl = self._controller()
        for v in (1.0, 0.94, 0.94, 1.0, 1.06):
            ctrl.step(machine, v)
        assert ctrl.transitions == 3
        assert ctrl.reduce_cycles == 2
        assert ctrl.boost_cycles == 1

    def test_from_design(self):
        design = ThresholdDesign(v_low=0.96, v_high=1.02, delay=3,
                                 error=0.005, i_min=10, i_max=60,
                                 i_reduce=12, i_boost=55,
                                 v_worst_low=0.95, v_worst_high=1.05)
        ctrl = ThresholdController.from_design(design)
        assert ctrl.sensor.v_low == 0.96
        assert ctrl.sensor.delay == 3
        assert ctrl.sensor.error == 0.005

    def test_summary_fields(self):
        ctrl = self._controller(delay=2)
        s = ctrl.summary()
        assert s["delay"] == 2
        assert s["actuator"] == "ideal"


class TestClosedLoop:
    def test_uncontrolled_stressmark_has_emergencies(self, config, pdn200,
                                                     tuned_spec):
        result = run_workload(stressmark_stream(tuned_spec), pdn200,
                              config=config, warmup_instructions=2000,
                              max_cycles=8000)
        assert result.emergencies["emergency_cycles"] > 0

    def test_controller_eliminates_emergencies(self, config, pdn200,
                                               design200, tuned_spec):
        """The headline result: the threshold controller removes all
        voltage emergencies from the dI/dt stressmark."""
        def factory(machine, power_model):
            return ThresholdController.from_design(
                design200, actuator=Actuator("ideal"))
        result = run_workload(stressmark_stream(tuned_spec), pdn200,
                              config=config, warmup_instructions=2000,
                              max_cycles=8000, controller_factory=factory)
        assert result.emergencies["emergency_cycles"] == 0
        assert (result.controller["reduce_cycles"] +
                result.controller["boost_cycles"]) > 0

    def test_controller_cost_is_bounded(self, config, pdn200, design200,
                                        tuned_spec):
        """Control must not cripple the machine: the stressmark loses
        performance (paper: ~6-25%) but still commits instructions."""
        base = run_workload(stressmark_stream(tuned_spec), pdn200,
                            config=config, warmup_instructions=2000,
                            max_cycles=8000)

        def factory(machine, power_model):
            return ThresholdController.from_design(
                design200, actuator=Actuator("fu_dl1_il1"))
        controlled = run_workload(stressmark_stream(tuned_spec), pdn200,
                                  config=config, warmup_instructions=2000,
                                  max_cycles=8000,
                                  controller_factory=factory)
        assert controlled.committed > 0.5 * base.committed

    def test_traces_recorded_when_asked(self, config, pdn200, tuned_spec):
        result = run_workload(stressmark_stream(tuned_spec), pdn200,
                              config=config, warmup_instructions=1000,
                              max_cycles=2000, record_traces=True)
        assert result.voltages is not None
        assert len(result.voltages) == result.cycles
        assert len(result.currents) == result.cycles

    def test_traces_absent_by_default(self, config, pdn200, tuned_spec):
        result = run_workload(stressmark_stream(tuned_spec), pdn200,
                              config=config, warmup_instructions=1000,
                              max_cycles=1000)
        assert result.voltages is None

    def test_energy_positive_and_sane(self, config, model, pdn200,
                                      tuned_spec):
        result = run_workload(stressmark_stream(tuned_spec), pdn200,
                              config=config, warmup_instructions=1000,
                              max_cycles=5000)
        max_possible = model.max_power() * result.cycles * config.cycle_time
        assert 0.0 < result.energy < max_possible

    def test_ipc_property(self, config, pdn200, tuned_spec):
        result = run_workload(stressmark_stream(tuned_spec), pdn200,
                              config=config, warmup_instructions=1000,
                              max_cycles=3000)
        assert result.ipc == pytest.approx(
            result.committed / result.cycles)

    def test_step_returns_voltage(self, config, model, pdn200, tuned_spec):
        machine = Machine(config, stressmark_stream(tuned_spec))
        loop = ClosedLoopSimulation(machine, model, pdn200)
        v = loop.step()
        assert 0.8 < v < 1.2
