"""Tests for the pessimistic ramp controller (Section 2.3 strawman)."""

import pytest

from repro.control.actuators import ActuatorCommand
from repro.control.ramp import PessimisticRampController
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine


@pytest.fixture
def machine():
    return Machine(MachineConfig().small(), [])


class TestRampController:
    def test_validation(self):
        with pytest.raises(ValueError):
            PessimisticRampController(max_step=0.0)

    def test_slow_ramp_not_throttled(self, machine):
        ctrl = PessimisticRampController(max_step=2.0)
        for current in (10.0, 11.0, 12.0, 13.0):
            command = ctrl.step_current(machine, current)
        assert command is ActuatorCommand.NONE
        assert ctrl.reduce_cycles == 0

    def test_fast_rise_throttled(self, machine):
        ctrl = PessimisticRampController(max_step=2.0)
        ctrl.step_current(machine, 10.0)
        command = ctrl.step_current(machine, 20.0)
        assert command is ActuatorCommand.REDUCE
        assert machine.fus.gated

    def test_drop_never_throttled(self, machine):
        ctrl = PessimisticRampController(max_step=2.0)
        ctrl.step_current(machine, 50.0)
        assert ctrl.step_current(machine, 10.0) is ActuatorCommand.NONE

    def test_first_observation_free(self, machine):
        ctrl = PessimisticRampController(max_step=0.5)
        assert ctrl.step_current(machine, 60.0) is ActuatorCommand.NONE

    def test_summary(self, machine):
        ctrl = PessimisticRampController(max_step=1.0)
        ctrl.step_current(machine, 0.0)
        ctrl.step_current(machine, 10.0)
        s = ctrl.summary()
        assert s["reduce_cycles"] == 1
        assert s["max_step"] == 1.0
        assert s["actuator"] == "fu"

    def test_closed_loop_integration(self):
        """The loop dispatches to step_current for ramp controllers."""
        from repro.control.loop import run_workload
        from repro.core import VoltageControlDesign
        from repro.workloads.spec import get_profile

        design = VoltageControlDesign(impedance_percent=200.0)

        def factory(machine, power_model):
            return PessimisticRampController(max_step=1.0)

        result = run_workload(get_profile("galgel").stream(seed=3),
                              design.pdn, config=design.config,
                              controller_factory=factory,
                              warmup_instructions=20000, max_cycles=3000)
        assert result.controller["reduce_cycles"] > 0
