"""Tests for the graded two-stage threshold controller."""

import pytest

from repro.control.graded import GradedThresholdController
from repro.control.thresholds import ThresholdDesign
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine


def design(v_low=0.96, v_high=1.02, delay=0):
    return ThresholdDesign(v_low=v_low, v_high=v_high, delay=delay,
                           error=0.0, i_min=15, i_max=65, i_reduce=16,
                           i_boost=60, v_worst_low=0.95, v_worst_high=1.05)


@pytest.fixture
def machine():
    return Machine(MachineConfig().small(), [])


class TestValidation:
    def test_positive_margin(self):
        with pytest.raises(ValueError):
            GradedThresholdController(design(), soft_margin=0.0)

    def test_margins_must_fit_window(self):
        with pytest.raises(ValueError):
            GradedThresholdController(design(v_low=0.99, v_high=1.01),
                                      soft_margin=0.02)


class TestStaging:
    def _ctrl(self, delay=0):
        return GradedThresholdController(design(delay=delay),
                                         soft_margin=0.005)

    def test_soft_zone_gates_fus_only(self, machine):
        ctrl = self._ctrl()
        ctrl.step(machine, 0.962)  # between hard (0.96) and soft (0.965)
        assert machine.fus.gated
        assert not machine.dl1.gated
        assert ctrl.soft_reduce_cycles == 1
        assert ctrl.hard_reduce_cycles == 0

    def test_hard_zone_gates_everything(self, machine):
        ctrl = self._ctrl()
        ctrl.step(machine, 0.955)
        assert machine.fus.gated
        assert machine.dl1.gated
        assert machine.il1.gated
        assert ctrl.hard_reduce_cycles == 1

    def test_soft_high_phantom_fires_fus_only(self, machine):
        ctrl = self._ctrl()
        ctrl.step(machine, 1.017)  # between soft (1.015) and hard (1.02)
        assert machine.fus.phantom
        assert not machine.dl1.phantom

    def test_hard_high_phantom_fires_everything(self, machine):
        ctrl = self._ctrl()
        ctrl.step(machine, 1.03)
        assert machine.dl1.phantom and machine.il1.phantom

    def test_normal_zone_quiet(self, machine):
        ctrl = self._ctrl()
        ctrl.step(machine, 1.0)
        for unit in (machine.fus, machine.dl1, machine.il1):
            assert not unit.gated and not unit.phantom

    def test_escalation_switches_actuators(self, machine):
        ctrl = self._ctrl()
        ctrl.step(machine, 0.962)   # soft
        ctrl.step(machine, 0.955)   # escalate to hard
        assert machine.dl1.gated
        ctrl.step(machine, 0.962)   # de-escalate to soft
        assert machine.fus.gated and not machine.dl1.gated

    def test_delay_applies(self, machine):
        ctrl = self._ctrl(delay=2)
        ctrl.step(machine, 1.0)
        ctrl.step(machine, 1.0)
        ctrl.step(machine, 0.95)    # reading still shows 1.0
        assert not machine.fus.gated
        ctrl.step(machine, 0.95)
        ctrl.step(machine, 0.95)    # the 0.95 reading surfaces
        assert machine.fus.gated

    def test_summary(self, machine):
        ctrl = self._ctrl()
        ctrl.step(machine, 0.962)
        ctrl.step(machine, 0.955)
        ctrl.step(machine, 1.03)
        s = ctrl.summary()
        assert s["soft_reduce_cycles"] == 1
        assert s["hard_reduce_cycles"] == 1
        assert s["hard_boost_cycles"] == 1
        assert "graded" in s["actuator"]


class TestClosedLoop:
    def test_protects_the_stressmark(self):
        """Same guarantee as the single-stage controller, with fewer
        full-group (hard) actuations."""
        from repro.control.loop import run_workload
        from repro.core import (VoltageControlDesign, stressmark_stream,
                                tune_stressmark)
        vcd = VoltageControlDesign(impedance_percent=200.0)
        spec, _ = tune_stressmark(vcd.pdn, vcd.config)
        hard = vcd.thresholds(delay=3, actuator_kind="fu_dl1_il1")

        def factory(machine, power_model):
            return GradedThresholdController(hard, soft_margin=0.004)
        result = run_workload(stressmark_stream(spec), vcd.pdn,
                              config=vcd.config,
                              controller_factory=factory,
                              warmup_instructions=2000, max_cycles=8000)
        assert result.emergencies["emergency_cycles"] == 0
        s = result.controller
        assert s["soft_reduce_cycles"] + s["soft_boost_cycles"] > 0
