"""Tests for the plausibility monitor and the fail-safe degraded mode."""

import pytest

from repro.control.actuators import Actuator, ActuatorCommand
from repro.control.controller import PlausibilityMonitor, ThresholdController
from repro.control.ramp import PessimisticRampController
from repro.control.sensor import SensorReading, ThresholdSensor, VoltageLevel
from repro.faults.injectors import FaultySensor, StuckLevelFault
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine


@pytest.fixture
def machine():
    return Machine(MachineConfig().small(), [])


def reading(level, observed=1.0):
    return SensorReading(level, observed)


class TestPlausibilityMonitor:
    def test_validation(self):
        with pytest.raises(ValueError):
            PlausibilityMonitor(stuck_cycles=0)
        with pytest.raises(ValueError):
            PlausibilityMonitor(bound_cycles=0)
        with pytest.raises(ValueError):
            PlausibilityMonitor(v_min=2.0, v_max=1.0)

    def test_stuck_low_detected(self):
        m = PlausibilityMonitor(stuck_cycles=5)
        for _ in range(4):
            assert m.observe(reading(VoltageLevel.LOW, 0.94)) is None
        reason = m.observe(reading(VoltageLevel.LOW, 0.94))
        assert reason is not None and "stuck at LOW" in reason

    def test_normal_never_stuck(self):
        m = PlausibilityMonitor(stuck_cycles=3)
        for _ in range(100):
            assert m.observe(reading(VoltageLevel.NORMAL)) is None

    def test_level_change_resets_run(self):
        m = PlausibilityMonitor(stuck_cycles=3)
        seq = [VoltageLevel.LOW, VoltageLevel.LOW, VoltageLevel.NORMAL,
               VoltageLevel.LOW, VoltageLevel.LOW]
        assert all(m.observe(reading(lv, 0.94)) is None for lv in seq)

    def test_out_of_bounds_detected(self):
        m = PlausibilityMonitor(bound_cycles=3, v_min=0.0, v_max=2.0)
        assert m.observe(reading(VoltageLevel.HIGH, 5.0)) is None
        assert m.observe(reading(VoltageLevel.HIGH, 5.0)) is None
        reason = m.observe(reading(VoltageLevel.HIGH, 5.0))
        assert reason is not None and "outside" in reason

    def test_nan_counts_as_out_of_bounds(self):
        m = PlausibilityMonitor(bound_cycles=2)
        assert m.observe(reading(VoltageLevel.NORMAL,
                                 float("nan"))) is None
        assert m.observe(reading(VoltageLevel.NORMAL,
                                 float("nan"))) is not None

    def test_in_bounds_resets_run(self):
        m = PlausibilityMonitor(bound_cycles=2)
        m.observe(reading(VoltageLevel.NORMAL, 5.0))
        m.observe(reading(VoltageLevel.NORMAL, 1.0))
        assert m.observe(reading(VoltageLevel.NORMAL, 5.0)) is None

    def test_reset(self):
        m = PlausibilityMonitor(stuck_cycles=2)
        m.observe(reading(VoltageLevel.LOW, 0.94))
        m.reset()
        assert m.observe(reading(VoltageLevel.LOW, 0.94)) is None


def stuck_low_controller(stuck_cycles=5, **ctrl_kwargs):
    base = ThresholdSensor(v_low=0.96, v_high=1.04)
    sensor = FaultySensor(base, [StuckLevelFault(VoltageLevel.LOW)])
    monitor = PlausibilityMonitor(stuck_cycles=stuck_cycles)
    return ThresholdController(sensor, actuator=Actuator("ideal"),
                               monitor=monitor, **ctrl_kwargs)


class TestFailsafeDegradation:
    def test_stuck_low_triggers_failsafe(self, machine):
        ctrl = stuck_low_controller(stuck_cycles=5)
        for _ in range(4):
            assert ctrl.step(machine, 1.0, 20.0) is ActuatorCommand.REDUCE
        # Fifth identical LOW trips the monitor; actuation is dropped.
        command = ctrl.step(machine, 1.0, 20.0)
        assert ctrl.failsafe_active
        assert ctrl.failsafe_transitions == 1
        assert "stuck at LOW" in ctrl.failsafe_reason
        assert command is ActuatorCommand.NONE
        assert not machine.fus.gated

    def test_failsafe_ramp_throttles_current_steps(self, machine):
        ctrl = stuck_low_controller(
            stuck_cycles=2,
            failsafe=PessimisticRampController(max_step=2.0,
                                               actuator=Actuator("fu")))
        ctrl.step(machine, 1.0, 10.0)
        ctrl.step(machine, 1.0, 10.0)   # monitor trips here
        assert ctrl.failsafe_active
        # Degraded mode: a fast current rise is throttled, slow is not.
        assert ctrl.step(machine, 1.0, 11.0) is ActuatorCommand.NONE
        assert ctrl.step(machine, 1.0, 30.0) is ActuatorCommand.REDUCE
        assert machine.fus.gated

    def test_sensor_no_longer_consulted_after_failsafe(self, machine):
        ctrl = stuck_low_controller(stuck_cycles=2)
        ctrl.step(machine, 1.0, 10.0)
        ctrl.step(machine, 1.0, 10.0)
        observed_before = ctrl.sensor._cycle
        ctrl.step(machine, 1.0, 10.0)
        assert ctrl.sensor._cycle == observed_before

    def test_without_current_failsafe_releases(self, machine):
        ctrl = stuck_low_controller(stuck_cycles=2)
        ctrl.step(machine, 1.0)
        ctrl.step(machine, 1.0)
        assert ctrl.failsafe_active
        assert ctrl.step(machine, 1.0) is ActuatorCommand.NONE
        assert not machine.fus.gated

    def test_summary_reports_failsafe(self, machine):
        ctrl = stuck_low_controller(stuck_cycles=2)
        ctrl.step(machine, 1.0, 10.0)
        ctrl.step(machine, 1.0, 10.0)
        ctrl.step(machine, 1.0, 30.0)
        s = ctrl.summary()
        assert s["failsafe_active"] is True
        assert s["failsafe_transitions"] == 1
        assert "stuck at LOW" in s["failsafe_reason"]
        assert s["failsafe_reduce_cycles"] >= 0

    def test_no_monitor_means_no_failsafe(self, machine):
        sensor = FaultySensor(ThresholdSensor(v_low=0.96, v_high=1.04),
                              [StuckLevelFault(VoltageLevel.LOW)])
        ctrl = ThresholdController(sensor, actuator=Actuator("ideal"))
        for _ in range(50):
            ctrl.step(machine, 1.0, 20.0)
        assert not ctrl.failsafe_active
        assert ctrl.reduce_cycles == 50

    def test_healthy_sensor_never_degrades(self, machine):
        sensor = ThresholdSensor(v_low=0.96, v_high=1.04)
        ctrl = ThresholdController(
            sensor, actuator=Actuator("ideal"),
            monitor=PlausibilityMonitor(stuck_cycles=10))
        # Emergencies shorter than the stuck threshold: stays nominal.
        for v in ([0.94] * 5 + [1.0] * 5) * 20:
            ctrl.step(machine, v, 20.0)
        assert not ctrl.failsafe_active
        assert ctrl.failsafe_transitions == 0

    def test_end_to_end_stuck_low_run_completes(self):
        """Acceptance scenario: a stuck-LOW sensor mid-run activates
        the fail-safe and the closed loop completes with the
        transition reported in the LoopResult summary."""
        from repro.control.loop import run_workload
        from repro.core import VoltageControlDesign
        from repro.workloads.spec import get_profile

        design = VoltageControlDesign(impedance_percent=200.0)
        thresholds = design.thresholds(delay=2,
                                       actuator_kind="fu_dl1_il1")

        def factory(machine, power_model):
            base = ThresholdSensor(thresholds.v_low, thresholds.v_high,
                                   delay=thresholds.delay)
            sensor = FaultySensor(
                base, [StuckLevelFault(VoltageLevel.LOW, start=500)])
            return ThresholdController(
                sensor, actuator=Actuator("fu_dl1_il1"),
                monitor=PlausibilityMonitor(stuck_cycles=200))

        result = run_workload(get_profile("swim").stream(seed=3),
                              design.pdn, config=design.config,
                              controller_factory=factory,
                              warmup_instructions=10000, max_cycles=3000)
        assert result.cycles == 3000
        assert result.controller["failsafe_active"] is True
        assert result.controller["failsafe_transitions"] == 1
