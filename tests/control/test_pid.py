"""Tests for the PID controller, digitizing sensor, and proportional
actuator (Section 6 exploration)."""

import pytest

from repro.control.pid import (
    DigitizingSensor,
    PidController,
    ProportionalActuator,
    default_gains,
)
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine


@pytest.fixture
def machine():
    return Machine(MachineConfig().small(), [])


class TestDigitizingSensor:
    def test_validation(self):
        with pytest.raises(ValueError):
            DigitizingSensor(v_min=1.1, v_max=1.0)
        with pytest.raises(ValueError):
            DigitizingSensor(bits=0)
        with pytest.raises(ValueError):
            DigitizingSensor(delay=-1)

    def test_quantization(self):
        sensor = DigitizingSensor(v_min=0.9, v_max=1.1, bits=4, delay=0)
        # 16 levels of 12.5 mV: readings snap to bin centres.
        reading = sensor.observe(1.0)
        assert abs(reading - 1.0) <= sensor.lsb / 2 + 1e-12

    def test_resolution_improves_with_bits(self):
        coarse = DigitizingSensor(bits=3, delay=0)
        fine = DigitizingSensor(bits=10, delay=0)
        v = 0.98765
        assert abs(fine.observe(v) - v) < abs(coarse.observe(v) - v)

    def test_delay(self):
        sensor = DigitizingSensor(bits=8, delay=2)
        readings = [sensor.observe(v) for v in (1.0, 1.0, 0.9, 0.9, 0.9)]
        assert readings[2] == pytest.approx(1.0, abs=sensor.lsb)
        assert readings[4] == pytest.approx(0.9, abs=sensor.lsb)

    def test_clamps_out_of_range(self):
        sensor = DigitizingSensor(v_min=0.9, v_max=1.1, bits=6, delay=0)
        assert sensor.observe(2.0) <= 1.1
        assert sensor.observe(0.0) >= 0.9

    def test_reset(self):
        sensor = DigitizingSensor(bits=8, delay=3)
        sensor.observe(0.9)
        sensor.reset()
        assert sensor.observe(1.0) == pytest.approx(1.0, abs=sensor.lsb)


class TestProportionalActuator:
    def test_effort_ladder(self, machine):
        act = ProportionalActuator()
        act.apply_effort(machine, 0.1)
        assert not machine.fus.gated
        act.apply_effort(machine, 0.5)
        assert machine.fus.gated and not machine.dl1.gated
        act.apply_effort(machine, 0.8)
        assert machine.fus.gated and machine.dl1.gated
        assert not machine.il1.gated
        act.apply_effort(machine, 1.0)
        assert machine.il1.gated

    def test_negative_effort_phantom_fires(self, machine):
        act = ProportionalActuator()
        act.apply_effort(machine, -0.5)
        assert machine.fus.phantom
        assert not machine.fus.gated

    def test_effort_clamped(self, machine):
        act = ProportionalActuator()
        act.apply_effort(machine, 5.0)
        assert machine.il1.gated
        act.apply_effort(machine, -5.0)
        assert machine.il1.phantom

    def test_release(self, machine):
        act = ProportionalActuator()
        act.apply_effort(machine, 1.0)
        act.release(machine)
        for unit in (machine.fus, machine.dl1, machine.il1):
            assert not unit.gated and not unit.phantom


class TestPidController:
    def _pid(self, kp=8.0, ki=0.0, kd=0.0, delay=0):
        return PidController(kp, ki, kd,
                             sensor=DigitizingSensor(bits=10, delay=delay))

    def test_sag_produces_gating(self, machine):
        pid = self._pid(kp=20.0)
        pid.step(machine, 0.95)  # 50 mV error -> effort 1.0
        assert machine.fus.gated

    def test_overshoot_produces_phantom(self, machine):
        pid = self._pid(kp=20.0)
        pid.step(machine, 1.05)
        assert machine.fus.phantom

    def test_nominal_is_quiet(self, machine):
        pid = self._pid(kp=8.0)
        pid.step(machine, 1.0)
        assert not machine.fus.gated and not machine.fus.phantom

    def test_integral_windup_clamped(self, machine):
        pid = PidController(kp=0.0, ki=1.0, kd=0.0, integral_limit=0.5,
                            sensor=DigitizingSensor(bits=10, delay=0))
        for _ in range(100):
            pid.step(machine, 0.90)
        assert pid._integral == pytest.approx(0.5)

    def test_derivative_reacts_to_slew(self, machine):
        pid = PidController(kp=0.0, ki=0.0, kd=50.0,
                            sensor=DigitizingSensor(bits=12, delay=0))
        pid.step(machine, 1.0)
        pid.step(machine, 0.98)  # fast 20 mV drop -> large derivative
        assert machine.fus.gated

    def test_counters_and_summary(self, machine):
        pid = self._pid(kp=20.0)
        pid.step(machine, 0.95)
        pid.step(machine, 1.05)
        pid.step(machine, 1.0)
        s = pid.summary()
        assert s["reduce_cycles"] == 1
        assert s["boost_cycles"] == 1
        assert s["actuator"] == "proportional"

    def test_default_gains_pd_form(self):
        from repro.core import VoltageControlDesign
        design = VoltageControlDesign(impedance_percent=200.0)
        kp, ki, kd = default_gains(design.pdn, design.i_min, design.i_max)
        assert kp > 0 and kd > 0
        assert ki == 0.0  # windup-safe default

    def test_closed_loop_eliminates_stressmark_emergencies(self):
        """The Section 6 comparison: a tuned PD loop also protects, at a
        higher cost than threshold control."""
        from repro.control.loop import run_workload
        from repro.core import (VoltageControlDesign, stressmark_stream,
                                tune_stressmark)
        design = VoltageControlDesign(impedance_percent=200.0)
        spec, _ = tune_stressmark(design.pdn, design.config)
        kp, ki, kd = default_gains(design.pdn, design.i_min, design.i_max)

        def factory(machine, power_model):
            return PidController(kp, ki, kd,
                                 sensor=DigitizingSensor(bits=6, delay=3))
        result = run_workload(stressmark_stream(spec), design.pdn,
                              config=design.config,
                              controller_factory=factory,
                              warmup_instructions=2000, max_cycles=8000)
        assert result.emergencies["emergency_cycles"] == 0
        assert result.controller["reduce_cycles"] > 0
