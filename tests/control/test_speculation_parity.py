"""Byte-parity suite for speculative chunked execution.

The speculative path's contract mirrors the open-loop fast path's:
every counter, trace byte, sensor history element, controller summary
field, and raised exception must match what a ``force_lockstep`` run
produces for the same actuated cell.  These tests run both engines and
compare the complete observable state, including gated-cycle
aggregates and the plausibility monitor's run-length internals.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.actuators import Actuator
from repro.control.controller import PlausibilityMonitor, ThresholdController
from repro.control.loop import ClosedLoopSimulation
from repro.control.sensor import ThresholdSensor
from repro.control.thresholds import design_pdn
from repro.faults.injectors import FaultySensor
from repro.faults.watchdog import (
    NumericWatchdog,
    RunBudget,
    SimulationBudgetExceeded,
    SimulationDiverged,
)
from repro.pdn.discrete import PdnSimulator
from repro.power import PowerModel
from repro.telemetry import Telemetry
from repro.telemetry.registry import MetricsRegistry
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine
from repro.workloads.spec import get_profile

SPEC_COUNTERS = ("loop.spec_chunks", "loop.spec_rollbacks",
                 "loop.spec_committed_cycles")


@pytest.fixture(scope="module")
def config():
    return MachineConfig()


@pytest.fixture(scope="module")
def model(config):
    return PowerModel(config)


_PDNS = {}


def _pdn(model, impedance):
    if impedance not in _PDNS:
        _PDNS[impedance] = design_pdn(model, impedance_percent=impedance)
    return _PDNS[impedance]


def _loop(config, model, lockstep, impedance=200.0, v_low=0.995,
          v_high=1.005, delay=2, error=0.0, monitor=None, metrics=True,
          seed=11, **kw):
    machine = Machine(config, get_profile("swim").stream(seed=seed))
    machine.fast_forward(3000)
    sensor = ThresholdSensor(v_low, v_high, delay=delay, error=error,
                             seed=seed)
    controller = ThresholdController(sensor,
                                     actuator=Actuator("fu_dl1_il1"),
                                     monitor=monitor)
    telemetry = Telemetry(metrics=MetricsRegistry()) if metrics else None
    loop = ClosedLoopSimulation(machine, model, _pdn(model, impedance),
                                controller=controller, record_traces=True,
                                telemetry=telemetry, **kw)
    loop.force_lockstep = lockstep
    return loop


def _state(loop):
    """Every piece of post-run state the parity contract covers."""
    ctl = loop.controller
    sensor = ctl.sensor
    base = sensor.sensor if hasattr(sensor, "sensor") else sensor
    state = {
        "counter": loop.counter.summary(),
        "energy": loop._energy,
        "stats": loop.machine.stats.summary(),
        "machine_cycle": loop.machine.cycle,
        # tobytes: a bitwise comparison that still holds when the taps
        # are NaN (the unwatched doctored-recursion tests).
        "pdn": (np.array([loop.pdn_sim._x0,
                          loop.pdn_sim._x1]).tobytes(),
                loop.pdn_sim.cycles),
        "controller": ctl.summary(),
        "sensor_history": tuple(base._history),
        "sensor_state": base._state,
        "rng": base._rng.getstate(),
        "voltages": loop._voltages._data[:loop._voltages._n].tobytes(),
        "currents": loop._currents._data[:loop._currents._n].tobytes(),
    }
    if ctl.monitor is not None:
        m = ctl.monitor
        state["monitor"] = (m._level, m._level_run, m._oob_run)
    return state


def _metrics_match(slow, fast, expect_chunks=True):
    """Metrics exports match modulo the speculation counters."""
    ds = slow.telemetry.metrics.to_dict()
    df = fast.telemetry.metrics.to_dict()
    chunks = df["counters"].pop("loop.spec_chunks", 0)
    rollbacks = df["counters"].pop("loop.spec_rollbacks", 0)
    committed = df["counters"].pop("loop.spec_committed_cycles", 0)
    for key in SPEC_COUNTERS:
        assert key not in ds["counters"]
    assert ds == df
    if expect_chunks:
        assert chunks > 0
    assert rollbacks <= chunks
    return chunks, rollbacks, committed


class TestEligibility:
    def _eligible_loop(self, config, model, **kw):
        return _loop(config, model, lockstep=False, metrics=False, **kw)

    def test_plain_threshold_stack_is_eligible(self, config, model):
        loop = self._eligible_loop(config, model)
        assert loop.speculation_eligible
        assert not loop.fast_path_eligible

    def test_monitor_keeps_eligibility(self, config, model):
        loop = self._eligible_loop(config, model,
                                   monitor=PlausibilityMonitor())
        assert loop.speculation_eligible

    def test_force_lockstep_disables(self, config, model):
        loop = _loop(config, model, lockstep=True, metrics=False)
        assert not loop.speculation_eligible

    def test_speculate_false_disables(self, config, model):
        loop = self._eligible_loop(config, model)
        loop.speculate = False
        assert not loop.speculation_eligible

    def test_env_var_disables(self, config, model, monkeypatch):
        loop = self._eligible_loop(config, model)
        monkeypatch.setenv("REPRO_NO_SPECULATE", "1")
        assert not loop.speculation_eligible

    def test_faulty_sensor_falls_back(self, config, model):
        loop = self._eligible_loop(config, model)
        loop.controller.sensor = FaultySensor(loop.controller.sensor, [])
        assert not loop.speculation_eligible

    def test_trace_telemetry_falls_back(self, config, model):
        machine = Machine(config, [])
        sensor = ThresholdSensor(0.995, 1.005)
        controller = ThresholdController(sensor, actuator=Actuator("ideal"))
        loop = ClosedLoopSimulation(machine, model, _pdn(model, 200.0),
                                    controller=controller,
                                    telemetry=Telemetry.full())
        assert not loop.speculation_eligible

    def test_pdn_watchdog_falls_back(self, config, model):
        machine = Machine(config, [])
        sensor = ThresholdSensor(0.995, 1.005)
        controller = ThresholdController(sensor, actuator=Actuator("ideal"))
        sim = PdnSimulator(_pdn(model, 200.0), clock_hz=config.clock_hz,
                           watchdog=NumericWatchdog())
        loop = ClosedLoopSimulation(machine, model, _pdn(model, 200.0),
                                    controller=controller, pdn_sim=sim)
        assert not loop.speculation_eligible


class TestCleanRunParity:
    def test_everything_bitwise_identical(self, config, model):
        slow = _loop(config, model, lockstep=True)
        fast = _loop(config, model, lockstep=False)
        assert fast.speculation_eligible
        rs = slow.run(max_cycles=6000)
        rf = fast.run(max_cycles=6000)
        assert np.array_equal(rs.voltages, rf.voltages)
        assert np.array_equal(rs.currents, rf.currents)
        assert rs.energy == rf.energy
        assert rs.cycles == rf.cycles
        assert rs.committed == rf.committed
        assert rs.emergencies == rf.emergencies
        assert rs.controller == rf.controller
        assert rs.machine_stats.summary() == rf.machine_stats.summary()
        assert _state(slow) == _state(fast)
        chunks, _, committed = _metrics_match(slow, fast)
        assert committed <= rf.cycles

    def test_actuation_actually_happened(self, config, model):
        # The parity run must exercise both regimes: committed
        # speculation and lockstep actuation windows.
        fast = _loop(config, model, lockstep=False)
        result = fast.run(max_cycles=6000)
        assert result.controller["transitions"] > 0
        counters = fast.telemetry.metrics.to_dict()["counters"]
        assert counters["loop.spec_chunks"] > 0
        assert counters["loop.spec_rollbacks"] > 0
        assert 0 < counters["loop.spec_committed_cycles"] < result.cycles

    def test_monitor_and_noise_parity(self, config, model):
        kw = dict(delay=2, error=0.002)
        slow = _loop(config, model, lockstep=True,
                     monitor=PlausibilityMonitor(), **kw)
        fast = _loop(config, model, lockstep=False,
                     monitor=PlausibilityMonitor(), **kw)
        rs = slow.run(max_cycles=5000)
        rf = fast.run(max_cycles=5000)
        assert rs.emergencies == rf.emergencies
        assert _state(slow) == _state(fast)
        _metrics_match(slow, fast)

    def test_max_instructions_limit_matches(self, config, model):
        slow = _loop(config, model, lockstep=True)
        fast = _loop(config, model, lockstep=False)
        rs = slow.run(max_cycles=20000, max_instructions=4000)
        rf = fast.run(max_cycles=20000, max_instructions=4000)
        assert rs.cycles == rf.cycles
        assert rs.committed == rf.committed
        assert _state(slow) == _state(fast)

    def test_result_traces_are_views(self, config, model):
        fast = _loop(config, model, lockstep=False)
        result = fast.run(max_cycles=2000)
        assert result.voltages.dtype == np.float64
        assert result.voltages.shape == (2000,)
        assert result.voltages.base is not None


class TestRandomGridParity:
    @given(impedance=st.sampled_from([120.0, 200.0, 320.0]),
           v_low=st.floats(min_value=0.988, max_value=0.998),
           v_high=st.floats(min_value=1.001, max_value=1.012),
           delay=st.integers(min_value=0, max_value=4),
           error=st.floats(min_value=0.0, max_value=0.004),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=12, deadline=None)
    def test_random_cell_bitwise_identical(self, impedance, v_low, v_high,
                                           delay, error, seed):
        config = MachineConfig()
        model = PowerModel(config)
        kw = dict(impedance=impedance, v_low=v_low, v_high=v_high,
                  delay=delay, error=error, seed=seed,
                  monitor=PlausibilityMonitor())
        slow = _loop(config, model, lockstep=True, **kw)
        fast = _loop(config, model, lockstep=False, **kw)
        assert fast.speculation_eligible
        rs = slow.run(max_cycles=2500)
        rf = fast.run(max_cycles=2500)
        assert rs.emergencies == rf.emergencies
        assert np.array_equal(rs.voltages, rf.voltages)
        assert _state(slow) == _state(fast)
        # Some corners of the grid keep the controller busy enough that
        # no chunk ever opens; parity must hold regardless.
        _metrics_match(slow, fast, expect_chunks=False)


class TestDivergenceParity:
    def _watchdog_trip(self, config, model, lockstep):
        # Thresholds wide open: the controller never actuates, so the
        # watchdog violation lands mid-speculated-chunk.
        loop = _loop(config, model, lockstep=lockstep, v_low=0.9,
                     v_high=1.1,
                     watchdog=NumericWatchdog(v_min=0.993, v_max=1.02,
                                              tail=8))
        with pytest.raises(SimulationDiverged) as info:
            loop.run(max_cycles=6000)
        return loop, info.value

    def test_watchdog_trip_bitwise_identical(self, config, model):
        slow, es = self._watchdog_trip(config, model, lockstep=True)
        fast, ef = self._watchdog_trip(config, model, lockstep=False)
        assert str(es) == str(ef)
        assert (es.cycle, es.value, es.reason) == (ef.cycle, ef.value,
                                                   ef.reason)
        assert es.trace_tail == ef.trace_tail
        assert list(slow.watchdog._tail) == list(fast.watchdog._tail)
        # The trip cycle itself re-executes lockstep after the rollback,
        # so unlike the open-loop fast path nothing overshoots: the
        # complete state (PDN included) matches.
        assert _state(slow) == _state(fast)
        _metrics_match(slow, fast)

    def _nonfinite(self, config, model, lockstep, delay):
        # Unstable doctored recursion, no watchdog: the voltage doubles
        # each cycle until it overflows, and the emergency counter must
        # reject it identically on both paths -- at the cycle it
        # appears, not ``delay`` cycles later through the sensor.
        loop = _loop(config, model, lockstep=lockstep, v_low=0.9,
                     v_high=2.0e308, delay=delay, watchdog=False)
        loop.pdn_sim._a10 = 0.0
        loop.pdn_sim._a11 = 2.0
        loop.pdn_sim._b1 = 0.0
        loop.pdn_sim._e1 = 0.0
        with pytest.raises(ValueError) as info:
            loop.run(max_cycles=6000)
        return loop, info.value

    @pytest.mark.parametrize("delay", [0, 1, 3])
    def test_unwatched_nonfinite_bitwise_identical(self, config, model,
                                                   delay):
        slow, es = self._nonfinite(config, model, True, delay)
        fast, ef = self._nonfinite(config, model, False, delay)
        assert "non-finite voltage" in str(es)
        assert str(es) == str(ef)
        assert _state(slow) == _state(fast)
        _metrics_match(slow, fast)

    def test_budget_cut_inside_chunk_identical(self, config, model):
        def run(lockstep):
            loop = _loop(config, model, lockstep=lockstep,
                         budget=RunBudget(max_cycles=1500))
            with pytest.raises(SimulationBudgetExceeded) as info:
                loop.run(max_cycles=6000)
            return loop, info.value

        slow, es = run(True)
        fast, ef = run(False)
        assert str(es) == str(ef)
        assert _state(slow) == _state(fast)
        _metrics_match(slow, fast)

    @given(budget_cycles=st.integers(min_value=200, max_value=3000))
    @settings(max_examples=8, deadline=None)
    def test_budget_cut_anywhere_identical(self, budget_cycles):
        config = MachineConfig()
        model = PowerModel(config)

        def run(lockstep):
            loop = _loop(config, model, lockstep=lockstep,
                         budget=RunBudget(max_cycles=budget_cycles))
            try:
                loop.run(max_cycles=3200)
            except SimulationBudgetExceeded as exc:
                return loop, str(exc)
            return loop, None

        slow, es = run(True)
        fast, ef = run(False)
        assert es == ef
        assert _state(slow) == _state(fast)


class TestFailsafeParity:
    def _failsafe_loop(self, config, model, lockstep):
        # A tight monitor envelope plus sensor noise: observed readings
        # fall outside [v_min, v_max] repeatedly, the out-of-bounds run
        # trips the monitor mid-run, and the fail-safe latches -- all of
        # which must land on identical cycles in both engines.
        monitor = PlausibilityMonitor(bound_cycles=3, v_min=0.997,
                                      v_max=1.003)
        return _loop(config, model, lockstep=lockstep, delay=1,
                     error=0.006, monitor=monitor)

    def test_failsafe_entry_bitwise_identical(self, config, model):
        slow = self._failsafe_loop(config, model, lockstep=True)
        fast = self._failsafe_loop(config, model, lockstep=False)
        rs = slow.run(max_cycles=4000)
        rf = fast.run(max_cycles=4000)
        assert rs.controller["failsafe_active"] is True
        assert rs.controller == rf.controller
        assert rs.emergencies == rf.emergencies
        assert _state(slow) == _state(fast)
        _metrics_match(slow, fast)


class TestWorkerReportParity:
    def test_controlled_spec_bytes_match_both_paths(self, monkeypatch):
        from repro.orchestrator import worker
        from repro.orchestrator.spec import JobSpec

        spec = JobSpec(kind="run", workload="swim",
                       impedance_percent=200.0, delay=2, cycles=4000,
                       seed=11)
        worker._WARM_CACHE.clear()
        fast_bytes = json.dumps(worker.execute_spec(spec), sort_keys=True)
        monkeypatch.setattr(ClosedLoopSimulation, "force_lockstep", True)
        slow_bytes = json.dumps(worker.execute_spec(spec), sort_keys=True)
        assert fast_bytes == slow_bytes

    def test_no_speculate_env_bytes_match(self, monkeypatch):
        from repro.orchestrator import worker
        from repro.orchestrator.spec import JobSpec

        spec = JobSpec(kind="run", workload="swim",
                       impedance_percent=200.0, delay=2, cycles=4000,
                       seed=13)
        worker._WARM_CACHE.clear()
        fast_bytes = json.dumps(worker.execute_spec(spec), sort_keys=True)
        monkeypatch.setenv("REPRO_NO_SPECULATE", "1")
        slow_bytes = json.dumps(worker.execute_spec(spec), sort_keys=True)
        assert fast_bytes == slow_bytes
