"""Tests for the control-theoretic design flow (target impedance and
threshold solving)."""

import pytest

from repro.control.thresholds import (
    ControlInfeasibleError,
    ThresholdDesign,
    design_pdn,
    pdn_with_regulator,
    solve_target_impedance,
    solve_thresholds,
    worst_case_extremes,
)
from repro.power import PowerModel
from repro.uarch.config import MachineConfig


@pytest.fixture(scope="module")
def model():
    return PowerModel(MachineConfig())


@pytest.fixture(scope="module")
def envelope(model):
    return model.current_envelope()


@pytest.fixture(scope="module")
def target_impedance(envelope):
    return solve_target_impedance(*envelope)


@pytest.fixture(scope="module")
def pdn200(model):
    return design_pdn(model, impedance_percent=200.0)


class TestRegulatorSetpoint:
    def test_nominal_at_min_current(self, envelope, target_impedance):
        i_min, _ = envelope
        pdn = pdn_with_regulator(target_impedance, i_min)
        # Equilibrium voltage at i_min is exactly nominal.
        v_eq = pdn.params.vdd - pdn.params.resistance * i_min
        assert v_eq == pytest.approx(1.0, abs=1e-12)


class TestTargetImpedance:
    def test_validation(self):
        with pytest.raises(ValueError):
            solve_target_impedance(10.0, 10.0)

    def test_worst_case_exactly_meets_spec(self, envelope, target_impedance):
        i_min, i_max = envelope
        pdn = pdn_with_regulator(target_impedance, i_min)
        v_min, v_max = worst_case_extremes(pdn, i_min, i_max)
        worst = max(1.0 - v_min, v_max - 1.0)
        assert worst == pytest.approx(0.05, abs=0.002)
        assert worst <= 0.05 + 1e-9

    def test_impedance_above_dc_resistance(self, target_impedance):
        assert target_impedance > 0.5e-3

    def test_smaller_envelope_allows_higher_impedance(self, envelope):
        i_min, i_max = envelope
        narrow = solve_target_impedance(i_min, i_min + (i_max - i_min) / 2)
        wide = solve_target_impedance(i_min, i_max)
        assert narrow > wide

    def test_scaled_network_violates_spec(self, model, envelope):
        """At 200% of target impedance the uncontrolled worst case is out
        of spec -- the premise of the whole paper."""
        i_min, i_max = envelope
        pdn = design_pdn(model, impedance_percent=200.0)
        v_min, v_max = worst_case_extremes(pdn, i_min, i_max)
        assert v_min < 0.95
        assert v_max > 1.05


class TestThresholdSolver:
    @pytest.fixture(scope="class")
    def designs(self, model, envelope, pdn200):
        i_min, i_max = envelope
        i_reduce = model.gated_min_power() / model.params.vdd
        return [solve_thresholds(pdn200, i_min, i_max, d,
                                 i_reduce=i_reduce, i_boost=i_max)
                for d in range(7)]

    def test_thresholds_inside_spec_band(self, designs):
        for d in designs:
            assert 0.95 < d.v_low < d.v_high < 1.05

    def test_verified_worst_case_in_spec(self, designs):
        for d in designs:
            assert d.v_worst_low >= 0.95 - 1e-6
            assert d.v_worst_high <= 1.05 + 1e-6

    def test_low_threshold_rises_with_delay(self, designs):
        """Table 3: slower sensors must be more conservative."""
        lows = [d.v_low for d in designs]
        assert lows == sorted(lows)
        assert lows[-1] - lows[0] > 0.01

    def test_window_shrinks_overall(self, designs):
        """Table 3: 94 mV at delay 0 down to 41 mV at delay 6 in the
        paper; the trend (not the absolute values) must reproduce."""
        assert designs[6].window_mv < designs[0].window_mv

    def test_window_positive(self, designs):
        for d in designs:
            assert d.window_mv > 5.0

    def test_error_margins_narrow_window(self, model, envelope, pdn200):
        i_min, i_max = envelope
        clean = solve_thresholds(pdn200, i_min, i_max, delay=2)
        noisy = solve_thresholds(pdn200, i_min, i_max, delay=2, error=0.010)
        assert noisy.v_low == pytest.approx(clean.v_low + 0.010)
        assert noisy.v_high == pytest.approx(clean.v_high - 0.010)
        assert noisy.window_mv == pytest.approx(clean.window_mv - 20.0)

    def test_excessive_error_is_infeasible(self, envelope, pdn200):
        i_min, i_max = envelope
        with pytest.raises(ControlInfeasibleError):
            solve_thresholds(pdn200, i_min, i_max, delay=6, error=0.050)

    def test_weak_actuator_is_infeasible_at_high_delay(self, model,
                                                       envelope):
        """The paper's FU-only instability: a small response lever cannot
        hold the spec once the sensor is slow and the network bad."""
        i_min, i_max = envelope
        pdn400 = design_pdn(model, impedance_percent=400.0)
        i_reduce, i_boost = model.response_envelope(("fu",))
        with pytest.raises(ControlInfeasibleError):
            solve_thresholds(pdn400, i_min, i_max, delay=6,
                             i_reduce=i_reduce, i_boost=i_boost)

    def test_design_dataclass_window(self):
        d = ThresholdDesign(v_low=0.96, v_high=1.02, delay=1, error=0.0,
                            i_min=10, i_max=60, i_reduce=12, i_boost=55,
                            v_worst_low=0.951, v_worst_high=1.049)
        assert d.window_mv == pytest.approx(60.0)
