"""Tests for threshold-sensor hysteresis."""

import pytest

from repro.control.sensor import ThresholdSensor, VoltageLevel


def sensor(h=0.005):
    return ThresholdSensor(v_low=0.96, v_high=1.04, delay=0, hysteresis=h)


class TestValidation:
    def test_nonnegative(self):
        with pytest.raises(ValueError):
            sensor(h=-0.001)

    def test_bands_must_not_overlap(self):
        with pytest.raises(ValueError):
            ThresholdSensor(v_low=0.99, v_high=1.01, hysteresis=0.02)


class TestHysteresisBehaviour:
    def test_holds_low_until_recovered(self):
        s = sensor(h=0.005)
        assert s.observe(0.955).level is VoltageLevel.LOW
        # Back above v_low but inside the band: still LOW.
        assert s.observe(0.962).level is VoltageLevel.LOW
        # Recovered past v_low + h: releases.
        assert s.observe(0.966).level is VoltageLevel.NORMAL

    def test_holds_high_until_recovered(self):
        s = sensor(h=0.005)
        assert s.observe(1.045).level is VoltageLevel.HIGH
        assert s.observe(1.038).level is VoltageLevel.HIGH
        assert s.observe(1.034).level is VoltageLevel.NORMAL

    def test_band_only_active_after_assertion(self):
        s = sensor(h=0.005)
        # 0.962 is inside the low band but LOW was never asserted.
        assert s.observe(0.962).level is VoltageLevel.NORMAL

    def test_zero_hysteresis_is_pure_comparator(self):
        s = sensor(h=0.0)
        assert s.observe(0.955).level is VoltageLevel.LOW
        assert s.observe(0.961).level is VoltageLevel.NORMAL

    def test_reset_clears_state(self):
        s = sensor(h=0.005)
        s.observe(0.955)
        s.reset()
        assert s.observe(0.962).level is VoltageLevel.NORMAL

    def test_reduces_chatter_on_noisy_boundary(self):
        """A voltage dithering around the threshold produces far fewer
        transitions with a hysteresis band."""
        import math
        trace = [0.9595 + 0.002 * math.sin(i / 2.0) for i in range(300)]

        def transitions(h):
            s = ThresholdSensor(0.96, 1.04, hysteresis=h)
            levels = [s.observe(v).level for v in trace]
            return sum(1 for a, b in zip(levels, levels[1:]) if a is not b)

        assert transitions(0.004) < transitions(0.0) / 2
