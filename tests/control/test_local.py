"""Tests for the per-quadrant closed loop and local controller."""

import numpy as np
import pytest

from repro.control.local import (
    QUADRANT_UNIT_GROUPS,
    LocalClosedLoopSimulation,
    LocalThresholdController,
)
from repro.pdn.quadrants import QuadrantParameters, QuadrantPdn
from repro.power.model import PowerModel
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine


@pytest.fixture
def machine():
    return Machine(MachineConfig().small(), [])


def volts(q_low=None, q_high=None):
    v = [1.0] * 4
    if q_low is not None:
        v[q_low] = 0.94
    if q_high is not None:
        v[q_high] = 1.06
    return np.array(v)


class TestLocalController:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            LocalThresholdController(0.96, 1.04, mode="diagonal")

    def test_global_mode_any_quadrant_gates_everything(self, machine):
        ctrl = LocalThresholdController(0.96, 1.04, mode="global")
        ctrl.step(machine, volts(q_low=1))
        assert machine.fus.gated and machine.dl1.gated and machine.il1.gated

    def test_global_mode_low_wins_over_high(self, machine):
        ctrl = LocalThresholdController(0.96, 1.04, mode="global")
        ctrl.step(machine, volts(q_low=0, q_high=2))
        assert machine.fus.gated
        assert not machine.fus.phantom

    def test_local_mode_gates_resident_group_only(self, machine):
        ctrl = LocalThresholdController(0.96, 1.04, mode="local")
        ctrl.step(machine, volts(q_low=2))  # execute quadrant -> fu
        assert machine.fus.gated
        assert not machine.dl1.gated
        assert not machine.il1.gated

    def test_local_mode_window_quadrant_has_no_lever(self, machine):
        ctrl = LocalThresholdController(0.96, 1.04, mode="local")
        ctrl.step(machine, volts(q_low=1))
        for unit in (machine.fus, machine.dl1, machine.il1):
            assert not unit.gated

    def test_local_mode_mixed_actions(self, machine):
        ctrl = LocalThresholdController(0.96, 1.04, mode="local")
        ctrl.step(machine, volts(q_low=3, q_high=2))
        assert machine.dl1.gated
        assert machine.fus.phantom

    def test_recovery_releases(self, machine):
        ctrl = LocalThresholdController(0.96, 1.04, mode="local")
        ctrl.step(machine, volts(q_low=2))
        ctrl.step(machine, volts())
        assert not machine.fus.gated

    def test_counters(self, machine):
        ctrl = LocalThresholdController(0.96, 1.04, mode="global")
        ctrl.step(machine, volts(q_low=0))
        ctrl.step(machine, volts(q_high=1))
        ctrl.step(machine, volts())
        s = ctrl.summary()
        assert s["reduce_cycles"] == 1
        assert s["boost_cycles"] == 1
        assert s["transitions"] == 3

    def test_mapping_covers_three_groups(self):
        groups = {g for g in QUADRANT_UNIT_GROUPS.values() if g}
        assert groups == {"fu", "dl1", "il1"}


class TestLocalClosedLoop:
    #: Network severity at which local emergencies occur while the
    #: die-average voltage stays in spec (see bench_ext_local_control).
    PEAK = 3.6e-3

    def _loop(self, controller=None):
        from repro.core import (VoltageControlDesign, stressmark_stream,
                                tune_stressmark)
        design = VoltageControlDesign(impedance_percent=200.0)
        spec, _ = tune_stressmark(design.pdn, design.config)
        qpdn = QuadrantPdn(QuadrantParameters.representative(
            package_peak=self.PEAK))
        machine = Machine(design.config, stressmark_stream(spec))
        model = PowerModel(design.config, design.power_model.params)
        machine.fast_forward(2000)
        return LocalClosedLoopSimulation(machine, model, qpdn,
                                         controller=controller), design

    def test_requires_quadrant_pdn(self):
        machine = Machine(MachineConfig().small(), [])
        model = PowerModel(machine.config)
        with pytest.raises(TypeError):
            LocalClosedLoopSimulation(machine, model, object())

    def test_average_sensor_misses_local_emergencies(self):
        """The Section 6 motivation, as a measurement: quadrants go out
        of spec while the die-average voltage never does."""
        loop, _ = self._loop()
        result = loop.run(max_cycles=8000)
        assert loop.local_emergency_cycles > 0
        assert result["average"]["emergency_cycles"] == 0

    def test_local_sensing_protects_quadrants(self):
        loop, design = self._loop()
        thresholds = design.thresholds(delay=2, actuator_kind="fu_dl1_il1")
        ctrl = LocalThresholdController(thresholds.v_low, thresholds.v_high,
                                        delay=2, mode="global")
        protected, _ = self._loop(controller=ctrl)
        result = protected.run(max_cycles=8000)
        assert protected.local_emergency_cycles == 0
        assert result["controller"]["reduce_cycles"] > 0

    def test_energy_accounted(self):
        loop, _ = self._loop()
        result = loop.run(max_cycles=1000)
        assert result["energy"] > 0
