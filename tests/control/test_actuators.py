"""Tests for actuator kinds and their machine-side effects."""

import pytest

from repro.control.actuators import (
    ACTUATOR_KINDS,
    Actuator,
    ActuatorCommand,
    make_actuator,
)
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine


@pytest.fixture
def machine():
    return Machine(MachineConfig().small(), [])


class TestConstruction:
    def test_kinds(self):
        assert set(ACTUATOR_KINDS) == {"fu", "fu_dl1", "fu_dl1_il1",
                                       "ideal", "observe"}

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Actuator(kind="dvfs")

    def test_unknown_group(self):
        with pytest.raises(ValueError):
            Actuator(kind="fu", low_groups=("l3",))

    def test_factory(self):
        assert make_actuator("fu_dl1").kind == "fu_dl1"

    def test_group_scope(self):
        assert Actuator("fu").low_groups == ("fu",)
        assert Actuator("fu_dl1").low_groups == ("fu", "dl1")
        assert Actuator("fu_dl1_il1").low_groups == ("fu", "dl1", "il1")
        assert Actuator("observe").low_groups == ()
        assert Actuator("observe").high_groups == ()


class TestApplication:
    def test_reduce_gates_only_controlled_groups(self, machine):
        Actuator("fu_dl1").apply(machine, ActuatorCommand.REDUCE)
        assert machine.fus.gated
        assert machine.dl1.gated
        assert not machine.il1.gated
        assert not machine.fus.phantom

    def test_boost_phantom_fires(self, machine):
        Actuator("fu_dl1_il1").apply(machine, ActuatorCommand.BOOST)
        assert machine.fus.phantom
        assert machine.dl1.phantom
        assert machine.il1.phantom
        assert not machine.fus.gated

    def test_none_clears_everything(self, machine):
        act = Actuator("ideal")
        act.apply(machine, ActuatorCommand.REDUCE)
        act.apply(machine, ActuatorCommand.NONE)
        for unit in (machine.fus, machine.dl1, machine.il1):
            assert not unit.gated
            assert not unit.phantom

    def test_command_switch_swaps_state(self, machine):
        act = Actuator("ideal")
        act.apply(machine, ActuatorCommand.REDUCE)
        act.apply(machine, ActuatorCommand.BOOST)
        assert not machine.fus.gated
        assert machine.fus.phantom

    def test_release(self, machine):
        act = Actuator("ideal")
        act.apply(machine, ActuatorCommand.BOOST)
        act.release(machine)
        assert not machine.fus.phantom

    def test_usage_counters(self, machine):
        act = Actuator("fu")
        act.apply(machine, ActuatorCommand.REDUCE)
        act.apply(machine, ActuatorCommand.REDUCE)
        act.apply(machine, ActuatorCommand.BOOST)
        act.apply(machine, ActuatorCommand.NONE)
        assert act.reduce_cycles == 2
        assert act.boost_cycles == 1


class TestAsymmetric:
    def test_independent_group_sets(self, machine):
        """Section 6's future-work design: gate coarsely on lows, phantom
        only the FUs on highs."""
        act = Actuator("ideal", low_groups=("fu", "dl1", "il1"),
                       high_groups=("fu",))
        act.apply(machine, ActuatorCommand.BOOST)
        assert machine.fus.phantom
        assert not machine.dl1.phantom
        act.apply(machine, ActuatorCommand.REDUCE)
        assert machine.dl1.gated

    def test_response_groups_reports_low_lever(self):
        act = Actuator("ideal", low_groups=("fu",), high_groups=("fu", "dl1"))
        assert act.response_groups() == ("fu",)
