"""Tests for the three-state threshold sensor."""

import pytest

from repro.control.sensor import SensorReading, ThresholdSensor, VoltageLevel


def make_sensor(**kwargs):
    defaults = dict(v_low=0.96, v_high=1.04, delay=0, error=0.0, seed=3)
    defaults.update(kwargs)
    return ThresholdSensor(**defaults)


class TestValidation:
    def test_thresholds_ordered(self):
        with pytest.raises(ValueError):
            ThresholdSensor(v_low=1.0, v_high=0.9)

    def test_nonnegative_delay(self):
        with pytest.raises(ValueError):
            make_sensor(delay=-1)

    def test_nonnegative_error(self):
        with pytest.raises(ValueError):
            make_sensor(error=-0.01)


class TestLevels:
    @pytest.mark.parametrize("v,level", [
        (1.00, VoltageLevel.NORMAL),
        (0.961, VoltageLevel.NORMAL),
        (0.959, VoltageLevel.LOW),
        (1.041, VoltageLevel.HIGH),
        (1.039, VoltageLevel.NORMAL),
    ])
    def test_zero_delay_thresholding(self, v, level):
        sensor = make_sensor()
        assert sensor.observe(v).level is level

    def test_reading_carries_observed_voltage(self):
        reading = make_sensor().observe(0.97)
        assert isinstance(reading, SensorReading)
        assert reading.observed == pytest.approx(0.97)


class TestDelay:
    def test_delayed_reading_lags(self):
        sensor = make_sensor(delay=2)
        voltages = [1.0, 1.0, 0.9, 0.9, 0.9]
        levels = [sensor.observe(v).level for v in voltages]
        # The 0.9 reading surfaces two cycles after it happened.
        assert levels[2] is VoltageLevel.NORMAL
        assert levels[3] is VoltageLevel.NORMAL
        assert levels[4] is VoltageLevel.LOW

    def test_warmup_reports_oldest(self):
        sensor = make_sensor(delay=3)
        assert sensor.observe(0.9).level is VoltageLevel.LOW

    def test_reset_clears_history(self):
        sensor = make_sensor(delay=2)
        sensor.observe(0.9)
        sensor.observe(0.9)
        sensor.reset()
        assert sensor.observe(1.0).level is VoltageLevel.NORMAL


class TestError:
    def test_noise_is_bounded(self):
        sensor = make_sensor(error=0.02)
        for _ in range(500):
            reading = sensor.observe(1.0)
            assert abs(reading.observed - 1.0) <= 0.02 + 1e-12

    def test_noise_flips_borderline_readings(self):
        sensor = make_sensor(error=0.02)
        levels = {sensor.observe(0.97).level for _ in range(500)}
        assert VoltageLevel.LOW in levels
        assert VoltageLevel.NORMAL in levels

    def test_noise_reproducible_by_seed(self):
        a = [make_sensor(error=0.01, seed=5).observe(1.0).observed
             for _ in range(1)]
        b = [make_sensor(error=0.01, seed=5).observe(1.0).observed
             for _ in range(1)]
        assert a == b

    def test_zero_error_is_exact(self):
        sensor = make_sensor(error=0.0)
        assert sensor.observe(0.9876).observed == 0.9876


class TestWindow:
    def test_window_mv(self):
        assert make_sensor().window_mv == pytest.approx(80.0)


class TestDelayHysteresisInteraction:
    """The hysteresis band must act on the *delayed* reading stream."""

    def test_hysteresis_applies_to_delayed_readings(self):
        s = make_sensor(delay=2, hysteresis=0.005)
        # True voltages: dip below v_low, then recover into the band.
        voltages = [1.0, 1.0, 0.955, 0.962, 0.97]
        levels = [s.observe(v).level for v in voltages]
        # The dip surfaces two cycles late...
        assert levels[2] is VoltageLevel.NORMAL
        assert levels[3] is VoltageLevel.NORMAL
        assert levels[4] is VoltageLevel.LOW
        # ...and the in-band recovery (0.962) holds LOW, releasing only
        # once the delayed reading clears v_low + hysteresis.
        assert s.observe(1.0).level is VoltageLevel.LOW   # sees 0.962
        assert s.observe(1.0).level is VoltageLevel.NORMAL  # sees 0.97

    def test_reset_clears_hysteresis_and_history_together(self):
        s = make_sensor(delay=2, hysteresis=0.005)
        for v in (0.95, 0.95, 0.95):
            s.observe(v)
        assert s.observe(0.95).level is VoltageLevel.LOW
        s.reset()
        # In-band value right after reset: no held LOW, no stale history.
        assert s.observe(0.962).level is VoltageLevel.NORMAL

    def test_large_delay_keeps_bounded_history(self):
        s = make_sensor(delay=1000)
        for _ in range(5000):
            s.observe(1.0)
        assert len(s._history) == 1001


class TestDeterminism:
    def test_same_seed_same_levels_with_noise_and_delay(self):
        trace = [1.0 - 0.0005 * (i % 40) for i in range(400)]
        runs = []
        for _ in range(2):
            s = make_sensor(delay=3, error=0.01, seed=17)
            runs.append([s.observe(v).level for v in trace])
        assert runs[0] == runs[1]
