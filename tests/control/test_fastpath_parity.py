"""Byte-parity suite for the open-loop fast path.

The fast path's whole contract is *bit-identical outputs*: every array,
counter, report byte, and raised exception must match what the lockstep
loop produces for the same run.  These tests run both paths (the
``force_lockstep`` escape hatch pins the slow one) and compare
everything observable.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.emergencies import EmergencyCounter
from repro.control.loop import VOLTAGE_BUCKETS, ClosedLoopSimulation
from repro.control.thresholds import design_pdn
from repro.faults.watchdog import (
    NumericWatchdog,
    RunBudget,
    SimulationBudgetExceeded,
    SimulationDiverged,
)
from repro.pdn.discrete import PdnSimulator
from repro.power import PowerModel
from repro.telemetry import Telemetry
from repro.telemetry.registry import Histogram, MetricsRegistry
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine
from repro.workloads.spec import get_profile


@pytest.fixture(scope="module")
def config():
    return MachineConfig()


@pytest.fixture(scope="module")
def model(config):
    return PowerModel(config)


@pytest.fixture(scope="module")
def pdn(model):
    return design_pdn(model, impedance_percent=200.0)


def _loop(config, model, pdn, lockstep, metrics=False, **kw):
    machine = Machine(config, get_profile("swim").stream(seed=11))
    machine.fast_forward(3000)
    telemetry = Telemetry(metrics=MetricsRegistry()) if metrics else None
    loop = ClosedLoopSimulation(machine, model, pdn, record_traces=True,
                                telemetry=telemetry, **kw)
    loop.force_lockstep = lockstep
    return loop


def _loop_state(loop):
    return {
        "counter": loop.counter.summary(),
        "energy": loop._energy,
        "stats": loop.machine.stats.summary(),
        "machine_cycle": loop.machine.cycle,
        "pdn": (loop.pdn_sim._x0, loop.pdn_sim._x1, loop.pdn_sim.cycles),
    }


class TestCleanRunParity:
    def test_everything_bitwise_identical(self, config, model, pdn):
        slow = _loop(config, model, pdn, lockstep=True, metrics=True)
        fast = _loop(config, model, pdn, lockstep=False, metrics=True)
        assert fast.fast_path_eligible
        assert not slow.fast_path_eligible
        rs = slow.run(max_cycles=6000)
        rf = fast.run(max_cycles=6000)
        assert np.array_equal(rs.voltages, rf.voltages)
        assert np.array_equal(rs.currents, rf.currents)
        assert rs.energy == rf.energy
        assert rs.cycles == rf.cycles
        assert rs.committed == rf.committed
        assert rs.emergencies == rf.emergencies
        assert rs.machine_stats.summary() == rf.machine_stats.summary()
        assert _loop_state(slow) == _loop_state(fast)
        # The metrics exports match except the engagement counter.
        ds = slow.telemetry.metrics.to_dict()
        df = fast.telemetry.metrics.to_dict()
        assert df["counters"].pop("loop.fast_path_runs") == 1
        assert "loop.fast_path_runs" not in ds["counters"]
        assert ds == df

    def test_result_traces_are_views(self, config, model, pdn):
        fast = _loop(config, model, pdn, lockstep=False)
        result = fast.run(max_cycles=2000)
        assert result.voltages.dtype == np.float64
        assert result.voltages.shape == (2000,)
        assert result.voltages.base is not None  # a view, not a copy

    def test_max_instructions_limit_matches(self, config, model, pdn):
        slow = _loop(config, model, pdn, lockstep=True)
        fast = _loop(config, model, pdn, lockstep=False)
        rs = slow.run(max_cycles=20000, max_instructions=4000)
        rf = fast.run(max_cycles=20000, max_instructions=4000)
        assert rs.cycles == rf.cycles
        assert rs.committed == rf.committed
        assert np.array_equal(rs.voltages, rf.voltages)


class TestEligibility:
    def test_controller_forces_lockstep(self, config, model, pdn):
        machine = Machine(config, [])

        class _Ctl:
            actuator = None

            def step(self, machine, voltage):
                pass

            def summary(self):
                return {}

        loop = ClosedLoopSimulation(machine, model, pdn, controller=_Ctl())
        assert not loop.fast_path_eligible

    def test_trace_telemetry_forces_lockstep(self, config, model, pdn):
        machine = Machine(config, [])
        loop = ClosedLoopSimulation(machine, model, pdn,
                                    telemetry=Telemetry.full())
        assert not loop.fast_path_eligible

    def test_pdn_watchdog_forces_lockstep(self, config, model, pdn):
        machine = Machine(config, [])
        sim = PdnSimulator(pdn, clock_hz=config.clock_hz,
                           watchdog=NumericWatchdog())
        loop = ClosedLoopSimulation(machine, model, pdn, pdn_sim=sim)
        assert not loop.fast_path_eligible

    def test_loop_watchdog_and_traces_stay_eligible(self, config, model,
                                                    pdn):
        machine = Machine(config, [])
        loop = ClosedLoopSimulation(machine, model, pdn,
                                    record_traces=True,
                                    watchdog=NumericWatchdog())
        assert loop.fast_path_eligible


class TestDivergenceParity:
    def _trip(self, config, model, pdn, lockstep):
        loop = _loop(config, model, pdn, lockstep=lockstep, metrics=True,
                     watchdog=NumericWatchdog(v_min=0.993, v_max=1.02,
                                              tail=8))
        with pytest.raises(SimulationDiverged) as info:
            loop.run(max_cycles=6000)
        return loop, info.value

    def test_watchdog_trip_bitwise_identical(self, config, model, pdn):
        slow, es = self._trip(config, model, pdn, lockstep=True)
        fast, ef = self._trip(config, model, pdn, lockstep=False)
        assert str(es) == str(ef)
        assert (es.cycle, es.value, es.reason) == (ef.cycle, ef.value,
                                                   ef.reason)
        assert es.trace_tail == ef.trace_tail
        assert list(slow.watchdog._tail) == list(fast.watchdog._tail)
        ss, fs = _loop_state(slow), _loop_state(fast)
        # The PDN simulator's internal state after a trip reflects the
        # fast path's overshoot (documented: nothing observes it
        # post-mortem; campaign runs reset the simulator per job).
        ss.pop("pdn")
        fs.pop("pdn")
        assert ss == fs
        assert np.array_equal(slow._voltages.view(), fast._voltages.view())
        assert np.array_equal(slow._currents.view(), fast._currents.view())
        ds = slow.telemetry.metrics.to_dict()
        df = fast.telemetry.metrics.to_dict()
        df["counters"].pop("loop.fast_path_runs")
        assert ds == df

    def _nonfinite(self, config, model, pdn, lockstep):
        # Unstable doctored recursion with no watchdog: the voltage
        # doubles each cycle until it overflows to inf, which the
        # emergency counter must reject identically on both paths.
        loop = _loop(config, model, pdn, lockstep=lockstep, metrics=True,
                     watchdog=False)
        loop.pdn_sim._a10 = 0.0
        loop.pdn_sim._a11 = 2.0
        loop.pdn_sim._b1 = 0.0
        loop.pdn_sim._e1 = 0.0
        with pytest.raises(ValueError) as info:
            loop.run(max_cycles=6000)
        return loop, info.value

    def test_unwatched_nonfinite_bitwise_identical(self, config, model,
                                                   pdn):
        slow, es = self._nonfinite(config, model, pdn, lockstep=True)
        fast, ef = self._nonfinite(config, model, pdn, lockstep=False)
        assert "non-finite voltage" in str(es)
        assert str(es) == str(ef)
        ss, fs = _loop_state(slow), _loop_state(fast)
        # The doctored recursion's end state differs (the fast path ran
        # the kernel over the whole batch) -- everything observable
        # post-mortem must still match.
        ss.pop("pdn")
        fs.pop("pdn")
        assert ss == fs
        ds = slow.telemetry.metrics.to_dict()
        df = fast.telemetry.metrics.to_dict()
        df["counters"].pop("loop.fast_path_runs")
        assert ds == df

    def test_budget_trip_bitwise_identical(self, config, model, pdn):
        def run(lockstep):
            loop = _loop(config, model, pdn, lockstep=lockstep,
                         budget=RunBudget(max_cycles=1500))
            with pytest.raises(SimulationBudgetExceeded) as info:
                loop.run(max_cycles=6000)
            return loop, info.value

        slow, es = run(True)
        fast, ef = run(False)
        assert str(es) == str(ef)
        assert _loop_state(slow) == _loop_state(fast)
        assert np.array_equal(slow._voltages.view(), fast._voltages.view())


class TestWorkerReportParity:
    def test_execute_spec_bytes_match_both_paths(self, monkeypatch):
        from repro.orchestrator import worker
        from repro.orchestrator.spec import JobSpec

        spec = JobSpec(kind="run", workload="swim",
                       impedance_percent=200.0, delay=None, cycles=4000,
                       seed=11)
        worker._WARM_CACHE.clear()
        fast_bytes = json.dumps(worker.execute_spec(spec), sort_keys=True)
        monkeypatch.setattr(ClosedLoopSimulation, "force_lockstep", True)
        slow_bytes = json.dumps(worker.execute_spec(spec), sort_keys=True)
        assert fast_bytes == slow_bytes


class TestObserveArrayProperties:
    @given(st.lists(st.floats(min_value=0.5, max_value=1.5,
                              allow_nan=False), max_size=64),
           st.lists(st.floats(min_value=0.5, max_value=1.5,
                              allow_nan=False), max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_counter_matches_repeated_observe(self, first, second):
        a, b = EmergencyCounter(), EmergencyCounter()
        for v in first + second:
            a.observe(v)
        b.observe_array(first)
        b.observe_array(second)
        assert a.summary() == b.summary()
        assert a.in_emergency == b.in_emergency

    @given(st.lists(st.floats(min_value=0.5, max_value=1.5,
                              allow_nan=False), max_size=32),
           st.integers(min_value=0, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_counter_nonfinite_prefix_fold(self, prefix, tail_len):
        batch = prefix + [float("nan")] + [1.0] * tail_len
        a, b = EmergencyCounter(), EmergencyCounter()
        err_a = err_b = None
        try:
            for v in batch:
                a.observe(v)
        except ValueError as exc:
            err_a = str(exc)
        try:
            b.observe_array(batch)
        except ValueError as exc:
            err_b = str(exc)
        assert err_a == err_b and err_a is not None
        assert a.summary() == b.summary()

    @given(st.lists(st.floats(min_value=0.7, max_value=1.3,
                              allow_nan=False), max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_histogram_matches_repeated_observe(self, values):
        a = Histogram("t.a", VOLTAGE_BUCKETS)
        b = Histogram("t.b", VOLTAGE_BUCKETS)
        for v in values:
            a.observe(v)
        b.observe_array(values)
        da, db = a.to_dict(), b.to_dict()
        assert da == db

    def test_histogram_nonfinite_prefix_fold(self):
        # Same name on both: it appears in the error message.
        a = Histogram("t.h", (0.0, 1.0))
        b = Histogram("t.h", (0.0, 1.0))
        batch = [0.5, 2.0, float("inf"), 0.1]
        err_a = err_b = None
        try:
            for v in batch:
                a.observe(v)
        except ValueError as exc:
            err_a = str(exc)
        try:
            b.observe_array(batch)
        except ValueError as exc:
            err_b = str(exc)
        assert err_a == err_b and err_a is not None
        assert a.to_dict() == b.to_dict()

    def test_histogram_rejects_2d(self):
        h = Histogram("t.h", (0.0, 1.0))
        with pytest.raises(ValueError):
            h.observe_array(np.zeros((2, 2)))

    def test_counter_rejects_2d(self):
        with pytest.raises(ValueError):
            EmergencyCounter().observe_array(np.zeros((2, 2)))


class TestPowerBatchParity:
    def test_power_batch_matches_scalar(self, config, model):
        import operator

        machine = Machine(config, get_profile("swim").stream(seed=7))
        machine.fast_forward(2000)
        fields = model.batch_fields
        getter = operator.attrgetter(*fields)
        rows, ref = [], []
        for i in range(1500):
            machine.fus.gated = i % 7 == 3
            machine.fus.phantom = i % 11 == 5
            machine.dl1.gated = i % 5 == 2
            machine.il1.phantom = i % 13 == 1
            machine.step()
            rows.append(getter(machine.activity))
            ref.append(model.power(machine.activity))
        arr = np.asarray(rows, dtype=float)
        cols = {name: arr[:, i] for i, name in enumerate(fields)}
        assert np.array_equal(model.power_batch(cols), np.asarray(ref))

    def test_power_matches_breakdown_sum(self, config, model):
        machine = Machine(config, get_profile("swim").stream(seed=7))
        machine.fast_forward(2000)
        for _ in range(200):
            machine.step()
            total = model.power(machine.activity)
            parts = sum(model.breakdown(machine.activity).values())
            assert total == pytest.approx(parts, abs=1e-12)


class TestZohKernelParity:
    def test_run_matches_step_bitwise(self, config, pdn):
        currents = (20.0 + 10.0 * np.sin(np.arange(400) / 7.0)).tolist()
        a = PdnSimulator(pdn, clock_hz=config.clock_hz,
                         initial_current=20.0)
        b = PdnSimulator(pdn, clock_hz=config.clock_hz,
                         initial_current=20.0)
        stepped = np.asarray([a.step(i) for i in currents])
        batch = b.run(currents)
        assert np.array_equal(stepped, batch)
        assert a._x0 == b._x0 and a._x1 == b._x1
        assert a.cycles == b.cycles

    def test_simulate_matches_run(self, config, pdn):
        from repro.pdn.discrete import DiscretePdn

        currents = np.linspace(15.0, 45.0, 300)
        discrete = DiscretePdn(pdn, clock_hz=config.clock_hz)
        sim = PdnSimulator(discrete, initial_current=float(currents[0]))
        assert np.array_equal(discrete.simulate(currents),
                              sim.run(currents))
