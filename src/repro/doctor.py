"""Offline scrub of every persistence surface (``repro-didt doctor``).

The sweep stack keeps five durable stores, each with its own on-disk
integrity discipline (see DESIGN.md section 16):

* the **result cache** (``ResultCache``) -- per-entry payload
  checksums, version salt, atomic writes;
* the **capture cache** (``CurrentTraceCache``) -- ``.npz`` entries
  with schema/salt/key/array checksums;
* the **warm-up cache** (``WarmupCache``) -- checkpoint blobs behind a
  checksummed header line;
* the **trace store** (``TraceStore``) -- content-addressed samples +
  meta pairs and immutable suites;
* the **sweep journal** -- a self-checksummed JSONL WAL that tolerates
  a torn final line.

Each store's *read* path already degrades or fails loudly per its
declared failure domain; the doctor is the matching *maintenance*
path: walk everything, verify every entry the way a read would, list
what is broken, and (with ``fix=True``) quarantine or reclaim it.  The
report is a byte-stable JSON-safe dict -- sorted keys, sorted path
lists, no timestamps -- so two scrubs of the same bytes print the same
bytes, and CI can diff them.

Exit-code contract (mapped by ``repro-didt doctor``):

* 0 -- every scrubbed store is clean, or ``--fix`` repaired every
  problem found;
* 1 -- problems found (and, with ``--fix``, at least one could not be
  repaired, e.g. a journal held by a live writer);
* 2 -- usage error (bad flags, unreadable roots).

Quarantine, not deletion: invalid entries are moved into a
``quarantine/`` directory under the store root (they may be evidence;
orphaned temp files, which are pure garbage by construction, are
removed outright).
"""

import os

try:
    import fcntl
except ImportError:          # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.core.checkpoint import WarmupCache
from repro.orchestrator.cache import ResultCache
from repro.orchestrator.journal import JournalError, replay_journal
from repro.orchestrator.tracecache import CurrentTraceCache
from repro.traces.store import TraceStore

#: Bump when the report dict changes shape.
DOCTOR_SCHEMA = 1

_HEX = set("0123456789abcdef")


def _rel(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


def _quarantine(root, path, label):
    """Move a bad entry under ``<root>/quarantine/``; returns success.

    ``label`` keys the destination name so two same-named entries from
    different buckets cannot collide.
    """
    directory = os.path.join(root, "quarantine")
    try:
        os.makedirs(directory, exist_ok=True)
        os.replace(path, os.path.join(directory, label))
        return True
    except OSError:
        return False


def _scrub_flat_store(cache, base, suffix, verify, fix):
    """Shared walk for the three flat caches (result/captures/warm).

    Args:
        cache: the store object (supplies ``root``).
        base: directory to walk (the store's current-salt tree).
        suffix: entry file suffix (``.json``/``.npz``/``.ckpt``).
        verify: ``f(path) -> None | reason`` for one entry.
        fix: quarantine invalid entries, remove orphan temps.

    Returns a JSON-safe section dict.
    """
    section = {"root": cache.root, "entries": 0, "invalid": [],
               "orphan_tmp": [], "fixed": []}
    for dirpath, dirnames, filenames in os.walk(base):
        if "quarantine" in dirnames:
            dirnames.remove("quarantine")
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            rel = _rel(cache.root, path)
            if name.endswith(".tmp"):
                section["orphan_tmp"].append(rel)
                if fix:
                    try:
                        os.unlink(path)
                        section["fixed"].append(rel)
                    except OSError:
                        pass
                continue
            if not name.endswith(suffix):
                continue
            section["entries"] += 1
            reason = verify(path)
            if reason is None:
                continue
            section["invalid"].append({"path": rel, "reason": reason})
            if fix and _quarantine(cache.root, path,
                                   name):
                section["fixed"].append(rel)
    for key in ("invalid", "orphan_tmp", "fixed"):
        section[key] = sorted(section[key],
                              key=lambda v: v["path"]
                              if isinstance(v, dict) else v)
    return section


def scrub_result_cache(root=None, salt=None, fix=False):
    """Scrub the result cache's current-salt tree."""
    cache = ResultCache(root=root, salt=salt)
    base = os.path.join(cache.root, cache.salt)
    section = _scrub_flat_store(cache, base, ".json",
                                cache.verify_entry, fix)
    section["salt"] = cache.salt
    return section


def scrub_capture_cache(root=None, salt=None, fix=False):
    """Scrub the captured-trace cache's current-salt tree."""
    cache = CurrentTraceCache(root=root, salt=salt)
    base = os.path.join(cache.root, cache.salt, "captures")
    section = _scrub_flat_store(cache, base, ".npz",
                                cache.verify_entry, fix)
    section["salt"] = cache.salt
    return section


def scrub_warm_cache(root=None, fix=False):
    """Scrub the warm-up checkpoint cache (skipped when no root is
    configured -- the memory-only default has no disk surface)."""
    if root is None:
        root = os.environ.get("REPRO_WARM_CACHE_DIR") or None
    if root is None:
        return {"root": None, "skipped": True, "entries": 0,
                "invalid": [], "orphan_tmp": [], "fixed": []}
    cache = WarmupCache(root=root)
    section = _scrub_flat_store(cache, root, ".ckpt",
                                cache.verify_entry, fix)
    section["salt"] = cache.salt
    section["skipped"] = False
    return section


def scrub_trace_store(root=None, fix=False):
    """Scrub the imported-trace store: every entry's meta + samples
    re-hash, every suite, plus abandoned temp files."""
    store = TraceStore(root=root)
    section = {"root": store.root, "entries": 0, "invalid": [],
               "suites": 0, "invalid_suites": [], "orphan_tmp": [],
               "fixed": []}
    base = store.base
    if os.path.isdir(base):
        for hh in sorted(os.listdir(base)):
            bucket = os.path.join(base, hh)
            if len(hh) != 2 or not set(hh) <= _HEX \
                    or not os.path.isdir(bucket):
                continue
            for digest in sorted(os.listdir(bucket)):
                entry = os.path.join(bucket, digest)
                if not os.path.isdir(entry):
                    continue
                for name in sorted(os.listdir(entry)):
                    if name.endswith(".tmp"):
                        rel = _rel(store.root,
                                   os.path.join(entry, name))
                        section["orphan_tmp"].append(rel)
                        if fix:
                            try:
                                os.unlink(os.path.join(entry, name))
                                section["fixed"].append(rel)
                            except OSError:
                                pass
                section["entries"] += 1
                reason = store.verify_entry(digest)
                if reason is None:
                    continue
                rel = _rel(store.root, entry)
                section["invalid"].append({"path": rel,
                                           "reason": reason})
                if fix and _quarantine(store.root, entry, digest):
                    section["fixed"].append(rel)
    suites_dir = os.path.join(base, "suites")
    if os.path.isdir(suites_dir):
        for name in sorted(os.listdir(suites_dir)):
            path = os.path.join(suites_dir, name)
            rel = _rel(store.root, path)
            if name.endswith(".tmp"):
                section["orphan_tmp"].append(rel)
                if fix:
                    try:
                        os.unlink(path)
                        section["fixed"].append(rel)
                    except OSError:
                        pass
                continue
            if not name.endswith(".json"):
                continue
            section["suites"] += 1
            if store.get_suite(name[:-len(".json")]) is None:
                section["invalid_suites"].append(rel)
                if fix and _quarantine(store.root, path,
                                       "suite-" + name):
                    section["fixed"].append(rel)
    for key in ("invalid", "invalid_suites", "orphan_tmp", "fixed"):
        section[key] = sorted(section[key],
                              key=lambda v: v["path"]
                              if isinstance(v, dict) else v)
    return section


def _probe_lock(path):
    """Whether a live writer holds the journal's advisory lock."""
    if fcntl is None:
        return False
    try:
        with open(path, "r") as fh:
            try:
                fcntl.flock(fh.fileno(),
                            fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                return True
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
    except OSError:
        return False
    return False


def scrub_journal(path, fix=False):
    """Scrub one sweep journal.

    Statuses: ``ok`` (replays clean), ``torn-tail`` (the final line is
    torn -- a killed writer's signature; ``fix`` truncates it away),
    ``corrupt`` (damage before the tail; ``fix`` quarantines the file
    to ``<path>.corrupt``), ``locked`` (a live writer owns it -- not a
    defect, but nothing can be verified or fixed), ``missing`` (the
    path does not exist).
    """
    path = str(path)
    entry = {"path": path, "status": "ok", "detail": None,
             "records": 0, "fixed": False}
    if not os.path.exists(path):
        entry["status"] = "missing"
        entry["detail"] = "no such file"
        return entry
    if _probe_lock(path):
        entry["status"] = "locked"
        entry["detail"] = ("a live writer holds the journal lock; "
                           "scrub it offline")
        return entry
    try:
        state = replay_journal(path)
    except JournalError as exc:
        entry["status"] = "corrupt"
        entry["detail"] = str(exc)
        if fix:
            try:
                os.replace(path, path + ".corrupt")
                entry["fixed"] = True
            except OSError:
                pass
        return entry
    entry["records"] = len(state.specs)
    if state.dropped_tail:
        entry["status"] = "torn-tail"
        entry["detail"] = ("final line is torn (killed or faulted "
                           "writer); replay drops it")
        if fix:
            try:
                with open(path, "r+b") as fh:
                    data = fh.read()
                    if data and not data.endswith(b"\n"):
                        fh.truncate(data.rfind(b"\n") + 1)
                        fh.flush()
                        os.fsync(fh.fileno())
                entry["fixed"] = True
            except OSError:
                pass
    return entry


def _section_problems(section):
    count = len(section.get("invalid", ()))
    count += len(section.get("invalid_suites", ()))
    count += len(section.get("orphan_tmp", ()))
    return count


def scrub(cache_root=None, trace_root=None, warm_root=None,
          journals=(), salt=None, fix=False):
    """Scrub every persistence surface; returns the full report dict.

    Args:
        cache_root: result/capture cache root (default:
            ``REPRO_CACHE_DIR`` or the per-user cache directory).
        trace_root: trace store root (default: ``REPRO_TRACE_DIR`` or
            the per-user data directory).
        warm_root: warm-cache root (default: ``REPRO_WARM_CACHE_DIR``;
            unset skips the section -- there is no disk surface).
        journals: journal paths to scrub (none by default -- journals
            live wherever ``--journal`` pointed).
        salt: cache salt override (tests; default: the code version's).
        fix: quarantine invalid entries, remove orphan temps, trim
            torn journal tails.

    The report's ``problems`` counts everything found wrong;
    ``unfixed`` is what remains after repairs (equal to ``problems``
    when ``fix`` is off).  Both are computed, never stored state.
    """
    stores = {
        "cache": scrub_result_cache(root=cache_root, salt=salt,
                                    fix=fix),
        "captures": scrub_capture_cache(root=cache_root, salt=salt,
                                        fix=fix),
        "warm": scrub_warm_cache(root=warm_root, fix=fix),
        "traces": scrub_trace_store(root=trace_root, fix=fix),
        "journals": [scrub_journal(p, fix=fix) for p in journals],
    }
    problems = 0
    fixed = 0
    for name in ("cache", "captures", "warm", "traces"):
        problems += _section_problems(stores[name])
        fixed += len(stores[name]["fixed"])
    for entry in stores["journals"]:
        if entry["status"] in ("torn-tail", "corrupt", "missing"):
            problems += 1
            if entry["fixed"]:
                fixed += 1
        elif entry["status"] == "locked":
            # A live writer is healthy, not broken; report it without
            # failing the scrub.
            pass
    return {
        "schema": DOCTOR_SCHEMA,
        "fix": bool(fix),
        "stores": stores,
        "problems": problems,
        "fixed": fixed,
        "unfixed": problems - fixed,
    }
