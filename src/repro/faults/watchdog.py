"""Numeric watchdogs and run budgets for the closed loop.

The reproduction's credibility rests on the voltage traces being finite
and physical.  A mis-parameterized PDN, a corrupted state vector, or a
bug in an injected fault model can silently turn a campaign's output
into NaN soup -- or spin a run forever.  The guards here fail *loudly*
and *early* instead:

* :class:`NumericWatchdog` checks every per-cycle voltage for NaN/Inf
  and for divergence beyond physically plausible bounds, raising a
  structured :class:`SimulationDiverged` that carries the offending
  cycle and a tail of the recent trace for post-mortem.
* :class:`RunBudget` bounds a run in cycles and wall-clock seconds so a
  fault-campaign sweep cannot hang on one pathological configuration;
  exceeding it raises :class:`SimulationBudgetExceeded`.

Both are cheap enough to leave enabled inside the cycle loop: one
``math.isfinite`` plus two comparisons per cycle for the watchdog, and
a throttled ``time.monotonic`` call for the budget.
"""

import math
import time
from collections import deque

import numpy as np


class SimulationDiverged(RuntimeError):
    """The numeric state of a simulation left the physical envelope.

    Attributes:
        cycle: cycle index at which divergence was detected.
        value: the offending voltage (may be NaN/Inf).
        reason: short machine-readable cause (``"non-finite"`` or
            ``"out-of-bounds"``).
        trace_tail: the most recent voltages before (and including) the
            offending sample, oldest first -- the post-mortem context.
    """

    def __init__(self, cycle, value, reason, trace_tail=()):
        self.cycle = cycle
        self.value = value
        self.reason = reason
        self.trace_tail = list(trace_tail)
        super().__init__(
            "simulation diverged at cycle %d: voltage %r (%s); "
            "trace tail: %s" % (cycle, value, reason,
                                ["%.6g" % v for v in self.trace_tail]))


class SimulationBudgetExceeded(RuntimeError):
    """A run overran its cycle or wall-clock budget.

    Attributes:
        cycle: cycle index at which the budget tripped.
        kind: ``"cycles"`` or ``"wall-clock"``.
        limit: the configured limit that was exceeded.
    """

    def __init__(self, cycle, kind, limit):
        self.cycle = cycle
        self.kind = kind
        self.limit = limit
        super().__init__("run exceeded its %s budget (%g) at cycle %d"
                         % (kind, limit, cycle))


class NumericWatchdog:
    """Per-cycle voltage sanity check.

    Args:
        v_min / v_max: divergence bounds, volts.  These are *not* the
            emergency thresholds -- emergencies are expected, counted
            behaviour -- but the envelope outside which the numerics
            must have gone wrong (default: half to 1.5x nominal).
        tail: how many recent samples to keep for the post-mortem
            :attr:`SimulationDiverged.trace_tail`.
    """

    def __init__(self, v_min=0.5, v_max=1.5, tail=32):
        if not (v_min < v_max):
            raise ValueError("v_min (%g) must be below v_max (%g)"
                             % (v_min, v_max))
        if tail < 1:
            raise ValueError("tail must be at least 1")
        self.v_min = v_min
        self.v_max = v_max
        self._tail = deque(maxlen=int(tail))

    @classmethod
    def for_nominal(cls, nominal, fraction=0.5, tail=32):
        """A watchdog with bounds at ``nominal * (1 +/- fraction)``."""
        return cls(v_min=nominal * (1.0 - fraction),
                   v_max=nominal * (1.0 + fraction), tail=tail)

    def check(self, cycle, voltage):
        """Fold one voltage sample; raises :class:`SimulationDiverged`."""
        self._tail.append(voltage)
        if not math.isfinite(voltage):
            raise SimulationDiverged(cycle, voltage, "non-finite",
                                     self._tail)
        if voltage < self.v_min or voltage > self.v_max:
            raise SimulationDiverged(cycle, voltage, "out-of-bounds",
                                     self._tail)

    def first_violation(self, voltages):
        """Index of the first out-of-envelope sample, or ``None``.

        A cheap vectorized scan used by the open-loop fast path to
        decide how much of a batch trace is trustworthy before folding
        it into counters.
        """
        v = np.asarray(voltages, dtype=float)
        violation = ~np.isfinite(v) | (v < self.v_min) | (v > self.v_max)
        if not violation.any():
            return None
        return int(np.argmax(violation))

    def check_array(self, first_cycle, voltages):
        """Fold a batch of samples; raises like per-sample :meth:`check`.

        Args:
            first_cycle: the cycle index of ``voltages[0]`` (per-sample
                checks receive the absolute cycle, so the batch form
                needs the offset to raise with the same cycle number).
            voltages: the per-cycle voltage trace.

        Equivalent to ``check(first_cycle + i, v)`` per sample: the tail
        accumulates every sample up to (and including) the first
        violation, and the raised :class:`SimulationDiverged` carries
        the same cycle, value, reason, and trace tail.
        """
        v = np.asarray(voltages, dtype=float)
        k = self.first_violation(v)
        maxlen = self._tail.maxlen
        end = v.size if k is None else k + 1
        start = max(0, end - maxlen)
        self._tail.extend(float(x) for x in v[start:end])
        if k is None:
            return
        value = float(v[k])
        reason = "non-finite" if not math.isfinite(value) else "out-of-bounds"
        raise SimulationDiverged(first_cycle + k, value, reason, self._tail)

    def reset(self):
        """Drop the trace tail (between runs)."""
        self._tail.clear()


class RunBudget:
    """Cycle and wall-clock ceiling for one simulation run.

    Args:
        max_cycles: hard cap on cycles checked this run, or ``None``.
        max_seconds: hard cap on wall-clock seconds, or ``None``.
        check_every: how many :meth:`check` calls between wall-clock
            reads (``time.monotonic`` is cheap but not free inside a
            cycle loop).

    Call :meth:`start` at the top of each run (budgets are reusable
    across runs), then :meth:`check` once per cycle.
    """

    def __init__(self, max_cycles=None, max_seconds=None, check_every=1024):
        if max_cycles is not None and max_cycles <= 0:
            raise ValueError("max_cycles must be positive")
        if max_seconds is not None and max_seconds < 0:
            raise ValueError("max_seconds must be non-negative")
        if check_every < 1:
            raise ValueError("check_every must be at least 1")
        self.max_cycles = max_cycles
        self.max_seconds = max_seconds
        self.check_every = int(check_every)
        self._checks = 0
        self._deadline = None

    def start(self):
        """Arm the budget for a fresh run."""
        self._checks = 0
        self._deadline = (time.monotonic() + self.max_seconds
                          if self.max_seconds is not None else None)

    def check(self, cycle):
        """One cycle's bookkeeping; raises
        :class:`SimulationBudgetExceeded` past either limit."""
        if self._deadline is None and self.max_seconds is not None:
            self.start()
        self._checks += 1
        if self.max_cycles is not None and self._checks > self.max_cycles:
            raise SimulationBudgetExceeded(cycle, "cycles", self.max_cycles)
        if (self._deadline is not None and
                self._checks % self.check_every == 0 and
                time.monotonic() > self._deadline):
            raise SimulationBudgetExceeded(cycle, "wall-clock",
                                           self.max_seconds)
