"""Fault injection and resilience for the closed loop.

The paper proves its +/-5% guarantee against a *nominal* fault model:
bounded white sensor noise and a fixed delay.  This package measures
what happens outside it:

* :mod:`repro.faults.injectors` -- deterministic sensor faults
  (stuck-at-level, dropout, drift, burst noise) and actuator faults
  (stuck-gated, stuck-released, delayed release), each activatable on
  a cycle schedule.
* :mod:`repro.faults.watchdog` -- numeric watchdogs (NaN/Inf and
  divergence detection with a structured ``SimulationDiverged``) and
  per-run cycle/wall-clock budgets.
* :mod:`repro.faults.campaign` -- the fault-campaign runner sweeping
  fault types x workloads and emitting a machine-readable resilience
  report (imported lazily; ``from repro.faults import campaign``).
* :mod:`repro.faults.chaos` -- process-level chaos: kill, hang, or
  OOM an orchestrator worker at a chosen job, driven by the
  ``REPRO_CHAOS`` environment variable in the child, to exercise the
  supervised pool's crash recovery end to end.
* :mod:`repro.faults.iofault` -- storage-level chaos: make the
  write/fsync/replace seams of any durable store (result cache, warm
  cache, capture cache, trace store, journal) fail deterministically
  (ENOSPC, EIO, torn write, failed fsync, failed rename), driven by
  ``REPRO_IOCHAOS``, to exercise each store's declared failure domain.

The matching fail-safe lives in
:class:`repro.control.controller.PlausibilityMonitor`: a controller
armed with one degrades to the pessimistic current-driven ramp when
its sensor stops being believable.
"""

from repro.faults.chaos import (
    CHAOS_ENV,
    CHAOS_MODES,
    CHAOS_ONCE_ENV,
    ChaosSet,
    ProcessChaos,
)
from repro.faults.iofault import (
    IO_MODES,
    IO_TARGETS,
    IOCHAOS_ENV,
    IOCHAOS_ONCE_ENV,
    IoFault,
    IoFaultSet,
)
from repro.faults.injectors import (
    ActuatorFault,
    BurstNoiseFault,
    DelayedReleaseFault,
    DriftFault,
    DropoutFault,
    FaultWindow,
    FaultyActuator,
    FaultySensor,
    SensorFault,
    StuckGatedFault,
    StuckLevelFault,
    StuckReleasedFault,
)
from repro.faults.watchdog import (
    NumericWatchdog,
    RunBudget,
    SimulationBudgetExceeded,
    SimulationDiverged,
)

__all__ = [
    "ActuatorFault",
    "BurstNoiseFault",
    "DelayedReleaseFault",
    "DriftFault",
    "DropoutFault",
    "FaultWindow",
    "FaultyActuator",
    "FaultySensor",
    "SensorFault",
    "StuckGatedFault",
    "StuckLevelFault",
    "StuckReleasedFault",
    "NumericWatchdog",
    "RunBudget",
    "SimulationBudgetExceeded",
    "SimulationDiverged",
    "ProcessChaos",
    "ChaosSet",
    "CHAOS_ENV",
    "CHAOS_ONCE_ENV",
    "CHAOS_MODES",
    "IoFault",
    "IoFaultSet",
    "IOCHAOS_ENV",
    "IOCHAOS_ONCE_ENV",
    "IO_MODES",
    "IO_TARGETS",
]
