"""Deterministic fault injectors for the sensor and the actuators.

The paper's guarantee (Section 4.5) is conditioned on a *well-behaved*
sensor: bounded white noise, a fixed known delay.  Real comparators
stick, drop readings, and drift with temperature; real gating logic can
latch or release late.  The injectors here wrap a healthy
:class:`~repro.control.sensor.ThresholdSensor` or
:class:`~repro.control.actuators.Actuator` and corrupt its behaviour on
a cycle schedule, so the closed loop can be measured *outside* the
nominal fault model.

Every injector is deterministic under its seed: the same fault list on
the same voltage sequence produces bit-identical readings, which is
what makes fault-campaign reports reproducible.

Sensor faults act at two points in the pipeline:

* *input* faults (:class:`DriftFault`, :class:`BurstNoiseFault`)
  perturb the voltage before it enters the wrapped sensor, so the
  corruption rides through the sensor's own delay and thresholding;
* *reading* faults (:class:`StuckLevelFault`, :class:`DropoutFault`)
  corrupt the finished reading on its way to the controller.

Actuator faults rewrite the controller's command before it reaches the
real gating logic (:class:`StuckGatedFault`, :class:`StuckReleasedFault`,
:class:`DelayedReleaseFault`).
"""

import random

from repro.control.actuators import ActuatorCommand
from repro.control.sensor import SensorReading, VoltageLevel


class FaultWindow:
    """When a fault is active, in cycles since the wrapper was built.

    Args:
        start: first active cycle.
        duration: number of active cycles, or ``None`` for "until the
            end of the run".
    """

    def __init__(self, start=0, duration=None):
        if start < 0:
            raise ValueError("start must be non-negative")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive (or None)")
        self.start = int(start)
        self.duration = None if duration is None else int(duration)

    def active(self, cycle):
        """Whether the fault applies at ``cycle``."""
        if cycle < self.start:
            return False
        return self.duration is None or cycle < self.start + self.duration

    def reset(self):
        """Restore any per-run state (RNGs, hold counters)."""

    def __repr__(self):
        span = ("%d.." % self.start if self.duration is None
                else "%d..%d" % (self.start, self.start + self.duration))
        return "<%s cycles %s>" % (type(self).__name__, span)


# ----------------------------------------------------------------------
# Sensor faults
# ----------------------------------------------------------------------

class SensorFault(FaultWindow):
    """Base class: identity transforms at both pipeline points."""

    def transform_input(self, cycle, voltage):
        """Perturb the true voltage before the sensor sees it."""
        return voltage

    def transform_reading(self, cycle, reading, last_reading):
        """Corrupt the finished reading (``last_reading`` is the
        previous reading the controller received, or ``None``)."""
        return reading


class StuckLevelFault(SensorFault):
    """Comparator output latched at one level (stuck-at fault)."""

    def __init__(self, level, start=0, duration=None):
        super().__init__(start=start, duration=duration)
        if not isinstance(level, VoltageLevel):
            raise TypeError("level must be a VoltageLevel")
        self.level = level

    def transform_reading(self, cycle, reading, last_reading):
        return SensorReading(self.level, reading.observed)


class DropoutFault(SensorFault):
    """Readings randomly fail to update: the controller sees the stale
    previous reading instead (a dropped sample holds the output latch).

    Args:
        rate: per-cycle dropout probability in ``[0, 1]``.
        seed: RNG seed; dropouts are reproducible.
    """

    def __init__(self, rate=0.5, seed=0, start=0, duration=None):
        super().__init__(start=start, duration=duration)
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate
        self.seed = seed
        self._rng = random.Random(seed)

    def transform_reading(self, cycle, reading, last_reading):
        if self._rng.random() < self.rate and last_reading is not None:
            return last_reading
        return reading

    def reset(self):
        self._rng = random.Random(self.seed)


class DriftFault(SensorFault):
    """Slow reference drift: the sensed voltage gains a ramp offset,
    equivalent to both thresholds drifting the opposite way.

    Args:
        rate: offset slope, volts per active cycle (negative rates make
            the sensor read progressively low, pushing it toward
            spurious LOW assertions).
    """

    def __init__(self, rate=-1e-5, start=0, duration=None):
        super().__init__(start=start, duration=duration)
        if rate == 0.0:
            raise ValueError("rate must be non-zero")
        self.rate = rate

    def transform_input(self, cycle, voltage):
        return voltage + self.rate * (cycle - self.start + 1)


class BurstNoiseFault(SensorFault):
    """Periodic bursts of large noise (supply coupling, EMI) far beyond
    the design's margined white-noise error.

    Args:
        amplitude: uniform noise amplitude during a burst, volts.
        period: cycles between burst starts.
        burst: burst length in cycles (must fit in ``period``).
        seed: RNG seed for reproducible noise.
    """

    def __init__(self, amplitude=0.05, period=64, burst=8, seed=0,
                 start=0, duration=None):
        super().__init__(start=start, duration=duration)
        if amplitude <= 0:
            raise ValueError("amplitude must be positive")
        if period < 1 or not 1 <= burst <= period:
            raise ValueError("need 1 <= burst <= period")
        self.amplitude = amplitude
        self.period = int(period)
        self.burst = int(burst)
        self.seed = seed
        self._rng = random.Random(seed)

    def transform_input(self, cycle, voltage):
        if (cycle - self.start) % self.period < self.burst:
            return voltage + self._rng.uniform(-self.amplitude,
                                               self.amplitude)
        return voltage

    def reset(self):
        self._rng = random.Random(self.seed)


class FaultySensor:
    """A sensor wrapper that applies a list of :class:`SensorFault`\\ s.

    Drop-in for :class:`~repro.control.sensor.ThresholdSensor` wherever
    only ``observe``/``reset`` and the threshold attributes are used
    (attribute access falls through to the wrapped sensor).
    """

    def __init__(self, sensor, faults=()):
        if not hasattr(sensor, "observe"):
            raise TypeError("sensor must provide observe(); got %r"
                            % type(sensor))
        self.sensor = sensor
        self.faults = tuple(faults)
        for f in self.faults:
            if not isinstance(f, SensorFault):
                raise TypeError("expected SensorFault, got %r" % type(f))
        self._cycle = 0
        self._last = None
        self._trace = None

    def attach_trace(self, trace):
        """Trace level transitions of the *post-fault* readings -- the
        stream the controller actually consumes.  The wrapped sensor is
        deliberately left untraced so each transition appears once."""
        self._trace = trace

    def observe(self, voltage):
        """Feed the true voltage through the fault pipeline."""
        cycle = self._cycle
        self._cycle = cycle + 1
        for f in self.faults:
            if f.active(cycle):
                voltage = f.transform_input(cycle, voltage)
        reading = self.sensor.observe(voltage)
        for f in self.faults:
            if f.active(cycle):
                reading = f.transform_reading(cycle, reading, self._last)
        if self._trace is not None:
            prev = (self._last.level if self._last is not None
                    else VoltageLevel.NORMAL)
            if reading.level is not prev:
                self._trace.instant("sensor.level", "sensor",
                                    {"from": prev.name,
                                     "to": reading.level.name})
        self._last = reading
        return reading

    def reset(self):
        """Reset the wrapped sensor, the cycle counter, and all faults."""
        self.sensor.reset()
        self._cycle = 0
        self._last = None
        for f in self.faults:
            f.reset()

    def __getattr__(self, name):
        try:
            sensor = self.__dict__["sensor"]
        except KeyError:
            raise AttributeError(name)
        return getattr(sensor, name)

    def __repr__(self):
        return "<FaultySensor %r faults=%r>" % (self.sensor,
                                                list(self.faults))


# ----------------------------------------------------------------------
# Actuator faults
# ----------------------------------------------------------------------

class ActuatorFault(FaultWindow):
    """Base class: identity transform on the controller's command."""

    def transform_command(self, cycle, command):
        return command


class StuckGatedFault(ActuatorFault):
    """Gating logic latched on: the units stay clock-gated regardless
    of the controller (a fail-slow machine)."""

    def transform_command(self, cycle, command):
        return ActuatorCommand.REDUCE


class StuckReleasedFault(ActuatorFault):
    """Gating logic latched off: the actuator silently ignores every
    command, leaving the loop open (a fail-dangerous machine)."""

    def transform_command(self, cycle, command):
        return ActuatorCommand.NONE


class DelayedReleaseFault(ActuatorFault):
    """Gating releases late: after the controller stops commanding
    REDUCE, the units stay gated for ``extra`` more cycles.

    Args:
        extra: additional gated cycles per release.
    """

    def __init__(self, extra=8, start=0, duration=None):
        super().__init__(start=start, duration=duration)
        if extra < 1:
            raise ValueError("extra must be at least 1")
        self.extra = int(extra)
        self._hold = 0

    def transform_command(self, cycle, command):
        if command is ActuatorCommand.REDUCE:
            self._hold = self.extra
            return command
        if self._hold > 0:
            self._hold -= 1
            return ActuatorCommand.REDUCE
        return command

    def reset(self):
        self._hold = 0


class FaultyActuator:
    """An actuator wrapper that applies a list of
    :class:`ActuatorFault`\\ s to each command before the real gating
    logic sees it.  End-of-run :meth:`release` bypasses the faults (the
    run is over; the wrapper must not leave the machine gated for the
    next one)."""

    def __init__(self, actuator, faults=()):
        if not hasattr(actuator, "apply"):
            raise TypeError("actuator must provide apply(); got %r"
                            % type(actuator))
        self.actuator = actuator
        self.faults = tuple(faults)
        for f in self.faults:
            if not isinstance(f, ActuatorFault):
                raise TypeError("expected ActuatorFault, got %r" % type(f))
        self._cycle = 0

    def apply(self, machine, command):
        cycle = self._cycle
        self._cycle = cycle + 1
        for f in self.faults:
            if f.active(cycle):
                command = f.transform_command(cycle, command)
        self.actuator.apply(machine, command)

    def release(self, machine):
        self.actuator.release(machine)

    def reset(self):
        """Reset the cycle counter and all fault state."""
        self._cycle = 0
        for f in self.faults:
            f.reset()

    def __getattr__(self, name):
        try:
            actuator = self.__dict__["actuator"]
        except KeyError:
            raise AttributeError(name)
        return getattr(actuator, name)

    def __repr__(self):
        return "<FaultyActuator %r faults=%r>" % (self.actuator,
                                                  list(self.faults))
