"""Process-level chaos injection for orchestrator workers.

The injectors in :mod:`repro.faults.injectors` corrupt the *signal
path* (sensor readings, actuator commands); the chaos monkey here
corrupts the *execution substrate*: it makes a worker process die,
hang, or run out of memory at a chosen point, so the supervised pool's
crash detection, requeueing, and poison isolation can be exercised
deterministically.

Chaos is enabled purely through the environment -- the worker child
reads it, the orchestrating parent never does -- which matches how the
real failure arrives (the OOM killer does not consult your call graph):

* ``REPRO_CHAOS`` -- ``MODE@TRIGGER`` (or a comma-separated list of
  them; each fault in a list keeps its *own* fire-once marker, so
  ``kill@1,oom@spec=3f9a`` crashes one worker once while the poisoned
  spec keeps OOMing):

  - ``MODE`` is ``kill`` (SIGKILL to self: the OOM-killer shape),
    ``exit`` (``os._exit``: interpreter abort), ``hang`` (sleep past
    any deadline: a wedged worker), or ``oom`` (raise ``MemoryError``:
    an allocation failure the worker survives as a Python exception);
  - ``TRIGGER`` is either an integer *N* (fire on the N-th job this
    worker process executes, 1-based) or ``spec=HEXPREFIX`` (fire on
    any job whose spec content hash starts with the prefix -- this is
    how a *poison spec* is made: it takes its worker down on every
    attempt, on every worker);
  - prefixing the trigger with ``serve=`` moves the fault from the
    worker child to the sweep *server's* executor (see
    :mod:`repro.server`): ``kill@serve=2`` SIGKILLs the serving
    process as it dispatches its 2nd admitted cell, mid-request, so
    the client -> server -> pool -> journal recovery path is
    rehearsable end to end.  Worker-scoped and serve-scoped faults
    coexist in one list; each side arms only its own scope.

* ``REPRO_CHAOS_ONCE`` -- optional directory holding a fire-once
  marker.  The first worker to trigger claims the marker atomically
  (``O_CREAT|O_EXCL``) and fires; everyone else proceeds healthy.
  This turns "every worker dies at job N" into "exactly one worker
  dies, once, sweep-wide" -- the transient-crash shape.

Examples::

    REPRO_CHAOS=kill@2 REPRO_CHAOS_ONCE=/tmp/m  repro-didt sweep ...
    REPRO_CHAOS=oom@spec=3f9a                   repro-didt sweep ...
"""

import os
import signal
import time

#: Environment variable selecting the chaos mode and trigger.
CHAOS_ENV = "REPRO_CHAOS"

#: Environment variable naming the fire-once marker directory.
CHAOS_ONCE_ENV = "REPRO_CHAOS_ONCE"

#: Marker file name inside the fire-once directory.
ONCE_MARKER = "chaos.fired"

#: Understood chaos modes.
CHAOS_MODES = ("kill", "exit", "hang", "oom")

#: Where a fault is armed: in an orchestrator worker child, or in the
#: sweep server's executor loop.
CHAOS_SCOPES = ("worker", "serve")

#: Exit status used by the ``exit`` mode (distinctive in logs).
CHAOS_EXIT_CODE = 86


class ProcessChaos:
    """One armed chaos fault for the current worker process.

    Args:
        mode: one of :data:`CHAOS_MODES`.
        ordinal: fire on this 1-based per-process job count...
        spec_prefix: ...or on any spec whose content hash starts with
            this lowercase hex prefix (exactly one trigger must be
            given).
        once_dir: directory for the sweep-wide fire-once marker, or
            ``None`` to fire every time the trigger matches.
        hang_seconds: how long the ``hang`` mode sleeps.
        marker: file name of the fire-once marker inside ``once_dir``
            (each fault of a multi-fault set gets a distinct one).
        scope: one of :data:`CHAOS_SCOPES` -- where this fault arms
            (``"worker"``: an orchestrator worker child, the default;
            ``"serve"``: the sweep server's executor loop).
    """

    def __init__(self, mode, ordinal=None, spec_prefix=None,
                 once_dir=None, hang_seconds=3600.0,
                 marker=ONCE_MARKER, scope="worker"):
        if mode not in CHAOS_MODES:
            raise ValueError("unknown chaos mode %r (known: %s)"
                             % (mode, ", ".join(CHAOS_MODES)))
        if scope not in CHAOS_SCOPES:
            raise ValueError("unknown chaos scope %r (known: %s)"
                             % (scope, ", ".join(CHAOS_SCOPES)))
        if (ordinal is None) == (spec_prefix is None):
            raise ValueError("exactly one of ordinal/spec_prefix "
                             "must be given")
        if ordinal is not None:
            ordinal = int(ordinal)
            if ordinal < 1:
                raise ValueError("chaos ordinal must be >= 1, got %d"
                                 % ordinal)
        if spec_prefix is not None:
            spec_prefix = str(spec_prefix).lower()
            if not spec_prefix or any(c not in "0123456789abcdef"
                                      for c in spec_prefix):
                raise ValueError("chaos spec prefix must be non-empty "
                                 "hex, got %r" % spec_prefix)
        self.mode = mode
        self.ordinal = ordinal
        self.spec_prefix = spec_prefix
        self.once_dir = str(once_dir) if once_dir else None
        self.hang_seconds = float(hang_seconds)
        self.marker = str(marker)
        self.scope = scope
        self.fired = False

    @classmethod
    def parse(cls, text, once_dir=None, **kwargs):
        """Build from a ``MODE@TRIGGER`` string (the env-var syntax).
        A ``serve=`` trigger prefix selects the server-executor scope
        (``kill@serve=2``, ``hang@serve=spec=3f9a``)."""
        mode, sep, trigger = str(text).partition("@")
        if not sep or not trigger:
            raise ValueError("chaos spec must look like MODE@TRIGGER "
                             "(e.g. kill@2, oom@spec=3f9a, "
                             "kill@serve=1), got %r" % (text,))
        if trigger.startswith("serve="):
            kwargs.setdefault("scope", "serve")
            trigger = trigger[len("serve="):]
            if not trigger:
                raise ValueError("empty serve= chaos trigger in %r"
                                 % (text,))
        if trigger.startswith("spec="):
            return cls(mode, spec_prefix=trigger[len("spec="):],
                       once_dir=once_dir, **kwargs)
        try:
            ordinal = int(trigger)
        except ValueError:
            raise ValueError("chaos trigger must be an integer job "
                             "ordinal or spec=HEXPREFIX, got %r"
                             % trigger)
        return cls(mode, ordinal=ordinal, once_dir=once_dir, **kwargs)

    @classmethod
    def from_env(cls, environ=None, scope="worker"):
        """The armed chaos from ``REPRO_CHAOS`` for one scope:
        ``None``, one :class:`ProcessChaos`, or a :class:`ChaosSet`
        for a comma-separated fault list.  Faults whose scope differs
        are dropped (each side of the client/server split arms only
        its own), but marker names are assigned over the *full* list,
        so a worker-scoped and a serve-scoped fault never share a
        fire-once marker."""
        if scope not in CHAOS_SCOPES:
            raise ValueError("unknown chaos scope %r (known: %s)"
                             % (scope, ", ".join(CHAOS_SCOPES)))
        environ = os.environ if environ is None else environ
        text = environ.get(CHAOS_ENV)
        if not text:
            return None
        once_dir = environ.get(CHAOS_ONCE_ENV)
        parts = [part for part in text.split(",") if part]
        if len(parts) == 1:
            faults = [cls.parse(parts[0], once_dir=once_dir)]
        else:
            faults = [cls.parse(part, once_dir=once_dir,
                                marker="%s.%d" % (ONCE_MARKER, n))
                      for n, part in enumerate(parts)]
        faults = [fault for fault in faults if fault.scope == scope]
        if not faults:
            return None
        if len(faults) == 1:
            return faults[0]
        return ChaosSet(faults)

    # -- triggering ----------------------------------------------------

    def matches(self, ordinal, spec_hash=None):
        """Whether this job (per-process ordinal + spec hash) triggers."""
        if self.ordinal is not None:
            return ordinal == self.ordinal
        return bool(spec_hash) and str(spec_hash).startswith(
            self.spec_prefix)

    def _claim_once(self):
        """Atomically claim the sweep-wide fire-once marker."""
        if self.once_dir is None:
            return True
        os.makedirs(self.once_dir, exist_ok=True)
        path = os.path.join(self.once_dir, self.marker)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.write(fd, b"%d\n" % os.getpid())
        os.close(fd)
        return True

    def fire(self, ordinal, spec_hash=None):
        """Inject the fault if this job triggers it.

        Returns ``False`` when nothing fired.  ``oom`` raises
        ``MemoryError``; ``kill``/``exit`` do not return at all;
        ``hang`` sleeps (far past any supervisor deadline), then
        returns ``True`` if somehow still alive.
        """
        if not self.matches(ordinal, spec_hash):
            return False
        if not self._claim_once():
            return False
        self.fired = True
        if self.mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.mode == "exit":
            os._exit(CHAOS_EXIT_CODE)
        elif self.mode == "hang":
            deadline = time.monotonic() + self.hang_seconds
            while time.monotonic() < deadline:
                time.sleep(min(1.0, self.hang_seconds))
            return True
        raise MemoryError("chaos: simulated worker OOM (job %d)"
                          % ordinal)

    def __repr__(self):
        trigger = ("@%d" % self.ordinal if self.ordinal is not None
                   else "@spec=%s" % self.spec_prefix)
        if self.scope != "worker":
            trigger = "@%s=%s" % (self.scope, trigger[1:])
        return "<ProcessChaos %s%s%s>" % (
            self.mode, trigger, " once" if self.once_dir else "")


class ChaosSet:
    """Several armed chaos faults, checked in order on every job.

    Built by :meth:`ProcessChaos.from_env` for a comma-separated
    ``REPRO_CHAOS``.  Each fault keeps its own fire-once marker, so a
    set can mix a transient crash (``kill@1`` + ``REPRO_CHAOS_ONCE``)
    with a persistent failure (``oom@spec=...``).
    """

    def __init__(self, faults):
        self.faults = list(faults)

    def fire(self, ordinal, spec_hash=None):
        """Fire every matching fault; ``kill``/``exit`` never return."""
        fired = False
        for fault in self.faults:
            if fault.fire(ordinal, spec_hash):
                fired = True
        return fired

    def __repr__(self):
        return "<ChaosSet [%s]>" % ", ".join(
            repr(fault) for fault in self.faults)
