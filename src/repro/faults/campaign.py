"""The fault-campaign runner: fault types x workloads, under guard.

A campaign answers the question the nominal reproduction cannot: *how
does the closed loop degrade when its parts break?*  For every
(workload, fault) pair it runs the controlled loop with the fault
injected, compares against the healthy controlled baseline, and
reports:

* ``emergencies_missed`` -- emergency cycles beyond the baseline's
  (protection the fault cost us);
* ``ipc_lost_percent`` -- throughput given up relative to the baseline
  (what the fault, or the fail-safe's pessimism, cost);
* ``failsafe_transitions`` / ``failsafe_active`` -- whether the
  plausibility monitor declared the sensor dead and the controller
  degraded to the current-driven ramp.

Every run executes under a :class:`~repro.faults.watchdog.NumericWatchdog`
and a shared :class:`~repro.faults.watchdog.RunBudget`, so a divergent
or hung configuration becomes a reported ``"diverged"``/``"budget"``
status instead of NaN output or a stuck sweep.  All randomness is
seeded: the same seed produces a bit-identical report.

One :class:`~repro.pdn.discrete.PdnSimulator` is built per campaign and
reset between runs (re-discretizing the network costs a matrix
exponential per run; resetting costs two float stores).
"""

import json

from repro.control.actuators import Actuator
from repro.control.controller import PlausibilityMonitor, ThresholdController
from repro.control.loop import ClosedLoopSimulation
from repro.control.sensor import ThresholdSensor, VoltageLevel
from repro.faults.injectors import (
    BurstNoiseFault,
    DelayedReleaseFault,
    DriftFault,
    DropoutFault,
    FaultyActuator,
    FaultySensor,
    StuckGatedFault,
    StuckLevelFault,
    StuckReleasedFault,
)
from repro.faults.watchdog import (
    RunBudget,
    SimulationBudgetExceeded,
    SimulationDiverged,
)
from repro.pdn.discrete import DiscretePdn, PdnSimulator
from repro.uarch.core import Machine


#: name -> factory(start, seed) -> {"sensor": [...], "actuator": [...]}.
#: Parameters are sized so each fault's effect manifests within a few
#: thousand cycles at the Table-1 clock.
FAULT_LIBRARY = {
    "stuck_low": lambda start, seed: {
        "sensor": [StuckLevelFault(VoltageLevel.LOW, start=start)]},
    "stuck_high": lambda start, seed: {
        "sensor": [StuckLevelFault(VoltageLevel.HIGH, start=start)]},
    "dropout": lambda start, seed: {
        "sensor": [DropoutFault(rate=0.7, seed=seed, start=start)]},
    "drift": lambda start, seed: {
        "sensor": [DriftFault(rate=-5e-5, start=start)]},
    "burst_noise": lambda start, seed: {
        "sensor": [BurstNoiseFault(amplitude=0.08, period=64, burst=16,
                                   seed=seed, start=start)]},
    "stuck_gated": lambda start, seed: {
        "actuator": [StuckGatedFault(start=start)]},
    "stuck_released": lambda start, seed: {
        "actuator": [StuckReleasedFault(start=start)]},
    "delayed_release": lambda start, seed: {
        "actuator": [DelayedReleaseFault(extra=32, start=start)]},
}

#: Campaign run states.
STATUS_OK = "ok"
STATUS_DIVERGED = "diverged"
STATUS_BUDGET = "budget"


class FaultRunOutcome:
    """One (workload, fault) cell of the campaign matrix."""

    FIELDS = ("workload", "fault", "status", "cycles", "committed", "ipc",
              "emergency_cycles", "emergencies_missed", "ipc_lost_percent",
              "failsafe_transitions", "failsafe_active", "failsafe_reason",
              "v_min", "v_max", "error")

    def __init__(self, **kwargs):
        for field in self.FIELDS:
            try:
                setattr(self, field, kwargs.pop(field))
            except KeyError:
                raise TypeError("missing field %r" % field)
        if kwargs:
            raise TypeError("unexpected fields: %s" % sorted(kwargs))

    def to_dict(self):
        return {field: getattr(self, field) for field in self.FIELDS}

    def __repr__(self):
        return ("FaultRunOutcome(%s/%s: %s, %d emergencies, failsafe=%d)"
                % (self.workload, self.fault, self.status,
                   self.emergency_cycles, self.failsafe_transitions))


class CampaignReport:
    """The machine-readable result of :func:`run_campaign`."""

    def __init__(self, settings, baselines, outcomes):
        self.settings = settings
        self.baselines = baselines      # workload -> baseline dict
        self.outcomes = outcomes        # list of FaultRunOutcome

    def to_dict(self):
        return {
            "settings": dict(self.settings),
            "baselines": {w: dict(b) for w, b in self.baselines.items()},
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def to_json(self, indent=2):
        """Deterministic JSON: same seed => byte-identical output."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def worst(self):
        """The outcome that missed the most emergencies (tie: first)."""
        if not self.outcomes:
            return None
        return max(self.outcomes, key=lambda o: o.emergencies_missed)


def _build_controller(thresholds, actuator_kind, seed, bundle, monitor):
    sensor = ThresholdSensor(thresholds.v_low, thresholds.v_high,
                             delay=thresholds.delay, error=thresholds.error,
                             seed=seed)
    if bundle and bundle.get("sensor"):
        sensor = FaultySensor(sensor, bundle["sensor"])
    actuator = Actuator(actuator_kind)
    if bundle and bundle.get("actuator"):
        actuator = FaultyActuator(actuator, bundle["actuator"])
    return ThresholdController(sensor, actuator=actuator, monitor=monitor)


def _run_one(design, thresholds, stream, warmup_instructions, cycles,
             pdn_sim, budget, actuator_kind, seed, bundle, monitor):
    """One guarded closed-loop run; returns (status, loop, ctrl, error)."""
    machine = Machine(design.config, stream)
    if warmup_instructions:
        machine.fast_forward(warmup_instructions)
    ctrl = _build_controller(thresholds, actuator_kind, seed, bundle,
                             monitor)
    loop = ClosedLoopSimulation(machine, design.power_model, design.pdn,
                                controller=ctrl, pdn_sim=pdn_sim,
                                budget=budget)
    try:
        loop.run(max_cycles=cycles)
        return STATUS_OK, loop, ctrl, None
    except SimulationDiverged as exc:
        return STATUS_DIVERGED, loop, ctrl, str(exc)
    except SimulationBudgetExceeded as exc:
        return STATUS_BUDGET, loop, ctrl, str(exc)
    finally:
        # Never leave a faulted actuator holding the machine gated.
        ctrl.actuator.release(machine)


def _outcome(workload, fault, status, loop, ctrl, error, baseline):
    stats = loop.machine.stats
    emergencies = loop.counter.summary()
    summary = ctrl.summary()
    ipc = stats.committed / stats.cycles if stats.cycles else 0.0
    missed = None
    ipc_lost = None
    if baseline is not None:
        missed = max(0, emergencies["emergency_cycles"]
                     - baseline["emergency_cycles"])
        if baseline["ipc"] > 0:
            ipc_lost = 100.0 * (baseline["ipc"] - ipc) / baseline["ipc"]
    return FaultRunOutcome(
        workload=workload, fault=fault, status=status,
        cycles=stats.cycles, committed=stats.committed, ipc=ipc,
        emergency_cycles=emergencies["emergency_cycles"],
        emergencies_missed=missed, ipc_lost_percent=ipc_lost,
        failsafe_transitions=summary["failsafe_transitions"],
        failsafe_active=summary["failsafe_active"],
        failsafe_reason=summary["failsafe_reason"],
        v_min=emergencies["v_min"], v_max=emergencies["v_max"],
        error=error)


def run_campaign(workloads=("swim",), faults=None, cycles=6000,
                 warmup_instructions=20000, seed=0, impedance_percent=200.0,
                 delay=2, error=0.0, actuator_kind="fu_dl1_il1",
                 fault_start=500, budget_seconds=120.0,
                 stuck_cycles=500, design=None):
    """Sweep fault types x workloads under watchdog and budget.

    Args:
        workloads: benchmark names (or ``"stressmark"``).
        faults: names from :data:`FAULT_LIBRARY`; ``None`` runs all.
        cycles / warmup_instructions: per-run timed region and warm-up.
        seed: master seed for workload synthesis, sensor noise, and
            stochastic faults; the report is a pure function of it.
        impedance_percent / delay / error / actuator_kind: the control
            design point (see
            :class:`~repro.core.design.VoltageControlDesign`).
        fault_start: cycle (within the timed region) at which injected
            faults activate.
        budget_seconds: wall-clock cap per run (``None`` disables).
        stuck_cycles: plausibility-monitor stuck threshold.
        design: reuse a solved design (else one is built).

    Returns:
        A :class:`CampaignReport`.
    """
    from repro.core import (
        VoltageControlDesign,
        get_profile,
        stressmark_stream,
        tune_stressmark,
    )

    if faults is None:
        faults = sorted(FAULT_LIBRARY)
    unknown = [f for f in faults if f not in FAULT_LIBRARY]
    if unknown:
        raise ValueError("unknown fault(s) %s; known: %s"
                         % (unknown, ", ".join(sorted(FAULT_LIBRARY))))
    design = design or VoltageControlDesign(
        impedance_percent=impedance_percent)
    thresholds = design.thresholds(delay=delay, error=error,
                                   actuator_kind=actuator_kind)
    # One discretization for the whole campaign, reset between runs.
    pdn_sim = PdnSimulator(
        DiscretePdn(design.pdn, clock_hz=design.config.clock_hz))
    budget = (RunBudget(max_seconds=budget_seconds)
              if budget_seconds else None)
    tuned = {}

    def stream_for(name):
        if name == "stressmark":
            if "spec" not in tuned:
                tuned["spec"], _ = tune_stressmark(design.pdn, design.config)
            return stressmark_stream(tuned["spec"]), 2000
        return (get_profile(name).stream(seed=seed), warmup_instructions)

    def monitor():
        return PlausibilityMonitor(stuck_cycles=stuck_cycles)

    baselines = {}
    outcomes = []
    for workload in workloads:
        stream, warmup = stream_for(workload)
        status, loop, ctrl, err = _run_one(
            design, thresholds, stream, warmup, cycles, pdn_sim, budget,
            actuator_kind, seed, None, monitor())
        base = _outcome(workload, "none", status, loop, ctrl, err, None)
        baselines[workload] = base.to_dict()
        for fault in faults:
            bundle = FAULT_LIBRARY[fault](fault_start, seed)
            stream, warmup = stream_for(workload)
            status, loop, ctrl, err = _run_one(
                design, thresholds, stream, warmup, cycles, pdn_sim,
                budget, actuator_kind, seed, bundle, monitor())
            outcomes.append(_outcome(workload, fault, status, loop, ctrl,
                                     err, baselines[workload]))
    settings = {
        "workloads": list(workloads), "faults": list(faults),
        "cycles": cycles, "warmup_instructions": warmup_instructions,
        "seed": seed, "impedance_percent": impedance_percent,
        "delay": delay, "error": error, "actuator_kind": actuator_kind,
        "fault_start": fault_start, "stuck_cycles": stuck_cycles,
    }
    return CampaignReport(settings, baselines, outcomes)
