"""The fault-campaign runner: fault types x workloads, under guard.

A campaign answers the question the nominal reproduction cannot: *how
does the closed loop degrade when its parts break?*  For every
(workload, fault) pair it runs the controlled loop with the fault
injected, compares against the healthy controlled baseline, and
reports:

* ``emergencies_missed`` -- emergency cycles beyond the baseline's
  (protection the fault cost us);
* ``ipc_lost_percent`` -- throughput given up relative to the baseline
  (what the fault, or the fail-safe's pessimism, cost);
* ``failsafe_transitions`` / ``failsafe_active`` -- whether the
  plausibility monitor declared the sensor dead and the controller
  degraded to the current-driven ramp.

Every run executes under a :class:`~repro.faults.watchdog.NumericWatchdog`
and a per-run wall-clock budget, so a divergent or hung configuration
becomes a reported ``"diverged"``/``"budget"`` status instead of NaN
output or a stuck sweep.  All randomness is seeded: the same seed
produces a bit-identical report.

Since the orchestrator landed, each (workload, fault) cell is submitted
as a :class:`~repro.orchestrator.spec.JobSpec` to a
:class:`~repro.orchestrator.runner.Runner`: cells run in parallel
across ``REPRO_JOBS`` workers, each worker builds the design and the
PDN discretization once per impedance level (the worker resets the
shared :class:`~repro.pdn.discrete.PdnSimulator` between runs), and a
:class:`~repro.orchestrator.cache.ResultCache` can memoize cells across
invocations.  The report bytes are unchanged from the inline-loop era.
"""

import json

from repro.control.sensor import VoltageLevel
from repro.faults.injectors import (
    BurstNoiseFault,
    DelayedReleaseFault,
    DriftFault,
    DropoutFault,
    StuckGatedFault,
    StuckLevelFault,
    StuckReleasedFault,
)

#: name -> factory(start, seed) -> {"sensor": [...], "actuator": [...]}.
#: Parameters are sized so each fault's effect manifests within a few
#: thousand cycles at the Table-1 clock.
FAULT_LIBRARY = {
    "stuck_low": lambda start, seed: {
        "sensor": [StuckLevelFault(VoltageLevel.LOW, start=start)]},
    "stuck_high": lambda start, seed: {
        "sensor": [StuckLevelFault(VoltageLevel.HIGH, start=start)]},
    "dropout": lambda start, seed: {
        "sensor": [DropoutFault(rate=0.7, seed=seed, start=start)]},
    "drift": lambda start, seed: {
        "sensor": [DriftFault(rate=-5e-5, start=start)]},
    "burst_noise": lambda start, seed: {
        "sensor": [BurstNoiseFault(amplitude=0.08, period=64, burst=16,
                                   seed=seed, start=start)]},
    "stuck_gated": lambda start, seed: {
        "actuator": [StuckGatedFault(start=start)]},
    "stuck_released": lambda start, seed: {
        "actuator": [StuckReleasedFault(start=start)]},
    "delayed_release": lambda start, seed: {
        "actuator": [DelayedReleaseFault(extra=32, start=start)]},
}

#: Campaign run states.
STATUS_OK = "ok"
STATUS_DIVERGED = "diverged"
STATUS_BUDGET = "budget"


class FaultRunOutcome:
    """One (workload, fault) cell of the campaign matrix."""

    FIELDS = ("workload", "fault", "status", "cycles", "committed", "ipc",
              "emergency_cycles", "emergencies_missed", "ipc_lost_percent",
              "failsafe_transitions", "failsafe_active", "failsafe_reason",
              "v_min", "v_max", "error")

    def __init__(self, **kwargs):
        for field in self.FIELDS:
            try:
                setattr(self, field, kwargs.pop(field))
            except KeyError:
                raise TypeError("missing field %r" % field)
        if kwargs:
            raise TypeError("unexpected fields: %s" % sorted(kwargs))

    def to_dict(self):
        return {field: getattr(self, field) for field in self.FIELDS}

    def __repr__(self):
        return ("FaultRunOutcome(%s/%s: %s, %d emergencies, failsafe=%d)"
                % (self.workload, self.fault, self.status,
                   self.emergency_cycles, self.failsafe_transitions))


class CampaignReport:
    """The machine-readable result of :func:`run_campaign`."""

    def __init__(self, settings, baselines, outcomes):
        self.settings = settings
        self.baselines = baselines      # workload -> baseline dict
        self.outcomes = outcomes        # list of FaultRunOutcome

    def to_dict(self):
        return {
            "settings": dict(self.settings),
            "baselines": {w: dict(b) for w, b in self.baselines.items()},
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def to_json(self, indent=2):
        """Deterministic JSON: same seed => byte-identical output."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def worst(self):
        """The outcome that missed the most emergencies (tie: first)."""
        if not self.outcomes:
            return None
        return max(self.outcomes, key=lambda o: o.emergencies_missed)


def _result_outcome(workload, fault, result, baseline):
    """Fold one orchestrator result dict into a FaultRunOutcome."""
    emergencies = result.get("emergencies") or {}
    controller = result.get("controller") or {}
    ipc = result.get("ipc", 0.0)
    missed = None
    ipc_lost = None
    if baseline is not None:
        missed = max(0, emergencies.get("emergency_cycles", 0)
                     - baseline["emergency_cycles"])
        if baseline["ipc"] > 0:
            ipc_lost = 100.0 * (baseline["ipc"] - ipc) / baseline["ipc"]
    return FaultRunOutcome(
        workload=workload, fault=fault, status=result["status"],
        cycles=result.get("cycles", 0), committed=result.get("committed", 0),
        ipc=ipc,
        emergency_cycles=emergencies.get("emergency_cycles", 0),
        emergencies_missed=missed, ipc_lost_percent=ipc_lost,
        failsafe_transitions=controller.get("failsafe_transitions", 0),
        failsafe_active=controller.get("failsafe_active", False),
        failsafe_reason=controller.get("failsafe_reason"),
        v_min=emergencies.get("v_min"), v_max=emergencies.get("v_max"),
        error=result.get("error"))


def run_campaign(workloads=("swim",), faults=None, cycles=6000,
                 warmup_instructions=20000, seed=0, impedance_percent=200.0,
                 delay=2, error=0.0, actuator_kind="fu_dl1_il1",
                 fault_start=500, budget_seconds=120.0,
                 stuck_cycles=500, design=None, jobs=None, cache=None,
                 telemetry=None):
    """Sweep fault types x workloads through the orchestrator.

    Args:
        workloads: benchmark names (or ``"stressmark"``).
        faults: names from :data:`FAULT_LIBRARY`; ``None`` runs all.
        cycles / warmup_instructions: per-run timed region and warm-up.
        seed: master seed for workload synthesis, sensor noise, and
            stochastic faults; the report is a pure function of it.
        impedance_percent / delay / error / actuator_kind: the control
            design point (see
            :class:`~repro.core.design.VoltageControlDesign`).
        fault_start: cycle (within the timed region) at which injected
            faults activate.
        budget_seconds: wall-clock cap per run (``None`` disables).
        stuck_cycles: plausibility-monitor stuck threshold.
        design: seed the process design cache with a pre-built design
            (see :func:`repro.core.register_design`).
        jobs: worker processes; ``None`` resolves ``REPRO_JOBS`` or the
            CPU count (1 keeps everything in-process).
        cache: a :class:`~repro.orchestrator.cache.ResultCache` to
            memoize cells across invocations; ``None`` always executes.
        telemetry: a :class:`~repro.telemetry.Telemetry` bundle for the
            runner (batch counters and spans).  Observability only:
            the report is byte-identical with telemetry on or off.

    Returns:
        A :class:`CampaignReport`.
    """
    from repro.core import register_design
    from repro.orchestrator import JobSpec, Runner

    if faults is None:
        faults = sorted(FAULT_LIBRARY)
    unknown = [f for f in faults if f not in FAULT_LIBRARY]
    if unknown:
        raise ValueError("unknown fault(s) %s; known: %s"
                         % (unknown, ", ".join(sorted(FAULT_LIBRARY))))
    if design is not None:
        register_design(design)

    def spec_for(workload, fault):
        warmup = (2000 if workload == "stressmark"
                  else warmup_instructions)
        return JobSpec(workload=workload, cycles=cycles,
                       warmup_instructions=warmup, seed=seed,
                       impedance_percent=impedance_percent, delay=delay,
                       error=error, actuator_kind=actuator_kind,
                       fault=fault, fault_start=fault_start,
                       stuck_cycles=stuck_cycles)

    specs = []
    for workload in workloads:
        specs.append(spec_for(workload, None))
        for fault in faults:
            specs.append(spec_for(workload, fault))
    runner = Runner(jobs=jobs, cache=cache,
                    timeout_seconds=(budget_seconds or None),
                    telemetry=telemetry)
    results = runner.run(specs)

    baselines = {}
    outcomes = []
    index = 0
    for workload in workloads:
        base = _result_outcome(workload, "none", results[index].result,
                               None)
        baselines[workload] = base.to_dict()
        index += 1
        for fault in faults:
            outcomes.append(_result_outcome(
                workload, fault, results[index].result,
                baselines[workload]))
            index += 1
    settings = {
        "workloads": list(workloads), "faults": list(faults),
        "cycles": cycles, "warmup_instructions": warmup_instructions,
        "seed": seed, "impedance_percent": impedance_percent,
        "delay": delay, "error": error, "actuator_kind": actuator_kind,
        "fault_start": fault_start, "stuck_cycles": stuck_cycles,
    }
    return CampaignReport(settings, baselines, outcomes)
