"""Deterministic storage-fault injection for the persistence seams.

:mod:`repro.faults.chaos` corrupts the *execution substrate* (a worker
dies, hangs, OOMs); the injector here corrupts the *storage substrate*:
a write returns ``ENOSPC``, an fsync fails, a rename never lands, half
a record reaches the disk.  Every durable store in the sweep stack
(ResultCache, WarmupCache, CurrentTraceCache, TraceStore, SweepJournal)
funnels its write/fsync/replace calls through the seam functions in
this module -- :func:`write`, :func:`fsync`, :func:`replace` -- so a
single environment variable can make any of them fail at a chosen
operation, in any process, without monkeypatching:

* ``REPRO_IOCHAOS`` -- ``MODE@TARGET[:TRIGGER]`` (or a comma-separated
  list; each fault keeps its own counters and fire-once marker):

  - ``MODE`` is ``enospc`` (write raises ``OSError(ENOSPC)`` with
    nothing written), ``eio`` (write raises ``OSError(EIO)`` with
    nothing written), ``torn-write`` (the first *half* of the payload
    is written, then ``OSError(EIO)`` -- the torn-record shape),
    ``fsync-fail`` (the data reaches the OS but ``fsync`` raises
    ``OSError(EIO)``: durability not achieved), or ``rename-fail``
    (``os.replace`` raises ``OSError(EIO)`` without renaming: the
    atomic publish never happens);
  - ``TARGET`` is the store the fault applies to: ``cache`` (result
    cache), ``warm`` (warm-up checkpoint cache), ``captures`` (trace
    capture cache), ``traces`` (external trace store), or ``journal``
    (sweep journal);
  - ``TRIGGER`` is optional: omitted, the fault fires on *every*
    matching operation; an integer *N* fires only on the N-th matching
    operation in this process (1-based); ``every=N`` fires on every
    N-th matching operation.  Prefixing the target with ``serve=`` or
    ``worker=`` restricts the fault to the sweep server process or to
    everything else (sweep parent + pool workers); unprefixed faults
    arm everywhere.

* ``REPRO_IOCHAOS_ONCE`` -- optional directory holding fire-once
  markers, claimed atomically (``O_CREAT|O_EXCL``) exactly like
  ``REPRO_CHAOS_ONCE``: the first process to trigger fires, everyone
  else proceeds healthy.

Examples::

    REPRO_IOCHAOS=enospc@cache            repro-didt sweep ...
    REPRO_IOCHAOS=fsync-fail@journal:2    repro-didt sweep --journal j ...
    REPRO_IOCHAOS=torn-write@captures:every=3  repro-didt sweep ...
    REPRO_IOCHAOS=eio@serve=journal       repro-didt serve ...

The seams are deliberately trivial when chaos is off: one environment
lookup against a cached parse.  Mode/operation mapping: ``enospc``,
``eio`` and ``torn-write`` fire on :func:`write`; ``fsync-fail`` fires
on :func:`fsync`; ``rename-fail`` fires on :func:`replace`.  Ordinals
count only operations of the fault's own kind on its own target, so
``enospc@cache:3`` means "the third result-cache file write in this
process fails".
"""

import errno
import os

#: Environment variable selecting the storage faults.
IOCHAOS_ENV = "REPRO_IOCHAOS"

#: Environment variable naming the fire-once marker directory.
IOCHAOS_ONCE_ENV = "REPRO_IOCHAOS_ONCE"

#: Marker file name inside the fire-once directory.
IO_ONCE_MARKER = "iochaos.fired"

#: Understood fault modes.
IO_MODES = ("enospc", "eio", "torn-write", "fsync-fail", "rename-fail")

#: Known storage targets (one per durable store).
IO_TARGETS = ("cache", "warm", "captures", "traces", "journal")

#: Scope restrictions (``None`` on a fault means "everywhere").
IO_SCOPES = ("worker", "serve")

#: Which seam operation each mode fires on.
_MODE_OPS = {
    "enospc": "write",
    "eio": "write",
    "torn-write": "write",
    "fsync-fail": "fsync",
    "rename-fail": "replace",
}


class IoFault:
    """One armed storage fault for the current process.

    Args:
        mode: one of :data:`IO_MODES`.
        target: one of :data:`IO_TARGETS`.
        ordinal: fire only on this 1-based matching-operation count
            (mutually exclusive with ``every``).
        every: fire on every ``every``-th matching operation.
        once_dir: directory for the sweep-wide fire-once marker, or
            ``None`` to fire whenever the trigger matches.
        marker: marker file name inside ``once_dir`` (distinct per
            fault in a multi-fault set).
        scope: ``None`` (arm everywhere) or one of :data:`IO_SCOPES`.
    """

    def __init__(self, mode, target, ordinal=None, every=None,
                 once_dir=None, marker=IO_ONCE_MARKER, scope=None):
        if mode not in IO_MODES:
            raise ValueError("unknown iochaos mode %r (known: %s)"
                             % (mode, ", ".join(IO_MODES)))
        if target not in IO_TARGETS:
            raise ValueError("unknown iochaos target %r (known: %s)"
                             % (target, ", ".join(IO_TARGETS)))
        if scope is not None and scope not in IO_SCOPES:
            raise ValueError("unknown iochaos scope %r (known: %s)"
                             % (scope, ", ".join(IO_SCOPES)))
        if ordinal is not None and every is not None:
            raise ValueError("iochaos trigger takes ordinal or every=N,"
                             " not both")
        if ordinal is not None:
            ordinal = int(ordinal)
            if ordinal < 1:
                raise ValueError("iochaos ordinal must be >= 1, got %d"
                                 % ordinal)
        if every is not None:
            every = int(every)
            if every < 1:
                raise ValueError("iochaos every= must be >= 1, got %d"
                                 % every)
        self.mode = mode
        self.op = _MODE_OPS[mode]
        self.target = target
        self.ordinal = ordinal
        self.every = every
        self.once_dir = str(once_dir) if once_dir else None
        self.marker = str(marker)
        self.scope = scope
        self.seen = 0
        self.fired = 0

    @classmethod
    def parse(cls, text, once_dir=None, **kwargs):
        """Build from a ``MODE@TARGET[:TRIGGER]`` string (the env-var
        syntax).  A ``serve=``/``worker=`` target prefix restricts the
        fault to that scope (``eio@serve=journal``)."""
        mode, sep, rest = str(text).partition("@")
        if not sep or not rest:
            raise ValueError(
                "iochaos spec must look like MODE@TARGET[:TRIGGER] "
                "(e.g. enospc@cache, fsync-fail@journal:2, "
                "torn-write@captures:every=3), got %r" % (text,))
        target, _, trigger = rest.partition(":")
        for prefix in IO_SCOPES:
            token = prefix + "="
            if target.startswith(token):
                kwargs.setdefault("scope", prefix)
                target = target[len(token):]
                break
        if not target:
            raise ValueError("empty iochaos target in %r" % (text,))
        if not trigger:
            return cls(mode, target, once_dir=once_dir, **kwargs)
        if trigger.startswith("every="):
            tail = trigger[len("every="):]
            try:
                every = int(tail)
            except ValueError:
                raise ValueError("iochaos every= wants an integer, "
                                 "got %r" % tail)
            return cls(mode, target, every=every, once_dir=once_dir,
                       **kwargs)
        try:
            ordinal = int(trigger)
        except ValueError:
            raise ValueError("iochaos trigger must be an integer "
                             "ordinal or every=N, got %r" % trigger)
        return cls(mode, target, ordinal=ordinal, once_dir=once_dir,
                   **kwargs)

    @classmethod
    def from_env(cls, environ=None, scope="worker"):
        """The armed faults from ``REPRO_IOCHAOS`` for one scope:
        ``None`` or an :class:`IoFaultSet`.  Unscoped faults arm in
        every process; ``serve=``/``worker=``-scoped ones only in
        theirs.  Marker names are assigned over the full list so two
        faults never share a fire-once marker."""
        if scope not in IO_SCOPES:
            raise ValueError("unknown iochaos scope %r (known: %s)"
                             % (scope, ", ".join(IO_SCOPES)))
        environ = os.environ if environ is None else environ
        text = environ.get(IOCHAOS_ENV)
        if not text:
            return None
        once_dir = environ.get(IOCHAOS_ONCE_ENV)
        parts = [part for part in text.split(",") if part]
        if len(parts) == 1:
            faults = [cls.parse(parts[0], once_dir=once_dir)]
        else:
            faults = [cls.parse(part, once_dir=once_dir,
                                marker="%s.%d" % (IO_ONCE_MARKER, n))
                      for n, part in enumerate(parts)]
        faults = [fault for fault in faults
                  if fault.scope is None or fault.scope == scope]
        if not faults:
            return None
        return IoFaultSet(faults)

    # -- triggering ----------------------------------------------------

    def matches(self, op, target):
        """Whether this operation is of this fault's kind; counts it
        and evaluates the trigger."""
        if op != self.op or target != self.target:
            return False
        self.seen += 1
        if self.ordinal is not None:
            return self.seen == self.ordinal
        if self.every is not None:
            return self.seen % self.every == 0
        return True

    def _claim_once(self):
        """Atomically claim the sweep-wide fire-once marker."""
        if self.once_dir is None:
            return True
        os.makedirs(self.once_dir, exist_ok=True)
        path = os.path.join(self.once_dir, self.marker)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.write(fd, b"%d\n" % os.getpid())
        os.close(fd)
        return True

    def should_fire(self, op, target):
        """Trigger check + fire-once claim, counting fires."""
        if not self.matches(op, target):
            return False
        if not self._claim_once():
            return False
        self.fired += 1
        return True

    def error(self):
        """The :class:`OSError` this fault injects."""
        if self.mode == "enospc":
            code = errno.ENOSPC
        else:
            code = errno.EIO
        return OSError(code, "%s: injected %s on %s"
                       % (os.strerror(code), self.mode, self.target))

    def __repr__(self):
        trigger = ""
        if self.ordinal is not None:
            trigger = ":%d" % self.ordinal
        elif self.every is not None:
            trigger = ":every=%d" % self.every
        target = self.target
        if self.scope is not None:
            target = "%s=%s" % (self.scope, target)
        return "<IoFault %s@%s%s%s>" % (
            self.mode, target, trigger,
            " once" if self.once_dir else "")


class IoFaultSet:
    """Several armed storage faults, checked in order per operation."""

    def __init__(self, faults):
        self.faults = list(faults)

    def pick(self, op, target):
        """The first fault that fires for this operation, or ``None``."""
        for fault in self.faults:
            if fault.should_fire(op, target):
                return fault
        return None

    def __repr__(self):
        return "<IoFaultSet [%s]>" % ", ".join(
            repr(fault) for fault in self.faults)


# -- process-global armed state ---------------------------------------
#
# The seams are called from hot paths (every cache put, every journal
# record), so the disabled case must be nearly free: one dict lookup
# comparing the env string against the last parse.  The armed set is
# re-parsed only when REPRO_IOCHAOS changes, and its per-fault counters
# survive across calls (that is what makes ordinals meaningful).

_scope = "worker"
_armed_text = None
_armed = None


def set_scope(scope):
    """Declare this process's scope (``"worker"`` or ``"serve"``).

    The sweep server calls ``set_scope("serve")`` at startup; every
    other process (sweep parent, pool workers) keeps the default.
    Changing scope drops the cached parse so scoped faults re-filter.
    """
    global _scope, _armed_text, _armed
    if scope not in IO_SCOPES:
        raise ValueError("unknown iochaos scope %r (known: %s)"
                         % (scope, ", ".join(IO_SCOPES)))
    if scope != _scope:
        _scope = scope
        _armed_text = None
        _armed = None


def reset():
    """Drop the cached parse and all trigger counters (tests)."""
    global _armed_text, _armed
    _armed_text = None
    _armed = None


def _current():
    """The armed :class:`IoFaultSet` for this process, or ``None``."""
    global _armed_text, _armed
    text = os.environ.get(IOCHAOS_ENV)
    if text != _armed_text:
        _armed_text = text
        _armed = IoFault.from_env(scope=_scope) if text else None
    return _armed


def _pick(op, target):
    armed = _current()
    if armed is None:
        return None
    return armed.pick(op, target)


# -- the seams ---------------------------------------------------------

def write(target, fh, data):
    """Write ``data`` to the open file object ``fh`` for ``target``.

    ``enospc``/``eio`` raise with nothing written; ``torn-write``
    writes the first half of the payload and then raises -- the
    partial-record shape every store's read path must tolerate.
    """
    fault = _pick("write", target)
    if fault is None:
        fh.write(data)
        return
    if fault.mode == "torn-write":
        fh.write(data[:len(data) // 2])
        try:
            fh.flush()
        except OSError:
            pass
    raise fault.error()


def fsync(target, fileno):
    """``os.fsync(fileno)`` for ``target``; ``fsync-fail`` raises
    instead (the data may sit in the OS cache, durability was not
    achieved)."""
    fault = _pick("fsync", target)
    if fault is not None:
        raise fault.error()
    os.fsync(fileno)


def replace(target, src, dst):
    """``os.replace(src, dst)`` for ``target``; ``rename-fail`` raises
    without renaming (the temp file stays, the publish never lands)."""
    fault = _pick("replace", target)
    if fault is not None:
        raise fault.error()
    os.replace(src, dst)
