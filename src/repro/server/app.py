"""The sweep service daemon: journal-backed queue + supervised runner.

:class:`SweepServer` wraps the crash-tolerant sweep stack in a
long-running process.  The division of labour:

* an :class:`~http.server.ThreadingHTTPServer` (background thread,
  one handler thread per connection) admits jobs and serves results;
* the *executor loop* (:meth:`SweepServer.run`, the caller's -- main
  -- thread) drains the queue in batches through the ordinary
  :class:`~repro.orchestrator.runner.Runner` /
  :class:`~repro.orchestrator.supervise.SupervisedPool` stack, so
  worker crash recovery, retry budgets, and chaos injection all work
  exactly as they do under ``repro-didt sweep``;
* the :class:`~repro.orchestrator.journal.SweepJournal` WAL is the
  *durable* queue: an admitted cell is journalled (fsync'd) before the
  202 leaves the building, so a SIGKILL'd server restarted on the same
  ``--journal`` replays finished cells and re-queues the remainder
  without being asked.

Durability contract: the submit *response* is the durability
acknowledgement.  A crash between admission and the 202 may lose those
cells -- the client never saw an ACK and must resubmit (the bundled
client does, on 404 at poll time).  Duplicate ``queued`` records from
such retries are harmless: journal replay deduplicates by content hash.

Graceful drain: SIGTERM/SIGINT surface as ``KeyboardInterrupt`` in the
executor thread (the CLI installs the handler; inside a running batch
the runner's own handler takes over).  The server stops admitting
(``/readyz`` 503, ``POST /jobs`` 503), lets the runner flush finished
cells and the ``interrupted`` record, tears the HTTP thread down, and
:meth:`run` returns exit code 3 -- the same resumable contract as an
interrupted ``sweep``.

Chaos: the executor arms ``REPRO_CHAOS`` faults in the ``serve`` scope
(``kill@serve=N`` and friends, see :mod:`repro.faults.chaos`), firing
as admitted cells are dispatched; worker-scoped faults ride the
environment into the pool's worker children untouched.
"""

import os
import sys
import threading
import time
from http.server import ThreadingHTTPServer

from repro.faults import iofault
from repro.faults.chaos import ProcessChaos
from repro.orchestrator.cache import ResultCache, result_checksum
from repro.orchestrator.journal import (
    JournalWriteError,
    SweepJournal,
    replay_journal,
)
from repro.orchestrator.runner import Runner, SweepInterrupted
from repro.server.handlers import ApiHandler
from repro.server.queue import JobQueue
from repro.telemetry import MetricsRegistry, Telemetry

#: Exit codes :meth:`SweepServer.run` returns (mirrors ``sweep``).
EXIT_CLEAN = 0
EXIT_JOURNAL = 2
EXIT_DRAINED = 3

#: Executor wake-up period while the queue is empty (also the drain
#: signal latency bound when idle).
_IDLE_POLL_SECONDS = 0.2


class _LockedJournal:
    """Serializes journal writes across handler threads and the
    executor (a :class:`SweepJournal` is not thread-safe, and the
    admission path appends from whichever handler thread got the
    request)."""

    def __init__(self, journal):
        self._journal = journal
        self._lock = threading.Lock()

    def queued(self, spec):
        with self._lock:
            self._journal.queued(spec)

    def done(self, job_hash, result):
        with self._lock:
            self._journal.done(job_hash, result)

    def dispatched(self, job_hash, attempt):
        with self._lock:
            self._journal.dispatched(job_hash, attempt)

    def failed(self, job_hash, attempt, error):
        with self._lock:
            self._journal.failed(job_hash, attempt, error)

    def crashed(self, job_hash, attempt, reason):
        with self._lock:
            self._journal.crashed(job_hash, attempt, reason)

    def resumed(self):
        with self._lock:
            self._journal.resumed()

    def interrupted(self):
        with self._lock:
            self._journal.interrupted()

    def compact(self):
        with self._lock:
            return self._journal.compact()

    def close(self):
        with self._lock:
            self._journal.close()


class _ApiServer(ThreadingHTTPServer):
    daemon_threads = True
    #: Leave the listen queue to the OS default but make the intent
    #: explicit: admission control happens in the handler, not here.
    allow_reuse_address = True


class SweepServer:
    """The sweep-as-a-service daemon.

    Args:
        journal_path: the WAL backing the queue (created if missing,
            resumed if present).  Taking it implies the journal's
            advisory writer lock -- a second server on the same path
            fails fast with a ``JournalError``.
        cache: a :class:`ResultCache` (default: the standard one).
            Cells whose result is already cached complete at admission
            without touching the runner.
        jobs: worker processes per batch (``None``: ``REPRO_JOBS`` or
            the CPU count).
        queue_limit: max cells awaiting dispatch; beyond it
            submissions shed with 429.
        batch_limit: max cells handed to one runner batch.
        timeout_seconds / retries / crash_retries / backoff /
        hang_grace: passed through to every :class:`Runner`.
        replay: passed through to every :class:`Runner`; ``False``
            (the ``serve --no-replay`` escape hatch) locksteps every
            cell instead of replaying captured current traces.
            Results are byte-identical either way.
        host / port: bind address (port 0 picks an ephemeral port;
            :meth:`start` returns the real one).
        request_timeout: per-connection socket timeout, seconds.
        telemetry: a :class:`~repro.telemetry.Telemetry` bundle
            (default: a live metrics registry, since ``/healthz`` and
            ``/metrics`` are fed from it).
    """

    def __init__(self, journal_path, cache=None, jobs=None,
                 queue_limit=1024, batch_limit=64, timeout_seconds=None,
                 retries=1, crash_retries=2, backoff=None, hang_grace=5.0,
                 host="127.0.0.1", port=0, request_timeout=30.0,
                 telemetry=None, compact_when_idle=True,
                 trace_store=None, replay=True):
        self.cache = cache if cache is not None else ResultCache()
        #: Trace store backing suite expansion and trace-job replay
        #: (``None``: built lazily from ``REPRO_TRACE_DIR``).
        self.trace_store = trace_store
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry(metrics=MetricsRegistry()))
        self._metrics_lock = threading.Lock()
        self._server_metrics = (
            self.telemetry.metrics.scoped("server")
            if self.telemetry.metrics.enabled else None)
        self.queue = JobQueue(queue_limit)
        self.jobs = jobs
        self.batch_limit = int(batch_limit)
        self.timeout_seconds = timeout_seconds
        self.retries = retries
        self.crash_retries = crash_retries
        self.backoff = backoff
        self.hang_grace = hang_grace
        self.replay = bool(replay)
        self.host = host
        self.port = int(port)
        self.request_timeout = float(request_timeout)
        self.compact_when_idle = bool(compact_when_idle)
        self.draining = False
        self._stop = threading.Event()
        self._started_at = time.time()
        self._chaos = ProcessChaos.from_env(scope="serve")
        # Storage faults scoped `serve=` arm in this process only
        # (worker children re-arm their own scope on spawn).
        iofault.set_scope("serve")
        self._dispatched = 0
        self._dirty = False
        self.httpd = None
        self._http_thread = None

        replayed = self._replay(journal_path)
        # Takes the advisory writer lock; a concurrent server on the
        # same journal dies here with a clear JournalError.
        self.journal = _LockedJournal(
            SweepJournal(journal_path, fresh=False))
        self.journal_path = str(journal_path)
        if replayed is None:
            # Fresh journal: stamp the header so replay knows the salt.
            self.journal._journal.begin(
                settings={"server": True,
                          "queue_limit": self.queue.limit},
                salt=self.cache.salt)
        else:
            self.journal.resumed()
            self._seed_from(replayed)

    # -- boot-time journal replay --------------------------------------

    def _replay(self, journal_path):
        path = str(journal_path)
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            return None
        return replay_journal(path, expected_salt=self.cache.salt)

    def _seed_from(self, state):
        """Rebuild the job table from a replayed journal: finished
        cells become poll-able immediately; the remainder re-queues
        and runs without waiting to be asked."""
        finished = 0
        for spec in state.specs:
            result = state.results.get(spec.content_hash())
            if result is not None:
                self.queue.complete_direct(spec, result,
                                           etag=result_checksum(result))
                finished += 1
        pending = state.pending_specs()
        if pending:
            self.queue.admit(pending, enforce_limit=False)
        self.count("resumed_cells", finished)
        self.count("requeued_cells", len(pending))

    # -- metrics -------------------------------------------------------

    def count(self, name, amount=1):
        if self._server_metrics is None or amount == 0:
            return
        with self._metrics_lock:
            self._server_metrics.counter(name).inc(amount)

    def metrics_payload(self):
        if not self.telemetry.metrics.enabled:
            return {}
        # Handler threads may race the executor's counter updates;
        # retry the snapshot rather than lock every runner increment.
        for _attempt in range(3):
            try:
                return self.telemetry.metrics.to_dict()
            except RuntimeError:
                continue
        return self.telemetry.metrics.to_dict()

    # -- HTTP-facing state ---------------------------------------------

    def expand_suites(self, request):
        """Expand a suite-submission request at admission.

        Args:
            request: ``{"names": [...], "workloads": [...], grid
                knobs}`` as posted by
                :meth:`~repro.server.client.SweepClient.submit_suites`.

        Returns:
            ``(specs, workloads, members)`` -- the expanded grid's
            :class:`JobSpec` list, the canonical workload-token list,
            and the per-suite membership dict, all echoed back in the
            202 receipt so the client can build the same report
            ``sweep --suite`` writes.

        Raises:
            ValueError: unknown suite/workload/controller tokens (the
                handler maps this to a 400).
        """
        from repro.orchestrator.grid import build_grid, canonical_workloads
        from repro.traces.store import TraceStore
        from repro.traces.suites import expand_suites

        if not isinstance(request, dict):
            raise ValueError("suites must be an object")
        names = request.get("names")
        if not isinstance(names, list) or not names \
                or not all(isinstance(n, str) for n in names):
            raise ValueError("suites.names must be a non-empty list "
                             "of suite names")
        store = self.trace_store
        if store is None:
            store = self.trace_store = TraceStore()
        explicit = request.get("workloads") or []
        expanded, members = expand_suites(names, store)
        specs, settings = build_grid(
            list(explicit) + expanded,
            impedances=request.get("impedances") or [200.0],
            controllers=request.get("controllers") or ["none"],
            cycles=request.get("cycles", 20000),
            warmup=request.get("warmup"),
            seed=request.get("seed", 11), store=store)
        canonical_members = {}
        for name in sorted(members):
            canon, store = canonical_workloads(members[name], store=store)
            canonical_members[name] = canon
        return specs, settings["workloads"], canonical_members

    def submit(self, specs):
        """Admit a submission (handler threads call this).

        Order matters twice over.  Results already cached complete
        immediately (journalled ``done``, zero runner jobs -- the
        repeat-query fast path).  The rest admit atomically against
        the backlog bound with their ``queued`` records fsync'd
        *before* the cells become dispatchable (the ``on_fresh``
        hook): the executor -- or a chaos SIGKILL it triggers -- must
        never be able to reach a cell the journal does not yet hold.
        """
        self.count("submitted_cells", len(specs))
        for spec in specs:
            job = spec.content_hash()
            if self.queue.lookup(job) is not None:
                continue
            cached = self.cache.get(spec)
            if cached is not None:
                self.journal.queued(spec)
                self.journal.done(job, cached)
                self.queue.complete_direct(spec, cached,
                                           etag=result_checksum(cached))
                self.count("cache_hits")

        def journal_fresh(fresh):
            for _job, spec in fresh:
                self.journal.queued(spec)

        report, fresh = self.queue.admit(specs, on_fresh=journal_fresh)
        self.count("admitted_cells", len(fresh))
        return report

    def job_status(self, job_hash):
        return self.queue.lookup(job_hash)

    def health(self):
        return {
            "status": "ok",
            "draining": self.draining,
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "queue": self.queue.counts(),
            "journal": self.journal_path,
        }

    def readiness(self):
        ready = not self.draining and not self._stop.is_set()
        return ready, {"ready": ready, "draining": self.draining,
                       "queue": self.queue.counts()}

    # -- lifecycle -----------------------------------------------------

    def start(self):
        """Bind and start the HTTP thread; returns the bound port."""
        handler = type("BoundApiHandler", (ApiHandler,),
                       {"timeout": self.request_timeout})
        self.httpd = _ApiServer((self.host, self.port), handler)
        self.httpd.app = self
        self.host, self.port = self.httpd.server_address[:2]
        self._http_thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-http", daemon=True)
        self._http_thread.start()
        return self.port

    def stop(self):
        """Ask the executor loop for a clean (exit 0) shutdown."""
        self._stop.set()
        self.queue.kick()

    def run(self):
        """The executor loop; blocks until shutdown.

        Returns the process exit code: 0 after :meth:`stop`, 2 when
        the journal stops persisting records (the fail-loud storage
        domain: serving cells the WAL cannot hold would break
        durability-before-visibility), 3 after a signal-driven drain
        (``KeyboardInterrupt`` here or a :class:`SweepInterrupted` out
        of a running batch).
        """
        try:
            while not self._stop.is_set():
                batch = self.queue.next_batch(self.batch_limit,
                                              timeout=_IDLE_POLL_SECONDS)
                if not batch:
                    self._maybe_compact()
                    continue
                self._run_batch(batch)
        except JournalWriteError as exc:
            # Executor-side journal failure (a `dispatched`/`done`
            # record did not persist).  Stop serving: anything already
            # acknowledged is journalled, and what is on disk stays
            # replayable (at worst a torn tail).
            print("[serve] journal write failed, shutting down: %s"
                  % exc, file=sys.stderr, flush=True)
            self.count("journal_write_errors")
            self._shutdown()
            return EXIT_JOURNAL
        except SweepInterrupted as exc:
            # The runner journalled `interrupted` and flushed finished
            # cells already; surface what completed, then drain.
            for outcome in exc.outcomes:
                self.queue.complete(
                    outcome.spec.content_hash(), outcome.result,
                    etag=result_checksum(outcome.result))
            self._shutdown()
            return EXIT_DRAINED
        except KeyboardInterrupt:
            # Interrupted while idle (no batch in flight): flush the
            # interrupted marker ourselves so a restart knows.  If the
            # disk is failing too, the drain still proceeds -- replay
            # treats a missing marker exactly like a kill.
            try:
                self.journal.interrupted()
            except JournalWriteError:
                self.count("journal_write_errors")
            self._shutdown()
            return EXIT_DRAINED
        self._shutdown()
        return EXIT_CLEAN

    def _run_batch(self, batch):
        if self._chaos is not None:
            for job, _spec in batch:
                self._dispatched += 1
                self._chaos.fire(self._dispatched, job)
        specs = [spec for _job, spec in batch]
        runner = Runner(jobs=self.jobs, cache=self.cache,
                        timeout_seconds=self.timeout_seconds,
                        retries=self.retries,
                        crash_retries=self.crash_retries,
                        backoff=self.backoff, hang_grace=self.hang_grace,
                        journal=self.journal, progress=False,
                        telemetry=self.telemetry, replay=self.replay)
        self.count("batches")
        outcomes = runner.run(specs)
        for (job, _spec), outcome in zip(batch, outcomes):
            self.queue.complete(job, outcome.result,
                                etag=result_checksum(outcome.result))
        self.count("completed_cells", len(outcomes))
        self._dirty = True

    def _maybe_compact(self):
        """Compact the journal when the queue drains empty, so a
        long-lived server's WAL tracks its live state instead of its
        history."""
        if not (self.compact_when_idle and self._dirty
                and self.queue.idle()):
            return
        self._dirty = False
        try:
            stats = self.journal.compact()
        except OSError:
            # Compaction is maintenance, not correctness: a failed
            # rewrite leaves the original journal untouched (the temp
            # file carries all the risk), so count it and serve on.
            self.count("journal_compact_errors")
            return
        self.count("journal_compactions")
        self.count("journal_bytes_reclaimed",
                   max(0, stats["bytes_before"] - stats["bytes_after"]))

    def _shutdown(self):
        self.draining = True
        if self.httpd is not None:
            self.httpd.shutdown()
            self.httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(5.0)
        self.journal.close()

    def __repr__(self):
        return ("SweepServer(http://%s:%s, journal=%r, %s)"
                % (self.host, self.port, self.journal_path,
                   "draining" if self.draining else "serving"))
