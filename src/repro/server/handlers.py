"""HTTP request handling for the sweep service.

One :class:`ApiHandler` per connection (``ThreadingHTTPServer`` gives
each its own thread).  The surface is deliberately small and fully
JSON:

=======  ==================  =============================================
Method   Path                Semantics
=======  ==================  =============================================
POST     ``/jobs``           Submit cells; idempotent by content hash.
                             The body carries ``specs`` and/or a
                             ``suites`` request (named suites + grid
                             knobs) expanded server-side at admission.
                             202 admitted, 429 queue full (load shed),
                             503 draining or journal write failure
                             (nothing admitted), 400 malformed, 413
                             oversized.
GET      ``/jobs/<hash>``    Poll one cell.  200 with ``ETag`` once
                             terminal; 304 on ``If-None-Match`` match;
                             404 unknown.
GET      ``/healthz``        Liveness: 200 while the process serves.
GET      ``/readyz``         Admission readiness: 200 admitting,
                             503 draining.
GET      ``/metrics``        The telemetry registry as JSON.
=======  ==================  =============================================

Robustness notes: request bodies are capped (413 beyond
:data:`MAX_BODY_BYTES`); the per-connection socket timeout is the
server's ``request_timeout``, so a stalled client cannot pin a handler
thread forever; every response carries ``Content-Length`` so HTTP/1.1
keep-alive works with dumb clients.  Error payloads are always
``{"error": ...}`` JSON.
"""

import json
import re
from http.server import BaseHTTPRequestHandler

from repro.orchestrator.journal import JournalWriteError
from repro.orchestrator.spec import JobSpec
from repro.server.queue import QueueFull

#: Largest accepted request body (a 10k-cell grid is ~3 MB).
MAX_BODY_BYTES = 8 << 20

#: Seconds a shed client is told to wait before retrying.
RETRY_AFTER_SECONDS = 1

_JOB_PATH = re.compile(r"^/jobs/([0-9a-f]{64})$")


class ApiHandler(BaseHTTPRequestHandler):
    """The sweep service's request handler (state lives on the app)."""

    protocol_version = "HTTP/1.1"

    @property
    def app(self):
        return self.server.app

    def log_message(self, format, *args):
        # Request logging is telemetry's job (server.requests counter);
        # per-line stderr chatter would swamp the drain diagnostics.
        pass

    # -- plumbing ------------------------------------------------------

    def _send_json(self, code, payload, headers=None):
        body = (json.dumps(payload, sort_keys=True, indent=2)
                + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code, message, headers=None):
        self._send_json(code, {"error": message}, headers=headers)

    def _read_body(self):
        """The request body, or ``None`` after an error response."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            self._send_error_json(400, "bad Content-Length")
            return None
        if length <= 0:
            self._send_error_json(400, "a JSON body is required")
            return None
        if length > MAX_BODY_BYTES:
            self._send_error_json(
                413, "request body exceeds %d bytes" % MAX_BODY_BYTES)
            return None
        return self.rfile.read(length)

    # -- routes --------------------------------------------------------

    def do_GET(self):
        self.app.count("requests")
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            return self._send_json(200, self.app.health())
        if path == "/readyz":
            ready, info = self.app.readiness()
            return self._send_json(200 if ready else 503, info)
        if path == "/metrics":
            return self._send_json(200, self.app.metrics_payload())
        match = _JOB_PATH.match(path)
        if match:
            return self._get_job(match.group(1))
        self._send_error_json(404, "unknown path %r" % path)

    def _get_job(self, job_hash):
        found = self.app.job_status(job_hash)
        if found is None:
            return self._send_error_json(
                404, "unknown job %s (submit it via POST /jobs; an "
                "unacknowledged submission is not durable)" % job_hash)
        status, result, etag = found
        headers = {}
        if etag:
            quoted = '"%s"' % etag
            if self.headers.get("If-None-Match") == quoted:
                self.app.count("not_modified")
                self.send_response(304)
                self.send_header("ETag", quoted)
                self.send_header("Content-Length", "0")
                self.end_headers()
                return
            headers["ETag"] = quoted
        payload = {"job": job_hash, "status": status}
        if result is not None:
            payload["result"] = result
        self._send_json(200, payload, headers=headers)

    def do_POST(self):
        self.app.count("requests")
        path = self.path.split("?", 1)[0]
        if path != "/jobs":
            return self._send_error_json(404, "unknown path %r" % path)
        if self.app.draining:
            return self._send_error_json(
                503, "draining: the server is shutting down and no "
                "longer admits jobs",
                headers={"Retry-After": str(RETRY_AFTER_SECONDS)})
        body = self._read_body()
        if body is None:
            return
        extra = {}
        try:
            payload = json.loads(body)
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
            spec_dicts = payload.get("specs") or []
            if not isinstance(spec_dicts, list):
                raise ValueError("specs must be a list")
            specs = [JobSpec.from_dict(d) for d in spec_dicts]
            suites_request = payload.get("suites")
            if suites_request is not None:
                # Suite names expand *at admission*, against the
                # server's own registry: the receipt's spec list is
                # exactly what was admitted.
                suite_specs, workloads, members = \
                    self.app.expand_suites(suites_request)
                specs = specs + suite_specs
                extra = {
                    "specs": [s.to_dict() for s in specs],
                    "workloads": workloads,
                    "suite_members": members,
                }
            if not specs:
                raise ValueError("specs must be a non-empty list "
                                 "(or name suites to expand)")
        except (ValueError, KeyError, TypeError) as exc:
            return self._send_error_json(
                400, "malformed submission: %s" % exc)
        try:
            report = self.app.submit(specs)
        except QueueFull as exc:
            self.app.count("shed")
            return self._send_error_json(
                429, str(exc),
                headers={"Retry-After": str(RETRY_AFTER_SECONDS)})
        except JournalWriteError as exc:
            # Durability-before-visibility under disk faults: if the
            # `queued` records cannot be fsync'd, nothing was admitted
            # (the on_fresh hook runs before cells become
            # dispatchable), so tell the client to retry elsewhere
            # rather than hand out an unjournalled 202.
            self.app.count("journal_write_errors")
            return self._send_error_json(
                503, "journal write failed; submission not admitted: "
                "%s" % exc,
                headers={"Retry-After": str(RETRY_AFTER_SECONDS)})
        response = {"jobs": report, "queue": self.app.queue.counts()}
        response.update(extra)
        self._send_json(202, response)
