"""Sweep-as-a-service: a durable, journal-backed job daemon.

``repro-didt serve`` turns the crash-tolerant sweep stack into a
long-running service: clients POST grids of
:class:`~repro.orchestrator.spec.JobSpec` cells, the daemon executes
them through the ordinary :class:`~repro.orchestrator.runner.Runner` /
supervised-pool machinery, and results are polled back by content
hash with ``ETag``/304 semantics.  The
:class:`~repro.orchestrator.journal.SweepJournal` WAL is the durable
queue: admitted work survives a SIGKILL of the server and resumes on
restart, byte-identically.

Layout:

* :mod:`repro.server.queue` -- the bounded, idempotent in-memory
  admission queue (the working set; the journal is the truth);
* :mod:`repro.server.app` -- :class:`SweepServer`: lifecycle, journal
  replay at boot, the executor loop, graceful drain (exit 3);
* :mod:`repro.server.handlers` -- the HTTP surface (submit / poll /
  healthz / readyz / metrics);
* :mod:`repro.server.client` -- :class:`SweepClient`: retrying
  submit/poll/wait with deterministic seeded backoff (powers
  ``repro-didt submit``).

See DESIGN.md section 12 for the durability model and endpoint table.
"""

from repro.server.app import EXIT_CLEAN, EXIT_DRAINED, SweepServer
from repro.server.client import (
    DEFAULT_RETRY_BUDGET,
    ServerError,
    ServerUnavailable,
    SweepClient,
)
from repro.server.queue import (
    STATUS_DONE,
    STATUS_QUEUED,
    STATUS_RUNNING,
    JobEntry,
    JobQueue,
    QueueFull,
)

__all__ = [
    "SweepServer",
    "EXIT_CLEAN",
    "EXIT_DRAINED",
    "SweepClient",
    "ServerError",
    "ServerUnavailable",
    "DEFAULT_RETRY_BUDGET",
    "JobQueue",
    "JobEntry",
    "QueueFull",
    "STATUS_QUEUED",
    "STATUS_RUNNING",
    "STATUS_DONE",
]
