"""The sweep-service client: submit, poll, and wait with retry.

Stdlib HTTP (:mod:`urllib.request`) against the :mod:`repro.server`
API.  The robustness surface mirrors the server's:

* every request runs under a **retry budget** with the orchestrator's
  own :class:`~repro.orchestrator.supervise.BackoffPolicy` -- the same
  deterministic seeded exponential backoff workers restart with -- so
  a client riding out a server restart retries on a reproducible
  schedule instead of hammering;
* *retryable* failures (connection refused/reset, timeouts, 429 load
  shed, 503 drain) consume budget and back off;  *terminal* failures
  (400 malformed, 413 oversize) raise :class:`ServerError`
  immediately -- retrying a bad request is never going to help;
* :meth:`SweepClient.wait` **resubmits on 404**: a submission the
  server crashed before acknowledging was never durable, and the
  journal-backed contract makes resubmission idempotent and free
  (cache-served).  This is what lets ``submit -> kill server ->
  restart -> poll`` converge with no client-side bookkeeping;
* responses cache by ``ETag``: ``poll`` sends ``If-None-Match`` when
  it has seen a result, and a 304 reuses the held payload.

Exhausting the budget raises :class:`ServerUnavailable`, which the CLI
maps to its own exit code (4) -- distinct from cell failures (1) and
interruption (3).
"""

import json
import time
import urllib.error
import urllib.request

from repro.orchestrator.supervise import BackoffPolicy

#: HTTP statuses worth retrying (the server said "later", not "no").
RETRYABLE_STATUSES = (429, 503)

#: Default attempts per logical operation before giving up.
DEFAULT_RETRY_BUDGET = 8


class ServerError(RuntimeError):
    """A terminal (non-retryable) server response.

    Attributes:
        status: the HTTP status code (``None`` for malformed bodies).
    """

    def __init__(self, message, status=None):
        super().__init__(message)
        self.status = status


class ServerUnavailable(RuntimeError):
    """The retry budget ran out without a successful response.

    Attributes:
        attempts: requests made before giving up.
        last_error: the final failure, stringified.
    """

    def __init__(self, url, attempts, last_error):
        super().__init__(
            "server unavailable: %s failed %d time(s); last error: %s"
            % (url, attempts, last_error))
        self.attempts = attempts
        self.last_error = str(last_error)


class SweepClient:
    """A retrying JSON client for one sweep server.

    Args:
        base_url: e.g. ``http://127.0.0.1:8123`` (trailing slash ok).
        retry_budget: attempts per logical request before
            :class:`ServerUnavailable`.
        backoff: a :class:`BackoffPolicy` for the retry schedule
            (default: seeded, so test retry timing is reproducible).
        timeout: per-request socket timeout, seconds.
        sleep: injection point for tests (default ``time.sleep``).
    """

    def __init__(self, base_url, retry_budget=DEFAULT_RETRY_BUDGET,
                 backoff=None, timeout=10.0, sleep=None):
        self.base_url = str(base_url).rstrip("/")
        if retry_budget < 1:
            raise ValueError("retry budget must be >= 1, got %d"
                             % retry_budget)
        self.retry_budget = int(retry_budget)
        self.backoff = backoff if backoff is not None else BackoffPolicy(
            base_seconds=0.1, factor=2.0, cap_seconds=5.0, seed=0)
        self.timeout = float(timeout)
        self._sleep = sleep if sleep is not None else time.sleep
        #: Requests actually sent (observability for tests/CLI).
        self.requests_sent = 0

    # -- one retrying request ------------------------------------------

    def _request(self, method, path, payload=None, headers=None):
        """One logical request under the retry budget.

        Returns ``(status, headers, body_dict)``.  4xx terminal errors
        raise :class:`ServerError`; budget exhaustion raises
        :class:`ServerUnavailable`.  304 is returned to the caller
        (with a ``None`` body), never retried.
        """
        url = self.base_url + path
        body = None
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        last_error = None
        for attempt in range(self.retry_budget):
            if attempt:
                self._sleep(self.backoff.delay(attempt - 1))
            request = urllib.request.Request(url, data=body,
                                             method=method)
            request.add_header("Accept", "application/json")
            if body is not None:
                request.add_header("Content-Type", "application/json")
            for key, value in (headers or {}).items():
                request.add_header(key, value)
            self.requests_sent += 1
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout) as response:
                    raw = response.read()
                    return (response.status, dict(response.headers),
                            self._decode(raw))
            except urllib.error.HTTPError as exc:
                detail = self._error_detail(exc)
                if exc.code == 304:
                    return exc.code, dict(exc.headers), None
                if exc.code in RETRYABLE_STATUSES:
                    last_error = "HTTP %d: %s" % (exc.code, detail)
                    continue
                raise ServerError("HTTP %d from %s: %s"
                                  % (exc.code, url, detail),
                                  status=exc.code)
            except (urllib.error.URLError, ConnectionError,
                    TimeoutError, OSError) as exc:
                last_error = exc
                continue
        raise ServerUnavailable(url, self.retry_budget, last_error)

    @staticmethod
    def _decode(raw):
        if not raw:
            return None
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServerError("unparsable server response: %s" % exc)

    @staticmethod
    def _error_detail(exc):
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            return payload.get("error", "")
        except Exception:
            return ""

    # -- API surface ---------------------------------------------------

    def submit(self, specs):
        """POST the specs; returns the server's 202 payload."""
        _status, _headers, payload = self._request(
            "POST", "/jobs",
            payload={"specs": [spec.to_dict() for spec in specs]})
        return payload

    def submit_suites(self, names, grid, workloads=()):
        """POST named suites for server-side expansion.

        Args:
            names: suite names the server resolves at admission.
            grid: the grid knobs (``impedances``, ``controllers``,
                ``cycles``, ``warmup``, ``seed``).
            workloads: explicit workload tokens to sweep alongside the
                suites.

        Returns:
            The 202 receipt, which additionally carries the expanded
            ``specs`` (canonical dicts), the canonical ``workloads``
            list, and the ``suite_members`` dict -- everything needed
            to build the same report ``sweep --suite`` writes.
        """
        request = dict(grid)
        request["names"] = list(names)
        request["workloads"] = list(workloads)
        _status, _headers, payload = self._request(
            "POST", "/jobs", payload={"suites": request})
        return payload

    def poll(self, job_hash, etag=None):
        """GET one job.  Returns ``(found, payload, etag)``:
        ``(False, None, None)`` on 404; on a 304 the payload is
        ``None`` and the caller's held copy is still current."""
        headers = {}
        if etag:
            headers["If-None-Match"] = '"%s"' % etag
        try:
            status, response_headers, payload = self._request(
                "GET", "/jobs/" + job_hash, headers=headers)
        except ServerError as exc:
            if exc.status == 404:
                return False, None, None
            raise
        new_etag = (response_headers.get("ETag") or "").strip('"') or etag
        if status == 304:
            return True, None, new_etag
        return True, payload, new_etag

    def wait(self, specs, poll_seconds=0.5, deadline_seconds=None,
             submitted=False):
        """Submit and block until every cell is terminal.

        Resubmits any cell the server reports 404 for (a submission
        lost to a crash before its ACK -- resubmission is idempotent).
        Returns ``{content_hash: result}`` in no particular order.

        Args:
            submitted: skip the initial submission (the specs were
                already admitted, e.g. via :meth:`submit_suites`); the
                404 resubmission path still applies and stays
                idempotent.

        Raises :class:`TimeoutError` past ``deadline_seconds``,
        :class:`ServerUnavailable` when the retry budget runs dry.
        """
        if not submitted:
            self.submit(specs)
        by_hash = {spec.content_hash(): spec for spec in specs}
        results = {}
        etags = {}
        start = time.monotonic()
        while len(results) < len(by_hash):
            progressed = False
            missing = []
            for job, spec in by_hash.items():
                if job in results:
                    continue
                found, payload, etag = self.poll(job,
                                                 etag=etags.get(job))
                if not found:
                    missing.append(spec)
                    continue
                etags[job] = etag
                if payload is not None \
                        and payload.get("status") == "done":
                    results[job] = payload["result"]
                    progressed = True
            if missing:
                # Lost to a pre-ACK crash; resubmission is idempotent.
                self.submit(missing)
                progressed = True
            if len(results) == len(by_hash):
                break
            if deadline_seconds is not None and \
                    time.monotonic() - start > deadline_seconds:
                raise TimeoutError(
                    "sweep wait exceeded %.1fs with %d/%d cell(s) done"
                    % (deadline_seconds, len(results), len(by_hash)))
            if not progressed:
                self._sleep(poll_seconds)
        return results

    # -- convenience ---------------------------------------------------

    def health(self):
        return self._request("GET", "/healthz")[2]

    def ready(self):
        """``(ready, info)`` from ``/readyz``.

        A 503 here is an *answer* (draining), not an outage, so this
        probe runs with a budget of one request and maps failure to
        ``(False, None)`` instead of backing off.
        """
        probe = SweepClient(self.base_url, retry_budget=1,
                            timeout=self.timeout, sleep=self._sleep)
        try:
            _status, _headers, payload = probe._request("GET", "/readyz")
            return True, payload
        except (ServerUnavailable, ServerError):
            return False, None

    def metrics(self):
        return self._request("GET", "/metrics")[2]

    def __repr__(self):
        return ("SweepClient(%r, budget=%d, sent=%d)"
                % (self.base_url, self.retry_budget, self.requests_sent))
