"""The server's bounded, idempotent, in-memory admission queue.

The durable source of truth for the sweep service is the
:class:`~repro.orchestrator.journal.SweepJournal` WAL; this queue is
the *working set* the executor drains.  Its job table is keyed by
:meth:`~repro.orchestrator.spec.JobSpec.content_hash`, which makes
submission idempotent: resubmitting a cell that is already queued,
running, or done is a no-op that reports the cell's current state --
exactly what a client retrying after a lost response needs.

Admission control is all-or-nothing: a submission whose *new* cells
would push the backlog past ``limit`` is rejected whole (the HTTP
layer turns that into a 429), so a storm of clients degrades to
explicit load-shedding instead of unbounded memory growth.  Cells
already known never count against the limit -- repeat traffic is free.
"""

import collections
import threading

#: Job states, in lifecycle order.
STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_DONE = "done"


class QueueFull(RuntimeError):
    """Admission rejected: the backlog is at its configured bound.

    Attributes:
        limit: the configured backlog bound.
        backlog: cells pending when the submission arrived.
        rejected: new cells the submission would have added.
    """

    def __init__(self, limit, backlog, rejected):
        super().__init__(
            "queue full: %d pending cell(s) at limit %d; %d new "
            "cell(s) shed" % (backlog, limit, rejected))
        self.limit = limit
        self.backlog = backlog
        self.rejected = rejected


class JobEntry:
    """One admitted cell: its spec, state, and terminal result."""

    __slots__ = ("spec", "status", "result", "etag")

    def __init__(self, spec):
        self.spec = spec
        self.status = STATUS_QUEUED
        self.result = None
        self.etag = None


class JobQueue:
    """Thread-safe job table + FIFO dispatch queue.

    Args:
        limit: maximum cells awaiting dispatch (``QueueFull`` beyond).
    """

    def __init__(self, limit=1024):
        limit = int(limit)
        if limit < 1:
            raise ValueError("queue limit must be >= 1, got %d" % limit)
        self.limit = limit
        self._ready = threading.Condition(threading.Lock())
        self._entries = {}
        self._pending = collections.deque()

    # -- admission -----------------------------------------------------

    def admit(self, specs, enforce_limit=True, on_fresh=None):
        """Atomically admit a submission's new cells.

        Returns ``(report, fresh)``: one ``{"job", "status"}`` dict
        per submitted spec (in submission order), and the
        ``(hash, spec)`` list of cells that were actually new and are
        now pending.  Raises :class:`QueueFull` -- admitting nothing
        -- if the new cells would exceed the backlog bound.

        ``on_fresh``, if given, is called with the fresh list under
        the queue lock *before* the cells become dispatchable (and
        after the limit check).  This is the server's
        durability-before-visibility hook: the journal record must be
        fsync'd before an executor thread can pop the cell, or a
        crash between the two loses acknowledged work.  If the hook
        raises, nothing is admitted.

        ``enforce_limit=False`` is for boot-time journal replay only:
        that work was already admitted and durably acknowledged in a
        previous life, so shedding it now would betray the contract.
        """
        with self._ready:
            fresh = []
            seen = set()
            for spec in specs:
                job = spec.content_hash()
                if job not in self._entries and job not in seen:
                    seen.add(job)
                    fresh.append((job, spec))
            if enforce_limit and \
                    len(self._pending) + len(fresh) > self.limit:
                raise QueueFull(self.limit, len(self._pending),
                                len(fresh))
            if on_fresh is not None:
                on_fresh(fresh)
            for job, spec in fresh:
                self._entries[job] = JobEntry(spec)
                self._pending.append(job)
            report = [{"job": spec.content_hash(),
                       "status": self._entries[spec.content_hash()].status}
                      for spec in specs]
            if fresh:
                self._ready.notify_all()
            return report, fresh

    def complete_direct(self, spec, result, etag=None):
        """Record a terminal result without ever queueing the cell
        (cache hits at admission, journal replay at boot).  Idempotent;
        returns the entry."""
        with self._ready:
            job = spec.content_hash()
            entry = self._entries.get(job)
            if entry is None:
                entry = JobEntry(spec)
                self._entries[job] = entry
            entry.status = STATUS_DONE
            entry.result = result
            entry.etag = etag
            return entry

    # -- dispatch ------------------------------------------------------

    def next_batch(self, limit=None, timeout=None):
        """Pop up to ``limit`` pending cells (FIFO), marking them
        running.  Blocks up to ``timeout`` seconds when nothing is
        pending; returns a (possibly empty) ``(hash, spec)`` list."""
        with self._ready:
            if not self._pending:
                self._ready.wait(timeout)
            batch = []
            while self._pending and (limit is None or len(batch) < limit):
                job = self._pending.popleft()
                entry = self._entries[job]
                entry.status = STATUS_RUNNING
                batch.append((job, entry.spec))
            return batch

    def complete(self, job, result, etag=None):
        """Record a dispatched cell's terminal result."""
        with self._ready:
            entry = self._entries[job]
            entry.status = STATUS_DONE
            entry.result = result
            entry.etag = etag

    def kick(self):
        """Wake a blocked :meth:`next_batch` (shutdown path)."""
        with self._ready:
            self._ready.notify_all()

    # -- inspection ----------------------------------------------------

    def lookup(self, job):
        """``(status, result, etag)`` for a job hash, or ``None``."""
        with self._ready:
            entry = self._entries.get(job)
            if entry is None:
                return None
            return entry.status, entry.result, entry.etag

    def counts(self):
        """``{status: count}`` over the whole job table (all three
        states always present, so health payloads are stable)."""
        with self._ready:
            counts = {STATUS_QUEUED: 0, STATUS_RUNNING: 0,
                      STATUS_DONE: 0}
            for entry in self._entries.values():
                counts[entry.status] += 1
            return counts

    def pending_count(self):
        with self._ready:
            return len(self._pending)

    def idle(self):
        """Nothing pending and nothing running (safe to compact)."""
        counts = self.counts()
        return counts[STATUS_QUEUED] == 0 and counts[STATUS_RUNNING] == 0

    def __repr__(self):
        counts = self.counts()
        return ("JobQueue(limit=%d, queued=%d, running=%d, done=%d)"
                % (self.limit, counts[STATUS_QUEUED],
                   counts[STATUS_RUNNING], counts[STATUS_DONE]))
