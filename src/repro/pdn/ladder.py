"""Two-stage ladder supply network (a later-stage model).

The paper's Section 6 notes that its second-order model is "somewhat
more abstract than the more detailed circuit models that packaging
engineers typically rely on" and calls validation across modeling
levels important long-term work.  This module provides the next rung:
a fourth-order, two-stage RLC ladder --

    Vreg --R1--L1--+--R2--L2--+---> i_load(t)
                   |          |
                  C1         C2
                   |          |
                  GND        GND

stage 1 being the board/regulator path into the bulk decoupling C1,
stage 2 the package path into the on-die decoupling C2.  The ladder has
a low-frequency board resonance and the mid-frequency package resonance
the paper studies; :func:`fit_second_order` collapses it back to the
canonical model so the validation bench can quantify what the
simplification loses.

States: ``[i_L1, v_1, i_L2, v_2]`` (stage currents and node voltages);
the die voltage is ``v_2``.
"""

import math
from dataclasses import dataclass

import numpy as np

from repro.pdn.rlc import (
    NOMINAL_DC_RESISTANCE,
    NOMINAL_RESONANT_HZ,
    NOMINAL_VDD,
    PdnParameters,
    SecondOrderPdn,
)
from repro.pdn.statespace import StateSpacePdn


@dataclass(frozen=True)
class LadderParameters:
    """Component values of the two-stage ladder.

    Attributes:
        r1, l1, c1: board-stage resistance, inductance, bulk decoupling.
        r2, l2, c2: package-stage resistance, inductance, die decoupling.
        vdd: regulator voltage.
    """

    r1: float
    l1: float
    c1: float
    r2: float
    l2: float
    c2: float
    vdd: float = NOMINAL_VDD

    def __post_init__(self):
        for name in ("r1", "l1", "c1", "r2", "l2", "c2", "vdd"):
            if getattr(self, name) <= 0.0:
                raise ValueError("%s must be positive" % name)

    @classmethod
    def representative(cls, die_resonant_hz=NOMINAL_RESONANT_HZ,
                       die_peak_impedance=2.6e-3,
                       dc_resistance=NOMINAL_DC_RESISTANCE,
                       vdd=NOMINAL_VDD):
        """A plausible board+package split around a target die stage.

        The package stage is sized like the canonical second-order model
        (same resonance and peak); the board stage sits two decades
        lower in frequency with ten times the bulk capacitance, the
        usual hierarchy (regulator < 1 kHz, board ~ sub-MHz, package
        tens of MHz).
        """
        # Package stage: reuse the canonical sizing.
        pkg = PdnParameters.from_spec(
            dc_resistance=dc_resistance * 0.6,
            resonant_hz=die_resonant_hz,
            peak_impedance=die_peak_impedance,
            vdd=vdd)
        # Board stage: resonance ~100x lower, bulk capacitance much larger.
        board_f0 = die_resonant_hz / 100.0
        c1 = pkg.capacitance * 50.0
        l1 = 1.0 / ((2.0 * math.pi * board_f0) ** 2 * c1)
        return cls(r1=dc_resistance * 0.4, l1=l1, c1=c1,
                   r2=pkg.resistance, l2=pkg.inductance, c2=pkg.capacitance,
                   vdd=vdd)


class LadderPdn:
    """The fourth-order ladder as a :class:`StateSpacePdn`.

    Exposes the same design-level queries as
    :class:`~repro.pdn.rlc.SecondOrderPdn` where they make sense, plus
    the state-space machinery for simulation.
    """

    def __init__(self, params):
        self.params = params
        p = params
        # d i_L1/dt = (Vdd - v1 - R1 i_L1) / L1
        # d v1/dt   = (i_L1 - i_L2) / C1
        # d i_L2/dt = (v1 - v2 - R2 i_L2) / L2
        # d v2/dt   = (i_L2 - i_load) / C2
        a = np.array([
            [-p.r1 / p.l1, -1.0 / p.l1, 0.0, 0.0],
            [1.0 / p.c1, 0.0, -1.0 / p.c1, 0.0],
            [0.0, 1.0 / p.l2, -p.r2 / p.l2, -1.0 / p.l2],
            [0.0, 0.0, 1.0 / p.c2, 0.0],
        ])
        b = np.array([[0.0], [0.0], [0.0], [-1.0 / p.c2]])
        w = np.array([p.vdd / p.l1, 0.0, 0.0, 0.0])
        c = np.array([[0.0, 0.0, 0.0, 1.0]])  # die voltage v2
        self.model = StateSpacePdn(a, b, w, c)

    @property
    def vdd(self):
        """Regulator voltage, volts."""
        return self.params.vdd

    @property
    def dc_resistance(self):
        """Total series resistance seen from the die, ohms."""
        return self.params.r1 + self.params.r2

    def impedance(self, freq_hz):
        """|Z(f)| from the die's perspective, ohms."""
        return self.model.impedance(freq_hz)

    def peak_impedance(self, f_lo=5e6, f_hi=500e6, n_points=20001):
        """Peak of |Z| in the mid-frequency (package) band."""
        freqs = np.linspace(f_lo, f_hi, n_points)
        mags = self.model.impedance(freqs)
        idx = int(np.argmax(mags))
        return float(mags[idx]), float(freqs[idx])

    def resonances(self, f_lo=1e4, f_hi=500e6, n_points=4096):
        """Frequencies of local impedance maxima (board and package)."""
        freqs = np.geomspace(f_lo, f_hi, n_points)
        mags = self.model.impedance(freqs)
        peaks = []
        for i in range(1, n_points - 1):
            if mags[i] > mags[i - 1] and mags[i] >= mags[i + 1]:
                peaks.append(float(freqs[i]))
        return peaks

    def discretize(self, clock_hz=None):
        """Exact ZOH discretization at the CPU clock."""
        from repro.pdn.rlc import NOMINAL_CLOCK_HZ
        return self.model.discretize(clock_hz or NOMINAL_CLOCK_HZ)


def fit_second_order(ladder):
    """Collapse a ladder to the canonical second-order model.

    Matches the paper's early-stage abstraction: same DC resistance,
    same package-band resonant frequency, same peak impedance.  The
    regulator setpoint (vdd) carries over unchanged.

    Returns:
        A :class:`~repro.pdn.rlc.SecondOrderPdn`.
    """
    peak, f_peak = ladder.peak_impedance()
    params = PdnParameters.from_spec(
        dc_resistance=ladder.dc_resistance,
        resonant_hz=f_peak,
        peak_impedance=peak,
        vdd=ladder.params.vdd)
    return SecondOrderPdn(params)
