"""Exact discrete-time simulation of the second-order PDN.

The paper computes per-cycle supply voltage by convolving a per-cycle
current trace with the network's impulse response.  That is O(N * K) for
a length-K kernel.  Because the network is a two-pole linear system and
the processor current is constant within a clock cycle, an exact
zero-order-hold (ZOH) discretization gives the *same* voltage trace from
a two-state recursion -- O(N) and suitable for closing a feedback loop
where cycle ``n+1``'s current depends on cycle ``n``'s voltage.

Continuous model (see :mod:`repro.pdn.rlc`)::

    d/dt [i_L]   [ -R/L  -1/L ] [i_L]   [  0  ]          [ 1/L ]
         [ v ] = [  1/C    0  ] [ v ] + [-1/C ] i_load + [  0  ] Vdd

ZOH with step ``dt``::

    x[n+1] = Ad x[n] + Bd i[n] + Ed Vdd        v[n] = x[n][1]

with ``Ad = expm(A dt)`` and ``[Bd Ed] = A^-1 (Ad - I) [B E]``.
"""

import math

import numpy as np
from scipy.linalg import expm

from repro.pdn.rlc import NOMINAL_CLOCK_HZ, SecondOrderPdn


def zoh_recurrence(coeffs, x0, x1, currents):
    """The exact scalar ZOH state recursion, shared by every PDN path.

    One kernel serves :meth:`DiscretePdn.simulate`,
    :meth:`PdnSimulator.run`, and the closed loop's open-loop fast path,
    so batch traces are *bit-identical* to stepping
    :meth:`PdnSimulator.step` over the same currents: the floating-point
    operations and their order are exactly those of ``step``.  (A
    transposed-direct-form filter such as ``scipy.signal.lfilter``
    evaluates the same transfer function but rounds differently, which
    is why this stays a state recursion.)

    Args:
        coeffs: ``(a00, a01, a10, a11, b0, b1, e0, e1)`` floats, with the
            ``e`` terms already scaled by Vdd.
        x0 / x1: current state (``x1`` is the die voltage).
        currents: a sequence of per-cycle load currents (a plain list of
            floats iterates fastest).

    Returns:
        ``(voltages, x0, x1)`` -- the per-cycle voltage list (the state
        *before* each cycle's current acts, matching ``step``) and the
        final state.
    """
    a00, a01, a10, a11, b0, b1, e0, e1 = coeffs
    out = []
    append = out.append
    for u in currents:
        append(x1)
        t = a00 * x0 + a01 * x1 + b0 * u + e0
        x1 = a10 * x0 + a11 * x1 + b1 * u + e1
        x0 = t
    return out, x0, x1


def zoh_recurrence_lanes(coeffs, x0, x1, currents):
    """Batched-lane form of :func:`zoh_recurrence`: L PDNs, one trace.

    Every operand is widened from a scalar to a ``(lanes,)`` float64
    array and the per-cycle update is evaluated elementwise in exactly
    the scalar kernel's operation order (same four-term left-to-right
    sums, no refactoring into fused or re-associated forms).  IEEE-754
    elementwise arithmetic on float64 arrays rounds identically to the
    equivalent Python-float scalar ops, so lane ``j`` of the output is
    bit-identical to running :func:`zoh_recurrence` with lane ``j``'s
    coefficients and state over the same currents -- the property the
    replay sweep's parity tier pins down.

    Args:
        coeffs: ``(a00, a01, a10, a11, b0, b1, e0, e1)``, each a
            ``(lanes,)`` float64 array (one entry per PDN design).
        x0 / x1: ``(lanes,)`` float64 state arrays (``x1`` is the die
            voltage); consumed as the initial state.
        currents: a 1-D float64 array of per-cycle load currents,
            shared by every lane.

    Returns:
        ``(voltages, x0, x1)`` -- an ``(n_cycles, lanes)`` float64
        voltage matrix plus the final per-lane state arrays.
    """
    a00, a01, a10, a11, b0, b1, e0, e1 = coeffs
    x0 = np.array(x0, dtype=float)
    x1 = np.array(x1, dtype=float)
    n = len(currents)
    out = np.empty((n, x1.shape[0]))
    for k in range(n):
        u = currents[k]
        out[k] = x1
        t = a00 * x0 + a01 * x1 + b0 * u + e0
        x1 = a10 * x0 + a11 * x1 + b1 * u + e1
        x0 = t
    return out, x0, x1


class DiscretePdn:
    """ZOH discretization of a :class:`~repro.pdn.rlc.SecondOrderPdn`.

    Attributes:
        pdn: the continuous-time network.
        dt: discretization step in seconds (one CPU cycle).
        ad, bd, ed: the discrete state-space matrices described above.
    """

    def __init__(self, pdn, clock_hz=NOMINAL_CLOCK_HZ):
        if not isinstance(pdn, SecondOrderPdn):
            raise TypeError("pdn must be a SecondOrderPdn, got %r" % type(pdn))
        self.pdn = pdn
        self.clock_hz = float(clock_hz)
        self.dt = 1.0 / self.clock_hz
        r = pdn.params.resistance
        l = pdn.params.inductance
        c = pdn.params.capacitance
        a = np.array([[-r / l, -1.0 / l],
                      [1.0 / c, 0.0]])
        b = np.array([[0.0], [-1.0 / c]])
        e = np.array([[1.0 / l], [0.0]])
        self.ad = expm(a * self.dt)
        # A is invertible (det = 1/(L C) > 0), so the ZOH integral has the
        # closed form A^-1 (Ad - I) B.
        a_inv = np.linalg.inv(a)
        self.bd = a_inv @ (self.ad - np.eye(2)) @ b
        self.ed = a_inv @ (self.ad - np.eye(2)) @ e
        vdd = pdn.params.vdd
        #: Scalar recursion coefficients shared with :func:`zoh_recurrence`
        #: (``e`` terms pre-scaled by Vdd).
        self.scalar_coeffs = (
            float(self.ad[0, 0]), float(self.ad[0, 1]),
            float(self.ad[1, 0]), float(self.ad[1, 1]),
            float(self.bd[0, 0]), float(self.bd[1, 0]),
            float(self.ed[0, 0]) * vdd, float(self.ed[1, 0]) * vdd)

    def describe(self):
        """JSON-safe summary of the discretized network (trace
        metadata: what PDN produced a recorded event stream)."""
        p = self.pdn.params
        return {
            "resistance_ohm": p.resistance,
            "inductance_h": p.inductance,
            "capacitance_f": p.capacitance,
            "vdd": p.vdd,
            "clock_hz": self.clock_hz,
        }

    def equilibrium_state(self, load_current):
        """Steady state ``[i_L, v]`` for a constant load current."""
        r = self.pdn.params.resistance
        vdd = self.pdn.params.vdd
        return np.array([load_current, vdd - r * load_current])

    def simulate(self, current, initial_current=None):
        """Voltage trace for a per-cycle current array.

        Args:
            current: 1-D array of per-cycle load currents in amperes.
            initial_current: current the network is assumed to have been
                carrying forever before cycle 0 (sets the initial state).
                Defaults to ``current[0]`` so traces start in equilibrium,
                matching the paper's assumption that the regulator holds
                the ideal level at the starting power.

        Returns:
            1-D numpy array of die voltages, same length as ``current``.
        """
        current = np.asarray(current, dtype=float)
        if current.ndim != 1:
            raise ValueError("current must be 1-D, got shape %r" % (current.shape,))
        if current.size == 0:
            return np.empty(0)
        if initial_current is None:
            initial_current = float(current[0])
        x = self.equilibrium_state(initial_current)
        out, _, _ = zoh_recurrence(self.scalar_coeffs,
                                   float(x[0]), float(x[1]),
                                   current.tolist())
        return np.asarray(out)


class PdnSimulator:
    """Streaming per-cycle PDN simulator for closed-loop control.

    Unlike :meth:`DiscretePdn.simulate`, this object advances one cycle at
    a time so a controller can read the voltage *this* cycle and shape the
    current *next* cycle -- exactly the coupling in the paper's Figure 7.

    The convention matches the batch simulator: :meth:`step` takes the
    load current drawn during the cycle and returns the voltage at the
    *start* of that cycle (before the cycle's current acts).  Use
    :attr:`voltage` to peek without advancing.
    """

    # Scalar unrolled form of the 2x2 recursion; ~6x faster per step than
    # numpy matrix ops at this size, which matters inside the cycle loop.
    __slots__ = ("discrete", "_a00", "_a01", "_a10", "_a11",
                 "_b0", "_b1", "_e0", "_e1", "_x0", "_x1", "cycles",
                 "watchdog")

    def __init__(self, pdn, clock_hz=NOMINAL_CLOCK_HZ, initial_current=0.0,
                 watchdog=None):
        if isinstance(pdn, DiscretePdn):
            self.discrete = pdn
        else:
            self.discrete = DiscretePdn(pdn, clock_hz=clock_hz)
        #: Optional :class:`~repro.faults.watchdog.NumericWatchdog`;
        #: when set, every stepped voltage is checked and divergence
        #: raises ``SimulationDiverged`` instead of emitting NaN.
        self.watchdog = watchdog
        (self._a00, self._a01, self._a10, self._a11,
         self._b0, self._b1, self._e0, self._e1) = \
            self.discrete.scalar_coeffs
        self.reset(initial_current)

    @property
    def vdd(self):
        """Nominal supply voltage of the underlying network."""
        return self.discrete.pdn.params.vdd

    def describe(self):
        """JSON-safe summary of the simulated network (see
        :meth:`DiscretePdn.describe`)."""
        return self.discrete.describe()

    @property
    def voltage(self):
        """Die voltage at the start of the current cycle, volts."""
        return self._x1

    def reset(self, initial_current=0.0):
        """Return to equilibrium at ``initial_current`` amperes."""
        x = self.discrete.equilibrium_state(initial_current)
        self._x0 = float(x[0])
        self._x1 = float(x[1])
        self.cycles = 0
        if self.watchdog is not None:
            self.watchdog.reset()

    def lane_state(self):
        """``(coeffs, x0, x1)`` scalars for one lane of the batched
        kernel.

        Reads the instance slots (not ``discrete.scalar_coeffs``) for
        the same reason :meth:`run` does: tests doctor them to force
        divergence, and a replay lane must diverge exactly like the
        doctored scalar simulator.  Stack the returned scalars across
        designs to build :func:`zoh_recurrence_lanes` inputs.
        """
        coeffs = (self._a00, self._a01, self._a10, self._a11,
                  self._b0, self._b1, self._e0, self._e1)
        return coeffs, self._x0, self._x1

    def step(self, load_current):
        """Advance one CPU cycle.

        Args:
            load_current: current drawn by the die during this cycle, A.

        Returns:
            The die voltage at the start of the cycle, volts.

        Raises:
            SimulationDiverged: when a watchdog is attached and the
                voltage left its envelope.
        """
        v = self._x1
        x0 = self._x0
        self._x0 = self._a00 * x0 + self._a01 * v + self._b0 * load_current + self._e0
        self._x1 = self._a10 * x0 + self._a11 * v + self._b1 * load_current + self._e1
        if self.watchdog is not None:
            self.watchdog.check(self.cycles, v)
        self.cycles += 1
        return v

    def run(self, current):
        """Step through an iterable of currents; returns the voltages.

        With no watchdog attached this routes through the shared
        :func:`zoh_recurrence` kernel -- the result (and the simulator's
        state afterwards) is bit-identical to calling :meth:`step` per
        sample, just without the per-cycle Python dispatch.  With a
        watchdog the per-sample loop is kept so a divergence raises at
        exactly the offending cycle.

        Returns a numpy array of the per-cycle voltages.
        """
        if self.watchdog is None:
            if not isinstance(current, (list, np.ndarray)):
                current = list(current)
            currents = np.asarray(current, dtype=float).tolist()
            # The instance slots (not discrete.scalar_coeffs) are the
            # source of truth: tests doctor them to force divergence.
            coeffs = (self._a00, self._a01, self._a10, self._a11,
                      self._b0, self._b1, self._e0, self._e1)
            out, self._x0, self._x1 = zoh_recurrence(
                coeffs, self._x0, self._x1, currents)
            self.cycles += len(out)
            return np.asarray(out)
        out = [self.step(i) for i in current]
        return np.asarray(out)


def cycles_for_settling(pdn, clock_hz=NOMINAL_CLOCK_HZ, tolerance=0.01):
    """Number of CPU cycles for PDN transients to decay to ``tolerance``.

    Useful for sizing convolution kernels and warm-up periods.
    """
    return int(math.ceil(pdn.settling_time(tolerance) * clock_hz))
