"""Generic linear state-space PDN simulation.

:mod:`repro.pdn.discrete` hand-unrolls the canonical two-state network.
Higher-fidelity models -- the two-stage ladder of
:mod:`repro.pdn.ladder`, the multi-quadrant network of
:mod:`repro.pdn.quadrants` -- have more states and possibly several
load-current inputs, so this module provides the general machinery:
exact zero-order-hold discretization of

    dx/dt = A x + B u + w

(``u`` the per-cycle load current vector, ``w`` a constant source term
from the regulator voltage) and a streaming simulator with the same
cycle conventions as :class:`~repro.pdn.discrete.PdnSimulator`.
"""

import numpy as np
from scipy.linalg import expm

from repro.pdn.rlc import NOMINAL_CLOCK_HZ


class StateSpacePdn:
    """Continuous model ``dx/dt = A x + B u + w``, outputs ``y = C x``.

    Args:
        a: (n, n) state matrix.
        b: (n, m) input matrix (m load-current inputs).
        w: (n,) constant source vector (regulator drive).
        c: (p, n) output matrix (die voltages of interest).
    """

    def __init__(self, a, b, w, c):
        self.a = np.asarray(a, dtype=float)
        self.b = np.asarray(b, dtype=float)
        self.w = np.asarray(w, dtype=float)
        self.c = np.asarray(c, dtype=float)
        n = self.a.shape[0]
        if self.a.shape != (n, n):
            raise ValueError("A must be square")
        if self.b.ndim != 2 or self.b.shape[0] != n:
            raise ValueError("B must be (n, m)")
        if self.w.shape != (n,):
            raise ValueError("w must be (n,)")
        if self.c.ndim != 2 or self.c.shape[1] != n:
            raise ValueError("C must be (p, n)")

    @property
    def n_states(self):
        """State dimension."""
        return self.a.shape[0]

    @property
    def n_inputs(self):
        """Number of load-current inputs."""
        return self.b.shape[1]

    @property
    def n_outputs(self):
        """Number of observed voltages."""
        return self.c.shape[0]

    def equilibrium(self, u):
        """Steady state for constant input ``u`` (scalar or (m,))."""
        u = np.broadcast_to(np.asarray(u, dtype=float), (self.n_inputs,))
        return np.linalg.solve(self.a, -(self.b @ u + self.w))

    def impedance(self, freq_hz, input_index=0, output_index=0):
        """|dV_out / dI_in| at a frequency (scalar or array), ohms."""
        f = np.atleast_1d(np.asarray(freq_hz, dtype=float))
        out = np.empty(f.shape)
        eye = np.eye(self.n_states)
        for i, fi in enumerate(f):
            s = 2j * np.pi * fi
            h = self.c @ np.linalg.solve(s * eye - self.a, self.b)
            out[i] = abs(h[output_index, input_index])
        if np.isscalar(freq_hz):
            return float(out[0])
        return out

    def discretize(self, clock_hz=NOMINAL_CLOCK_HZ):
        """Exact ZOH discretization at the CPU clock."""
        return DiscreteStateSpace(self, clock_hz)


class DiscreteStateSpace:
    """ZOH form ``x[k+1] = Ad x[k] + Bd u[k] + wd``; ``y = C x``."""

    def __init__(self, model, clock_hz=NOMINAL_CLOCK_HZ):
        self.model = model
        self.clock_hz = float(clock_hz)
        self.dt = 1.0 / self.clock_hz
        a = model.a
        self.ad = expm(a * self.dt)
        a_inv = np.linalg.inv(a)
        gain = a_inv @ (self.ad - np.eye(model.n_states))
        self.bd = gain @ model.b
        self.wd = gain @ model.w

    def simulate(self, currents, initial_current=None):
        """Output voltage trace for a per-cycle current input.

        Args:
            currents: (n_cycles,) for a single-input model, or
                (n_cycles, m).
            initial_current: equilibrium input before cycle 0 (defaults
                to the first sample).

        Returns:
            (n_cycles, p) array of output voltages; squeezed to 1-D for
            single-output models.
        """
        currents = np.asarray(currents, dtype=float)
        if currents.ndim == 1:
            currents = currents[:, None]
        if currents.shape[1] != self.model.n_inputs:
            raise ValueError("expected %d input columns, got %d"
                             % (self.model.n_inputs, currents.shape[1]))
        if initial_current is None:
            initial_current = currents[0]
        x = self.model.equilibrium(initial_current)
        c = self.model.c
        out = np.empty((currents.shape[0], self.model.n_outputs))
        for k in range(currents.shape[0]):
            out[k] = c @ x
            x = self.ad @ x + self.bd @ currents[k] + self.wd
        if self.model.n_outputs == 1:
            return out[:, 0]
        return out


class StateSpaceSimulator:
    """Streaming per-cycle simulator (the closed-loop counterpart).

    Mirrors :class:`~repro.pdn.discrete.PdnSimulator`: :meth:`step`
    takes the current drawn during a cycle and returns the output
    voltage(s) at the start of that cycle.
    """

    def __init__(self, discrete, initial_current=0.0):
        if isinstance(discrete, StateSpacePdn):
            discrete = discrete.discretize()
        self.discrete = discrete
        self.reset(initial_current)

    def reset(self, initial_current=0.0):
        """Return to equilibrium at ``initial_current``."""
        self._x = self.discrete.model.equilibrium(initial_current)
        self.cycles = 0

    @property
    def voltages(self):
        """Output voltages at the start of the current cycle."""
        return self.discrete.model.c @ self._x

    @property
    def voltage(self):
        """First output voltage (convenience for single-output models)."""
        return float(self.voltages[0])

    def step(self, current):
        """Advance one cycle; returns the pre-step output voltage(s)."""
        v = self.discrete.model.c @ self._x
        u = np.broadcast_to(np.asarray(current, dtype=float),
                            (self.discrete.model.n_inputs,))
        self._x = self.discrete.ad @ self._x + self.discrete.bd @ u \
            + self.discrete.wd
        self.cycles += 1
        if v.shape == (1,):
            return float(v[0])
        return v
