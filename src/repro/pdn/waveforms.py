"""Canonical current stimuli from the paper's Section 2.3.

These builders produce per-cycle current arrays (amperes) matching the
experiments of Figures 3--6 plus the theoretical worst-case input used by
the threshold solver:

* :func:`current_spike` -- narrow (Fig 3) and wide (Fig 4) spikes.
* :func:`notched_spike` -- the "controller kicked in" notched spike (Fig 5).
* :func:`pulse_train` -- pulses at the resonant frequency (Fig 6).
* :func:`resonant_square_wave` / :func:`worst_case_waveform` -- the
  maximum-height square wave at the resonant frequency, the worst case a
  processor bounded by ``[i_min, i_max]`` can present to the network.
"""

import math

import numpy as np

from repro.pdn.rlc import NOMINAL_CLOCK_HZ


def flat_current(n_cycles, level):
    """Constant current draw of ``level`` amperes for ``n_cycles``."""
    _check_positive_length(n_cycles)
    return np.full(int(n_cycles), float(level))


def current_spike(n_cycles, base, peak, start, width):
    """A rectangular spike on a flat baseline.

    Args:
        n_cycles: total trace length.
        base: baseline current, A.
        peak: current during the spike, A.
        start: cycle index at which the spike begins.
        width: spike duration in cycles (Fig 3 uses 5, Fig 4 uses 10 at
            the paper's illustrative scale).

    Returns:
        1-D numpy array of currents.
    """
    _check_positive_length(n_cycles)
    if width < 0:
        raise ValueError("width must be non-negative, got %r" % width)
    if start < 0:
        raise ValueError("start must be non-negative, got %r" % start)
    trace = np.full(int(n_cycles), float(base))
    trace[int(start):int(start + width)] = float(peak)
    return trace


def notched_spike(n_cycles, base, peak, start, width, notch_start, notch_width,
                  notch_level=None):
    """A wide spike with a forced notch back toward the baseline.

    Figure 5's scenario: current spikes high, and partway through the
    burst the microarchitectural control forces it down (e.g. by gating
    functional units), giving the network a chance to recover.

    Args:
        n_cycles: total trace length.
        base, peak: baseline and spike currents, A.
        start, width: spike placement, as in :func:`current_spike`.
        notch_start: cycle offset *within the spike* where the notch begins.
        notch_width: notch duration in cycles.
        notch_level: current during the notch; defaults to ``base``.

    Returns:
        1-D numpy array of currents.
    """
    trace = current_spike(n_cycles, base, peak, start, width)
    if notch_level is None:
        notch_level = base
    if notch_start < 0 or notch_start + notch_width > width:
        raise ValueError("notch [%r, %r) must lie within the spike width %r"
                         % (notch_start, notch_start + notch_width, width))
    lo = int(start + notch_start)
    trace[lo:lo + int(notch_width)] = float(notch_level)
    return trace


def pulse_train(n_cycles, base, peak, start, pulse_width, period, n_pulses):
    """A train of rectangular pulses (Figure 6).

    The paper stimulates the network with 30-cycle-wide pulses on a
    60-cycle period -- the resonant period of a 50 MHz package at 3 GHz --
    and shows the second pulse digs a deeper droop than the first.

    Args:
        n_cycles: total trace length.
        base, peak: baseline and pulse currents, A.
        start: cycle of the first pulse's rising edge.
        pulse_width: cycles per pulse.
        period: cycles between successive rising edges.
        n_pulses: number of pulses.

    Returns:
        1-D numpy array of currents.
    """
    _check_positive_length(n_cycles)
    if pulse_width > period:
        raise ValueError("pulse_width (%r) cannot exceed period (%r)"
                         % (pulse_width, period))
    trace = np.full(int(n_cycles), float(base))
    for k in range(int(n_pulses)):
        lo = int(start + k * period)
        hi = min(int(n_cycles), lo + int(pulse_width))
        if lo >= n_cycles:
            break
        trace[lo:hi] = float(peak)
    return trace


def resonant_square_wave(pdn, n_cycles, i_min, i_max, clock_hz=NOMINAL_CLOCK_HZ,
                         start=0, phase_high_first=True):
    """Square wave between ``i_min`` and ``i_max`` at the PDN resonance.

    This is the theoretical worst case for a load bounded by
    ``[i_min, i_max]``: a 50% duty-cycle square wave whose period equals
    the network's resonant period pumps the resonance harder every cycle
    (Figure 6's effect taken to steady state).  The threshold solver uses
    it as the adversarial input.

    Args:
        pdn: a :class:`~repro.pdn.rlc.SecondOrderPdn`, used only for its
            resonant period.
        n_cycles: trace length.
        i_min, i_max: the processor's minimum and maximum current, A.
        clock_hz: CPU clock frequency.
        start: cycles of ``i_min`` (or ``i_max``) to hold before the wave
            begins.
        phase_high_first: whether the wave starts with its high phase.

    Returns:
        1-D numpy array of currents.
    """
    _check_positive_length(n_cycles)
    if i_max < i_min:
        raise ValueError("i_max (%r) must be >= i_min (%r)" % (i_max, i_min))
    period = pdn.resonant_period_cycles(clock_hz)
    half = period / 2.0
    n = int(n_cycles)
    idx = np.arange(n, dtype=float) - float(start)
    # Nudge by half a cycle so that phase boundaries landing exactly on a
    # cycle edge (the common integer-period case) are not split by float
    # round-off.
    phase = np.floor_divide(np.maximum(idx, 0.0) + 1e-9, half).astype(int)
    high = (phase % 2 == 0) if phase_high_first else (phase % 2 == 1)
    trace = np.where(high, float(i_max), float(i_min))
    lead = float(i_min) if phase_high_first else float(i_max)
    trace[:int(start)] = lead
    return trace


def worst_case_waveform(pdn, i_min, i_max, clock_hz=NOMINAL_CLOCK_HZ,
                        n_periods=20, lead_in=None):
    """The adversarial input used for control-theoretic threshold design.

    A long resonant square wave preceded by an equilibrium lead-in at
    ``i_min``, long enough (``n_periods`` resonant periods) that the
    droop envelope reaches its steady-state worst case.

    Returns:
        1-D numpy array of currents.
    """
    period = pdn.resonant_period_cycles(clock_hz)
    if lead_in is None:
        lead_in = int(math.ceil(2 * period))
    n_cycles = int(math.ceil(lead_in + n_periods * period))
    return resonant_square_wave(pdn, n_cycles, i_min, i_max,
                                clock_hz=clock_hz, start=lead_in,
                                phase_high_first=True)


def _check_positive_length(n_cycles):
    if n_cycles <= 0:
        raise ValueError("n_cycles must be positive, got %r" % n_cycles)
