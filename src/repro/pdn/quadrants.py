"""Per-quadrant (local) supply network -- the paper's Section 6 locality.

"Local power supply swings in different chip quadrants can be an
important issue to consider, in addition to the more global effects
considered here."  This module models that next level: a shared package
stage feeding four on-die quadrant grids, each with its own parasitic
branch, local decoupling, and local load current::

                       +--Rq,Lq--+-- i_q0(t)
                       |        Cq
    Vreg --R0--L0--+---+--Rq,Lq--+-- i_q1(t)
                   |   |        Cq
                  C0   +--Rq,Lq--+-- i_q2(t)
                   |   |        Cq
                  GND  +--Rq,Lq--+-- i_q3(t)
                                Cq

Ten states: the package branch current and node voltage, plus a branch
current and node voltage per quadrant.  Outputs are the four quadrant
voltages.  A quadrant whose units burst locally droops deeper than the
die-average voltage -- the effect a global sensor under-reports.
"""

import math
from dataclasses import dataclass

import numpy as np

from repro.pdn.rlc import (
    NOMINAL_DC_RESISTANCE,
    NOMINAL_RESONANT_HZ,
    NOMINAL_VDD,
)
from repro.pdn.statespace import StateSpacePdn

#: Number of die quadrants.
N_QUADRANTS = 4


@dataclass(frozen=True)
class QuadrantParameters:
    """Component values of the hierarchical network.

    Attributes:
        r0, l0, c0: shared package branch and on-package bulk decap.
        rq, lq, cq: per-quadrant branch and local decap (all quadrants
            identical; asymmetric floorplans can subclass).
        vdd: regulator voltage.
    """

    r0: float
    l0: float
    c0: float
    rq: float
    lq: float
    cq: float
    vdd: float = NOMINAL_VDD

    def __post_init__(self):
        for name in ("r0", "l0", "c0", "rq", "lq", "cq", "vdd"):
            if getattr(self, name) <= 0.0:
                raise ValueError("%s must be positive" % name)

    @classmethod
    def representative(cls, package_resonant_hz=NOMINAL_RESONANT_HZ,
                       package_peak=2.6e-3,
                       dc_resistance=NOMINAL_DC_RESISTANCE,
                       local_resonant_hz=None, vdd=NOMINAL_VDD):
        """Split a canonical package model into package + quadrant grids.

        The package stage carries the familiar mid-frequency resonance;
        each quadrant's local grid resonates higher (smaller inductance
        into a quarter of the die decap), the standard on-die hierarchy.
        """
        from repro.pdn.rlc import PdnParameters
        pkg = PdnParameters.from_spec(dc_resistance=dc_resistance * 0.7,
                                      resonant_hz=package_resonant_hz,
                                      peak_impedance=package_peak, vdd=vdd)
        if local_resonant_hz is None:
            local_resonant_hz = package_resonant_hz * 4.0
        cq = pkg.capacitance / N_QUADRANTS
        lq = 1.0 / ((2.0 * math.pi * local_resonant_hz) ** 2 * cq)
        return cls(r0=pkg.resistance, l0=pkg.inductance,
                   c0=pkg.capacitance * 0.5,
                   rq=dc_resistance * 0.3 * N_QUADRANTS, lq=lq, cq=cq,
                   vdd=vdd)


class QuadrantPdn:
    """The hierarchical network as a multi-input state-space model.

    Inputs: the four quadrant load currents (amperes).  Outputs: the
    four quadrant voltages (volts).  Use :meth:`discretize` /
    :class:`~repro.pdn.statespace.StateSpaceSimulator` for per-cycle
    simulation in the closed loop.
    """

    def __init__(self, params):
        self.params = params
        p = params
        n = 2 + 2 * N_QUADRANTS
        a = np.zeros((n, n))
        b = np.zeros((n, N_QUADRANTS))
        w = np.zeros(n)
        # State order: [i_L0, v0, i_q0, v_q0, i_q1, v_q1, ...].
        a[0, 0] = -p.r0 / p.l0
        a[0, 1] = -1.0 / p.l0
        w[0] = p.vdd / p.l0
        a[1, 0] = 1.0 / p.c0
        for q in range(N_QUADRANTS):
            iq = 2 + 2 * q
            vq = iq + 1
            a[1, iq] = -1.0 / p.c0        # branch currents leave node v0
            a[iq, 1] = 1.0 / p.lq
            a[iq, vq] = -1.0 / p.lq
            a[iq, iq] = -p.rq / p.lq
            a[vq, iq] = 1.0 / p.cq
            b[vq, q] = -1.0 / p.cq
        c = np.zeros((N_QUADRANTS, n))
        for q in range(N_QUADRANTS):
            c[q, 3 + 2 * q] = 1.0
        self.model = StateSpacePdn(a, b, w, c)

    @property
    def vdd(self):
        """Regulator voltage, volts."""
        return self.params.vdd

    @property
    def dc_resistance(self):
        """Series resistance from the regulator to one quadrant when all
        quadrants draw equally (package R plus one branch R)."""
        return self.params.r0 + self.params.rq / 1.0

    def impedance(self, freq_hz, source_quadrant=0, observed_quadrant=0):
        """|dV_q_observed / dI_q_source| at a frequency, ohms.

        ``source == observed`` gives the local self-impedance; different
        quadrants give the (smaller) coupling impedance through the
        shared package node.
        """
        return self.model.impedance(freq_hz, input_index=source_quadrant,
                                    output_index=observed_quadrant)

    def discretize(self, clock_hz=None):
        """Exact ZOH discretization at the CPU clock."""
        from repro.pdn.rlc import NOMINAL_CLOCK_HZ
        return self.model.discretize(clock_hz or NOMINAL_CLOCK_HZ)


#: Structure -> quadrant floorplan used by the quadrant power split.
QUADRANT_FLOORPLAN = {
    0: ("l1i", "bpred", "decode"),                 # front end
    1: ("ruu", "regfile", "resultbus"),            # window
    2: ("int_alu", "int_mult", "fp_alu", "fp_mult"),  # execute
    3: ("lsq", "l1d", "l2", "memctl"),             # memory
}


def split_power(breakdown, floorplan=None):
    """Split a power-model breakdown dict into per-quadrant watts.

    Structure power lands in its floorplan quadrant; base power (clock
    tree, leakage) spreads evenly across the die.

    Args:
        breakdown: output of
            :meth:`repro.power.model.PowerModel.breakdown`.
        floorplan: quadrant -> structure names; defaults to
            :data:`QUADRANT_FLOORPLAN`.

    Returns:
        A length-4 numpy array of watts.
    """
    floorplan = floorplan or QUADRANT_FLOORPLAN
    out = np.zeros(N_QUADRANTS)
    owner = {name: q for q, names in floorplan.items() for name in names}
    for name, watts in breakdown.items():
        if name == "base":
            out += watts / N_QUADRANTS
        else:
            out[owner[name]] += watts
    return out
