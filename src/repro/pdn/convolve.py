"""Reference convolution-based voltage simulation.

This is the formulation the paper actually describes (Section 3.1): the
per-cycle supply voltage is the convolution of the per-cycle current trace
with the network's response, as in Grochowski et al.  We keep it as the
slow-but-obviously-correct cross-check for the recursive ZOH simulator in
:mod:`repro.pdn.discrete`; the two agree to floating-point accuracy
because the ZOH recursion is exact for piecewise-constant current.
"""

import numpy as np

from repro.pdn.rlc import NOMINAL_CLOCK_HZ
from repro.pdn.discrete import cycles_for_settling


def pulse_response_kernel(pdn, clock_hz=NOMINAL_CLOCK_HZ, n_cycles=None,
                          tolerance=1e-6):
    """Discrete droop kernel: response to one cycle of unit current.

    ``kernel[k]`` is the droop (volts) observed ``k`` cycles after a
    one-cycle-wide, 1 A current pulse, computed from the analytic step
    response: ``kernel[k] = S((k+1) dt) - S(k dt)``.

    Args:
        pdn: a :class:`~repro.pdn.rlc.SecondOrderPdn`.
        clock_hz: CPU clock used to discretize.
        n_cycles: kernel length; defaults to the settling time at
            ``tolerance``.
        tolerance: relative transient size at which the kernel may be
            truncated when ``n_cycles`` is not given.

    Returns:
        1-D numpy array of length ``n_cycles``.
    """
    if n_cycles is None:
        n_cycles = cycles_for_settling(pdn, clock_hz=clock_hz, tolerance=tolerance)
    dt = 1.0 / clock_hz
    edges = np.arange(n_cycles + 1) * dt
    s = pdn.step_response(edges)
    return np.diff(s)


def convolve_voltage(pdn, current, clock_hz=NOMINAL_CLOCK_HZ, kernel=None,
                     initial_current=None):
    """Per-cycle voltage trace via direct convolution.

    Matches the conventions of :meth:`repro.pdn.discrete.DiscretePdn.simulate`:
    the network starts in equilibrium at ``initial_current`` (default: the
    first sample), and ``voltage[n]`` is the die voltage at the *start* of
    cycle ``n`` -- i.e. cycle ``n``'s own current has not yet acted.

    Only current *deviations* from the initial equilibrium are convolved,
    so the trace starts exactly at ``vdd - R * initial_current``.

    Args:
        pdn: a :class:`~repro.pdn.rlc.SecondOrderPdn`.
        current: 1-D per-cycle current array, amperes.
        clock_hz: CPU clock frequency.
        kernel: optional precomputed :func:`pulse_response_kernel`.
        initial_current: equilibrium current before cycle 0.

    Returns:
        1-D numpy array of voltages, same length as ``current``.
    """
    current = np.asarray(current, dtype=float)
    if current.ndim != 1:
        raise ValueError("current must be 1-D, got shape %r" % (current.shape,))
    if current.size == 0:
        return np.empty(0)
    if initial_current is None:
        initial_current = float(current[0])
    if kernel is None:
        kernel = pulse_response_kernel(pdn, clock_hz=clock_hz)
    deviation = current - initial_current
    droop = np.convolve(deviation, kernel)[:current.size]
    vdd = pdn.params.vdd
    r = pdn.params.resistance
    baseline = vdd - r * initial_current
    # voltage[n] reflects currents of cycles 0..n-1 only: shift by one.
    out = np.empty(current.size)
    out[0] = baseline
    out[1:] = baseline - droop[:-1]
    return out
