"""ITRS roadmap impedance-trend data behind the paper's Figure 1.

The paper extracts two series from the 2001 ITRS roadmap: the *relative*
target impedance of power supply networks for cost-performance and
high-performance systems across technology generations.  Its two
headline observations are (Section 1):

1. target impedance must drop roughly 2x every 3--5 years, and
2. the gap between cost-performance and high-performance targets shrinks
   over time.

The tabulated values below are reconstructed from the roadmap's Vdd,
maximum-power and maximum-current projections (``Z_target ~ 0.05 * Vdd /
I_max``), normalized to the 2001 high-performance value, and exhibit both
trends.  Absolute ohm values for a given design should come from
:func:`repro.pdn.rlc.PdnParameters.from_spec` instead; this module exists
to regenerate Figure 1.
"""

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ItrsDataPoint:
    """One roadmap generation.

    Attributes:
        year: calendar year of the technology node.
        node_nm: feature size in nanometres.
        vdd: projected supply voltage, volts.
        cost_performance: relative target impedance, cost-performance
            segment (normalized to high-performance 2001 = 1.0).
        high_performance: relative target impedance, high-performance
            segment.
    """

    year: int
    node_nm: int
    vdd: float
    cost_performance: float
    high_performance: float


# Reconstructed from ITRS 2001 projections (Tables 4c/4d style data):
# Vdd scaling 1.1V -> 0.4V over 2001-2016, high-performance max current
# growing from ~60A toward ~300A, cost-performance from ~25A toward ~200A.
_ROADMAP = (
    ItrsDataPoint(2001, 130, 1.10, 4.00, 1.000),
    ItrsDataPoint(2002, 115, 1.05, 3.30, 0.870),
    ItrsDataPoint(2003, 100, 1.00, 2.70, 0.760),
    ItrsDataPoint(2004, 90, 1.00, 2.20, 0.670),
    ItrsDataPoint(2005, 80, 0.95, 1.80, 0.580),
    ItrsDataPoint(2006, 70, 0.90, 1.45, 0.500),
    ItrsDataPoint(2007, 65, 0.80, 1.15, 0.420),
    ItrsDataPoint(2010, 45, 0.70, 0.62, 0.270),
    ItrsDataPoint(2013, 32, 0.50, 0.33, 0.160),
    ItrsDataPoint(2016, 22, 0.40, 0.18, 0.100),
)


def roadmap():
    """The full reconstructed roadmap, ordered by year."""
    return _ROADMAP


def impedance_trend(segment="high_performance"):
    """Return ``(years, relative_impedances)`` for one market segment.

    Args:
        segment: ``"high_performance"`` or ``"cost_performance"``.

    Returns:
        Two tuples of equal length.
    """
    if segment not in ("high_performance", "cost_performance"):
        raise ValueError("unknown segment %r" % segment)
    years = tuple(p.year for p in _ROADMAP)
    values = tuple(getattr(p, segment) for p in _ROADMAP)
    return years, values


def relative_impedance_trend():
    """Both Figure 1 series: ``(years, cost_perf, high_perf)``."""
    years = tuple(p.year for p in _ROADMAP)
    cost = tuple(p.cost_performance for p in _ROADMAP)
    high = tuple(p.high_performance for p in _ROADMAP)
    return years, cost, high


def halving_time_years(segment="high_performance"):
    """Fitted number of years for the target impedance to halve.

    The paper reads "roughly 2x every 3-5 years" off Figure 1; this fits
    an exponential to the series and reports the halving time so the
    bench can assert the claim.
    """
    years, values = impedance_trend(segment)
    n = len(years)
    mean_y = sum(years) / n
    logs = [math.log(v) for v in values]
    mean_l = sum(logs) / n
    cov = sum((y - mean_y) * (l - mean_l) for y, l in zip(years, logs))
    var = sum((y - mean_y) ** 2 for y in years)
    slope = cov / var
    if slope >= 0:
        raise ValueError("impedance trend is not decreasing")
    return math.log(0.5) / slope


def segment_gap_ratio(year):
    """Cost-performance / high-performance target ratio at ``year``.

    Figure 1's second observation is that this ratio shrinks over time.
    """
    for p in _ROADMAP:
        if p.year == year:
            return p.cost_performance / p.high_performance
    raise KeyError("year %r is not a roadmap generation" % year)
