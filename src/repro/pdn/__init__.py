"""Power delivery network (PDN) substrate.

The paper models the supply network seen by the die as an underdamped
second-order linear system (their Section 2.2, built in MATLAB).  This
package provides the same model in three complementary forms:

* :mod:`repro.pdn.rlc` -- the continuous-time model: component values,
  impedance-vs-frequency, poles, and closed-form impulse/step responses.
* :mod:`repro.pdn.discrete` -- an exact zero-order-hold discretization at
  the CPU clock, suitable for streaming per-cycle voltage simulation and
  for closing a control loop around the processor model.
* :mod:`repro.pdn.convolve` -- the paper's original formulation: convolve
  a per-cycle current trace with the network's pulse response.  Used as a
  cross-check for the recursive simulator.

:mod:`repro.pdn.waveforms` builds the canonical current stimuli of the
paper's Figures 3--6 (narrow spike, wide spike, notched spike, resonant
pulse train) and the theoretical worst-case resonant square wave, and
:mod:`repro.pdn.itrs` carries the ITRS roadmap impedance-trend data behind
Figure 1.
"""

from repro.pdn.rlc import PdnParameters, SecondOrderPdn
from repro.pdn.discrete import DiscretePdn, PdnSimulator
from repro.pdn.convolve import pulse_response_kernel, convolve_voltage
from repro.pdn.waveforms import (
    flat_current,
    current_spike,
    notched_spike,
    pulse_train,
    resonant_square_wave,
    worst_case_waveform,
)
from repro.pdn.itrs import ItrsDataPoint, impedance_trend, relative_impedance_trend
from repro.pdn.statespace import (
    DiscreteStateSpace,
    StateSpacePdn,
    StateSpaceSimulator,
)
from repro.pdn.ladder import LadderParameters, LadderPdn, fit_second_order
from repro.pdn.quadrants import (
    QuadrantParameters,
    QuadrantPdn,
    QUADRANT_FLOORPLAN,
    split_power,
)

__all__ = [
    "PdnParameters",
    "SecondOrderPdn",
    "DiscretePdn",
    "PdnSimulator",
    "pulse_response_kernel",
    "convolve_voltage",
    "flat_current",
    "current_spike",
    "notched_spike",
    "pulse_train",
    "resonant_square_wave",
    "worst_case_waveform",
    "ItrsDataPoint",
    "impedance_trend",
    "relative_impedance_trend",
    "StateSpacePdn",
    "DiscreteStateSpace",
    "StateSpaceSimulator",
    "LadderParameters",
    "LadderPdn",
    "fit_second_order",
    "QuadrantParameters",
    "QuadrantPdn",
    "QUADRANT_FLOORPLAN",
    "split_power",
]
