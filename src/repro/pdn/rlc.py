"""Continuous-time second-order PDN model.

The network topology is the standard early-stage abstraction used by the
paper (and by Herrell & Beker):  the voltage regulator is an ideal source
``Vdd`` behind the package's parasitic series resistance ``R`` and
inductance ``L``; the die node is held up by the aggregate on-die/package
decoupling capacitance ``C``; the processor is a time-varying current sink
``i_load(t)`` at the die node.

With states ``i_L`` (inductor current) and ``v`` (die voltage)::

    L * di_L/dt = Vdd - v - R * i_L
    C * dv/dt   = i_L - i_load

The transfer impedance from load current to voltage *droop* is

    Z(s) = (R + s L) / (L C s**2 + R C s + 1)

which is a classic underdamped second-order system:  ``Z(0) = R`` (the DC
resistance), the resonant frequency is ``w0 = 1/sqrt(L C)``, and the peak
of ``|Z(j w)|`` near ``w0`` is the *target impedance* knob the paper
sweeps (its "N% of target impedance" configurations).
"""

import math
from dataclasses import dataclass

import numpy as np

#: Nominal supply voltage used throughout the paper (Section 2.2).
NOMINAL_VDD = 1.0

#: Nominal CPU clock frequency, Hz (Table 1).
NOMINAL_CLOCK_HZ = 3.0e9

#: DC resistance of the supply network, ohms (Section 2.2).
NOMINAL_DC_RESISTANCE = 0.5e-3

#: Resonant frequency of the package, Hz (Section 2.2).
NOMINAL_RESONANT_HZ = 50.0e6

#: Voltage-emergency tolerance: +/- 5% of nominal (Section 3.3).
EMERGENCY_FRACTION = 0.05


@dataclass(frozen=True)
class PdnParameters:
    """Lumped component values of the second-order supply network.

    Attributes:
        resistance: series parasitic resistance ``R`` in ohms.
        inductance: series parasitic inductance ``L`` in henries.
        capacitance: decoupling capacitance ``C`` in farads.
        vdd: nominal regulator voltage in volts.
    """

    resistance: float
    inductance: float
    capacitance: float
    vdd: float = NOMINAL_VDD

    def __post_init__(self):
        if self.resistance <= 0.0:
            raise ValueError("resistance must be positive, got %r" % self.resistance)
        if self.inductance <= 0.0:
            raise ValueError("inductance must be positive, got %r" % self.inductance)
        if self.capacitance <= 0.0:
            raise ValueError("capacitance must be positive, got %r" % self.capacitance)
        if self.vdd <= 0.0:
            raise ValueError("vdd must be positive, got %r" % self.vdd)

    @classmethod
    def from_spec(cls, dc_resistance=NOMINAL_DC_RESISTANCE,
                  resonant_hz=NOMINAL_RESONANT_HZ,
                  peak_impedance=None, vdd=NOMINAL_VDD):
        """Derive ``(R, L, C)`` from the design-level specification.

        The paper specifies its network by DC resistance, resonant
        frequency, and peak (target) impedance rather than raw component
        values.  For an underdamped network with ``w0*L >> R`` the peak
        impedance is approximately ``L / (R * C)``, so::

            L = sqrt(Z_peak * R) / w0        C = 1 / (w0**2 * L)

        Args:
            dc_resistance: ``R`` in ohms.
            resonant_hz: resonant frequency ``f0`` in Hz.
            peak_impedance: peak of ``|Z|`` in ohms.  Must exceed the DC
                resistance (the network is underdamped by construction).
            vdd: nominal supply voltage in volts.

        Returns:
            A :class:`PdnParameters` whose analytic peak impedance is close
            to (and never below) the requested value.
        """
        if peak_impedance is None:
            raise ValueError("peak_impedance is required")
        if peak_impedance <= dc_resistance:
            raise ValueError(
                "peak impedance (%g) must exceed DC resistance (%g) for an "
                "underdamped network" % (peak_impedance, dc_resistance))
        omega0 = 2.0 * math.pi * resonant_hz
        # First-order sizing from Z_peak ~ L/(R C), then a few fixed-point
        # refinements against the exact |Z| peak so that the realized peak
        # impedance matches the request to high accuracy (the sweep logic
        # in Table 2 relies on "200%" meaning exactly 2x).
        effective_peak = peak_impedance
        params = None
        for _ in range(6):
            inductance = math.sqrt(effective_peak * dc_resistance) / omega0
            capacitance = 1.0 / (omega0 ** 2 * inductance)
            params = cls(resistance=dc_resistance, inductance=inductance,
                         capacitance=capacitance, vdd=vdd)
            achieved, _ = SecondOrderPdn(params).peak_impedance(n_points=4001)
            if abs(achieved - peak_impedance) <= 1e-9 * peak_impedance:
                break
            effective_peak *= peak_impedance / achieved
        return params


class SecondOrderPdn:
    """Analytic view of the second-order supply network.

    Provides the frequency response, pole locations, and closed-form
    impulse and step responses of the load-current-to-droop impedance
    ``Z(s)``.  The discrete-time simulators in :mod:`repro.pdn.discrete`
    and :mod:`repro.pdn.convolve` are built from this object.
    """

    def __init__(self, params):
        self.params = params
        r = params.resistance
        l = params.inductance
        c = params.capacitance
        #: Undamped natural (resonant) frequency, rad/s.
        self.omega0 = 1.0 / math.sqrt(l * c)
        #: Damping ratio; < 1 for every network the paper considers.
        self.zeta = 0.5 * r * math.sqrt(c / l)
        #: Exponential decay rate of transients, 1/s.
        self.alpha = self.zeta * self.omega0
        if self.zeta >= 1.0:
            raise ValueError(
                "network is not underdamped (zeta=%.3f); the paper's model "
                "and this reproduction assume an underdamped package" % self.zeta)
        #: Damped oscillation frequency, rad/s.
        self.omega_d = self.omega0 * math.sqrt(1.0 - self.zeta ** 2)

    # ------------------------------------------------------------------
    # Design-level summary quantities
    # ------------------------------------------------------------------

    @property
    def vdd(self):
        """Nominal supply voltage, volts."""
        return self.params.vdd

    @property
    def resonant_hz(self):
        """Undamped resonant frequency in Hz."""
        return self.omega0 / (2.0 * math.pi)

    @property
    def quality_factor(self):
        """Q of the resonance (``1 / (2 zeta)``)."""
        return 1.0 / (2.0 * self.zeta)

    @property
    def dc_resistance(self):
        """``Z(0)``, ohms."""
        return self.params.resistance

    def resonant_period_cycles(self, clock_hz=NOMINAL_CLOCK_HZ):
        """Resonant period expressed in CPU cycles at ``clock_hz``.

        The paper's 50 MHz resonance at a 3 GHz clock gives 60 cycles,
        which sizes both the worst-case pulse train (Figure 6) and the
        stressmark loop (Section 3.2).
        """
        return clock_hz / self.resonant_hz

    def settling_time(self, tolerance=0.01):
        """Time for transients to decay to ``tolerance`` of initial size."""
        return -math.log(tolerance) / self.alpha

    # ------------------------------------------------------------------
    # Frequency domain
    # ------------------------------------------------------------------

    def impedance(self, freq_hz):
        """Magnitude of ``Z(j 2 pi f)`` in ohms.

        Accepts a scalar or an array of frequencies.
        """
        f = np.asarray(freq_hz, dtype=float)
        s = 2j * math.pi * f
        r = self.params.resistance
        l = self.params.inductance
        c = self.params.capacitance
        z = (r + s * l) / (l * c * s ** 2 + r * c * s + 1.0)
        mag = np.abs(z)
        if np.isscalar(freq_hz):
            return float(mag)
        return mag

    def peak_impedance(self, n_points=20001):
        """Numerically locate the peak of ``|Z(f)|``.

        Returns:
            ``(peak_ohms, peak_freq_hz)``.
        """
        f0 = self.resonant_hz
        freqs = np.linspace(0.25 * f0, 4.0 * f0, n_points)
        mags = self.impedance(freqs)
        idx = int(np.argmax(mags))
        return float(mags[idx]), float(freqs[idx])

    def poles(self):
        """Complex-conjugate pole pair of ``Z(s)``, rad/s."""
        return (complex(-self.alpha, self.omega_d),
                complex(-self.alpha, -self.omega_d))

    # ------------------------------------------------------------------
    # Time domain (closed forms)
    # ------------------------------------------------------------------

    def impulse_response(self, t):
        """Droop impulse response ``h(t)`` of ``Z(s)``, V per A*s.

        ``h(t) = (1/C) e^{-a t} [cos(wd t) + (a/wd) sin(wd t)]`` for
        ``t >= 0`` and 0 before.  Accepts scalar or array ``t`` (seconds).
        """
        t = np.asarray(t, dtype=float)
        c = self.params.capacitance
        a = self.alpha
        wd = self.omega_d
        h = (1.0 / c) * np.exp(-a * t) * (np.cos(wd * t) + (a / wd) * np.sin(wd * t))
        return np.where(t >= 0.0, h, 0.0)

    def step_response(self, t):
        """Droop response to a unit current step, volts.

        Settles to the DC resistance ``R``; the overshoot above ``R`` is
        the ringing the controller must manage (Figure 2, right).
        """
        t = np.asarray(t, dtype=float)
        c = self.params.capacitance
        a = self.alpha
        wd = self.omega_d
        w0sq = self.omega0 ** 2
        transient = np.exp(-a * t) * (
            -2.0 * a * np.cos(wd * t) + ((wd ** 2 - a ** 2) / wd) * np.sin(wd * t))
        s = (transient + 2.0 * a) / (c * w0sq)
        return np.where(t >= 0.0, s, 0.0)

    def step_overshoot_ratio(self):
        """Peak of the unit step response divided by its final value.

        For a second-order zeroed system this exceeds the textbook
        ``1 + exp(-pi zeta / sqrt(1 - zeta^2))`` because of the ``s L``
        zero; we compute it numerically.
        """
        t = np.linspace(0.0, 4.0 * math.pi / self.omega_d, 4096)
        s = self.step_response(t)
        return float(np.max(s) / self.dc_resistance)

    # ------------------------------------------------------------------
    # Derived networks
    # ------------------------------------------------------------------

    def scaled_peak_impedance(self, factor):
        """Return a new network with the peak impedance scaled by ``factor``.

        Used for the paper's "100% / 200% / 300% / 400% of target
        impedance" sweeps (Table 2).  The DC resistance and resonant
        frequency are held fixed; only the resonance peak grows.
        """
        if factor <= 0.0:
            raise ValueError("scale factor must be positive, got %r" % factor)
        peak, _ = self.peak_impedance()
        return SecondOrderPdn(PdnParameters.from_spec(
            dc_resistance=self.params.resistance,
            resonant_hz=self.resonant_hz,
            peak_impedance=peak * factor,
            vdd=self.params.vdd))

    def __repr__(self):
        peak, fpk = self.peak_impedance(n_points=2001)
        return ("SecondOrderPdn(R=%.3g ohm, L=%.3g H, C=%.3g F, f0=%.3g MHz, "
                "zeta=%.3f, Zpeak=%.3g ohm @ %.3g MHz)" % (
                    self.params.resistance, self.params.inductance,
                    self.params.capacitance, self.resonant_hz / 1e6,
                    self.zeta, peak, fpk / 1e6))


def default_pdn(peak_impedance=5.0e-3, impedance_percent=100.0):
    """Build a canonical example network (0.5 mOhm DC, 50 MHz resonance).

    A convenience for tests and standalone PDN studies.  Experiments
    should normally use :func:`repro.control.thresholds.design_pdn`,
    which *solves* the 100% peak impedance from a machine's current
    envelope instead of taking it as a parameter.

    Args:
        peak_impedance: the nominal (100%) peak impedance in ohms.
        impedance_percent: scale knob in the style of the paper's
            impedance sweep (200.0 doubles the peak).

    Returns:
        A :class:`SecondOrderPdn`.
    """
    params = PdnParameters.from_spec(
        dc_resistance=NOMINAL_DC_RESISTANCE,
        resonant_hz=NOMINAL_RESONANT_HZ,
        peak_impedance=peak_impedance * impedance_percent / 100.0,
        vdd=NOMINAL_VDD)
    return SecondOrderPdn(params)
