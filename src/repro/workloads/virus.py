"""A maximum-power virus workload.

The threshold design guards against the *model* envelope
``[min_power, max_power]``, but no real instruction stream reaches the
model maximum (no cycle can saturate every structure at once through an
8-wide issue stage).  This workload is the attempt: maximal sustained
power through wide, independent, L1-resident work on every pool.  Its
achieved fraction of the model maximum documents how conservative the
envelope -- and therefore the solved target impedance -- is.
"""

from repro.workloads.synthesis import Phase, WorkloadProfile

#: A mix sized to keep all pools busy through an 8-wide issue stage:
#: memory ports (4/8 slots), integer ALUs, and both FP pools.
_VIRUS_MIX = {
    "ialu": 0.34,
    "imult": 0.06,
    "falu": 0.14,
    "fmult": 0.08,
    "load": 0.24,
    "store": 0.14,
}


def max_power_virus(length=4096):
    """A profile that sustains the highest reachable power.

    Properties: enormous dependence distance (everything independent),
    an L1-resident working set (no miss stalls), almost no branches
    (no redirect holes), and a mix that feeds every functional-unit
    pool and all four memory ports.
    """
    return WorkloadProfile(
        name="power_virus",
        phases=(Phase(length=length, mix=_VIRUS_MIX, dep_distance=64.0,
                      ws_lines=64, stride_fraction=1.0),),
        branch_fraction=0.0,
        branch_predictability=1.0,
        code_insts=length,
        description="max sustained power; documents the reachable "
                    "fraction of the model envelope",
    )


def measure_peak_power(config=None, power_params=None, cycles=4000,
                       warmup_instructions=30000, seed=1):
    """Run the virus and report its power against the model envelope.

    Returns:
        dict with ``mean_power``, ``peak_power``, ``model_max``,
        ``mean_fraction`` and ``ipc``.
    """
    from repro.power.model import PowerModel
    from repro.power.trace import CurrentTrace
    from repro.uarch.config import MachineConfig
    from repro.uarch.core import Machine

    config = config or MachineConfig()
    model = PowerModel(config, power_params)
    machine = Machine(config, max_power_virus().stream(seed=seed))
    machine.fast_forward(warmup_instructions)
    trace = CurrentTrace(config.clock_hz, vdd=model.params.vdd)
    machine.run(max_cycles=cycles,
                cycle_hook=lambda m, a: trace.append(model.power(a)))
    powers = trace.powers
    return {
        "mean_power": float(powers.mean()),
        "peak_power": float(powers.max()),
        "model_max": model.max_power(),
        "mean_fraction": float(powers.mean()) / model.max_power(),
        "ipc": machine.stats.ipc,
    }
