"""Workload generators.

Two families, mirroring the paper's evaluation:

* :mod:`repro.workloads.stressmark` -- the dI/dt stressmark of Section
  3.2: an assembly loop whose long-divide trough and dependent
  store/ALU burst form a near-square current wave at the package's
  resonant frequency, plus the auto-tuner that sizes the loop to the
  resonant period.
* :mod:`repro.workloads.spec` -- synthetic stand-ins for the 26 SPEC2000
  benchmarks (the real Alpha binaries being unavailable; see DESIGN.md).
  Each profile reproduces the characteristics the controller interacts
  with: instruction mix, ILP, branch predictability, cache behaviour,
  and -- critically for dI/dt -- the benchmark's phase/burst structure.
  :mod:`repro.workloads.synthesis` turns a profile into a dynamic
  instruction stream.
"""

from repro.workloads.stressmark import (
    StressmarkSpec,
    build_stressmark,
    tune_stressmark,
)
from repro.workloads.spec import (
    SPEC2000,
    SPEC_INT,
    SPEC_FP,
    ACTIVE_BENCHMARKS,
    get_profile,
)
from repro.workloads.synthesis import WorkloadProfile, SyntheticStream
from repro.workloads.virus import max_power_virus, measure_peak_power

__all__ = [
    "StressmarkSpec",
    "build_stressmark",
    "tune_stressmark",
    "SPEC2000",
    "SPEC_INT",
    "SPEC_FP",
    "ACTIVE_BENCHMARKS",
    "get_profile",
    "WorkloadProfile",
    "SyntheticStream",
    "max_power_virus",
    "measure_peak_power",
]
