"""The dI/dt stressmark (paper Section 3.2).

The loop has the exact structure of the paper's Figure 8:

1. a **trough**: a chain of dependent ``divt`` operations whose long,
   unpipelined latency stalls the machine at its minimum power;
2. a **bridge**: ``stt f -> ldq r -> cmovne`` moves the divide result
   into the integer domain through a store-to-load forward, so that
   *everything* in the burst is data-dependent on the divide chain and
   cannot start early;
3. a **burst**: a wide block of stores and ALU operations, all dependent
   on the bridged register, that the out-of-order core (window filled
   during the trough) then issues at full width.

The loop's execution time must match the supply network's resonant
period; as the paper notes, "adding instructions to manipulate operands
or increase functional unit activity can affect the loop timing and move
it off the resonant frequency", so :func:`tune_stressmark` measures the
achieved period in the cycle simulator and adjusts the burst size until
the loop resonates.
"""

from dataclasses import dataclass, replace

from repro.isa.assembler import assemble
from repro.isa.opcodes import InstrClass
from repro.isa.program import Sequencer


@dataclass(frozen=True)
class StressmarkSpec:
    """Shape parameters of the stressmark loop.

    Attributes:
        n_divides: length of the dependent ``divt`` chain (trough).
        burst_groups: number of 8-instruction burst groups; each group is
            4 dependent stores + 3 dependent integer ops + 1 FP op, sized
            to saturate an 8-wide machine for one cycle.
        unroll: how many copies of the whole body per backward branch
            (keeps the taken-branch fetch break rare).
    """

    n_divides: int = 2
    burst_groups: int = 26
    unroll: int = 1

    def __post_init__(self):
        if self.n_divides < 1:
            raise ValueError("need at least one divide in the trough")
        if self.burst_groups < 1:
            raise ValueError("need at least one burst group")
        if self.unroll < 1:
            raise ValueError("unroll must be >= 1")


#: One burst group: every instruction depends (directly or through the
#: group's own chain) on r3, the bridged divide result, so the burst
#: cannot begin until the trough ends.  4 stores + 3 int ops + 1 FP op.
_BURST_GROUP = """\
    stq   r3, 0(r4)
    stq   r3, 8(r4)
    stq   r3, 16(r4)
    stq   r3, 24(r4)
    addq  r8, r3, r3
    xor   r9, r3, r8
    addq  r10, r3, r9
    addt  f5, f3, f3
"""


def stressmark_text(spec):
    """Assembly text of the stressmark loop for ``spec``."""
    body = []
    for u in range(spec.unroll):
        body.append("    ldt   f1, 0(r4)")
        # Dependent divide chain: f3 <- ... <- f1.
        body.append("    divt  f3, f1, f2")
        for _ in range(spec.n_divides - 1):
            body.append("    divt  f3, f3, f2")
        # Bridge to the integer domain (the paper's stt/ldq/cmovne).
        body.append("    stt   f3, 32(r4)")
        body.append("    ldq   r7, 32(r4)")
        body.append("    cmovne r3, r31, r7")
        for _ in range(spec.burst_groups):
            body.append(_BURST_GROUP.rstrip("\n"))
    return "loop:\n" + "\n".join(body) + "\n    br loop\n"


def build_stressmark(spec=None, max_instructions=None):
    """Assemble the stressmark and return ``(program, spec)``.

    Use :class:`~repro.isa.program.Sequencer` (or
    :func:`stressmark_stream`) to unroll it for the simulator.
    """
    spec = spec or StressmarkSpec()
    return assemble(stressmark_text(spec)), spec


def stressmark_stream(spec=None, max_instructions=None):
    """A ready-to-simulate dynamic instruction stream."""
    program, spec = build_stressmark(spec)
    return Sequencer(program, max_instructions=max_instructions)


def body_length(spec):
    """Static instructions per loop iteration (including the branch)."""
    per_unroll = 1 + spec.n_divides + 3 + 8 * spec.burst_groups
    return per_unroll * spec.unroll + 1


def measure_period(spec, config, warmup_iterations=4, measure_iterations=8):
    """Measured cycles per loop iteration on the cycle simulator.

    Runs enough iterations to reach steady state, then reports the
    average iteration time over the measurement window.
    """
    from repro.uarch.core import Machine

    n_body = body_length(spec)
    total_iters = warmup_iterations + measure_iterations
    stream = stressmark_stream(spec,
                               max_instructions=n_body * total_iters)
    machine = Machine(config, stream)
    # Track iteration completion via committed-instruction counts.
    boundary = []
    committed_target = n_body
    while not machine.done and machine.cycle < 10_000_000:
        machine.step()
        if machine.stats.committed >= committed_target:
            boundary.append(machine.cycle)
            committed_target += n_body
    if len(boundary) <= warmup_iterations + 1:
        raise RuntimeError("stressmark did not complete enough iterations")
    window = boundary[warmup_iterations:]
    return (window[-1] - window[0]) / (len(window) - 1)


def tune_stressmark(pdn, config, max_rounds=8, tolerance_cycles=2.0):
    """Size the stressmark loop to the PDN's resonant period.

    Iteratively adjusts the burst size so the measured loop period in the
    cycle simulator matches ``pdn.resonant_period_cycles``.  The divide
    chain is sized first (each unpipelined divide contributes its full
    latency to the trough); the burst then absorbs the residual.

    Args:
        pdn: a :class:`~repro.pdn.rlc.SecondOrderPdn`.
        config: the :class:`~repro.uarch.config.MachineConfig` to tune on.
        max_rounds: tuning iterations.
        tolerance_cycles: stop when the measured period is within this
            many cycles of the target.

    Returns:
        ``(spec, measured_period)``.
    """
    target = pdn.resonant_period_cycles(config.clock_hz)
    div_latency = config.latencies[InstrClass.FDIV]
    # Trough of roughly half the period.
    n_div = max(1, int(round((target / 2.0) / div_latency)))
    # First guess: the burst retires at about half the issue width (the
    # stores serialize on 4 memory ports while ALU ops fill the rest).
    groups = max(1, int(round((target / 2.0) * config.issue_width / 2 / 8)))
    spec = StressmarkSpec(n_divides=n_div, burst_groups=groups)
    measured = measure_period(spec, config)
    for _ in range(max_rounds):
        error = target - measured
        if abs(error) <= tolerance_cycles:
            break
        # Each burst group is 8 instructions; estimate the retire rate
        # from the current measurement to convert cycles to groups.
        cycles_per_group = max(0.5, (measured - n_div * div_latency)
                               / spec.burst_groups)
        delta = int(round(error / cycles_per_group))
        if delta == 0:
            delta = 1 if error > 0 else -1
        groups = max(1, spec.burst_groups + delta)
        if groups == spec.burst_groups:
            break
        spec = replace(spec, burst_groups=groups)
        measured = measure_period(spec, config)
    return spec, measured
