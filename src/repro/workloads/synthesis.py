"""Synthetic workload synthesis.

Real SPEC2000 Alpha binaries are not available to this reproduction (see
DESIGN.md), so each benchmark is replaced by a *profile*: a statistical
description of the properties the dI/dt controller actually interacts
with.  :class:`SyntheticStream` turns a profile into an endless
:class:`~repro.isa.instruction.DynamicInst` stream.

The synthesis is two-staged, the way real programs behave:

1. **Static body construction** -- for each phase, a fixed sequence of
   instruction *slots* (opcode, registers, branch sites with their
   bias, memory slots with their access pattern) is built once from the
   profile's statistics.  Phase bodies are concatenated -- replicated if
   needed to reach the profile's code footprint -- into one cyclic
   super-loop of stable PCs, so branch predictors, BTBs, and the
   instruction cache warm up exactly as they would on real code.
2. **Dynamic unrolling** -- the stream walks the super-loop forever.
   Only data-dependent properties vary per visit: outcomes at the
   unpredictable branch sites, and addresses at the random-access memory
   slots (strided slots advance a per-region stride stream).

Phases differ in instruction mix, exposed ILP, and working-set size,
which is what creates the current-draw phases the paper's Figure 10
characterizes.
"""

import random
from dataclasses import dataclass

from repro.isa.instruction import DynamicInst
from repro.isa.opcodes import OPCODES

#: Instruction "kinds" a mix distributes probability over, with the
#: concrete mnemonic used for each.
KIND_OPCODES = {
    "ialu": OPCODES["addq"],
    "imult": OPCODES["mulq"],
    "idiv": OPCODES["divq"],
    "falu": OPCODES["addt"],
    "fmult": OPCODES["mult"],
    "fdiv": OPCODES["divt"],
    "load": OPCODES["ldq"],
    "store": OPCODES["stq"],
}

_INT_REG_POOL = tuple(range(1, 31))          # r1..r30
_FP_REG_POOL = tuple(range(33, 63))          # f1..f30
_FP_KINDS = frozenset(("falu", "fmult", "fdiv"))

# Slot type tags.
_OP = 0        # plain operation (may be a memory op)
_BR_FIXED = 1  # conditional branch with a fixed direction
_BR_RAND = 2   # conditional branch with coin-flip outcomes
_JUMP = 3      # unconditional branch closing a region


@dataclass(frozen=True)
class Phase:
    """One execution phase of a workload.

    Attributes:
        length: phase duration in instructions (also its body size in
            the super-loop).
        mix: kind -> probability (need not include every kind; missing
            kinds get 0).  Probabilities are normalized.
        dep_distance: mean producer-to-consumer distance in instructions;
            small values serialize execution, large values expose ILP.
        ws_lines: data working set in cache lines; small sets hit in L1,
            huge sets stream through to memory.
        stride_fraction: fraction of memory slots that walk the working
            set sequentially (the rest pick uniform random lines each
            visit).
    """

    length: int
    mix: dict
    dep_distance: float = 8.0
    ws_lines: int = 256
    stride_fraction: float = 0.7

    def __post_init__(self):
        if self.length < 4:
            raise ValueError("phase length must be >= 4")
        if self.dep_distance < 1.0:
            raise ValueError("dep_distance must be >= 1")
        if self.ws_lines < 1:
            raise ValueError("ws_lines must be >= 1")
        if not 0.0 <= self.stride_fraction <= 1.0:
            raise ValueError("stride_fraction must be in [0, 1]")
        unknown = set(self.mix) - set(KIND_OPCODES)
        if unknown:
            raise ValueError("unknown instruction kinds: %r" % sorted(unknown))
        if any(v < 0 for v in self.mix.values()):
            raise ValueError("mix probabilities must be non-negative")
        if sum(self.mix.values()) <= 0:
            raise ValueError("mix must have positive total weight")


@dataclass(frozen=True)
class WorkloadProfile:
    """A synthetic benchmark.

    Attributes:
        name: benchmark label (e.g. ``"swim"``).
        phases: the repeating phase sequence.
        branch_fraction: fraction of body slots that are conditional
            branches (on top of region-closing jumps).
        branch_predictability: fraction of branch *sites* whose outcome
            is a fixed per-site direction (learnable); remaining sites
            flip coins with ``taken_rate`` on every visit.
        taken_rate: taken probability at the random sites.
        code_insts: target code footprint in instructions.  The phase
            cycle is replicated with distinct code regions until the
            super-loop reaches at least this size, so a big-code
            benchmark (gcc, vortex) pressures the I-cache even though
            its phases are short.
        description: one-line characterization (documentation only).
    """

    name: str
    phases: tuple
    branch_fraction: float = 0.12
    branch_predictability: float = 0.9
    taken_rate: float = 0.5
    code_insts: int = 2048
    description: str = ""

    def __post_init__(self):
        if not self.phases:
            raise ValueError("profile needs at least one phase")
        if not 0.0 <= self.branch_fraction < 0.5:
            raise ValueError("branch_fraction must be in [0, 0.5)")
        if not 0.0 <= self.branch_predictability <= 1.0:
            raise ValueError("branch_predictability must be in [0, 1]")
        if not 0.0 <= self.taken_rate <= 1.0:
            raise ValueError("taken_rate must be in [0, 1]")
        if self.code_insts < 16:
            raise ValueError("code_insts must be >= 16")

    def stream(self, seed=0, max_instructions=None):
        """A fresh dynamic-instruction stream for this profile."""
        return SyntheticStream(self, seed=seed,
                               max_instructions=max_instructions)


class _Slot:
    """One static instruction slot in the super-loop."""

    __slots__ = ("kind", "op", "dest", "srcs", "taken", "target",
                 "addr_random", "region", "space", "ws_lines", "line_offset")

    def __init__(self, kind, op=None, dest=None, srcs=(), taken=None,
                 target=None, addr_random=False, region=0, space=0,
                 ws_lines=1, line_offset=0):
        self.kind = kind
        self.op = op
        self.dest = dest
        self.srcs = srcs
        self.taken = taken
        self.target = target
        self.addr_random = addr_random
        self.region = region
        self.space = space
        self.ws_lines = ws_lines
        self.line_offset = line_offset


class SyntheticStream:
    """Iterator of :class:`DynamicInst` realizing a profile.

    Deterministic for a given ``(profile, seed)`` pair.
    """

    _CODE_BASE = 0x400000
    _LOAD_BASE = 0x10000000
    _STORE_BASE = 0x20000000
    _REGION_STRIDE = 0x1000000
    _LINE = 64

    def __init__(self, profile, seed=0, max_instructions=None):
        self.profile = profile
        self.seed = seed
        self.max_instructions = max_instructions
        self._rng = random.Random(seed)
        self._build_rng = random.Random((seed << 16) ^ 0x5EED)
        self._slots = []
        self._stride_pos = {}   # region id -> current stride line
        self._build_body()
        self._seq = 0
        self._pos = 0

    # ------------------------------------------------------------------
    # Static body construction
    # ------------------------------------------------------------------

    def _build_body(self):
        profile = self.profile
        phase_cycle_len = sum(p.length for p in profile.phases)
        copies = max(1, round(profile.code_insts / phase_cycle_len))
        region = 0
        for _ in range(copies):
            for phase_idx, phase in enumerate(profile.phases):
                self._build_region(phase, region, phase_idx)
                region += 1
        # Close the super-loop: retarget the last region's jump to slot 0.
        self._slots[-1].target = 0

    def _build_region(self, phase, region, phase_idx):
        """Append one phase body (a code region ending in a jump)."""
        rng = self._build_rng
        profile = self.profile
        base = len(self._slots)
        n = phase.length
        mix_cdf = self._make_cdf(phase.mix)
        recent_int = []
        recent_fp = []
        self._stride_pos[region] = 0
        i = 0
        while i < n - 1:
            pos = base + i
            at_branch_site = (rng.random() < profile.branch_fraction
                              and i < n - 3)
            if at_branch_site:
                src = self._build_source(rng, phase, recent_int,
                                         _INT_REG_POOL)
                predictable = rng.random() < profile.branch_predictability
                if predictable:
                    taken = rng.random() < 0.5
                    slot = _Slot(_BR_FIXED, op=OPCODES["bne"], srcs=(src,),
                                 taken=taken, target=pos + 2)
                else:
                    slot = _Slot(_BR_RAND, op=OPCODES["bne"], srcs=(src,),
                                 target=pos + 2)
                self._slots.append(slot)
                i += 1
                continue
            kind = self._pick_from_cdf(rng, mix_cdf)
            self._slots.append(self._build_op_slot(
                rng, phase, kind, region, phase_idx, recent_int, recent_fp))
            i += 1
        # Region-closing jump; target patched for the final region.
        self._slots.append(_Slot(_JUMP, op=OPCODES["br"], taken=True,
                                 target=len(self._slots) + 1))

    def _build_op_slot(self, rng, phase, kind, region, space,
                       recent_int, recent_fp):
        if kind == "load":
            dest = self._build_dest(recent_int, _INT_REG_POOL)
            src = self._build_source(rng, phase, recent_int, _INT_REG_POOL)
            return _Slot(_OP, op=KIND_OPCODES[kind], dest=dest, srcs=(src,),
                         addr_random=rng.random() >= phase.stride_fraction,
                         region=region, space=space, ws_lines=phase.ws_lines,
                         line_offset=rng.randrange(phase.ws_lines))
        if kind == "store":
            data = self._build_source(rng, phase, recent_int, _INT_REG_POOL)
            return _Slot(_OP, op=KIND_OPCODES[kind], srcs=(data,),
                         addr_random=rng.random() >= phase.stride_fraction,
                         region=region, space=space, ws_lines=phase.ws_lines,
                         line_offset=rng.randrange(phase.ws_lines))
        if kind in _FP_KINDS:
            dest = self._build_dest(recent_fp, _FP_REG_POOL)
            s1 = self._build_source(rng, phase, recent_fp, _FP_REG_POOL)
            s2 = self._build_source(rng, phase, recent_fp, _FP_REG_POOL)
            return _Slot(_OP, op=KIND_OPCODES[kind], dest=dest, srcs=(s1, s2))
        dest = self._build_dest(recent_int, _INT_REG_POOL)
        s1 = self._build_source(rng, phase, recent_int, _INT_REG_POOL)
        s2 = self._build_source(rng, phase, recent_int, _INT_REG_POOL)
        return _Slot(_OP, op=KIND_OPCODES[kind], dest=dest, srcs=(s1, s2))

    def _build_dest(self, recent, pool):
        dest = pool[len(recent) % len(pool)]
        recent.append(dest)
        return dest

    def _build_source(self, rng, phase, recent, pool):
        """A source register roughly ``dep_distance`` writes back."""
        if not recent:
            return pool[rng.randrange(len(pool))]
        p = 1.0 / phase.dep_distance
        back = 1
        while rng.random() > p and back < len(recent):
            back += 1
        return recent[-back]

    @staticmethod
    def _make_cdf(mix):
        total = sum(mix.values())
        cdf = []
        acc = 0.0
        for kind in KIND_OPCODES:
            acc += mix.get(kind, 0.0) / total
            cdf.append((acc, kind))
        return cdf

    @staticmethod
    def _pick_from_cdf(rng, cdf):
        x = rng.random()
        for acc, kind in cdf:
            if x <= acc:
                return kind
        return cdf[-1][1]

    # ------------------------------------------------------------------
    # Dynamic unrolling
    # ------------------------------------------------------------------

    @property
    def body_size(self):
        """Super-loop length in instructions (the code footprint)."""
        return len(self._slots)

    def _pc(self, pos):
        return self._CODE_BASE + 4 * pos

    def _address(self, slot):
        if slot.addr_random:
            line = self._rng.randrange(slot.ws_lines)
        else:
            line = (self._stride_pos[slot.region] + slot.line_offset) \
                % slot.ws_lines
            self._stride_pos[slot.region] = \
                (self._stride_pos[slot.region] + 1) % slot.ws_lines
        base = (self._STORE_BASE if slot.op.iclass.name == "STORE"
                else self._LOAD_BASE)
        # Body copies of the same phase share one data space; distinct
        # phases get distinct spaces (different data structures).
        return base + slot.space * self._REGION_STRIDE + line * self._LINE

    def __iter__(self):
        return self

    def __next__(self):
        if (self.max_instructions is not None and
                self._seq >= self.max_instructions):
            raise StopIteration
        slot = self._slots[self._pos]
        pc = self._pc(self._pos)
        kind = slot.kind
        if kind == _OP:
            addr = self._address(slot) if slot.op.iclass.is_memory else None
            inst = DynamicInst(self._seq, pc, slot.op, dest=slot.dest,
                               srcs=slot.srcs, addr=addr)
            self._pos += 1
        elif kind == _JUMP:
            inst = DynamicInst(self._seq, pc, slot.op, taken=True,
                               target=self._pc(slot.target))
            self._pos = slot.target
        else:
            if kind == _BR_FIXED:
                taken = slot.taken
            else:
                taken = self._rng.random() < self.profile.taken_rate
            inst = DynamicInst(self._seq, pc, slot.op, srcs=slot.srcs,
                               taken=taken, target=self._pc(slot.target))
            self._pos = slot.target if taken else self._pos + 1
        self._seq += 1
        return inst
