"""Synthetic profiles for the 26 SPEC2000 benchmarks.

Each profile is a :class:`~repro.workloads.synthesis.WorkloadProfile`
whose parameters encode the benchmark's published character (instruction
mix, ILP, cache behaviour, branchiness) and -- the property the paper's
Figure 10 characterizes -- its *power phase structure*: how strongly and
how quickly its current draw swings as it alternates between execution
phases.

The paper's observations this module is calibrated to:

* ``ammp`` "has poor cache performance with many stall cycles and low
  IPC ... its voltages tend to be quite stable";
* ``swim`` has "moderately low IPC, but more variations in its
  behavior", spreading its voltage distribution;
* eight benchmarks show meaningful voltage variation and are used for
  the controller studies (:data:`ACTIVE_BENCHMARKS`);
* under 100% and 200% of target impedance *no* SPEC benchmark has a
  voltage emergency; a single benchmark crosses at 300% and roughly half
  at 400%, always at tiny frequencies (Table 2).

These are synthetic stand-ins, not the benchmarks themselves; see
DESIGN.md for the substitution rationale.
"""

from repro.workloads.synthesis import Phase, WorkloadProfile

# ----------------------------------------------------------------------
# Mix building blocks (fractions are normalized by the synthesizer).
# ----------------------------------------------------------------------

INT_COMPUTE = {"ialu": 0.62, "imult": 0.04, "load": 0.22, "store": 0.12}
INT_POINTER = {"ialu": 0.45, "load": 0.38, "store": 0.17}
INT_MULT_HEAVY = {"ialu": 0.50, "imult": 0.16, "load": 0.22, "store": 0.12}
FP_VECTOR = {"falu": 0.30, "fmult": 0.22, "load": 0.28, "store": 0.12,
             "ialu": 0.08}
FP_COMPUTE = {"falu": 0.34, "fmult": 0.26, "ialu": 0.22, "load": 0.12,
              "store": 0.06}
FP_DIVIDE = {"fdiv": 0.10, "falu": 0.25, "fmult": 0.15, "load": 0.30,
             "ialu": 0.20}
MEM_STREAM = {"load": 0.45, "store": 0.20, "ialu": 0.30, "imult": 0.05}
STALL_CHAIN = {"fdiv": 0.16, "load": 0.40, "ialu": 0.44}


def _steady(name, mix, dep=8.0, ws=256, stride=0.7, branch=0.12, pred=0.92,
            code=2048, desc=""):
    """A single-phase (voltage-stable) profile."""
    return WorkloadProfile(
        name=name,
        phases=(Phase(length=4096, mix=mix, dep_distance=dep, ws_lines=ws,
                      stride_fraction=stride),),
        branch_fraction=branch,
        branch_predictability=pred,
        code_insts=code,
        description=desc,
    )


def _phased(name, hot_mix, cold_mix, hot_len, cold_len, hot_dep=16.0,
            cold_dep=4.0, hot_ws=128, cold_ws=4096, branch=0.08, pred=0.95,
            stride_hot=0.9, stride_cold=0.5, code=1024, desc=""):
    """A two-phase (voltage-active) profile.

    The hot phase exposes ILP and hits in the cache (high power); the
    cold phase serializes behind long dependences and misses (low
    power).  Short phase lengths put the resulting current square wave
    near the package's resonant band.
    """
    return WorkloadProfile(
        name=name,
        phases=(
            Phase(length=hot_len, mix=hot_mix, dep_distance=hot_dep,
                  ws_lines=hot_ws, stride_fraction=stride_hot),
            Phase(length=cold_len, mix=cold_mix, dep_distance=cold_dep,
                  ws_lines=cold_ws, stride_fraction=stride_cold),
        ),
        branch_fraction=branch,
        branch_predictability=pred,
        code_insts=code,
        description=desc,
    )


# ----------------------------------------------------------------------
# The suite.
# ----------------------------------------------------------------------

SPEC_INT = {
    "gzip": _steady("gzip", INT_COMPUTE, dep=6.0, ws=1024, branch=0.11,
                    desc="compression; steady integer pipeline"),
    "vpr": _steady("vpr", INT_POINTER, dep=4.0, ws=4096, stride=0.4,
                   branch=0.13, pred=0.88,
                   desc="place & route; pointer chasing"),
    "gcc": _phased("gcc", INT_COMPUTE, INT_POINTER, hot_len=190,
                   cold_len=64, hot_dep=12.0, cold_dep=3.0, hot_ws=512,
                   cold_ws=4096, branch=0.16, pred=0.86, code=6144,
                   desc="compiler; branchy with bursty phases"),
    "mcf": _steady("mcf", INT_POINTER, dep=2.0, ws=65536, stride=0.1,
                   branch=0.12, pred=0.85,
                   desc="network simplex; memory-bound, very low IPC"),
    "crafty": _steady("crafty", INT_MULT_HEAVY, dep=10.0, ws=512,
                      branch=0.14, pred=0.90,
                      desc="chess; integer ILP with multiplies"),
    "parser": _steady("parser", INT_POINTER, dep=4.0, ws=2048, stride=0.5,
                      branch=0.15, pred=0.87,
                      desc="link grammar; pointer-heavy"),
    "eon": _phased("eon", FP_COMPUTE, STALL_CHAIN, hot_len=170,
                   cold_len=50, hot_dep=16.0, cold_dep=3.0, hot_ws=256,
                   cold_ws=1024, branch=0.10, pred=0.93,
                   desc="C++ ray tracer; alternating fp/int bursts"),
    "perlbmk": _steady("perlbmk", INT_COMPUTE, dep=6.0, ws=1024,
                       branch=0.17, pred=0.89, code=8192,
                       desc="perl interpreter; branchy, big code"),
    "gap": _steady("gap", INT_MULT_HEAVY, dep=7.0, ws=2048, branch=0.10,
                   desc="group theory; integer arithmetic"),
    "vortex": _steady("vortex", INT_COMPUTE, dep=6.0, ws=4096, branch=0.13,
                      pred=0.91, code=12288,
                      desc="OO database; large instruction footprint"),
    "bzip2": _steady("bzip2", INT_COMPUTE, dep=5.0, ws=8192, stride=0.6,
                     branch=0.11,
                     desc="compression; steady with working-set pressure"),
    "twolf": _steady("twolf", INT_POINTER, dep=3.0, ws=8192, stride=0.3,
                     branch=0.14, pred=0.88,
                     desc="place & route; cache-missy"),
}

SPEC_FP = {
    "wupwise": _steady("wupwise", FP_COMPUTE, dep=14.0, ws=512, branch=0.04,
                       pred=0.98,
                       desc="lattice QCD; regular fp compute"),
    "swim": _phased("swim", FP_VECTOR, MEM_STREAM, hot_len=180,
                    cold_len=60, hot_dep=20.0, cold_dep=3.0, hot_ws=128,
                    cold_ws=8192, branch=0.03, pred=0.99,
                    desc="shallow water; streaming with strong phases"),
    "mgrid": _phased("mgrid", FP_VECTOR, MEM_STREAM, hot_len=200,
                     cold_len=56, hot_dep=18.0, cold_dep=3.0, hot_ws=256,
                     cold_ws=8192, branch=0.03, pred=0.99,
                     desc="multigrid; grid sweeps with refill dips"),
    "applu": _steady("applu", FP_VECTOR, dep=12.0, ws=4096, branch=0.04,
                     pred=0.98,
                     desc="SSOR solver; steady vector fp"),
    "mesa": _steady("mesa", FP_COMPUTE, dep=9.0, ws=1024, branch=0.09,
                    pred=0.94,
                    desc="software rendering; mixed fp/int"),
    "galgel": _phased("galgel", FP_COMPUTE, STALL_CHAIN, hot_len=130,
                      cold_len=36, hot_dep=20.0, cold_dep=1.5, hot_ws=128,
                      cold_ws=2048, branch=0.05, pred=0.97,
                      desc="fluid dynamics; sharp burst/stall alternation"),
    "art": _phased("art", MEM_STREAM, STALL_CHAIN, hot_len=210,
                   cold_len=70, hot_dep=10.0, cold_dep=2.5, hot_ws=2048,
                   cold_ws=16384, branch=0.06, pred=0.95,
                   desc="neural net; streaming with stall phases"),
    "equake": _steady("equake", MEM_STREAM, dep=5.0, ws=16384, stride=0.4,
                      branch=0.07, pred=0.95,
                      desc="sparse solver; memory bound"),
    "facerec": _phased("facerec", FP_VECTOR, STALL_CHAIN, hot_len=150,
                       cold_len=44, hot_dep=18.0, cold_dep=2.0, hot_ws=256,
                       cold_ws=4096, branch=0.06, pred=0.96,
                       desc="face recognition; fft bursts"),
    "ammp": _steady("ammp", STALL_CHAIN, dep=2.0, ws=32768, stride=0.15,
                    branch=0.06, pred=0.95,
                    desc="molecular dynamics; many stalls, low and "
                         "stable power (paper's stable example)"),
    "lucas": _steady("lucas", FP_COMPUTE, dep=11.0, ws=2048, branch=0.02,
                     pred=0.99,
                     desc="primality; long fp chains"),
    "fma3d": _steady("fma3d", FP_VECTOR, dep=10.0, ws=4096, branch=0.07,
                     pred=0.95,
                     desc="crash simulation; steady fp"),
    "sixtrack": _phased("sixtrack", FP_COMPUTE, FP_DIVIDE, hot_len=140,
                        cold_len=40, hot_dep=18.0, cold_dep=2.0,
                        hot_ws=256, cold_ws=2048, branch=0.04, pred=0.98,
                        desc="particle tracking; divide-stall phases"),
    "apsi": _steady("apsi", FP_VECTOR, dep=9.0, ws=4096, branch=0.05,
                    pred=0.97,
                    desc="meteorology; steady vector fp"),
}

#: name -> profile, all 26 benchmarks.
SPEC2000 = {**SPEC_INT, **SPEC_FP}

#: The eight benchmarks with meaningful voltage variation that the paper
#: uses for its controller studies (Sections 4.4--5.3).
ACTIVE_BENCHMARKS = ("swim", "mgrid", "gcc", "galgel", "facerec",
                     "sixtrack", "eon", "art")


def get_profile(name):
    """Look up a benchmark profile by name.

    Raises:
        KeyError: with the list of known names, for typo-friendliness.
    """
    try:
        return SPEC2000[name]
    except KeyError:
        raise KeyError("unknown benchmark %r; known: %s"
                       % (name, ", ".join(sorted(SPEC2000)))) from None
