"""Per-quadrant (local) closed-loop voltage control.

The paper's Section 6 names locality as the key modeling extension:
"local power supply swings in different chip quadrants can be an
important issue to consider".  This module closes the loop at that
granularity:

* the machine's per-cycle power is split across the quadrant floorplan
  (:func:`repro.pdn.quadrants.split_power`);
* the hierarchical :class:`~repro.pdn.quadrants.QuadrantPdn` produces
  four *local* voltages per cycle;
* each quadrant gets its own three-state threshold sensor;
* actuation is either **global** (any quadrant's LOW/HIGH drives the
  whole FU/DL1/IL1 group -- conservative, simple) or **local** (each
  quadrant's sensor drives only the unit group that lives in it).

A die-average sensor -- the baseline the paper's own evaluation uses --
is also provided, so the bench can measure the emergencies a global
view misses.

Quadrant-to-units mapping (see
:data:`repro.pdn.quadrants.QUADRANT_FLOORPLAN`): the front-end quadrant
hosts the IL1 group, the execute quadrant the FU group, the memory
quadrant the DL1 group; the window quadrant has no gateable group of
its own and relies on its neighbours' response through the shared
package node.
"""

import numpy as np

from repro.control.emergencies import EmergencyCounter, NOMINAL_VOLTAGE
from repro.control.sensor import ThresholdSensor, VoltageLevel
from repro.pdn.quadrants import N_QUADRANTS, QuadrantPdn, split_power
from repro.pdn.statespace import StateSpaceSimulator

#: Quadrant index -> the actuator unit group resident in it.
QUADRANT_UNIT_GROUPS = {0: "il1", 1: None, 2: "fu", 3: "dl1"}


class LocalThresholdController:
    """Four local sensors driving global or per-quadrant actuation.

    Args:
        v_low / v_high: thresholds (shared by all quadrant sensors; a
            solved global design transfers because each local network's
            worst case is bounded by the same envelope analysis).
        delay: sensor delay, cycles.
        mode: ``"global"`` (any quadrant in trouble actuates every
            group) or ``"local"`` (each quadrant actuates its own
            group).
        error / seed: sensor noise, as in
            :class:`~repro.control.sensor.ThresholdSensor`.
    """

    def __init__(self, v_low, v_high, delay=0, mode="global", error=0.0,
                 seed=0):
        if mode not in ("global", "local"):
            raise ValueError("mode must be 'global' or 'local'")
        self.mode = mode
        self.sensors = [ThresholdSensor(v_low, v_high, delay=delay,
                                        error=error, seed=seed + q)
                        for q in range(N_QUADRANTS)]
        self.reduce_cycles = 0
        self.boost_cycles = 0
        self.transitions = 0
        self._last_signature = None

    def step(self, machine, quadrant_voltages):
        """Observe the four local voltages; drive the machine's gates."""
        levels = [sensor.observe(v).level
                  for sensor, v in zip(self.sensors, quadrant_voltages)]
        units = {"fu": machine.fus, "dl1": machine.dl1, "il1": machine.il1}
        if self.mode == "global":
            any_low = any(l is VoltageLevel.LOW for l in levels)
            any_high = (not any_low and
                        any(l is VoltageLevel.HIGH for l in levels))
            for unit in units.values():
                unit.gated = any_low
                unit.phantom = any_high
            signature = ("G", any_low, any_high)
            if any_low:
                self.reduce_cycles += 1
            elif any_high:
                self.boost_cycles += 1
        else:
            gate = set()
            phantom = set()
            for q, level in enumerate(levels):
                group = QUADRANT_UNIT_GROUPS[q]
                if group is None:
                    continue
                if level is VoltageLevel.LOW:
                    gate.add(group)
                elif level is VoltageLevel.HIGH:
                    phantom.add(group)
            for name, unit in units.items():
                unit.gated = name in gate
                unit.phantom = name in phantom and name not in gate
            signature = ("L", frozenset(gate), frozenset(phantom))
            if gate:
                self.reduce_cycles += 1
            elif phantom:
                self.boost_cycles += 1
        if signature != self._last_signature:
            self.transitions += 1
        self._last_signature = signature
        return levels

    def summary(self):
        """A plain dict of mode, activity, and thresholds."""
        return {
            "mode": self.mode,
            "reduce_cycles": self.reduce_cycles,
            "boost_cycles": self.boost_cycles,
            "transitions": self.transitions,
            "v_low": self.sensors[0].v_low,
            "v_high": self.sensors[0].v_high,
            "delay": self.sensors[0].delay,
        }


class LocalClosedLoopSimulation:
    """Machine + power split + quadrant network + local controller.

    The local analogue of
    :class:`~repro.control.loop.ClosedLoopSimulation`.  Emergencies are
    counted per quadrant *and* for the die-average voltage, so one run
    quantifies what a global view misses.

    Args:
        machine: the (warmed) cycle simulator.
        power_model: its power model.
        quadrant_pdn: a :class:`~repro.pdn.quadrants.QuadrantPdn`.
        controller: a :class:`LocalThresholdController`, or ``None`` for
            an uncontrolled characterization run.
        nominal: nominal voltage for emergency accounting.
    """

    def __init__(self, machine, power_model, quadrant_pdn, controller=None,
                 nominal=NOMINAL_VOLTAGE):
        if not isinstance(quadrant_pdn, QuadrantPdn):
            raise TypeError("quadrant_pdn must be a QuadrantPdn")
        self.machine = machine
        self.power_model = power_model
        self.pdn = quadrant_pdn
        self.controller = controller
        self.nominal = nominal
        i_min, _ = power_model.current_envelope()
        start = np.full(N_QUADRANTS, i_min / N_QUADRANTS)
        self.sim = StateSpaceSimulator(
            quadrant_pdn.discretize(machine.config.clock_hz),
            initial_current=start)
        self.quadrant_counters = [EmergencyCounter(nominal=nominal)
                                  for _ in range(N_QUADRANTS)]
        self.average_counter = EmergencyCounter(nominal=nominal)
        self._energy = 0.0

    def step(self):
        """One coupled cycle; returns the four quadrant voltages."""
        activity = self.machine.step()
        breakdown = self.power_model.breakdown(activity)
        currents = split_power(breakdown) / self.nominal
        self._energy += float(sum(breakdown.values())) \
            * self.machine.config.cycle_time
        voltages = self.sim.step(currents)
        for counter, v in zip(self.quadrant_counters, voltages):
            counter.observe(float(v))
        self.average_counter.observe(float(np.mean(voltages)))
        if self.controller is not None:
            self.controller.step(self.machine, voltages)
        return voltages

    def run(self, max_cycles=None, max_instructions=None):
        """Run to a limit; returns a summary dict."""
        machine = self.machine
        while not machine.done:
            if max_cycles is not None and machine.cycle >= max_cycles:
                break
            if (max_instructions is not None and
                    machine.stats.committed >= max_instructions):
                break
            self.step()
        if self.controller is not None:
            for unit in (machine.fus, machine.dl1, machine.il1):
                unit.gated = False
                unit.phantom = False
        return {
            "cycles": machine.stats.cycles,
            "committed": machine.stats.committed,
            "energy": self._energy,
            "quadrants": [c.summary() for c in self.quadrant_counters],
            "average": self.average_counter.summary(),
            "controller": (self.controller.summary()
                           if self.controller else None),
        }

    @property
    def local_emergency_cycles(self):
        """Out-of-spec cycles summed over quadrants (a cycle bad in two
        quadrants counts twice; use per-quadrant summaries for detail)."""
        return sum(c.emergency_cycles for c in self.quadrant_counters)
