"""Microarchitectural voltage control -- the paper's contribution.

The pieces of Section 4 and 5:

* :mod:`repro.control.emergencies` -- the voltage-emergency definition
  (swings beyond +/-5% of nominal) and accounting.
* :mod:`repro.control.sensor` -- the three-state (Low/Normal/High)
  threshold sensor, with configurable delay and white-noise error.
* :mod:`repro.control.thresholds` -- the control-theoretic design flow
  (the paper's MATLAB/Simulink step, Figure 13): solve for the target
  impedance from the processor's current envelope, and for the voltage
  thresholds that guarantee the +/-5% specification under a given sensor
  delay and error against the worst-case resonant input.
* :mod:`repro.control.actuators` -- the microarchitectural response
  mechanisms: clock-gating / phantom-firing of the FU, FU/DL1, and
  FU/DL1/IL1 unit groups, the ideal actuator, and the asymmetric
  variant from the paper's future-work discussion.
* :mod:`repro.control.controller` -- the threshold controller FSM
  combining sensor and actuator.
* :mod:`repro.control.loop` -- the closed loop: cycle simulator ->
  power model -> PDN -> sensor -> actuator -> (next cycle's) simulator,
  with performance/energy/emergency reporting.
"""

from repro.control.emergencies import (
    EMERGENCY_FRACTION,
    EmergencyCounter,
    count_emergencies,
    is_emergency,
)
from repro.control.sensor import SensorReading, ThresholdSensor, VoltageLevel
from repro.control.thresholds import (
    ThresholdDesign,
    design_pdn,
    solve_target_impedance,
    solve_thresholds,
    worst_case_extremes,
)
from repro.control.actuators import (
    Actuator,
    ActuatorCommand,
    make_actuator,
    ACTUATOR_KINDS,
)
from repro.control.controller import (
    PlausibilityMonitor,
    ThresholdController,
)
from repro.control.loop import ClosedLoopSimulation, LoopResult, run_workload
from repro.control.pid import (
    DigitizingSensor,
    PidController,
    ProportionalActuator,
)
from repro.control.ramp import PessimisticRampController
from repro.control.graded import GradedThresholdController
from repro.control.local import (
    LocalClosedLoopSimulation,
    LocalThresholdController,
)

__all__ = [
    "EMERGENCY_FRACTION",
    "EmergencyCounter",
    "count_emergencies",
    "is_emergency",
    "SensorReading",
    "ThresholdSensor",
    "VoltageLevel",
    "ThresholdDesign",
    "design_pdn",
    "solve_target_impedance",
    "solve_thresholds",
    "worst_case_extremes",
    "Actuator",
    "ActuatorCommand",
    "make_actuator",
    "ACTUATOR_KINDS",
    "PlausibilityMonitor",
    "ThresholdController",
    "ClosedLoopSimulation",
    "LoopResult",
    "run_workload",
    "DigitizingSensor",
    "PidController",
    "ProportionalActuator",
    "PessimisticRampController",
    "GradedThresholdController",
    "LocalClosedLoopSimulation",
    "LocalThresholdController",
]
