"""Voltage-emergency definition and accounting.

The paper (Section 3.3): "Voltage emergencies are defined as instances
where voltage swings greater than 5% occur."  Nominal is 1.0 V, so the
safe band is [0.95, 1.05] V.
"""

import math

import numpy as np

#: Allowed fractional swing around nominal.
EMERGENCY_FRACTION = 0.05

#: Nominal die voltage, volts.
NOMINAL_VOLTAGE = 1.0


#: Comparison slack so that a sample exactly on the 5% boundary (which
#: the definition's "swings greater than 5%" excludes) is never flagged
#: due to float round-off.
_EPS = 1e-9


def is_emergency(voltage, nominal=NOMINAL_VOLTAGE,
                 fraction=EMERGENCY_FRACTION):
    """Whether a single voltage sample is out of spec."""
    return abs(voltage - nominal) > fraction * nominal + _EPS


def count_emergencies(voltages, nominal=NOMINAL_VOLTAGE,
                      fraction=EMERGENCY_FRACTION):
    """Number of out-of-spec samples in a trace (array or iterable)."""
    v = np.asarray(voltages, dtype=float)
    if v.size == 0:
        return 0
    return int(np.count_nonzero(
        np.abs(v - nominal) > fraction * nominal + _EPS))


class EmergencyCounter:
    """Streaming emergency accounting for the closed loop.

    Tracks out-of-spec cycles, distinct emergency *episodes* (maximal
    runs of consecutive out-of-spec cycles), and the observed voltage
    extremes.
    """

    def __init__(self, nominal=NOMINAL_VOLTAGE, fraction=EMERGENCY_FRACTION):
        if nominal <= 0:
            raise ValueError("nominal voltage must be positive")
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        self.nominal = nominal
        self.low_bound = nominal * (1.0 - fraction) - _EPS
        self.high_bound = nominal * (1.0 + fraction) + _EPS
        self.cycles = 0
        self.emergency_cycles = 0
        self.undershoot_cycles = 0
        self.overshoot_cycles = 0
        self.episodes = 0
        self.v_min = float("inf")
        self.v_max = float("-inf")
        self._in_episode = False

    def observe(self, voltage):
        """Fold one cycle's voltage into the counts.

        Raises:
            ValueError: on a NaN/Inf voltage -- a non-finite sample
                would silently poison ``v_min``/``v_max`` and fail
                every band comparison, under-counting emergencies.
        """
        if not math.isfinite(voltage):
            raise ValueError(
                "non-finite voltage %r at cycle %d; emergency counts "
                "would be corrupted (run under a NumericWatchdog to "
                "catch the divergence at its source)"
                % (voltage, self.cycles))
        self.cycles += 1
        if voltage < self.v_min:
            self.v_min = voltage
        if voltage > self.v_max:
            self.v_max = voltage
        low = voltage < self.low_bound
        high = voltage > self.high_bound
        if low or high:
            self.emergency_cycles += 1
            if low:
                self.undershoot_cycles += 1
            else:
                self.overshoot_cycles += 1
            if not self._in_episode:
                self.episodes += 1
                self._in_episode = True
        else:
            self._in_episode = False

    def observe_array(self, voltages):
        """Fold a whole voltage trace into the counts at once.

        Exactly equivalent to calling :meth:`observe` per sample (the
        fast-path parity suite and a hypothesis property test pin this),
        including the failure mode: the finite prefix before the first
        non-finite sample is folded, then the same ``ValueError`` is
        raised with the same message.
        """
        v = np.asarray(voltages, dtype=float)
        if v.ndim != 1:
            raise ValueError("voltages must be 1-D, got shape %r"
                             % (v.shape,))
        bad = None
        finite = np.isfinite(v)
        if not finite.all():
            bad = int(np.argmax(~finite))
            v = v[:bad]
        if v.size:
            self.cycles += int(v.size)
            v_min = float(v.min())
            v_max = float(v.max())
            if v_min < self.v_min:
                self.v_min = v_min
            if v_max > self.v_max:
                self.v_max = v_max
            low = v < self.low_bound
            high = v > self.high_bound
            emergency = low | high
            n_emergency = int(np.count_nonzero(emergency))
            if n_emergency:
                n_low = int(np.count_nonzero(low))
                self.emergency_cycles += n_emergency
                self.undershoot_cycles += n_low
                self.overshoot_cycles += n_emergency - n_low
                # An episode starts at every False->True edge, with the
                # streaming in-episode flag as the carry-in.
                prev = np.empty_like(emergency)
                prev[0] = self._in_episode
                prev[1:] = emergency[:-1]
                self.episodes += int(np.count_nonzero(emergency & ~prev))
            self._in_episode = bool(emergency[-1])
        if bad is not None:
            value = float(np.asarray(voltages, dtype=float)[bad])
            raise ValueError(
                "non-finite voltage %r at cycle %d; emergency counts "
                "would be corrupted (run under a NumericWatchdog to "
                "catch the divergence at its source)"
                % (value, self.cycles))

    @property
    def in_emergency(self):
        """Whether the most recent observed cycle was out of spec
        (exposed so the closed loop can trace episode edges)."""
        return self._in_episode

    @property
    def frequency(self):
        """Fraction of observed cycles that were out of spec."""
        if self.cycles == 0:
            return 0.0
        return self.emergency_cycles / self.cycles

    @property
    def any(self):
        """Whether any emergency occurred."""
        return self.emergency_cycles > 0

    def summary(self):
        """A plain dict of the counts and extremes."""
        return {
            "cycles": self.cycles,
            "emergency_cycles": self.emergency_cycles,
            "undershoot_cycles": self.undershoot_cycles,
            "overshoot_cycles": self.overshoot_cycles,
            "episodes": self.episodes,
            "frequency": self.frequency,
            "v_min": self.v_min if self.cycles else None,
            "v_max": self.v_max if self.cycles else None,
        }
