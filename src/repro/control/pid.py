"""P-I-D voltage control (the paper's Section 6 exploration).

The paper considers PID controllers (as prior thermal work used) and
raises two concerns: a PID needs a *digitized* voltage reading rather
than a 3-state threshold sensor (more complexity and latency), and the
multiply-accumulate control law adds response delay.  This module
implements the machinery so the comparison can be run:

* :class:`DigitizingSensor` -- an ADC-style sensor: quantized voltage
  with configurable resolution, conversion delay, and noise.
* :class:`ProportionalActuator` -- maps a control effort in [-1, 1]
  onto graded gating/phantom-firing of the unit groups (a PID's output
  is continuous; the microarchitecture's levers are discrete, so effort
  is quantized onto increasing group subsets).
* :class:`PidController` -- a textbook discrete PID with anti-windup,
  driving the proportional actuator.

Default gains come from :func:`default_gains`, scaled from the
network's physical parameters.
"""

import random

from repro.control.actuators import ActuatorCommand


class DigitizingSensor:
    """ADC-style voltage sensor.

    Args:
        v_min / v_max: conversion range, volts.
        bits: resolution; readings quantize to ``2**bits`` levels.
        delay: conversion latency in cycles (the paper expects this to
            exceed the threshold sensor's 1-2 cycles).
        error: white-noise amplitude, volts (applied before
            quantization).
        seed: noise RNG seed.
    """

    def __init__(self, v_min=0.90, v_max=1.10, bits=6, delay=3, error=0.0,
                 seed=0):
        if v_max <= v_min:
            raise ValueError("v_max must exceed v_min")
        if bits < 1:
            raise ValueError("need at least 1 bit")
        if delay < 0 or error < 0:
            raise ValueError("delay and error must be non-negative")
        self.v_min = v_min
        self.v_max = v_max
        self.bits = bits
        self.levels = 2 ** bits
        self.lsb = (v_max - v_min) / self.levels
        self.delay = int(delay)
        self.error = error
        self._rng = random.Random(seed)
        self._history = []

    def observe(self, voltage):
        """Feed the true voltage; returns the quantized, delayed reading."""
        self._history.append(voltage)
        if len(self._history) > self.delay + 1:
            self._history.pop(0)
        v = self._history[0]
        if self.error > 0.0:
            v += self._rng.uniform(-self.error, self.error)
        v = min(max(v, self.v_min), self.v_max - 1e-12)
        code = int((v - self.v_min) / self.lsb)
        return self.v_min + (code + 0.5) * self.lsb

    def reset(self):
        """Clear the conversion pipeline (between runs)."""
        self._history = []


class ProportionalActuator:
    """Discretized proportional actuation.

    Positive effort (voltage sagging) gates unit groups, coarsest
    levers last; negative effort phantom-fires them.  Effort magnitude
    picks how many groups engage:

    ====================  =========================
    |effort|              groups engaged
    ====================  =========================
    < 1/3                 none
    1/3 .. 2/3            fu
    2/3 .. 1              fu + dl1
    >= 1                  fu + dl1 + il1
    ====================  =========================
    """

    _LADDER = ((), ("fu",), ("fu", "dl1"), ("fu", "dl1", "il1"))

    def __init__(self):
        self.reduce_cycles = 0
        self.boost_cycles = 0
        self.kind = "proportional"

    def _groups_for(self, magnitude):
        if magnitude >= 1.0:
            return self._LADDER[3]
        return self._LADDER[int(magnitude * 3.0)]

    def apply_effort(self, machine, effort):
        """Drive gating/phantom flags from a control effort in [-1, 1]."""
        effort = max(-1.0, min(1.0, effort))
        gate = self._groups_for(effort) if effort > 0 else ()
        phantom = self._groups_for(-effort) if effort < 0 else ()
        units = {"fu": machine.fus, "dl1": machine.dl1, "il1": machine.il1}
        for name, unit in units.items():
            unit.gated = name in gate
            unit.phantom = name in phantom
        if gate:
            self.reduce_cycles += 1
        if phantom:
            self.boost_cycles += 1

    def release(self, machine):
        """Drop all actuation (effort zero)."""
        self.apply_effort(machine, 0.0)


def default_gains(pdn, i_min, i_max):
    """Empirically tuned gains for the canonical network.

    Effectively a PD controller: proportional action engages the first
    actuation rung at ~40 mV of error, derivative action (scaled to the
    resonant period) damps the ringing, and the integral gain defaults
    to zero -- a workload whose mean voltage sits below the setpoint
    (any busy program, through its IR drop) winds an integrator up until
    the machine is permanently throttled, one of the practical problems
    the paper's Section 6 alludes to.
    """
    period = pdn.resonant_period_cycles()
    kp = 8.0
    ki = 0.0
    kd = kp * period / 60.0
    return kp, ki, kd


class PidController:
    """Discrete PID on the voltage error, with anti-windup.

    Args:
        kp / ki / kd: gains (per volt of error; output is effort).
        sensor: a :class:`DigitizingSensor` (defaults to a 6-bit,
            3-cycle ADC).
        setpoint: regulation target, volts.
        actuator: a :class:`ProportionalActuator`.
        integral_limit: anti-windup clamp on the integral term's
            contribution (in effort units).
    """

    def __init__(self, kp, ki, kd, sensor=None, setpoint=1.0,
                 actuator=None, integral_limit=1.0):
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.sensor = sensor if sensor is not None else DigitizingSensor()
        self.setpoint = setpoint
        self.actuator = actuator if actuator is not None \
            else ProportionalActuator()
        self.integral_limit = integral_limit
        self._integral = 0.0
        self._last_error = None
        self.reduce_cycles = 0
        self.boost_cycles = 0
        self.transitions = 0

    def step(self, machine, voltage):
        """Observe the true voltage, compute effort, actuate.

        Error convention: sagging voltage gives positive error and
        positive (gating) effort.
        """
        reading = self.sensor.observe(voltage)
        error = self.setpoint - reading
        self._integral += self.ki * error
        self._integral = max(-self.integral_limit,
                             min(self.integral_limit, self._integral))
        derivative = 0.0
        if self._last_error is not None:
            derivative = error - self._last_error
        self._last_error = error
        effort = self.kp * error + self._integral + self.kd * derivative
        self.actuator.apply_effort(machine, effort)
        if effort > 1.0 / 3.0:
            self.reduce_cycles += 1
            command = ActuatorCommand.REDUCE
        elif effort < -1.0 / 3.0:
            self.boost_cycles += 1
            command = ActuatorCommand.BOOST
        else:
            command = ActuatorCommand.NONE
        return command

    def summary(self):
        """A plain dict of the loop activity and gains."""
        return {
            "reduce_cycles": self.reduce_cycles,
            "boost_cycles": self.boost_cycles,
            "transitions": self.transitions,
            "kp": self.kp,
            "ki": self.ki,
            "kd": self.kd,
            "delay": self.sensor.delay,
            "actuator": self.actuator.kind,
        }
