"""The threshold controller FSM (Section 4.1) and its fail-safe.

Combines a :class:`~repro.control.sensor.ThresholdSensor` with an
:class:`~repro.control.actuators.Actuator`: while the (delayed, noisy)
sensor reports Voltage Low the controlled units are clock-gated; while
it reports Voltage High they are phantom-fired; otherwise the machine
runs normally.  "Once a normal voltage level has been restored, the
processor transitions back into normal operating mode and standard
execution resumes."

Beyond the paper, the controller can carry a
:class:`PlausibilityMonitor`: when the sensor's readings stop being
physically believable (latched at one emergency level far longer than
the network dynamics allow, or persistently outside any real voltage),
the controller declares the sensor faulty and degrades to the
pessimistic current-driven ramp
(:class:`~repro.control.ramp.PessimisticRampController`) as a
fail-safe throttle -- trading the performance the paper's greedy policy
buys for continued protection without a trustworthy sensor.
"""

import numpy as np

from repro.control.actuators import Actuator, ActuatorCommand
from repro.control.sensor import VoltageLevel


class PlausibilityMonitor:
    """Declares a sensor faulty when its readings stop making sense.

    Two independent detectors, both tunable:

    * *stuck*: the sensor has asserted the same non-NORMAL level for
      ``stuck_cycles`` consecutive cycles.  A healthy loop cannot stay
      in an emergency that long -- actuation moves the voltage back
      within a few resonant periods -- so a latched LOW/HIGH means the
      comparator (or its wiring) is gone.  NORMAL is never treated as
      stuck: a quiet workload legitimately reads NORMAL forever.
    * *out-of-bounds*: the observed voltage has been outside
      ``[v_min, v_max]`` (or non-finite) for ``bound_cycles``
      consecutive cycles.  The bounds are physical-plausibility limits,
      far wider than the emergency thresholds.

    Args:
        stuck_cycles: consecutive identical non-NORMAL readings before
            the sensor is declared stuck.
        v_min / v_max: plausible observed-voltage envelope, volts.
        bound_cycles: consecutive out-of-envelope readings before the
            sensor is declared implausible.
    """

    def __init__(self, stuck_cycles=500, v_min=0.0, v_max=2.0,
                 bound_cycles=64):
        if stuck_cycles < 1:
            raise ValueError("stuck_cycles must be at least 1")
        if bound_cycles < 1:
            raise ValueError("bound_cycles must be at least 1")
        if not v_min < v_max:
            raise ValueError("v_min (%g) must be below v_max (%g)"
                             % (v_min, v_max))
        self.stuck_cycles = int(stuck_cycles)
        self.bound_cycles = int(bound_cycles)
        self.v_min = v_min
        self.v_max = v_max
        self._level = None
        self._level_run = 0
        self._oob_run = 0

    def observe(self, reading):
        """Fold one reading; returns a reason string when the sensor
        should be declared faulty, else ``None``."""
        if reading.level is self._level:
            self._level_run += 1
        else:
            self._level = reading.level
            self._level_run = 1
        if (self._level is not VoltageLevel.NORMAL and
                self._level_run >= self.stuck_cycles):
            return ("sensor stuck at %s for %d cycles"
                    % (self._level.name, self._level_run))
        # NaN fails both comparisons, so `not (min <= v <= max)` also
        # catches non-finite readings.
        observed = reading.observed
        if not (self.v_min <= observed <= self.v_max):
            self._oob_run += 1
            if self._oob_run >= self.bound_cycles:
                return ("sensor reading %r outside [%g, %g] V for %d "
                        "cycles" % (observed, self.v_min, self.v_max,
                                    self._oob_run))
        else:
            self._oob_run = 0
        return None

    def commit_normal_run(self, n):
        """Fold ``n`` consecutive NORMAL, in-bounds readings at once.

        The speculative loop calls this when committing a chunk whose
        every reading was NORMAL and inside ``[v_min, v_max]``: the
        level run extends (or restarts at NORMAL), the stuck detector
        never fires (NORMAL is exempt), and the out-of-bounds run
        resets to zero exactly as ``n`` scalar :meth:`observe` calls
        would leave it.
        """
        if self._level is VoltageLevel.NORMAL:
            self._level_run += n
        else:
            self._level = VoltageLevel.NORMAL
            self._level_run = n
        self._oob_run = 0

    def reset(self):
        """Forget run-length state (between runs)."""
        self._level = None
        self._level_run = 0
        self._oob_run = 0


class ThresholdController:
    """Sensor + decision logic + actuator (+ optional fail-safe).

    Args:
        sensor: a :class:`~repro.control.sensor.ThresholdSensor` or any
            object with the same ``observe``/``reset`` protocol (e.g. a
            :class:`~repro.faults.injectors.FaultySensor`).
        actuator: an :class:`Actuator`; defaults to the ideal actuator.
        monitor: a :class:`PlausibilityMonitor`, or ``None`` to trust
            the sensor unconditionally (the paper's model).
        failsafe: the degraded-mode controller used once the monitor
            declares the sensor faulty; anything with the ramp's
            ``step_current`` protocol.  Defaults to a
            :class:`~repro.control.ramp.PessimisticRampController`
            when a monitor is given.

    Use :meth:`step` once per cycle from the closed loop.
    """

    #: Tells the closed loop to pass the cycle's current along with the
    #: voltage, so the fail-safe ramp can throttle on it.
    accepts_current = True

    def __init__(self, sensor, actuator=None, monitor=None, failsafe=None):
        if not hasattr(sensor, "observe"):
            raise TypeError("sensor must provide observe(); got %r"
                            % type(sensor))
        self.sensor = sensor
        self.actuator = actuator if actuator is not None else Actuator()
        self.monitor = monitor
        if failsafe is None and monitor is not None:
            from repro.control.ramp import PessimisticRampController
            failsafe = PessimisticRampController(actuator=self.actuator)
        self.failsafe = failsafe
        self.failsafe_active = False
        self.failsafe_transitions = 0
        self.failsafe_reason = None
        self.command = ActuatorCommand.NONE
        self.reduce_cycles = 0
        self.boost_cycles = 0
        self.transitions = 0
        # Optional TraceRecorder (attach_telemetry): command
        # transitions, actuation windows, and fail-safe trips.
        self._trace = None

    @classmethod
    def from_design(cls, design, actuator=None, seed=0, monitor=None,
                    failsafe=None):
        """Build a controller from a solved
        :class:`~repro.control.thresholds.ThresholdDesign`.

        The sensor inherits the design's delay and error (the thresholds
        are already margined for the error).
        """
        from repro.control.sensor import ThresholdSensor
        sensor = ThresholdSensor(design.v_low, design.v_high,
                                 delay=design.delay, error=design.error,
                                 seed=seed)
        return cls(sensor, actuator=actuator, monitor=monitor,
                   failsafe=failsafe)

    def attach_telemetry(self, telemetry):
        """Wire a :class:`~repro.telemetry.Telemetry` bundle into the
        controller and its sensor (the closed loop calls this).  Only
        an enabled trace recorder is kept; everything else stays on
        the zero-cost path."""
        trace = telemetry.trace if telemetry.trace.enabled else None
        self._trace = trace
        if trace is not None:
            attach = getattr(self.sensor, "attach_trace", None)
            if attach is not None:
                attach(trace)

    def _trace_command(self, previous, command):
        """Emit the transition instant plus actuation window edges."""
        trace = self._trace
        trace.instant("controller.command", "controller",
                      {"from": previous.name, "to": command.name})
        if previous is ActuatorCommand.REDUCE:
            trace.end("actuator.gate", "actuator")
        elif previous is ActuatorCommand.BOOST:
            trace.end("actuator.phantom", "actuator")
        if command is ActuatorCommand.REDUCE:
            trace.begin("actuator.gate", "actuator")
        elif command is ActuatorCommand.BOOST:
            trace.begin("actuator.phantom", "actuator")

    def _enter_failsafe(self, machine, reason):
        """Latch the degraded mode: drop threshold actuation and hand
        the machine to the current-driven ramp."""
        self.failsafe_active = True
        self.failsafe_transitions += 1
        self.failsafe_reason = reason
        if self._trace is not None:
            self._trace.instant("failsafe.enter", "failsafe",
                                {"reason": reason})
            if self.command is not ActuatorCommand.NONE:
                self._trace_command(self.command, ActuatorCommand.NONE)
        self.command = ActuatorCommand.NONE
        self.actuator.apply(machine, ActuatorCommand.NONE)

    def step(self, machine, voltage, current=None):
        """Observe this cycle's voltage and actuate for the next cycle.

        Args:
            machine: the cycle simulator to actuate.
            voltage: the true die voltage this cycle.
            current: the die current this cycle, amperes; only needed
                when a monitor/fail-safe is configured (the closed loop
                passes it automatically).

        Returns the issued :class:`ActuatorCommand`.
        """
        if self.failsafe_active:
            return self._step_failsafe(machine, current)
        reading = self.sensor.observe(voltage)
        if self.monitor is not None:
            reason = self.monitor.observe(reading)
            if reason is not None:
                self._enter_failsafe(machine, reason)
                return self._step_failsafe(machine, current)
        if reading.level is VoltageLevel.LOW:
            command = ActuatorCommand.REDUCE
        elif reading.level is VoltageLevel.HIGH:
            command = ActuatorCommand.BOOST
        else:
            command = ActuatorCommand.NONE
        if command is not self.command:
            self.transitions += 1
            if self._trace is not None:
                self._trace_command(self.command, command)
        self.command = command
        if command is ActuatorCommand.REDUCE:
            self.reduce_cycles += 1
        elif command is ActuatorCommand.BOOST:
            self.boost_cycles += 1
        self.actuator.apply(machine, command)
        return command

    def _step_failsafe(self, machine, current):
        if self.failsafe is not None and current is not None:
            return self.failsafe.step_current(machine, current)
        # Without a current measurement the safest degraded action is
        # to release actuation entirely (an unknown sensor must not
        # keep the machine gated).
        self.actuator.apply(machine, ActuatorCommand.NONE)
        return ActuatorCommand.NONE

    # ------------------------------------------------------------------
    # Speculation seams (repro.control.loop's chunked engine)
    # ------------------------------------------------------------------

    def speculation_quiescent(self):
        """Whether the controller is fully released and safe to skip.

        True exactly when stepping the controller on another NORMAL
        reading would be a no-op: no fail-safe latched, the actuator
        command is NONE (so ``apply`` keeps every gate/phantom flag
        False), and the sensor's hysteresis state is NORMAL (so the
        plain window comparison decides the next level).  The
        speculative loop only opens a chunk from this state.
        """
        return (not self.failsafe_active and
                self.command is ActuatorCommand.NONE and
                self.sensor._state is VoltageLevel.NORMAL)

    def quiet_prefix(self, observed):
        """Length of the prefix of ``observed`` readings that keep the
        controller quiescent.

        Args:
            observed: float64 array of the sensor's *observed* values
                (delayed, noise already applied) for a chunk entered
                from the quiescent state.

        A reading is quiet when it stays inside the sensor window
        (``v_low <= v <= v_high`` -- from NORMAL the hysteresis bands
        are irrelevant) and, when a plausibility monitor is wired,
        inside its ``[v_min, v_max]`` envelope (an out-of-envelope
        reading advances the monitor's run counter, so it must fall to
        the lockstep path even though it would not actuate).  NaN fails
        every comparison and is therefore never quiet, which safely
        routes non-finite voltages to the lockstep re-execution.
        """
        sensor = self.sensor
        quiet = (observed >= sensor.v_low) & (observed <= sensor.v_high)
        monitor = self.monitor
        if monitor is not None:
            quiet &= ((observed >= monitor.v_min) &
                      (observed <= monitor.v_max))
        bad = ~quiet
        if bad.any():
            return int(np.argmax(bad))
        return observed.size

    def commit_quiet_chunk(self, voltages):
        """Fold a committed all-quiet chunk into sensor/monitor state.

        Args:
            voltages: the chunk's *true* voltages as a list of Python
                floats (the sensor history stores what ``observe`` was
                fed, and the scalar path feeds Python floats -- the
                types must match for downstream byte parity).

        The sensor's delay history extends (its ``maxlen`` keeps the
        last ``delay + 1``), its hysteresis state stays NORMAL, the
        monitor's level/out-of-bounds runs fold analytically, and the
        command/transition counters are untouched -- all exactly as
        ``len(voltages)`` scalar steps with NORMAL readings would
        leave them.  The sensor RNG is *not* advanced here: the
        speculative loop draws the noise samples itself during the
        observed-reading fold.
        """
        self.sensor._history.extend(voltages)
        if self.monitor is not None:
            self.monitor.commit_normal_run(len(voltages))

    def summary(self):
        """A plain dict of the controller activity and settings."""
        s = {
            "reduce_cycles": self.reduce_cycles,
            "boost_cycles": self.boost_cycles,
            "transitions": self.transitions,
            "v_low": self.sensor.v_low,
            "v_high": self.sensor.v_high,
            "delay": self.sensor.delay,
            "error": self.sensor.error,
            "actuator": self.actuator.kind,
            "failsafe_active": self.failsafe_active,
            "failsafe_transitions": self.failsafe_transitions,
            "failsafe_reason": self.failsafe_reason,
        }
        if self.failsafe is not None:
            s["failsafe_reduce_cycles"] = self.failsafe.reduce_cycles
        return s
