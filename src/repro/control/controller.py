"""The threshold controller FSM (Section 4.1).

Combines a :class:`~repro.control.sensor.ThresholdSensor` with an
:class:`~repro.control.actuators.Actuator`: while the (delayed, noisy)
sensor reports Voltage Low the controlled units are clock-gated; while
it reports Voltage High they are phantom-fired; otherwise the machine
runs normally.  "Once a normal voltage level has been restored, the
processor transitions back into normal operating mode and standard
execution resumes."
"""

from repro.control.actuators import Actuator, ActuatorCommand
from repro.control.sensor import ThresholdSensor, VoltageLevel


class ThresholdController:
    """Sensor + decision logic + actuator.

    Args:
        sensor: a :class:`ThresholdSensor` (carries thresholds, delay,
            and error).
        actuator: an :class:`Actuator`; defaults to the ideal actuator.

    Use :meth:`step` once per cycle from the closed loop.
    """

    def __init__(self, sensor, actuator=None):
        if not isinstance(sensor, ThresholdSensor):
            raise TypeError("sensor must be a ThresholdSensor")
        self.sensor = sensor
        self.actuator = actuator if actuator is not None else Actuator()
        self.command = ActuatorCommand.NONE
        self.reduce_cycles = 0
        self.boost_cycles = 0
        self.transitions = 0

    @classmethod
    def from_design(cls, design, actuator=None, seed=0):
        """Build a controller from a solved
        :class:`~repro.control.thresholds.ThresholdDesign`.

        The sensor inherits the design's delay and error (the thresholds
        are already margined for the error).
        """
        sensor = ThresholdSensor(design.v_low, design.v_high,
                                 delay=design.delay, error=design.error,
                                 seed=seed)
        return cls(sensor, actuator=actuator)

    def step(self, machine, voltage):
        """Observe this cycle's voltage and actuate for the next cycle.

        Returns the issued :class:`ActuatorCommand`.
        """
        reading = self.sensor.observe(voltage)
        if reading.level is VoltageLevel.LOW:
            command = ActuatorCommand.REDUCE
        elif reading.level is VoltageLevel.HIGH:
            command = ActuatorCommand.BOOST
        else:
            command = ActuatorCommand.NONE
        if command is not self.command:
            self.transitions += 1
        self.command = command
        if command is ActuatorCommand.REDUCE:
            self.reduce_cycles += 1
        elif command is ActuatorCommand.BOOST:
            self.boost_cycles += 1
        self.actuator.apply(machine, command)
        return command

    def summary(self):
        """A plain dict of the controller activity and settings."""
        return {
            "reduce_cycles": self.reduce_cycles,
            "boost_cycles": self.boost_cycles,
            "transitions": self.transitions,
            "v_low": self.sensor.v_low,
            "v_high": self.sensor.v_high,
            "delay": self.sensor.delay,
            "error": self.sensor.error,
            "actuator": self.actuator.kind,
        }
