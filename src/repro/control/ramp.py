"""A pessimistic ramp controller -- the strawman of Section 2.3.

The paper argues a microarchitectural controller can afford to be
*greedy*: let current jump immediately when work arrives, because short
bursts cannot move the voltage much (Figure 3), and intervene only when
the threshold sensor says danger is near.  The pessimistic alternative
it contrasts -- "a more pessimistic policy that slowly re-activated
execution units to lessen the impact of the swing" -- throttles every
low-to-high power transition whether or not the voltage was at risk.

:class:`PessimisticRampController` implements that strawman so the
ablation bench can quantify what greediness buys: it watches the
*current* (not the voltage) and, whenever the draw rises faster than a
slew budget allows, gates the functional units for the next cycle,
enforcing a gradual ramp.  It provides no worst-case guarantee; it
exists to be measured against.
"""

from repro.control.actuators import Actuator, ActuatorCommand


class PessimisticRampController:
    """Slew-rate limiter on the processor current.

    Args:
        max_step: largest allowed cycle-to-cycle current increase, in
            amperes; rises beyond it trigger a gating cycle.
        actuator: the gating mechanism (defaults to FU-only, the
            lightest-touch throttle).
    """

    def __init__(self, max_step=2.0, actuator=None):
        if max_step <= 0:
            raise ValueError("max_step must be positive")
        self.max_step = max_step
        self.actuator = actuator if actuator is not None else Actuator("fu")
        self._last_current = None
        self.reduce_cycles = 0
        self.boost_cycles = 0
        self.transitions = 0

    def step_current(self, machine, current):
        """Observe this cycle's current; throttle the next if it rose
        too fast.  Returns the issued command."""
        if (self._last_current is not None and
                current - self._last_current > self.max_step):
            command = ActuatorCommand.REDUCE
            self.reduce_cycles += 1
        else:
            command = ActuatorCommand.NONE
        self._last_current = current
        self.actuator.apply(machine, command)
        return command

    def summary(self):
        """A plain dict of the throttle activity and settings."""
        return {
            "reduce_cycles": self.reduce_cycles,
            "boost_cycles": self.boost_cycles,
            "transitions": self.transitions,
            "max_step": self.max_step,
            "actuator": self.actuator.kind,
        }
