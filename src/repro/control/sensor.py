"""The three-state threshold voltage sensor.

Section 4.2: the sensor "registers one of three possible output values
to the compensation logic: Voltage Low, Voltage Normal, and Voltage
High" -- it does not digitize the level.  Real implementations (bandgap
comparators, inverter-chain delay detectors) have 1-2 cycles of latency
and bounded error; both are modeled here: readings are delayed by
``delay`` cycles and perturbed by white noise of amplitude ``error``.
"""

import enum
import random
from collections import deque


class VoltageLevel(enum.Enum):
    """The sensor's three-valued output."""

    LOW = -1
    NORMAL = 0
    HIGH = 1


class SensorReading:
    """One sensor output: the level plus the (noisy, delayed) voltage it
    was derived from (exposed for analysis; the controller only uses
    ``level``)."""

    __slots__ = ("level", "observed")

    def __init__(self, level, observed):
        self.level = level
        self.observed = observed


class ThresholdSensor:
    """Delayed, noisy threshold comparison.

    Args:
        v_low: voltage-low threshold (volts).
        v_high: voltage-high threshold (volts).
        delay: reading latency in cycles; the level reported this cycle
            reflects the true voltage ``delay`` cycles ago.  Zero means
            a same-cycle reading.
        error: white-noise amplitude (volts); each reading is perturbed
            by a uniform sample in ``[-error, +error]``, following the
            paper's random-number-generator noise injection (Section 4.5).
        seed: RNG seed for reproducible noise.
    """

    def __init__(self, v_low, v_high, delay=0, error=0.0, seed=0,
                 hysteresis=0.0):
        if v_low >= v_high:
            raise ValueError("v_low (%g) must be below v_high (%g)"
                             % (v_low, v_high))
        if delay < 0:
            raise ValueError("delay must be non-negative")
        if error < 0:
            raise ValueError("error must be non-negative")
        if hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        if v_low + hysteresis >= v_high - hysteresis:
            raise ValueError("hysteresis bands overlap the window")
        self.v_low = v_low
        self.v_high = v_high
        self.delay = int(delay)
        self.error = error
        #: Deassertion margin, volts.  Once LOW asserts it holds until the
        #: reading recovers past ``v_low + hysteresis`` (symmetrically for
        #: HIGH).  Holding actuation *longer* than the solved design never
        #: weakens the worst-case guarantee -- it only trades performance/
        #: energy for fewer controller transitions (comparator chatter).
        self.hysteresis = hysteresis
        self._rng = random.Random(seed)
        # Pending true voltages, oldest first.  A bounded deque keeps
        # observe() O(1) for any delay (a list with pop(0) is O(delay)
        # per cycle, which the sensor-delay sweeps feel).
        self._history = deque(maxlen=self.delay + 1)
        self._state = VoltageLevel.NORMAL
        # Optional TraceRecorder (attach_trace); level transitions are
        # emitted as "sensor.level" instants when one is attached.
        self._trace = None

    def observe(self, voltage):
        """Feed the current true voltage; returns this cycle's reading.

        Until ``delay`` cycles of history exist, the sensor reports the
        oldest voltage it has seen (the power-on level).
        """
        self._history.append(voltage)  # maxlen evicts the stalest entry
        observed = self._history[0]
        if self.error > 0.0:
            observed = observed + self._rng.uniform(-self.error, self.error)
        if observed < self.v_low:
            level = VoltageLevel.LOW
        elif observed > self.v_high:
            level = VoltageLevel.HIGH
        elif (self._state is VoltageLevel.LOW and
                observed < self.v_low + self.hysteresis):
            level = VoltageLevel.LOW      # hold until recovered past band
        elif (self._state is VoltageLevel.HIGH and
                observed > self.v_high - self.hysteresis):
            level = VoltageLevel.HIGH
        else:
            level = VoltageLevel.NORMAL
        if self._trace is not None and level is not self._state:
            self._trace.instant("sensor.level", "sensor",
                                {"from": self._state.name,
                                 "to": level.name})
        self._state = level
        return SensorReading(level, observed)

    def attach_trace(self, trace):
        """Emit level-transition events into a
        :class:`~repro.telemetry.trace.TraceRecorder` (events inherit
        the recorder's current ``cycle`` stamp)."""
        self._trace = trace

    def reset(self):
        """Clear delay history and hysteresis state (between runs)."""
        self._history.clear()
        self._state = VoltageLevel.NORMAL

    @property
    def window_mv(self):
        """The safe operating window, millivolts (Table 3's rightmost
        column)."""
        return (self.v_high - self.v_low) * 1000.0
