"""Graded (two-stage) threshold control.

The paper's Section 6 invites "more sophisticated control approaches"
between the 3-state threshold scheme and full PID.  A natural middle
point keeps the threshold structure -- comparators, no digitization --
but adds one more level per side:

* crossing the **soft** low threshold gates only the functional units
  (cheap, mild);
* crossing the **hard** low threshold gates the full FU/DL1/IL1 group
  (the solved, guaranteed response);

and symmetrically for the high side with phantom firing.  The hard
thresholds come from the standard solver with the coarse actuator, so
the worst-case guarantee is untouched: the soft stage only *adds*
current reduction (or boost) before the hard stage would engage, which
can only shrink the excursion.  What the soft stage buys is measured by
``bench_ext_graded.py``: fewer full-group actuations for the same
protection.
"""

from repro.control.actuators import Actuator, ActuatorCommand


class GradedThresholdController:
    """Four-threshold, five-state controller.

    Args:
        design: a solved
            :class:`~repro.control.thresholds.ThresholdDesign` for the
            *hard* stage (coarse actuator).
        soft_margin: distance (volts) of the soft thresholds inside the
            hard ones.
        soft_actuator / hard_actuator: the mild and full responses;
            default FU-only and FU/DL1/IL1.
    """

    def __init__(self, design, soft_margin=0.005, soft_actuator=None,
                 hard_actuator=None):
        if soft_margin <= 0:
            raise ValueError("soft_margin must be positive")
        if design.v_low + soft_margin >= design.v_high - soft_margin:
            raise ValueError("soft margins overlap the operating window")
        self.design = design
        self.v_low_hard = design.v_low
        self.v_low_soft = design.v_low + soft_margin
        self.v_high_hard = design.v_high
        self.v_high_soft = design.v_high - soft_margin
        self.delay = design.delay
        self.soft_actuator = soft_actuator or Actuator("fu")
        self.hard_actuator = hard_actuator or Actuator("fu_dl1_il1")
        self._pending = []
        self.soft_reduce_cycles = 0
        self.hard_reduce_cycles = 0
        self.soft_boost_cycles = 0
        self.hard_boost_cycles = 0
        self.transitions = 0
        self._last = (None, ActuatorCommand.NONE)

    #: Exposed for the closed loop's summary plumbing.
    @property
    def actuator(self):
        """The hard-stage actuator (for the closed loop plumbing)."""
        return self.hard_actuator

    @property
    def reduce_cycles(self):
        """Total reduce cycles across both stages."""
        return self.soft_reduce_cycles + self.hard_reduce_cycles

    @property
    def boost_cycles(self):
        """Total boost cycles across both stages."""
        return self.soft_boost_cycles + self.hard_boost_cycles

    def step(self, machine, voltage):
        """Observe the true voltage and drive the staged response."""
        self._pending.append(voltage)
        if len(self._pending) > self.delay + 1:
            self._pending.pop(0)
        observed = self._pending[0]

        if observed < self.v_low_hard:
            stage, command = "hard", ActuatorCommand.REDUCE
            self.hard_reduce_cycles += 1
        elif observed < self.v_low_soft:
            stage, command = "soft", ActuatorCommand.REDUCE
            self.soft_reduce_cycles += 1
        elif observed > self.v_high_hard:
            stage, command = "hard", ActuatorCommand.BOOST
            self.hard_boost_cycles += 1
        elif observed > self.v_high_soft:
            stage, command = "soft", ActuatorCommand.BOOST
            self.soft_boost_cycles += 1
        else:
            stage, command = None, ActuatorCommand.NONE

        if (stage, command) != self._last:
            self.transitions += 1
        self._last = (stage, command)

        # Exactly one actuator drives the machine; clear the other.
        if stage == "hard":
            self.soft_actuator.apply(machine, ActuatorCommand.NONE)
            self.hard_actuator.apply(machine, command)
        elif stage == "soft":
            self.hard_actuator.apply(machine, ActuatorCommand.NONE)
            self.soft_actuator.apply(machine, command)
        else:
            self.hard_actuator.apply(machine, ActuatorCommand.NONE)
            self.soft_actuator.apply(machine, ActuatorCommand.NONE)
        return command

    def summary(self):
        """A plain dict of per-stage activity and thresholds."""
        return {
            "reduce_cycles": self.reduce_cycles,
            "boost_cycles": self.boost_cycles,
            "soft_reduce_cycles": self.soft_reduce_cycles,
            "hard_reduce_cycles": self.hard_reduce_cycles,
            "soft_boost_cycles": self.soft_boost_cycles,
            "hard_boost_cycles": self.hard_boost_cycles,
            "transitions": self.transitions,
            "v_low": self.v_low_hard,
            "v_high": self.v_high_hard,
            "delay": self.delay,
            "error": self.design.error,
            "actuator": "graded(%s->%s)" % (self.soft_actuator.kind,
                                            self.hard_actuator.kind),
        }
