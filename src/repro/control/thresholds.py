"""Control-theoretic design of the threshold controller (Figure 13).

This module replaces the paper's MATLAB/Simulink step.  The design flow:

1. Analyze the processor power model for its current envelope
   ``[i_min, i_max]`` and the supply network for its resonant frequency.
2. Solve for the **target impedance**: the peak impedance at which the
   theoretical worst-case input -- a full-envelope square wave at the
   resonant frequency -- keeps the die voltage within +/-5% of nominal
   with no control at all.  "N% of target impedance" networks scale this
   peak (Table 2's sweep).
3. Solve for the **voltage thresholds**: the widest ``(v_low, v_high)``
   window such that a threshold controller with a given sensor delay,
   reacting by forcing the current to its actuator's response envelope,
   provably keeps the worst case in spec (Table 3).  Sensor error
   narrows the window by the error bound on each side (Section 4.5).

The worst-case analysis is adversarial simulation on the exact
discretized network: the "program" plays the resonant square wave except
where the controller overrides it.  Because the network is linear and
the input set is bounded by the envelope, the square wave at resonance
maximizes droop, and safety against it bounds safety against any
program (the property the paper's guarantees rest on).
"""

import math
from dataclasses import dataclass

from repro.pdn.discrete import DiscretePdn
from repro.pdn.rlc import (
    NOMINAL_CLOCK_HZ,
    NOMINAL_DC_RESISTANCE,
    NOMINAL_RESONANT_HZ,
    PdnParameters,
    SecondOrderPdn,
)

#: Nominal die voltage the regulator holds at minimum power (Section 3.1).
NOMINAL_VOLTAGE = 1.0

#: The +/- voltage specification.
SPEC_FRACTION = 0.05


class ControlInfeasibleError(RuntimeError):
    """No threshold setting can meet the spec (actuator too weak or
    sensor too slow) -- the paper's 'unstable' FU-only regime."""


@dataclass(frozen=True)
class ThresholdDesign:
    """Solved controller design.

    Attributes:
        v_low / v_high: thresholds in volts.
        delay: sensor delay (cycles) the design guarantees.
        error: sensor error (volts) the thresholds are margined for.
        i_min / i_max: processor current envelope used as the adversary.
        i_reduce / i_boost: actuator response currents.
        v_worst_low / v_worst_high: voltage extremes reached in the
            verified worst case (within spec by construction).
    """

    v_low: float
    v_high: float
    delay: int
    error: float
    i_min: float
    i_max: float
    i_reduce: float
    i_boost: float
    v_worst_low: float
    v_worst_high: float

    @property
    def window_mv(self):
        """Safe operating window, millivolts (Table 3)."""
        return (self.v_high - self.v_low) * 1000.0


def observe_thresholds(i_min, i_max, delay, error=0.0,
                       nominal=NOMINAL_VOLTAGE, fraction=SPEC_FRACTION):
    """Threshold design for the ``"observe"`` (sensor-only) actuator.

    An observe-only controller has no lever, so there is nothing to
    solve: :func:`solve_thresholds` would (correctly) declare any
    zero-response actuator infeasible.  Instead the sensor thresholds
    sit on the emergency-spec band edges, margined inward by the
    sensor error so a noisy reading flags a level only when the true
    voltage could plausibly be past the edge.  The response currents
    degenerate to the envelope itself (``i_reduce = i_max``,
    ``i_boost = i_min``: a no-op response leaves the adversary free),
    and the "worst case" extremes are simply the band edges -- the
    design guarantees observation, not containment.

    Raises:
        ControlInfeasibleError: the error margin eats the whole band
            (``error >= nominal * fraction``), leaving no window.
    """
    v_low = nominal * (1.0 - fraction) + error
    v_high = nominal * (1.0 + fraction) - error
    if not v_low < v_high:
        raise ControlInfeasibleError(
            "sensor error %.4f V leaves no observation window inside "
            "the +/-%.0f%% band" % (error, 100.0 * fraction))
    return ThresholdDesign(v_low=v_low, v_high=v_high, delay=int(delay),
                           error=float(error), i_min=float(i_min),
                           i_max=float(i_max), i_reduce=float(i_max),
                           i_boost=float(i_min),
                           v_worst_low=nominal * (1.0 - fraction),
                           v_worst_high=nominal * (1.0 + fraction))


def pdn_with_regulator(peak_impedance, i_min,
                       dc_resistance=NOMINAL_DC_RESISTANCE,
                       resonant_hz=NOMINAL_RESONANT_HZ,
                       nominal=NOMINAL_VOLTAGE):
    """A network whose die voltage is exactly ``nominal`` at ``i_min``.

    The paper assumes "a capable voltage regulator can maintain the
    ideal supply level of 1.0 V when the processor is at its minimum
    power level"; the regulator setpoint therefore sits ``R * i_min``
    above nominal.
    """
    params = PdnParameters.from_spec(
        dc_resistance=dc_resistance,
        resonant_hz=resonant_hz,
        peak_impedance=peak_impedance,
        vdd=nominal + dc_resistance * i_min)
    return SecondOrderPdn(params)


def worst_case_extremes(pdn, i_min, i_max, clock_hz=NOMINAL_CLOCK_HZ,
                        n_periods=40):
    """Voltage extremes under the uncontrolled worst-case input.

    Runs the full-envelope resonant square wave in both phase polarities
    from both equilibria and returns the global ``(v_min, v_max)``.
    """
    discrete = DiscretePdn(pdn, clock_hz=clock_hz)
    v_min = float("inf")
    v_max = float("-inf")
    for high_first in (True, False):
        wave = _square_wave(pdn, i_min, i_max, clock_hz, n_periods,
                            high_first)
        start = i_min if high_first else i_max
        v = discrete.simulate(wave, initial_current=start)
        v_min = min(v_min, float(v.min()))
        v_max = max(v_max, float(v.max()))
    return v_min, v_max


def _square_wave(pdn, i_min, i_max, clock_hz, n_periods, high_first,
                 phase_offset=0):
    from repro.pdn.waveforms import resonant_square_wave
    period = pdn.resonant_period_cycles(clock_hz)
    lead = int(math.ceil(2 * period)) + int(phase_offset)
    n = int(math.ceil(lead + n_periods * period))
    return resonant_square_wave(pdn, n, i_min, i_max, clock_hz=clock_hz,
                                start=lead, phase_high_first=high_first)


def solve_target_impedance(i_min, i_max,
                           dc_resistance=NOMINAL_DC_RESISTANCE,
                           resonant_hz=NOMINAL_RESONANT_HZ,
                           clock_hz=NOMINAL_CLOCK_HZ,
                           nominal=NOMINAL_VOLTAGE,
                           fraction=SPEC_FRACTION,
                           tolerance=1e-4):
    """Peak impedance at which the worst case exactly meets the spec.

    Bisection on peak impedance: at the returned value, the
    uncontrolled full-envelope resonant square wave reaches but does not
    exceed +/- ``fraction`` of nominal -- the industry definition of
    target impedance made operational (Section 2.1).
    """
    if i_max <= i_min:
        raise ValueError("i_max must exceed i_min")
    allowed = fraction * nominal

    def excursion(peak):
        pdn = pdn_with_regulator(peak, i_min, dc_resistance=dc_resistance,
                                 resonant_hz=resonant_hz, nominal=nominal)
        v_min, v_max = worst_case_extremes(pdn, i_min, i_max,
                                           clock_hz=clock_hz)
        return max(nominal - v_min, v_max - nominal)

    lo = dc_resistance * 1.05
    hi = dc_resistance * 2.0
    while excursion(hi) < allowed:
        hi *= 2.0
        if hi > 1.0:
            raise RuntimeError("could not bracket the target impedance")
    if excursion(lo) > allowed:
        raise ControlInfeasibleError(
            "even a critically-damped network violates the spec for this "
            "current envelope; the DC IR drop alone is too large")
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if excursion(mid) > allowed:
            hi = mid
        else:
            lo = mid
        if hi - lo < tolerance * lo:
            break
    return lo


# ----------------------------------------------------------------------
# Threshold solving
# ----------------------------------------------------------------------

def _controlled_extremes(pdn, v_low, v_high, delay, i_min, i_max,
                         i_reduce, i_boost, clock_hz, n_periods,
                         high_first, phase_offset=0):
    """Voltage extremes of the threshold-controlled worst case.

    Mirrors the closed loop's timing exactly: each cycle the current is
    chosen from the sensor reading of ``delay + 1`` cycles ago (one
    cycle of structural feedback latency plus the sensor delay), then
    the network advances one cycle.
    """
    wave = _square_wave(pdn, i_min, i_max, clock_hz, n_periods, high_first,
                        phase_offset=phase_offset)
    discrete = DiscretePdn(pdn, clock_hz=clock_hz)
    a00, a01 = discrete.ad[0]
    a10, a11 = discrete.ad[1]
    b0, b1 = discrete.bd[:, 0]
    vdd = pdn.params.vdd
    e0, e1 = discrete.ed[:, 0] * vdd
    start = i_min if high_first else i_max
    x0, x1 = discrete.equilibrium_state(start)
    v_min = v_max = x1
    pending = [x1] * (delay + 1)   # sensor pipeline of true voltages
    for i_program in wave:
        observed = pending[0]
        if observed < v_low:
            current = i_reduce
        elif observed > v_high:
            current = i_boost
        else:
            current = i_program
        nx0 = a00 * x0 + a01 * x1 + b0 * current + e0
        nx1 = a10 * x0 + a11 * x1 + b1 * current + e1
        x0, x1 = nx0, nx1
        if x1 < v_min:
            v_min = x1
        elif x1 > v_max:
            v_max = x1
        pending.append(x1)
        pending.pop(0)
    return v_min, v_max


def solve_thresholds(pdn, i_min, i_max, delay, i_reduce=None, i_boost=None,
                     error=0.0, clock_hz=NOMINAL_CLOCK_HZ,
                     nominal=NOMINAL_VOLTAGE, fraction=SPEC_FRACTION,
                     n_periods=30, resolution=5e-5):
    """Solve the widest safe threshold window for one sensor delay.

    Bisection on each threshold against the adversarial resonant square
    wave (both polarities), with the other threshold held at its current
    estimate; two alternating passes are enough because widening one
    threshold only weakens the other side's worst case monotonically.

    Args:
        pdn: the (scaled) supply network.
        i_min / i_max: program current envelope (the adversary's range).
        delay: sensor delay in cycles.
        i_reduce / i_boost: actuator response currents; default to the
            envelope bounds (the ideal actuator).
        error: sensor error bound in volts; the returned thresholds are
            margined inward by this amount (Section 4.5).

    Returns:
        A :class:`ThresholdDesign`.

    Raises:
        ControlInfeasibleError: if no window satisfies the spec.
    """
    if i_reduce is None:
        i_reduce = i_min
    if i_boost is None:
        i_boost = i_max
    lo_bound = nominal * (1.0 - fraction)
    hi_bound = nominal * (1.0 + fraction)

    period = pdn.resonant_period_cycles(clock_hz)
    step = max(1, int(round(period / 8.0)))
    offsets = tuple(range(0, int(round(period)), step))

    def safe(v_low, v_high):
        for high_first in (True, False):
            for offset in offsets:
                v_mn, v_mx = _controlled_extremes(
                    pdn, v_low, v_high, delay, i_min, i_max, i_reduce,
                    i_boost, clock_hz, n_periods, high_first,
                    phase_offset=offset)
                if v_mn < lo_bound or v_mx > hi_bound:
                    return False
        return True

    v_low, v_high = nominal - 1e-4, nominal + 1e-4
    if not safe(v_low, v_high):
        raise ControlInfeasibleError(
            "delay=%d: even hair-trigger thresholds cannot hold the spec "
            "(actuator lever too weak or sensor too slow)" % delay)

    for _ in range(2):
        # Widen v_low downward as far as safety allows.
        lo, hi = lo_bound, v_low
        if safe(lo, v_high):
            v_low = lo
        else:
            while hi - lo > resolution:
                mid = 0.5 * (lo + hi)
                if safe(mid, v_high):
                    hi = mid
                else:
                    lo = mid
            v_low = hi
        # Widen v_high upward as far as safety allows.
        lo, hi = v_high, hi_bound
        if safe(v_low, hi):
            v_high = hi
        else:
            while hi - lo > resolution:
                mid = 0.5 * (lo + hi)
                if safe(v_low, mid):
                    lo = mid
                else:
                    hi = mid
            v_high = lo

    v_mins = []
    v_maxs = []
    for high_first in (True, False):
        for offset in offsets:
            v_mn, v_mx = _controlled_extremes(
                pdn, v_low, v_high, delay, i_min, i_max, i_reduce, i_boost,
                clock_hz, n_periods, high_first, phase_offset=offset)
            v_mins.append(v_mn)
            v_maxs.append(v_mx)

    v_low_final = v_low + error
    v_high_final = v_high - error
    if v_low_final >= v_high_final:
        raise ControlInfeasibleError(
            "delay=%d, error=%.3f V: the error margin consumes the whole "
            "operating window" % (delay, error))
    return ThresholdDesign(
        v_low=v_low_final, v_high=v_high_final, delay=delay, error=error,
        i_min=i_min, i_max=i_max, i_reduce=i_reduce, i_boost=i_boost,
        v_worst_low=min(v_mins), v_worst_high=max(v_maxs))


def design_pdn(power_model, impedance_percent=100.0,
               dc_resistance=NOMINAL_DC_RESISTANCE,
               resonant_hz=NOMINAL_RESONANT_HZ,
               clock_hz=NOMINAL_CLOCK_HZ,
               nominal=NOMINAL_VOLTAGE):
    """Build the supply network for a machine at N% of target impedance.

    Runs the first half of the Figure 13 flow: takes the processor's
    current envelope from its power model, solves the target impedance,
    scales it, and returns the network with the regulator setpoint
    applied.
    """
    i_min, i_max = power_model.current_envelope()
    target = solve_target_impedance(
        i_min, i_max, dc_resistance=dc_resistance, resonant_hz=resonant_hz,
        clock_hz=clock_hz, nominal=nominal)
    return pdn_with_regulator(
        target * impedance_percent / 100.0, i_min,
        dc_resistance=dc_resistance, resonant_hz=resonant_hz,
        nominal=nominal)
