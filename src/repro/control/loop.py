"""The closed loop: processor -> power -> PDN -> controller -> processor.

This is the paper's Figure 7 coupling plus the Figure 12 feedback path:
each cycle the simulator's activity becomes watts, watts become amperes,
the discretized network produces the die voltage, and the threshold
controller (if any) gates or phantom-fires unit groups for the *next*
cycle.  The one cycle of structural latency is the minimum any real
implementation has; the sensor's own delay stacks on top, matching the
timing the threshold solver designs against.
"""

import itertools
import math
import operator
import os

import numpy as np

from repro.control.actuators import Actuator
from repro.control.controller import PlausibilityMonitor, ThresholdController
from repro.control.emergencies import EmergencyCounter, NOMINAL_VOLTAGE
from repro.control.sensor import ThresholdSensor
from repro.faults.watchdog import (
    NumericWatchdog,
    SimulationBudgetExceeded,
    SimulationDiverged,
)
from repro.pdn.discrete import PdnSimulator, zoh_recurrence
from repro.telemetry import NULL_TELEMETRY

#: Millivolt-resolution buckets for the per-cycle voltage histogram
#: (spans the plausible die-voltage range around a 1.0 V nominal).
VOLTAGE_BUCKETS = tuple(0.80 + 0.01 * i for i in range(41))


class _TraceBuffer:
    """Growable float64 buffer for per-cycle traces.

    Replaces a plain Python list so the lockstep loop appends without
    boxing churn at result time and the open-loop fast path can copy a
    whole batch in one ``extend``; :meth:`view` hands the result out as
    a numpy view without a final ``asarray`` copy.
    """

    __slots__ = ("_data", "_n")

    def __init__(self, capacity=4096):
        self._data = np.empty(capacity)
        self._n = 0

    def __len__(self):
        return self._n

    def append(self, value):
        n = self._n
        data = self._data
        if n == data.size:
            grown = np.empty(data.size * 2)
            grown[:n] = data
            self._data = data = grown
        data[n] = value
        self._n = n + 1

    def extend(self, values):
        v = np.asarray(values, dtype=float)
        n = self._n
        need = n + v.size
        data = self._data
        if need > data.size:
            capacity = data.size
            while capacity < need:
                capacity *= 2
            grown = np.empty(capacity)
            grown[:n] = data[:n]
            self._data = data = grown
        data[n:need] = v
        self._n = need

    def view(self):
        """The recorded samples as a (shared-storage) numpy view."""
        return self._data[:self._n]


class LoopResult:
    """Outcome of one closed-loop run.

    Attributes:
        cycles / committed / ipc: performance figures.
        energy: total energy over the run, joules.
        emergencies: an :class:`EmergencyCounter` summary dict.
        machine_stats: the :class:`~repro.uarch.stats.MachineStats`.
        controller: the controller summary dict (``None`` if uncontrolled).
        voltages / currents: per-cycle traces (numpy arrays) when trace
            recording was enabled, else ``None``.
    """

    def __init__(self, cycles, committed, energy, emergencies,
                 machine_stats, controller=None, voltages=None,
                 currents=None):
        self.cycles = cycles
        self.committed = committed
        self.energy = energy
        self.emergencies = emergencies
        self.machine_stats = machine_stats
        self.controller = controller
        self.voltages = voltages
        self.currents = currents

    @property
    def ipc(self):
        """Committed instructions per cycle over the run."""
        if self.cycles == 0:
            return 0.0
        return self.committed / self.cycles

    def __repr__(self):
        return ("LoopResult(cycles=%d, committed=%d, ipc=%.3f, "
                "energy=%.3g J, emergencies=%d)" % (
                    self.cycles, self.committed, self.ipc, self.energy,
                    self.emergencies["emergency_cycles"]))


class ClosedLoopSimulation:
    """Couples a machine, a power model, a PDN, and (optionally) a
    threshold controller.

    Args:
        machine: a :class:`~repro.uarch.core.Machine` (already fast-
            forwarded if warm-up is desired).
        power_model: the machine's :class:`~repro.power.model.PowerModel`.
        pdn: a :class:`~repro.pdn.rlc.SecondOrderPdn`, normally built by
            :func:`repro.control.thresholds.design_pdn` so the regulator
            setpoint matches the machine's minimum current.
        controller: a :class:`~repro.control.controller.ThresholdController`
            or ``None`` for an uncontrolled (characterization) run.
        nominal: nominal die voltage for power->current conversion and
            emergency accounting.
        record_traces: keep per-cycle voltage and current arrays.
        pdn_sim: an existing :class:`~repro.pdn.discrete.PdnSimulator`
            to reuse (it is reset to the machine's minimum current);
            campaign runs pass one to avoid re-discretizing the network
            per run.  ``None`` builds a fresh simulator from ``pdn``.
        watchdog: a :class:`~repro.faults.watchdog.NumericWatchdog`
            checking every cycle's voltage; ``None`` installs a default
            one around ``nominal``, ``False`` disables checking.
        budget: a :class:`~repro.faults.watchdog.RunBudget` enforced by
            :meth:`run`, or ``None`` for no budget.
        telemetry: a :class:`~repro.telemetry.Telemetry` bundle, or
            ``None`` for the shared all-null bundle.  An enabled trace
            recorder receives cycle-stamped events (emergency windows,
            watchdog trips, plus the controller's and sensor's own
            events); an enabled metrics registry gets the per-cycle
            voltage histogram and end-of-run gauges; an enabled
            profiler times the PDN step and the controller update.
            Telemetry never changes the simulation: results are
            byte-identical with it on or off.
    """

    #: Set True (per instance, or on the class for a whole test run) to
    #: refuse the open-loop fast path even when eligible; the parity
    #: suite and benchmarks use it to compare the two paths.  Also
    #: disables the speculative chunked path for actuated runs.
    force_lockstep = False

    #: Set False (per instance or class) to refuse the speculative
    #: chunked path for actuated runs while leaving the uncontrolled
    #: fast path alone; ``sweep/serve --no-speculate`` set the
    #: ``REPRO_NO_SPECULATE`` environment variable to the same effect
    #: (the env var propagates to pool workers).
    speculate = True

    def __init__(self, machine, power_model, pdn, controller=None,
                 nominal=NOMINAL_VOLTAGE, record_traces=False,
                 pdn_sim=None, watchdog=None, budget=None,
                 telemetry=None):
        if not (isinstance(nominal, (int, float)) and
                math.isfinite(nominal) and nominal > 0):
            raise ValueError("nominal voltage must be a positive finite "
                             "number, got %r" % (nominal,))
        self.machine = machine
        self.power_model = power_model
        self.pdn = pdn
        self.controller = controller
        self.nominal = nominal
        self.record_traces = record_traces
        i_min, _ = power_model.current_envelope()
        if pdn_sim is not None:
            pdn_sim.reset(initial_current=i_min)
            self.pdn_sim = pdn_sim
        else:
            self.pdn_sim = PdnSimulator(pdn,
                                        clock_hz=machine.config.clock_hz,
                                        initial_current=i_min)
        if watchdog is None:
            watchdog = NumericWatchdog.for_nominal(nominal)
        self.watchdog = watchdog or None
        self.budget = budget
        self.counter = EmergencyCounter(nominal=nominal)
        self._energy = 0.0
        self._voltages = _TraceBuffer() if record_traces else None
        self._currents = _TraceBuffer() if record_traces else None
        # Current-driven controllers (the pessimistic ramp strawman)
        # expose step_current instead of the voltage-driven step.
        self._controller_uses_current = (
            controller is not None and hasattr(controller, "step_current"))
        # Fail-safe-capable controllers take the cycle current alongside
        # the voltage so their degraded-mode ramp can throttle on it.
        self._controller_accepts_current = getattr(
            controller, "accepts_current", False)
        telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.telemetry = telemetry
        # Bind each component once; disabled ones become None so the
        # per-cycle path pays a single `is not None` test each.
        self._trace = telemetry.trace if telemetry.trace.enabled else None
        self._profile = (telemetry.profiler
                         if telemetry.profiler.enabled else None)
        self._m_voltage = (
            telemetry.metrics.histogram("loop.voltage", VOLTAGE_BUCKETS)
            if telemetry.metrics.enabled else None)
        self._in_emergency = False
        if (controller is not None and
                hasattr(controller, "attach_telemetry")):
            controller.attach_telemetry(telemetry)

    def step(self):
        """One cycle of the coupled system; returns the die voltage.

        Raises:
            SimulationDiverged: when the watchdog flags the voltage.
        """
        machine = self.machine
        trace = self._trace
        prof = self._profile
        pdn_sim = self.pdn_sim
        counter = self.counter
        watchdog = self.watchdog
        activity = machine.step()
        power = self.power_model.power(activity)
        current = power / self.nominal
        if trace is not None:
            # Stamp every event this cycle with the timed-region index
            # (PDN steps so far), robust to warm-up cycle offsets.
            trace.cycle = pdn_sim.cycles
        if prof is not None:
            t0 = prof.clock()
            voltage = pdn_sim.step(current)
            prof.add("pdn.step", prof.clock() - t0)
        else:
            voltage = pdn_sim.step(current)
        if watchdog is not None:
            if trace is not None:
                try:
                    watchdog.check(machine.cycle, voltage)
                except SimulationDiverged as exc:
                    trace.instant("watchdog.trip", "watchdog",
                                  {"message": str(exc)})
                    raise
            else:
                watchdog.check(machine.cycle, voltage)
        self._energy += power * machine.config.cycle_time
        counter.observe(voltage)
        if self._m_voltage is not None:
            self._m_voltage.observe(voltage)
        if trace is not None:
            in_emergency = counter.in_emergency
            if in_emergency != self._in_emergency:
                if in_emergency:
                    trace.begin("emergency", "emergency",
                                {"kind": ("undershoot"
                                          if voltage < self.nominal
                                          else "overshoot")})
                else:
                    trace.end("emergency", "emergency")
                self._in_emergency = in_emergency
        if self.record_traces:
            self._voltages.append(voltage)
            self._currents.append(current)
        if self.controller is not None:
            if prof is not None:
                t0 = prof.clock()
            if self._controller_uses_current:
                self.controller.step_current(machine, current)
            elif self._controller_accepts_current:
                self.controller.step(machine, voltage, current)
            else:
                self.controller.step(machine, voltage)
            if prof is not None:
                prof.add("controller.step", prof.clock() - t0)
        return voltage

    @property
    def fast_path_eligible(self):
        """Whether :meth:`run` may batch cycles instead of locksteping.

        The open-loop fast path applies exactly when nothing needs the
        per-cycle voltage while the machine is still running: no
        controller (the feedback edge), no enabled trace recorder or
        profiler (both stamp per-cycle events), and no watchdog wired
        *inside* the PDN simulator (a loop-level :attr:`watchdog` is
        fine -- it is applied to the batch trace with identical
        semantics).  Trace recording and metrics stay available; their
        batch folds are bit-identical to the per-cycle ones.
        """
        return (not self.force_lockstep and self.controller is None and
                self._trace is None and self._profile is None and
                self.pdn_sim.watchdog is None)

    @property
    def speculation_eligible(self):
        """Whether :meth:`run` may use speculative chunked execution.

        The speculative path (see :meth:`_run_speculative`) applies to
        *actuated* runs driven by the plain threshold controller stack:
        a :class:`~repro.control.controller.ThresholdController` over a
        :class:`~repro.control.sensor.ThresholdSensor` and an ideal
        :class:`~repro.control.actuators.Actuator` (exact types -- any
        fault injector wrapper falls back to lockstep), optionally with
        the stock :class:`~repro.control.controller.PlausibilityMonitor`.
        Like the open-loop fast path it needs no per-cycle observers:
        no enabled trace recorder or profiler, no PDN-internal
        watchdog.  ``force_lockstep``, ``speculate = False``, and the
        ``REPRO_NO_SPECULATE`` environment variable all disable it.
        """
        controller = self.controller
        if (self.force_lockstep or not self.speculate or
                type(controller) is not ThresholdController):
            return False
        if os.environ.get("REPRO_NO_SPECULATE"):
            return False
        if type(controller.sensor) is not ThresholdSensor:
            return False
        if type(controller.actuator) is not Actuator:
            return False
        if (controller.monitor is not None and
                type(controller.monitor) is not PlausibilityMonitor):
            return False
        return (self._trace is None and self._profile is None and
                self.pdn_sim.watchdog is None)

    def run(self, max_cycles=None, max_instructions=None, budget=None):
        """Run to completion or a limit; returns a :class:`LoopResult`.

        Uncontrolled, untraced runs take the open-loop fast path (see
        :attr:`fast_path_eligible`): the machine runs ahead collecting
        per-cycle activity, then the power, PDN, watchdog, emergency,
        and histogram folds happen as array operations.  The result --
        every counter, trace byte, and raised exception -- is identical
        to the lockstep path; only the wall-clock differs.

        Args:
            max_cycles / max_instructions: soft limits (a clean stop).
            budget: overrides the constructor's
                :class:`~repro.faults.watchdog.RunBudget`; exceeding a
                budget raises ``SimulationBudgetExceeded`` (a hard
                abort, unlike the soft limits).
        """
        machine = self.machine
        budget = budget if budget is not None else self.budget
        if budget is not None:
            budget.start()
        prof = self._profile
        t_run = prof.clock() if prof is not None else None
        if self.fast_path_eligible:
            self.telemetry.metrics.counter("loop.fast_path_runs").inc()
            self._run_open_loop(max_cycles, max_instructions, budget)
        elif self.speculation_eligible:
            self._run_speculative(max_cycles, max_instructions, budget)
        else:
            while not machine.done:
                if max_cycles is not None and machine.cycle >= max_cycles:
                    break
                if (max_instructions is not None and
                        machine.stats.committed >= max_instructions):
                    break
                if budget is not None:
                    budget.check(machine.cycle)
                self.step()
        if prof is not None:
            prof.add("loop.run", prof.clock() - t_run)
        if self.controller is not None:
            self.controller.actuator.release(machine)
        metrics = self.telemetry.metrics
        if metrics.enabled:
            stats = machine.stats
            metrics.gauge("loop.cycles").set(stats.cycles)
            metrics.gauge("loop.committed").set(stats.committed)
            metrics.gauge("loop.ipc").set(
                stats.committed / stats.cycles if stats.cycles else 0.0)
            metrics.gauge("loop.emergency_cycles").set(
                self.counter.emergency_cycles)
            metrics.gauge("loop.emergency_episodes").set(
                self.counter.episodes)
            if self.controller is not None and hasattr(self.controller,
                                                       "transitions"):
                metrics.gauge("controller.transitions").set(
                    self.controller.transitions)
        return LoopResult(
            cycles=machine.stats.cycles,
            committed=machine.stats.committed,
            energy=self._energy,
            emergencies=self.counter.summary(),
            machine_stats=machine.stats,
            controller=(self.controller.summary()
                        if self.controller else None),
            voltages=(self._voltages.view()
                      if self.record_traces else None),
            currents=(self._currents.view()
                      if self.record_traces else None),
        )

    def _run_open_loop(self, max_cycles, max_instructions, budget):
        """The batch fast path behind :meth:`run` (same limits).

        Three phases:

        1. *Collect*: run the machine alone, grabbing one tuple of
           power-model inputs per cycle (plus ``committed``/``fetched``
           for stats reconstruction and a running mispredictions
           snapshot).  The loop conditions mirror the lockstep loop
           exactly, including the per-iteration budget check.
        2. *Batch*: activity columns -> watts
           (:meth:`~repro.power.model.PowerModel.power_batch`) ->
           amperes -> the shared ZOH kernel
           (:meth:`~repro.pdn.discrete.PdnSimulator.run`) -> volts.
           Every kernel reproduces the scalar path's floating-point
           operations in order, so the arrays are bit-identical.
        3. *Fold*: energy (cumulative sum seeded by the running total),
           emergency counter, voltage histogram, recorded traces, and
           the watchdog scan.  On a watchdog trip or a non-finite
           voltage, only the prefix the lockstep path would have
           processed is folded, the aggregate stats are trimmed to the
           cycle the lockstep path would have stopped at, and the same
           exception (cycle, value, reason, tail -- byte-identical
           message) is raised.  After a trip the *microarchitectural*
           state (caches, predictor, in-flight window) and the PDN
           simulator's internal state reflect the overshoot cycles;
           nothing observes either post-mortem, every aggregate anyone
           reads is trimmed.
        """
        machine = self.machine
        stats = machine.stats
        power_model = self.power_model
        fields = power_model.batch_fields + ("committed", "fetched")
        getter = operator.attrgetter(*fields)
        step = machine.step

        c0 = machine.cycle
        cycles0 = stats.cycles
        committed0 = stats.committed
        fetched0 = stats.fetched
        issued0 = stats.total_issued
        gated_fu0 = stats.gated_fu_cycles
        gated_dl10 = stats.gated_dl1_cycles
        gated_il10 = stats.gated_il1_cycles
        phantom_fu0 = stats.phantom_fu_cycles

        rows = []
        append = rows.append
        mispredict_snaps = []
        snap_append = mispredict_snaps.append
        budget_exc = None
        while not machine.done:
            if max_cycles is not None and machine.cycle >= max_cycles:
                break
            if (max_instructions is not None and
                    stats.committed >= max_instructions):
                break
            if budget is not None:
                try:
                    budget.check(machine.cycle)
                except SimulationBudgetExceeded as exc:
                    # Everything collected so far was fully processed by
                    # the lockstep path before its budget trip; fold it
                    # all, then re-raise.
                    budget_exc = exc
                    break
            append(getter(step()))
            snap_append(stats.mispredictions)

        n = len(rows)
        if n == 0:
            if budget_exc is not None:
                raise budget_exc
            return
        arr = np.asarray(rows, dtype=float)
        cols = {name: arr[:, i] for i, name in enumerate(fields)}
        powers = power_model.power_batch(cols)
        currents = powers / self.nominal
        voltages = self.pdn_sim.run(currents)

        watchdog = self.watchdog
        trip = watchdog.first_violation(voltages) \
            if watchdog is not None else None
        bad = None
        if trip is None:
            finite = np.isfinite(voltages)
            if not finite.all():
                bad = int(np.argmax(~finite))

        # How much of the batch the lockstep path would have folded:
        # a watchdog trip at sample k stops before that cycle's energy
        # and counter updates; an unwatched non-finite voltage at k is
        # caught by the counter *after* the energy update.
        good = n if trip is None and bad is None else \
            (trip if trip is not None else bad)
        energy_upto = good + 1 if bad is not None else good

        cycle_time = machine.config.cycle_time
        if energy_upto:
            self._energy = float(np.cumsum(np.concatenate(
                ([self._energy], powers[:energy_upto] * cycle_time)))[-1])
        if self._m_voltage is not None and good:
            self._m_voltage.observe_array(voltages[:good])
        if self.record_traces and good:
            self._voltages.extend(voltages[:good])
            self._currents.extend(currents[:good])

        if trip is None and bad is None:
            self.counter.observe_array(voltages)
            if watchdog is not None:
                watchdog.check_array(c0 + 1, voltages)
            if budget_exc is not None:
                raise budget_exc
            return

        # Divergence: trim the aggregates to the k+1 machine steps the
        # lockstep path would have taken, then raise its exception.
        kept = good + 1
        stats.cycles = cycles0 + kept
        stats.committed = committed0 + int(cols["committed"][:kept].sum())
        stats.fetched = fetched0 + int(cols["fetched"][:kept].sum())
        stats.total_issued = issued0 + \
            int(cols["issued_total"][:kept].sum())
        stats.gated_fu_cycles = gated_fu0 + \
            int(np.count_nonzero(cols["fu_gated"][:kept]))
        stats.gated_dl1_cycles = gated_dl10 + \
            int(np.count_nonzero(cols["dl1_gated"][:kept]))
        stats.gated_il1_cycles = gated_il10 + \
            int(np.count_nonzero(cols["il1_gated"][:kept]))
        stats.phantom_fu_cycles = phantom_fu0 + \
            int(np.count_nonzero(cols["fu_phantom"][:kept]))
        stats.mispredictions = mispredict_snaps[good]
        machine.cycle = c0 + kept
        if trip is not None:
            self.counter.observe_array(voltages[:good])
            watchdog.check_array(c0 + 1, voltages)
            raise AssertionError("watchdog re-scan must raise")
        # No watchdog: the counter itself rejects the non-finite sample
        # (folding the finite prefix first), same message and cycle.
        self.counter.observe_array(voltages[:good + 1])
        raise AssertionError("counter re-fold must raise")

    def _run_speculative(self, max_cycles, max_instructions, budget):
        """Speculative chunked execution for actuated runs (same limits).

        While the controller is quiescent (released, sensor NORMAL, no
        fail-safe) the actuator is a no-op, so the machine evolves
        exactly as if the controller were not stepped at all.  The
        engine exploits that: snapshot the machine at the chunk
        boundary (:class:`~repro.core.snapshot.MachineSnapshot`), run it
        ahead up to K cycles collecting power-model inputs, fold PDN
        and delayed/noisy sensor vectorized on *local* state, and scan
        for the first cycle where anything non-quiet would happen --
        a sensed voltage outside the sensor's release band, a
        plausibility-monitor out-of-bounds reading, or a watchdog trip.
        A clean chunk commits with the existing bit-identical batch
        folds (energy cumsum, emergency counter, histogram, traces,
        sensor history, monitor run-lengths) and the PDN/budget side
        effects the lockstep path would have produced.  A dirty chunk
        restores the snapshot (plus budget counters and the sensor
        noise RNG); the prefix before the event is *known* quiet, so
        the machine bare-steps through it while the already-computed
        folds commit as slices (no second fold -- determinism makes
        re-execution reproduce the folded activities exactly), and
        lockstep execution covers only the actuation window
        (:meth:`_lockstep_until_quiet`) before speculation resumes.
        Every committed cycle and every lockstep cycle is
        byte-identical to a ``force_lockstep`` run, including raised
        exceptions; the parity suite proves it.

        Telemetry: ``loop.spec_chunks`` counts speculation attempts,
        ``loop.spec_rollbacks`` the dirty ones, and
        ``loop.spec_committed_cycles`` the cycles committed without
        lockstep execution.
        """
        # Lazy import: repro.core.__init__ imports this module.
        from repro.core.snapshot import ChunkPolicy, MachineSnapshot

        machine = self.machine
        stats = machine.stats
        controller = self.controller
        sensor = controller.sensor
        power_model = self.power_model
        pdn_sim = self.pdn_sim
        watchdog = self.watchdog
        counter = self.counter
        fields = power_model.batch_fields
        getter = operator.attrgetter(*fields)
        step = machine.step
        cycle_time = machine.config.cycle_time
        policy = ChunkPolicy()
        metrics = self.telemetry.metrics
        m_chunks = metrics.counter("loop.spec_chunks")
        m_rollbacks = metrics.counter("loop.spec_rollbacks")
        m_committed = metrics.counter("loop.spec_committed_cycles")

        while not machine.done:
            if max_cycles is not None and machine.cycle >= max_cycles:
                return
            if (max_instructions is not None and
                    stats.committed >= max_instructions):
                return
            if not controller.speculation_quiescent():
                if budget is not None:
                    budget.check(machine.cycle)
                self.step()
                continue

            k = policy.next_chunk()
            if max_cycles is not None:
                k = min(k, max_cycles - machine.cycle)
            c0 = machine.cycle
            if budget is not None:
                checks0 = budget._checks
                deadline0 = budget._deadline
            rng_state = (sensor._rng.getstate()
                         if sensor.error > 0.0 else None)
            snap = MachineSnapshot(machine)

            # Collect: mirror the lockstep loop's per-cycle conditions.
            # With no budget attached, pure-stall stretches are batched:
            # one real step yields the canonical activity row and
            # Machine.advance_stall covers the provably-identical rest;
            # the row is stored once with a repeat count instead of
            # being replicated.  (A budget keeps the per-cycle check
            # cadence, so it steps every cycle.)
            rows = []
            counts = []
            append = rows.append
            count_append = counts.append
            n = 0
            budget_exc = None
            stall_window = machine.stall_window
            advance_stall = machine.advance_stall
            try:
                while n < k and not machine.done:
                    if (max_instructions is not None and
                            stats.committed >= max_instructions):
                        break
                    if budget is not None:
                        try:
                            budget.check(machine.cycle)
                        except SimulationBudgetExceeded as exc:
                            budget_exc = exc
                            break
                        append(getter(step()))
                        count_append(1)
                        n += 1
                        continue
                    w = stall_window()
                    append(getter(step()))
                    count_append(1)
                    n += 1
                    if w > 1:
                        j = min(w - 1, k - n)
                        if j > 0:
                            advance_stall(j)
                            counts[-1] += j
                            n += j
            except BaseException:
                snap.discard()
                raise
            if n == 0:
                snap.discard()
                if budget_exc is not None:
                    raise budget_exc
                continue
            m_chunks.inc()

            # Batch: activity -> watts -> amperes -> volts, on local
            # PDN state (committed only if the chunk is clean).
            # fromiter over the flattened tuples converts each value
            # with float() exactly like asarray would, several times
            # faster on a list of tuples.  The power model runs on the
            # distinct rows only: equal activity rows see the identical
            # IEEE operations, so np.repeat expanding the per-row watts
            # to per-cycle watts is bit-identical to evaluating every
            # cycle (which is what the scalar path does).
            u = len(rows)
            arr = np.fromiter(
                itertools.chain.from_iterable(rows), dtype=float,
                count=u * len(fields)).reshape(u, len(fields))
            cols = {name: arr[:, i] for i, name in enumerate(fields)}
            powers = power_model.power_batch(cols)
            if u != n:
                powers = np.repeat(powers, counts)
            currents = powers / self.nominal
            coeffs = (pdn_sim._a00, pdn_sim._a01, pdn_sim._a10,
                      pdn_sim._a11, pdn_sim._b0, pdn_sim._b1,
                      pdn_sim._e0, pdn_sim._e1)
            out, x0, x1 = zoh_recurrence(
                coeffs, pdn_sim._x0, pdn_sim._x1, currents.tolist())
            voltages = np.asarray(out)

            # Scan for the first non-quiet cycle.  The lockstep path
            # checks the watchdog before the counter and the counter
            # before the controller within a cycle, so taking the min
            # over candidates preserves its ordering.  A non-finite
            # voltage needs its own scan: without a watchdog, lockstep
            # sees it through the emergency counter at the cycle it
            # appears -- not ``delay`` cycles later through the sensor
            # band check -- so the known-quiet prefix must end just
            # before it and the lockstep re-execution raise the
            # counter's ValueError there.  (With a watchdog the two
            # scans flag the same cycle; the min keeps either.)
            event = None
            if watchdog is not None:
                trip = watchdog.first_violation(voltages)
                if trip is not None:
                    event = trip
            finite = np.isfinite(voltages)
            if not finite.all():
                bad = int(np.argmax(~finite))
                if event is None or bad < event:
                    event = bad
            # Sensor fold (PR 8): observed_k is the delayed sample plus
            # the same sequential RNG draws the scalar sensor makes.
            history = list(sensor._history)
            p = len(history)
            full = (np.concatenate((np.asarray(history, dtype=float),
                                    voltages)) if p else voltages)
            idx = np.arange(p, p + n) - sensor.delay
            np.maximum(idx, 0, out=idx)
            observed = full[idx]
            if rng_state is not None:
                uniform = sensor._rng.uniform
                e = sensor.error
                observed = observed + np.array(
                    [uniform(-e, e) for _ in range(n)])
            quiet_upto = controller.quiet_prefix(observed)
            if quiet_upto < n and (event is None or quiet_upto < event):
                event = quiet_upto

            if event is not None:
                # Dirty chunk: wind the machine back, bare-step it
                # through the known-quiet prefix [0, event), and commit
                # the prefix from the folds already computed -- the
                # machine is deterministic, so re-execution reproduces
                # the folded activities exactly and no second fold is
                # needed.  Lockstep then covers only the actuation
                # window.  (The collect loop's budget verdict is
                # dropped with the restored counters: the re-applied
                # per-cycle checks re-create it on the lockstep side
                # exactly where a force_lockstep run would raise.)
                snap.restore()
                if budget is not None:
                    budget._checks = checks0
                    budget._deadline = deadline0
                if rng_state is not None:
                    sensor._rng.setstate(rng_state)
                m_rollbacks.inc()
                policy.rolled_back()
                done_steps = 0
                budget_exc = None
                while done_steps < event and not machine.done:
                    if (max_instructions is not None and
                            stats.committed >= max_instructions):
                        break
                    if budget is not None:
                        try:
                            budget.check(machine.cycle)
                        except SimulationBudgetExceeded as exc:
                            budget_exc = exc
                            break
                        step()
                        done_steps += 1
                        continue
                    w = machine.stall_window()
                    step()
                    done_steps += 1
                    if w > 1:
                        j = min(w - 1, event - done_steps)
                        if j > 0:
                            machine.advance_stall(j)
                            done_steps += j
                if done_steps:
                    d = done_steps
                    # PDN state at the prefix boundary: re-fold just
                    # the slice (the same scalar recurrence over the
                    # same inputs, so bit-identical to the full fold's
                    # prefix).
                    _, x0, x1 = zoh_recurrence(
                        coeffs, pdn_sim._x0, pdn_sim._x1,
                        currents[:d].tolist())
                    pdn_sim._x0 = x0
                    pdn_sim._x1 = x1
                    pdn_sim.cycles += d
                    v_d = voltages[:d]
                    self._energy = float(np.cumsum(np.concatenate(
                        ([self._energy], powers[:d] * cycle_time)))[-1])
                    counter.observe_array(v_d)
                    if watchdog is not None:
                        watchdog.check_array(c0 + 1, v_d)
                    if self._m_voltage is not None:
                        self._m_voltage.observe_array(v_d)
                    if self.record_traces:
                        self._voltages.extend(v_d)
                        self._currents.extend(currents[:d])
                    if rng_state is not None:
                        # Lockstep draws sensor noise once per cycle;
                        # advance the restored RNG identically.
                        uniform = sensor._rng.uniform
                        e = sensor.error
                        for _ in range(d):
                            uniform(-e, e)
                    controller.commit_quiet_chunk(out[:d])
                    m_committed.inc(d)
                if budget_exc is not None:
                    raise budget_exc
                if done_steps == event:
                    self._lockstep_until_quiet(1, max_cycles,
                                               max_instructions, budget)
                continue

            # Clean chunk: commit with the batch folds.
            snap.discard()
            pdn_sim._x0 = x0
            pdn_sim._x1 = x1
            pdn_sim.cycles += n
            self._energy = float(np.cumsum(np.concatenate(
                ([self._energy], powers * cycle_time)))[-1])
            counter.observe_array(voltages)
            if watchdog is not None:
                watchdog.check_array(c0 + 1, voltages)
            if self._m_voltage is not None:
                self._m_voltage.observe_array(voltages)
            if self.record_traces:
                self._voltages.extend(voltages)
                self._currents.extend(currents)
            # Python floats (the ZOH kernel's native output), so the
            # sensor history matches lockstep's element types exactly.
            controller.commit_quiet_chunk(out)
            m_committed.inc(n)
            policy.committed()
            if budget_exc is not None:
                raise budget_exc

    def _lockstep_until_quiet(self, min_cycles, max_cycles,
                              max_instructions, budget):
        """Lockstep until the controller is quiescent again.

        Args:
            min_cycles: forced lockstep advance before quiescence is
                even tested -- at least the rolled-back event cycle
                itself, so a chunk that rolls back always makes
                progress instead of re-speculating into the same event.
        """
        machine = self.machine
        stats = machine.stats
        controller = self.controller
        target = machine.cycle + min_cycles
        while not machine.done:
            if max_cycles is not None and machine.cycle >= max_cycles:
                return
            if (max_instructions is not None and
                    stats.committed >= max_instructions):
                return
            if (machine.cycle >= target and
                    controller.speculation_quiescent()):
                return
            if budget is not None:
                budget.check(machine.cycle)
            self.step()


def run_workload(stream, pdn, config=None, power_params=None,
                 controller_factory=None, warmup_instructions=60000,
                 max_cycles=30000, max_instructions=None,
                 record_traces=False, telemetry=None, power_model=None):
    """Convenience wrapper: build, warm, and run one workload.

    Args:
        stream: dynamic instruction stream (profile stream, sequencer...).
        pdn: the supply network to couple.
        config: machine configuration (Table 1 default).
        power_params: power model parameters.
        power_model: a prebuilt :class:`~repro.power.model.PowerModel`
            to reuse (its config must match ``config``); callers that
            run many cells against one design pass the design's cached
            model instead of rebuilding the per-unit weight tables per
            cell.  Overrides ``power_params``.
        controller_factory: ``f(machine, power_model) -> controller`` or
            ``None`` for an uncontrolled run.  A factory (rather than an
            instance) because per-run sensors carry state.
        warmup_instructions: functional fast-forward length before the
            timed region.
        max_cycles / max_instructions: timed-region limits.
        record_traces: keep voltage/current arrays on the result.
        telemetry: a :class:`~repro.telemetry.Telemetry` bundle for the
            closed loop (``None`` keeps the zero-cost null default).

    Returns:
        A :class:`LoopResult`.
    """
    from repro.power.model import PowerModel
    from repro.uarch.config import MachineConfig
    from repro.uarch.core import Machine

    config = config or MachineConfig()
    machine = Machine(config, stream)
    if power_model is None:
        power_model = PowerModel(config, power_params)
    if warmup_instructions:
        machine.fast_forward(warmup_instructions)
    controller = (controller_factory(machine, power_model)
                  if controller_factory else None)
    loop = ClosedLoopSimulation(machine, power_model, pdn,
                                controller=controller,
                                record_traces=record_traces,
                                telemetry=telemetry)
    return loop.run(max_cycles=max_cycles, max_instructions=max_instructions)
