"""The closed loop: processor -> power -> PDN -> controller -> processor.

This is the paper's Figure 7 coupling plus the Figure 12 feedback path:
each cycle the simulator's activity becomes watts, watts become amperes,
the discretized network produces the die voltage, and the threshold
controller (if any) gates or phantom-fires unit groups for the *next*
cycle.  The one cycle of structural latency is the minimum any real
implementation has; the sensor's own delay stacks on top, matching the
timing the threshold solver designs against.
"""

import math
import operator

import numpy as np

from repro.control.emergencies import EmergencyCounter, NOMINAL_VOLTAGE
from repro.faults.watchdog import (
    NumericWatchdog,
    SimulationBudgetExceeded,
    SimulationDiverged,
)
from repro.pdn.discrete import PdnSimulator
from repro.telemetry import NULL_TELEMETRY

#: Millivolt-resolution buckets for the per-cycle voltage histogram
#: (spans the plausible die-voltage range around a 1.0 V nominal).
VOLTAGE_BUCKETS = tuple(0.80 + 0.01 * i for i in range(41))


class _TraceBuffer:
    """Growable float64 buffer for per-cycle traces.

    Replaces a plain Python list so the lockstep loop appends without
    boxing churn at result time and the open-loop fast path can copy a
    whole batch in one ``extend``; :meth:`view` hands the result out as
    a numpy view without a final ``asarray`` copy.
    """

    __slots__ = ("_data", "_n")

    def __init__(self, capacity=4096):
        self._data = np.empty(capacity)
        self._n = 0

    def __len__(self):
        return self._n

    def append(self, value):
        n = self._n
        data = self._data
        if n == data.size:
            grown = np.empty(data.size * 2)
            grown[:n] = data
            self._data = data = grown
        data[n] = value
        self._n = n + 1

    def extend(self, values):
        v = np.asarray(values, dtype=float)
        n = self._n
        need = n + v.size
        data = self._data
        if need > data.size:
            capacity = data.size
            while capacity < need:
                capacity *= 2
            grown = np.empty(capacity)
            grown[:n] = data[:n]
            self._data = data = grown
        data[n:need] = v
        self._n = need

    def view(self):
        """The recorded samples as a (shared-storage) numpy view."""
        return self._data[:self._n]


class LoopResult:
    """Outcome of one closed-loop run.

    Attributes:
        cycles / committed / ipc: performance figures.
        energy: total energy over the run, joules.
        emergencies: an :class:`EmergencyCounter` summary dict.
        machine_stats: the :class:`~repro.uarch.stats.MachineStats`.
        controller: the controller summary dict (``None`` if uncontrolled).
        voltages / currents: per-cycle traces (numpy arrays) when trace
            recording was enabled, else ``None``.
    """

    def __init__(self, cycles, committed, energy, emergencies,
                 machine_stats, controller=None, voltages=None,
                 currents=None):
        self.cycles = cycles
        self.committed = committed
        self.energy = energy
        self.emergencies = emergencies
        self.machine_stats = machine_stats
        self.controller = controller
        self.voltages = voltages
        self.currents = currents

    @property
    def ipc(self):
        """Committed instructions per cycle over the run."""
        if self.cycles == 0:
            return 0.0
        return self.committed / self.cycles

    def __repr__(self):
        return ("LoopResult(cycles=%d, committed=%d, ipc=%.3f, "
                "energy=%.3g J, emergencies=%d)" % (
                    self.cycles, self.committed, self.ipc, self.energy,
                    self.emergencies["emergency_cycles"]))


class ClosedLoopSimulation:
    """Couples a machine, a power model, a PDN, and (optionally) a
    threshold controller.

    Args:
        machine: a :class:`~repro.uarch.core.Machine` (already fast-
            forwarded if warm-up is desired).
        power_model: the machine's :class:`~repro.power.model.PowerModel`.
        pdn: a :class:`~repro.pdn.rlc.SecondOrderPdn`, normally built by
            :func:`repro.control.thresholds.design_pdn` so the regulator
            setpoint matches the machine's minimum current.
        controller: a :class:`~repro.control.controller.ThresholdController`
            or ``None`` for an uncontrolled (characterization) run.
        nominal: nominal die voltage for power->current conversion and
            emergency accounting.
        record_traces: keep per-cycle voltage and current arrays.
        pdn_sim: an existing :class:`~repro.pdn.discrete.PdnSimulator`
            to reuse (it is reset to the machine's minimum current);
            campaign runs pass one to avoid re-discretizing the network
            per run.  ``None`` builds a fresh simulator from ``pdn``.
        watchdog: a :class:`~repro.faults.watchdog.NumericWatchdog`
            checking every cycle's voltage; ``None`` installs a default
            one around ``nominal``, ``False`` disables checking.
        budget: a :class:`~repro.faults.watchdog.RunBudget` enforced by
            :meth:`run`, or ``None`` for no budget.
        telemetry: a :class:`~repro.telemetry.Telemetry` bundle, or
            ``None`` for the shared all-null bundle.  An enabled trace
            recorder receives cycle-stamped events (emergency windows,
            watchdog trips, plus the controller's and sensor's own
            events); an enabled metrics registry gets the per-cycle
            voltage histogram and end-of-run gauges; an enabled
            profiler times the PDN step and the controller update.
            Telemetry never changes the simulation: results are
            byte-identical with it on or off.
    """

    #: Set True (per instance, or on the class for a whole test run) to
    #: refuse the open-loop fast path even when eligible; the parity
    #: suite and benchmarks use it to compare the two paths.
    force_lockstep = False

    def __init__(self, machine, power_model, pdn, controller=None,
                 nominal=NOMINAL_VOLTAGE, record_traces=False,
                 pdn_sim=None, watchdog=None, budget=None,
                 telemetry=None):
        if not (isinstance(nominal, (int, float)) and
                math.isfinite(nominal) and nominal > 0):
            raise ValueError("nominal voltage must be a positive finite "
                             "number, got %r" % (nominal,))
        self.machine = machine
        self.power_model = power_model
        self.pdn = pdn
        self.controller = controller
        self.nominal = nominal
        self.record_traces = record_traces
        i_min, _ = power_model.current_envelope()
        if pdn_sim is not None:
            pdn_sim.reset(initial_current=i_min)
            self.pdn_sim = pdn_sim
        else:
            self.pdn_sim = PdnSimulator(pdn,
                                        clock_hz=machine.config.clock_hz,
                                        initial_current=i_min)
        if watchdog is None:
            watchdog = NumericWatchdog.for_nominal(nominal)
        self.watchdog = watchdog or None
        self.budget = budget
        self.counter = EmergencyCounter(nominal=nominal)
        self._energy = 0.0
        self._voltages = _TraceBuffer() if record_traces else None
        self._currents = _TraceBuffer() if record_traces else None
        # Current-driven controllers (the pessimistic ramp strawman)
        # expose step_current instead of the voltage-driven step.
        self._controller_uses_current = (
            controller is not None and hasattr(controller, "step_current"))
        # Fail-safe-capable controllers take the cycle current alongside
        # the voltage so their degraded-mode ramp can throttle on it.
        self._controller_accepts_current = getattr(
            controller, "accepts_current", False)
        telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.telemetry = telemetry
        # Bind each component once; disabled ones become None so the
        # per-cycle path pays a single `is not None` test each.
        self._trace = telemetry.trace if telemetry.trace.enabled else None
        self._profile = (telemetry.profiler
                         if telemetry.profiler.enabled else None)
        self._m_voltage = (
            telemetry.metrics.histogram("loop.voltage", VOLTAGE_BUCKETS)
            if telemetry.metrics.enabled else None)
        self._in_emergency = False
        if (controller is not None and
                hasattr(controller, "attach_telemetry")):
            controller.attach_telemetry(telemetry)

    def step(self):
        """One cycle of the coupled system; returns the die voltage.

        Raises:
            SimulationDiverged: when the watchdog flags the voltage.
        """
        machine = self.machine
        trace = self._trace
        prof = self._profile
        pdn_sim = self.pdn_sim
        counter = self.counter
        watchdog = self.watchdog
        activity = machine.step()
        power = self.power_model.power(activity)
        current = power / self.nominal
        if trace is not None:
            # Stamp every event this cycle with the timed-region index
            # (PDN steps so far), robust to warm-up cycle offsets.
            trace.cycle = pdn_sim.cycles
        if prof is not None:
            t0 = prof.clock()
            voltage = pdn_sim.step(current)
            prof.add("pdn.step", prof.clock() - t0)
        else:
            voltage = pdn_sim.step(current)
        if watchdog is not None:
            if trace is not None:
                try:
                    watchdog.check(machine.cycle, voltage)
                except SimulationDiverged as exc:
                    trace.instant("watchdog.trip", "watchdog",
                                  {"message": str(exc)})
                    raise
            else:
                watchdog.check(machine.cycle, voltage)
        self._energy += power * machine.config.cycle_time
        counter.observe(voltage)
        if self._m_voltage is not None:
            self._m_voltage.observe(voltage)
        if trace is not None:
            in_emergency = counter.in_emergency
            if in_emergency != self._in_emergency:
                if in_emergency:
                    trace.begin("emergency", "emergency",
                                {"kind": ("undershoot"
                                          if voltage < self.nominal
                                          else "overshoot")})
                else:
                    trace.end("emergency", "emergency")
                self._in_emergency = in_emergency
        if self.record_traces:
            self._voltages.append(voltage)
            self._currents.append(current)
        if self.controller is not None:
            if prof is not None:
                t0 = prof.clock()
            if self._controller_uses_current:
                self.controller.step_current(machine, current)
            elif self._controller_accepts_current:
                self.controller.step(machine, voltage, current)
            else:
                self.controller.step(machine, voltage)
            if prof is not None:
                prof.add("controller.step", prof.clock() - t0)
        return voltage

    @property
    def fast_path_eligible(self):
        """Whether :meth:`run` may batch cycles instead of locksteping.

        The open-loop fast path applies exactly when nothing needs the
        per-cycle voltage while the machine is still running: no
        controller (the feedback edge), no enabled trace recorder or
        profiler (both stamp per-cycle events), and no watchdog wired
        *inside* the PDN simulator (a loop-level :attr:`watchdog` is
        fine -- it is applied to the batch trace with identical
        semantics).  Trace recording and metrics stay available; their
        batch folds are bit-identical to the per-cycle ones.
        """
        return (not self.force_lockstep and self.controller is None and
                self._trace is None and self._profile is None and
                self.pdn_sim.watchdog is None)

    def run(self, max_cycles=None, max_instructions=None, budget=None):
        """Run to completion or a limit; returns a :class:`LoopResult`.

        Uncontrolled, untraced runs take the open-loop fast path (see
        :attr:`fast_path_eligible`): the machine runs ahead collecting
        per-cycle activity, then the power, PDN, watchdog, emergency,
        and histogram folds happen as array operations.  The result --
        every counter, trace byte, and raised exception -- is identical
        to the lockstep path; only the wall-clock differs.

        Args:
            max_cycles / max_instructions: soft limits (a clean stop).
            budget: overrides the constructor's
                :class:`~repro.faults.watchdog.RunBudget`; exceeding a
                budget raises ``SimulationBudgetExceeded`` (a hard
                abort, unlike the soft limits).
        """
        machine = self.machine
        budget = budget if budget is not None else self.budget
        if budget is not None:
            budget.start()
        prof = self._profile
        t_run = prof.clock() if prof is not None else None
        if self.fast_path_eligible:
            self.telemetry.metrics.counter("loop.fast_path_runs").inc()
            self._run_open_loop(max_cycles, max_instructions, budget)
        else:
            while not machine.done:
                if max_cycles is not None and machine.cycle >= max_cycles:
                    break
                if (max_instructions is not None and
                        machine.stats.committed >= max_instructions):
                    break
                if budget is not None:
                    budget.check(machine.cycle)
                self.step()
        if prof is not None:
            prof.add("loop.run", prof.clock() - t_run)
        if self.controller is not None:
            self.controller.actuator.release(machine)
        metrics = self.telemetry.metrics
        if metrics.enabled:
            stats = machine.stats
            metrics.gauge("loop.cycles").set(stats.cycles)
            metrics.gauge("loop.committed").set(stats.committed)
            metrics.gauge("loop.ipc").set(
                stats.committed / stats.cycles if stats.cycles else 0.0)
            metrics.gauge("loop.emergency_cycles").set(
                self.counter.emergency_cycles)
            metrics.gauge("loop.emergency_episodes").set(
                self.counter.episodes)
            if self.controller is not None and hasattr(self.controller,
                                                       "transitions"):
                metrics.gauge("controller.transitions").set(
                    self.controller.transitions)
        return LoopResult(
            cycles=machine.stats.cycles,
            committed=machine.stats.committed,
            energy=self._energy,
            emergencies=self.counter.summary(),
            machine_stats=machine.stats,
            controller=(self.controller.summary()
                        if self.controller else None),
            voltages=(self._voltages.view()
                      if self.record_traces else None),
            currents=(self._currents.view()
                      if self.record_traces else None),
        )

    def _run_open_loop(self, max_cycles, max_instructions, budget):
        """The batch fast path behind :meth:`run` (same limits).

        Three phases:

        1. *Collect*: run the machine alone, grabbing one tuple of
           power-model inputs per cycle (plus ``committed``/``fetched``
           for stats reconstruction and a running mispredictions
           snapshot).  The loop conditions mirror the lockstep loop
           exactly, including the per-iteration budget check.
        2. *Batch*: activity columns -> watts
           (:meth:`~repro.power.model.PowerModel.power_batch`) ->
           amperes -> the shared ZOH kernel
           (:meth:`~repro.pdn.discrete.PdnSimulator.run`) -> volts.
           Every kernel reproduces the scalar path's floating-point
           operations in order, so the arrays are bit-identical.
        3. *Fold*: energy (cumulative sum seeded by the running total),
           emergency counter, voltage histogram, recorded traces, and
           the watchdog scan.  On a watchdog trip or a non-finite
           voltage, only the prefix the lockstep path would have
           processed is folded, the aggregate stats are trimmed to the
           cycle the lockstep path would have stopped at, and the same
           exception (cycle, value, reason, tail -- byte-identical
           message) is raised.  After a trip the *microarchitectural*
           state (caches, predictor, in-flight window) and the PDN
           simulator's internal state reflect the overshoot cycles;
           nothing observes either post-mortem, every aggregate anyone
           reads is trimmed.
        """
        machine = self.machine
        stats = machine.stats
        power_model = self.power_model
        fields = power_model.batch_fields + ("committed", "fetched")
        getter = operator.attrgetter(*fields)
        step = machine.step

        c0 = machine.cycle
        cycles0 = stats.cycles
        committed0 = stats.committed
        fetched0 = stats.fetched
        issued0 = stats.total_issued
        gated_fu0 = stats.gated_fu_cycles
        gated_dl10 = stats.gated_dl1_cycles
        gated_il10 = stats.gated_il1_cycles
        phantom_fu0 = stats.phantom_fu_cycles

        rows = []
        append = rows.append
        mispredict_snaps = []
        snap_append = mispredict_snaps.append
        budget_exc = None
        while not machine.done:
            if max_cycles is not None and machine.cycle >= max_cycles:
                break
            if (max_instructions is not None and
                    stats.committed >= max_instructions):
                break
            if budget is not None:
                try:
                    budget.check(machine.cycle)
                except SimulationBudgetExceeded as exc:
                    # Everything collected so far was fully processed by
                    # the lockstep path before its budget trip; fold it
                    # all, then re-raise.
                    budget_exc = exc
                    break
            append(getter(step()))
            snap_append(stats.mispredictions)

        n = len(rows)
        if n == 0:
            if budget_exc is not None:
                raise budget_exc
            return
        arr = np.asarray(rows, dtype=float)
        cols = {name: arr[:, i] for i, name in enumerate(fields)}
        powers = power_model.power_batch(cols)
        currents = powers / self.nominal
        voltages = self.pdn_sim.run(currents)

        watchdog = self.watchdog
        trip = watchdog.first_violation(voltages) \
            if watchdog is not None else None
        bad = None
        if trip is None:
            finite = np.isfinite(voltages)
            if not finite.all():
                bad = int(np.argmax(~finite))

        # How much of the batch the lockstep path would have folded:
        # a watchdog trip at sample k stops before that cycle's energy
        # and counter updates; an unwatched non-finite voltage at k is
        # caught by the counter *after* the energy update.
        good = n if trip is None and bad is None else \
            (trip if trip is not None else bad)
        energy_upto = good + 1 if bad is not None else good

        cycle_time = machine.config.cycle_time
        if energy_upto:
            self._energy = float(np.cumsum(np.concatenate(
                ([self._energy], powers[:energy_upto] * cycle_time)))[-1])
        if self._m_voltage is not None and good:
            self._m_voltage.observe_array(voltages[:good])
        if self.record_traces and good:
            self._voltages.extend(voltages[:good])
            self._currents.extend(currents[:good])

        if trip is None and bad is None:
            self.counter.observe_array(voltages)
            if watchdog is not None:
                watchdog.check_array(c0 + 1, voltages)
            if budget_exc is not None:
                raise budget_exc
            return

        # Divergence: trim the aggregates to the k+1 machine steps the
        # lockstep path would have taken, then raise its exception.
        kept = good + 1
        stats.cycles = cycles0 + kept
        stats.committed = committed0 + int(cols["committed"][:kept].sum())
        stats.fetched = fetched0 + int(cols["fetched"][:kept].sum())
        stats.total_issued = issued0 + \
            int(cols["issued_total"][:kept].sum())
        stats.gated_fu_cycles = gated_fu0 + \
            int(np.count_nonzero(cols["fu_gated"][:kept]))
        stats.gated_dl1_cycles = gated_dl10 + \
            int(np.count_nonzero(cols["dl1_gated"][:kept]))
        stats.gated_il1_cycles = gated_il10 + \
            int(np.count_nonzero(cols["il1_gated"][:kept]))
        stats.phantom_fu_cycles = phantom_fu0 + \
            int(np.count_nonzero(cols["fu_phantom"][:kept]))
        stats.mispredictions = mispredict_snaps[good]
        machine.cycle = c0 + kept
        if trip is not None:
            self.counter.observe_array(voltages[:good])
            watchdog.check_array(c0 + 1, voltages)
            raise AssertionError("watchdog re-scan must raise")
        # No watchdog: the counter itself rejects the non-finite sample
        # (folding the finite prefix first), same message and cycle.
        self.counter.observe_array(voltages[:good + 1])
        raise AssertionError("counter re-fold must raise")


def run_workload(stream, pdn, config=None, power_params=None,
                 controller_factory=None, warmup_instructions=60000,
                 max_cycles=30000, max_instructions=None,
                 record_traces=False, telemetry=None, power_model=None):
    """Convenience wrapper: build, warm, and run one workload.

    Args:
        stream: dynamic instruction stream (profile stream, sequencer...).
        pdn: the supply network to couple.
        config: machine configuration (Table 1 default).
        power_params: power model parameters.
        power_model: a prebuilt :class:`~repro.power.model.PowerModel`
            to reuse (its config must match ``config``); callers that
            run many cells against one design pass the design's cached
            model instead of rebuilding the per-unit weight tables per
            cell.  Overrides ``power_params``.
        controller_factory: ``f(machine, power_model) -> controller`` or
            ``None`` for an uncontrolled run.  A factory (rather than an
            instance) because per-run sensors carry state.
        warmup_instructions: functional fast-forward length before the
            timed region.
        max_cycles / max_instructions: timed-region limits.
        record_traces: keep voltage/current arrays on the result.
        telemetry: a :class:`~repro.telemetry.Telemetry` bundle for the
            closed loop (``None`` keeps the zero-cost null default).

    Returns:
        A :class:`LoopResult`.
    """
    from repro.power.model import PowerModel
    from repro.uarch.config import MachineConfig
    from repro.uarch.core import Machine

    config = config or MachineConfig()
    machine = Machine(config, stream)
    if power_model is None:
        power_model = PowerModel(config, power_params)
    if warmup_instructions:
        machine.fast_forward(warmup_instructions)
    controller = (controller_factory(machine, power_model)
                  if controller_factory else None)
    loop = ClosedLoopSimulation(machine, power_model, pdn,
                                controller=controller,
                                record_traces=record_traces,
                                telemetry=telemetry)
    return loop.run(max_cycles=max_cycles, max_instructions=max_instructions)
