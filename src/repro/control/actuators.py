"""Microarchitectural actuators (Section 5).

An actuator responds to the controller's command by clock-gating (to cut
current during a voltage-low emergency) or phantom-firing (to raise
current during a voltage-high emergency) a set of unit groups on the
cycle simulator:

* ``"fu"`` -- functional units only (fixed and float pipelines); the
  paper finds this lever too small and unstable for delays >= 3.
* ``"fu_dl1"`` -- functional units plus the L1 data cache.
* ``"fu_dl1_il1"`` -- plus the L1 instruction cache (coarsest).
* ``"ideal"`` -- the idealized actuator of Section 4.4: all groups,
  applied with no additional restrictions; used to study sensor
  properties in isolation.
* ``"observe"`` -- no groups at all: the sensor and plausibility
  monitor run and their counters accumulate, but commands never touch
  the machine.  Because an observe-only loop cannot perturb the
  current trace, sweeps replay these cells from a captured trace as
  vectorized lanes instead of re-simulating the pipeline.

Gating caches disables only their clocks; cache *state* (tags, LRU) is
preserved, matching the paper's note that actuation never modifies
cache lines or drops instructions.
"""

import enum


class ActuatorCommand(enum.Enum):
    """What the controller asks of the actuator this cycle."""

    NONE = 0      # normal operation
    REDUCE = 1    # voltage low: clock-gate the controlled groups
    BOOST = 2     # voltage high: phantom-fire the controlled groups


#: Actuator kind -> controlled unit groups.
ACTUATOR_KINDS = {
    "fu": ("fu",),
    "fu_dl1": ("fu", "dl1"),
    "fu_dl1_il1": ("fu", "dl1", "il1"),
    "ideal": ("fu", "dl1", "il1"),
    "observe": (),
}


class Actuator:
    """Symmetric actuator: the same groups serve both emergency kinds.

    Args:
        kind: one of :data:`ACTUATOR_KINDS`.
        low_groups / high_groups: override the gated (voltage-low) and
            phantom-fired (voltage-high) group sets independently -- the
            asymmetric design of the paper's Section 6 future work.
    """

    def __init__(self, kind="ideal", low_groups=None, high_groups=None,
                 recovery="freeze"):
        if kind not in ACTUATOR_KINDS:
            raise ValueError("unknown actuator kind %r; known: %s"
                             % (kind, ", ".join(sorted(ACTUATOR_KINDS))))
        if recovery not in ("freeze", "flush"):
            raise ValueError("recovery must be 'freeze' or 'flush', got %r"
                             % recovery)
        self.kind = kind
        groups = ACTUATOR_KINDS[kind]
        self.low_groups = tuple(low_groups if low_groups is not None
                                else groups)
        self.high_groups = tuple(high_groups if high_groups is not None
                                 else groups)
        for g in self.low_groups + self.high_groups:
            if g not in ("fu", "dl1", "il1"):
                raise ValueError("unknown unit group %r" % g)
        #: Recovery policy (Section 6): "freeze" holds in-flight work
        #: under the stopped clocks and resumes it; "flush" squashes the
        #: pipeline on each entry into a reduce episode and replays.
        self.recovery = recovery
        self._was_reducing = False
        self.reduce_cycles = 0
        self.boost_cycles = 0

    def _units(self, machine, group):
        return {"fu": machine.fus, "dl1": machine.dl1,
                "il1": machine.il1}[group]

    def apply(self, machine, command):
        """Drive the machine's gating/phantom flags for the next cycle."""
        reducing = command is ActuatorCommand.REDUCE
        if reducing and not self._was_reducing and self.recovery == "flush":
            machine.flush_pipeline()
        self._was_reducing = reducing
        for group in ("fu", "dl1", "il1"):
            unit = self._units(machine, group)
            unit.gated = reducing and group in self.low_groups
            unit.phantom = (command is ActuatorCommand.BOOST and
                            group in self.high_groups)
        if reducing:
            self.reduce_cycles += 1
        elif command is ActuatorCommand.BOOST:
            self.boost_cycles += 1

    def release(self, machine):
        """Clear all actuation (e.g. at end of run)."""
        self.apply(machine, ActuatorCommand.NONE)

    def response_groups(self):
        """Groups used for the *reduce* lever -- what the threshold
        solver should size the response current from."""
        return self.low_groups

    def __repr__(self):
        return "<Actuator %s low=%s high=%s>" % (
            self.kind, "/".join(self.low_groups), "/".join(self.high_groups))


def make_actuator(kind="ideal", **kwargs):
    """Factory mirroring the paper's actuator names."""
    return Actuator(kind=kind, **kwargs)
