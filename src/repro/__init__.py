"""Reproduction of Joseph, Brooks & Martonosi, "Control Techniques to
Eliminate Voltage Emergencies in High Performance Processors" (HPCA 2003).

The package couples a second-order power-delivery-network model
(:mod:`repro.pdn`), a cycle-level out-of-order processor simulator
(:mod:`repro.uarch`) with a Wattch-style power model (:mod:`repro.power`),
and the paper's contribution -- a threshold voltage controller with
microarchitectural actuators (:mod:`repro.control`).  Workload generators
(the dI/dt stressmark and synthetic SPEC2000 profiles) live in
:mod:`repro.workloads`; reporting helpers in :mod:`repro.analysis`;
fault injection, numeric watchdogs, and the resilience campaign runner
in :mod:`repro.faults`; parallel experiment orchestration with
content-addressed result caching in :mod:`repro.orchestrator`; and
opt-in metrics, cycle-level event tracing, and span profiling in
:mod:`repro.telemetry`.

See :mod:`repro.core` for the high-level public API.
"""

__version__ = "1.6.0"
