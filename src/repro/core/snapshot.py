"""Cheap machine-state snapshots for speculative chunked execution.

The speculative engine in :mod:`repro.control.loop` runs the machine
ahead K cycles assuming the controller stays released, then either
commits the chunk (vectorized folds) or rolls the machine back to the
chunk boundary and re-executes it lockstep.  Rollback needs a snapshot
of every piece of mutable machine state -- and it needs one *per
chunk*, so the :class:`~repro.core.checkpoint.WarmupCache` pickle
clone (~tens of milliseconds) is far too slow.  :class:`MachineSnapshot`
is the slot-aware alternative: it copies exactly the fields the
pipeline mutates (RUU/LSQ deques, FU pool cool-downs, stats counters)
with plain list/dict copies and an identity-memo deep copy of the
in-flight :class:`~repro.uarch.window.RuuEntry` graph.  The *large*
structures -- cache sets, predictor tables, the BTB -- are not copied
at all: taking a snapshot installs first-touch undo journals (the
``_log`` hooks in :mod:`repro.uarch.cache` and :mod:`repro.uarch.
branch`) that record the pre-mutation value of each set or counter the
chunk actually touches, and restore replays them.  A chunk touches a
handful of L2 sets; the L2 has 8192.  ``bench_perf_simulator.py``
tracks the snapshot against the pickle clone side by side
(``machine_snapshot_swim`` vs ``machine_pickle_clone_swim``); the
slot-aware copy is orders of magnitude cheaper.

Two subtleties make restore exact rather than merely close:

* **The instruction stream cannot be rewound.**  Taking a snapshot
  installs a journal (``machine._stream_log``) that records every
  instruction pulled from the underlying stream after the boundary;
  restore rebuilds ``machine._replay`` as the saved replay list plus
  the journal, so the post-restore machine sees the exact same
  instruction sequence the pre-snapshot machine would have.  (Even
  ``machine.done`` can pull from the stream via ``_peek_inst``, which
  is why the hook lives there.)
* **RuuEntry aliasing.**  Every auxiliary structure (``_producer``,
  ``_ready``, ``_executing``, ``_store_waiters``, ``_dl1_parked``, the
  LSQ) references entries of ``_ruu``, and entries reference each
  other through ``waiters``.  The copy memoizes by ``id`` over
  ``_ruu`` and rewires every reference through the memo, preserving
  the aliasing graph exactly.

Immutable objects (``DynamicInst``, ``Prediction``, the ``(inst,
prediction)`` fetch tuples, BTB ``(tag, target)`` tuples) are shared,
never copied.
"""

from collections import deque

from repro.uarch.window import ST_DONE, RuuEntry

#: The integer counters :class:`~repro.uarch.stats.MachineStats` carries.
_STATS_FIELDS = ("cycles", "committed", "fetched", "mispredictions",
                 "flushes", "total_issued", "gated_fu_cycles",
                 "gated_dl1_cycles", "gated_il1_cycles",
                 "phantom_fu_cycles")

# _copy_entries unrolls the slot assignments for speed; fail loudly at
# import time if RuuEntry grows a slot the unrolled copy doesn't know.
_RUU_SLOTS = ("inst", "state", "deps", "waiters", "remaining",
              "prediction", "mispredicted", "seq", "iclass",
              "granule", "is_store")
if _RUU_SLOTS != tuple(RuuEntry.__slots__):
    raise AssertionError("RuuEntry slots changed; update _copy_entries")


def _copy_entries(entries):
    """Identity-memo deep copy of an iterable of RuuEntries.

    Returns ``(copies, memo)`` where ``memo`` maps ``id(original) ->
    copy`` so callers can rewire auxiliary references.  ``waiters``
    lists are rewired through the memo (every waiter of an in-flight
    entry is itself in flight, hence in ``_ruu``).

    ``ST_DONE`` entries are *shared*, not copied: once done, an entry's
    slots never mutate again (commit only pops it from structures, and
    its ``waiters`` list was emptied when it completed), so the
    original doubles as its own snapshot.  In memory-bound phases most
    of a full RUU is done work waiting behind a long-latency load, so
    this cuts the copy cost several-fold.
    """
    memo = {}
    copies = []
    new = RuuEntry.__new__
    for entry in entries:
        if entry.state == ST_DONE:
            memo[id(entry)] = entry
            copies.append(entry)
            continue
        # Unrolled slot assignments: this runs once per in-flight
        # instruction per snapshot, and a full 256-entry RUU makes the
        # generic getattr/setattr loop the single hottest snapshot cost.
        clone = new(RuuEntry)
        clone.inst = entry.inst
        clone.state = entry.state
        clone.deps = entry.deps
        clone.waiters = entry.waiters
        clone.remaining = entry.remaining
        clone.prediction = entry.prediction
        clone.mispredicted = entry.mispredicted
        clone.seq = entry.seq
        clone.iclass = entry.iclass
        clone.granule = entry.granule
        clone.is_store = entry.is_store
        memo[id(entry)] = clone
        copies.append(clone)
    for clone in copies:
        # Shared done entries keep their (empty, settled) waiters list;
        # every clone needs a private one -- the live entry's list can
        # grow while the chunk runs (dispatch appends consumers).
        if clone.state != ST_DONE:
            clone.waiters = [memo[id(w)] for w in clone.waiters]
    return copies, memo


class MachineSnapshot:
    """A restore-once snapshot of a :class:`~repro.uarch.core.Machine`.

    Args:
        machine: the machine to snapshot.  Until :meth:`restore` or
            :meth:`discard` is called, the machine journals stream
            pulls (see module docstring); nesting snapshots on one
            machine is an error.
        pdn_sim: optionally, a :class:`~repro.pdn.discrete.
            PdnSimulator` whose two-tap state is saved/restored
            alongside (the speculative loop folds the PDN on local
            state instead, so it passes ``None``).

    Use exactly one of :meth:`restore` (wind the machine back to the
    boundary) or :meth:`discard` (commit: drop the snapshot and stop
    journaling).
    """

    def __init__(self, machine, pdn_sim=None):
        if machine._stream_log is not None:
            raise RuntimeError("machine already has an active snapshot")
        self._machine = machine
        self._spent = False

        self.cycle = machine.cycle
        self.fetch_stall_until = machine._fetch_stall_until
        self.last_fetch_line = machine._last_fetch_line
        self.next_inst = machine._next_inst
        self.stream_done = machine._stream_done
        self.replay = list(machine._replay)
        self.fetch_queue = list(machine._fetch_queue)

        ruu, memo = _copy_entries(machine._ruu)
        self.ruu = ruu
        self.lsq_entries = [memo[id(e)] for e in machine._lsq.entries]
        self.producer = {reg: memo[id(e)]
                         for reg, e in machine._producer.items()}
        self.ready = [(seq, memo[id(e)]) for seq, e in machine._ready]
        self.executing = [memo[id(e)] for e in machine._executing]
        self.store_waiters = {
            memo[id(store)]: [memo[id(w)] for w in waiters]
            for store, waiters in machine._store_waiters.items()}
        self.dl1_parked = [memo[id(e)] for e in machine._dl1_parked]

        stats = machine.stats
        self.stats = tuple(getattr(stats, f) for f in _STATS_FIELDS)

        h = machine.hierarchy
        self.cache_counts = tuple((c.accesses, c.misses)
                                  for c in (h.l1d, h.l1i, h.l2))
        self.memory_accesses = h.memory_accesses

        p = machine.predictor
        self.gshare_history = p.gshare.history
        self.ras = list(p.ras.stack)
        self.lookups = p.lookups
        self.predictor_mispredictions = p.mispredictions

        # First-touch undo journals for the big structures (module
        # docstring): ways-list journals replay into ``host.sets``,
        # counter journals into ``host.table``.
        self._set_journals = ((h.l1d, {}), (h.l1i, {}), (h.l2, {}),
                              (p.btb, {}))
        self._table_journals = ((p.bimodal, {}), (p.gshare, {}),
                                (p.chooser, {}))
        for host, log in self._set_journals + self._table_journals:
            host._log = log

        self.pools = tuple(
            (list(pool.cooldown), pool.issued_this_cycle, pool.busy)
            for pool in machine.fus._pool_list)
        self.fu_gated = machine.fus.gated
        self.fu_phantom = machine.fus.phantom
        self.dl1_state = (machine.dl1.gated, machine.dl1.phantom)
        self.il1_state = (machine.il1.gated, machine.il1.phantom)
        self.activity = machine.activity.snapshot()

        self.pdn_sim = pdn_sim
        if pdn_sim is not None:
            self.pdn_state = (pdn_sim._x0, pdn_sim._x1, pdn_sim.cycles)

        self.stream_log = []
        machine._stream_log = self.stream_log

    def restore(self):
        """Wind the machine back to the snapshot boundary.

        The snapshot's copies become the machine's live state, so a
        snapshot restores exactly once; restore again and the two
        would alias.
        """
        if self._spent:
            raise RuntimeError("snapshot already restored or discarded")
        self._spent = True
        machine = self._machine
        machine._stream_log = None

        machine.cycle = self.cycle
        machine._fetch_stall_until = self.fetch_stall_until
        machine._last_fetch_line = self.last_fetch_line
        machine._next_inst = self.next_inst
        machine._stream_done = self.stream_done
        # Everything pulled from the stream after the boundary replays
        # ahead of whatever the stream yields next.
        machine._replay = self.replay + self.stream_log
        machine._fetch_queue = deque(self.fetch_queue)

        machine._ruu = deque(self.ruu)
        machine._lsq.entries = deque(self.lsq_entries)
        machine._producer = self.producer
        machine._ready = self.ready
        machine._executing = self.executing
        machine._store_waiters = self.store_waiters
        machine._dl1_parked = self.dl1_parked

        stats = machine.stats
        for field, value in zip(_STATS_FIELDS, self.stats):
            setattr(stats, field, value)

        h = machine.hierarchy
        for cache, (accesses, misses) in zip(
                (h.l1d, h.l1i, h.l2), self.cache_counts):
            cache.accesses = accesses
            cache.misses = misses
        h.memory_accesses = self.memory_accesses

        for host, log in self._set_journals:
            sets = host.sets
            for index, ways in log.items():
                sets[index] = ways
            host._log = None
        for host, log in self._table_journals:
            table = host.table
            for index, counter in log.items():
                table[index] = counter
            host._log = None

        p = machine.predictor
        p.gshare.history = self.gshare_history
        p.ras.stack = self.ras
        p.lookups = self.lookups
        p.mispredictions = self.predictor_mispredictions

        # Pool objects are aliased by FuComplex._pool_list; restore in
        # place rather than replacing the dict.
        for pool, (cooldown, issued, busy) in zip(
                machine.fus._pool_list, self.pools):
            pool.cooldown = cooldown
            pool.issued_this_cycle = issued
            pool.busy = busy
        machine.fus.gated = self.fu_gated
        machine.fus.phantom = self.fu_phantom
        machine.dl1.gated, machine.dl1.phantom = self.dl1_state
        machine.il1.gated, machine.il1.phantom = self.il1_state
        for name, value in self.activity.items():
            setattr(machine.activity, name, value)

        if self.pdn_sim is not None:
            (self.pdn_sim._x0, self.pdn_sim._x1,
             self.pdn_sim.cycles) = self.pdn_state

    def discard(self):
        """Commit: drop the snapshot and stop journaling stream pulls."""
        if self._spent:
            raise RuntimeError("snapshot already restored or discarded")
        self._spent = True
        self._machine._stream_log = None
        for host, _ in self._set_journals + self._table_journals:
            host._log = None


class ChunkPolicy:
    """Adaptive speculation chunk sizing.

    Chunks shrink near actuation (a rollback quarters the size, floored
    at ``minimum``) and regrow through quiet regions (each committed
    chunk doubles it, capped at ``maximum``).  The defaults deliberately
    keep the band tight around 384 cycles: with pure-stall stretches
    batched (:meth:`~repro.uarch.core.Machine.stall_window`), the cycles
    a rollback throws away are mostly near-free stall replays, so the
    classic "shrink hard, regrow slowly" tuning no longer pays -- per-
    chunk fixed costs (snapshot, fold set-up) dominate below ~200 cycles
    and thrown-away *busy* cycles dominate above ~500, both measured on
    the memory-bound bench cell.  Wider bands remain available for
    unusual workloads via the constructor.
    """

    def __init__(self, initial=384, minimum=192, maximum=384):
        if not minimum <= initial <= maximum:
            raise ValueError("need minimum <= initial <= maximum")
        self.minimum = int(minimum)
        self.maximum = int(maximum)
        self._size = int(initial)

    def next_chunk(self):
        """How many cycles the next speculation chunk should cover."""
        return self._size

    def committed(self):
        """Feedback: the last chunk committed clean."""
        self._size = min(self._size * 2, self.maximum)

    def rolled_back(self):
        """Feedback: the last chunk hit an event and rolled back."""
        self._size = max(self._size // 4, self.minimum)
