"""Process-local caches for solved designs and tuned stressmarks.

Building a :class:`~repro.core.design.VoltageControlDesign` costs a
package analysis plus a matrix exponential, and tuning the stressmark
costs a small search on top -- cheap once, wasteful when every bench,
campaign, and orchestrator worker rebuilds the same 200% design.  This
module is the one shared memo: the bench harness, the fault campaign,
and orchestrator worker processes all pull designs from here, so each
*process* pays for each impedance level exactly once.

The cache is deliberately a plain dict rather than ``functools.lru_cache``
so a pre-built design can be injected (:func:`register_design`) -- test
fixtures and campaign callers that already solved a design seed the
cache instead of paying twice.
"""

from repro.core.design import VoltageControlDesign
from repro.workloads.stressmark import tune_stressmark

#: impedance percent -> solved design, per process.
_DESIGNS = {}

#: impedance percent -> tuned stressmark spec, per process.
_STRESSMARK_SPECS = {}


def design_at(percent=200.0):
    """The process-shared :class:`VoltageControlDesign` for a level.

    Args:
        percent: package quality, percent of target impedance.

    Returns:
        The cached design (built on first request for this level).
    """
    key = float(percent)
    if key not in _DESIGNS:
        _DESIGNS[key] = VoltageControlDesign(impedance_percent=key)
    return _DESIGNS[key]


def register_design(design):
    """Seed the cache with a pre-built design.

    An existing entry for the same impedance level is kept (the first
    design wins, so long-lived processes stay deterministic).

    Returns:
        The design that is now cached for that level.
    """
    key = float(design.impedance_percent)
    return _DESIGNS.setdefault(key, design)


def tuned_stressmark_spec(percent=200.0):
    """The cached stressmark spec tuned against a level's network."""
    key = float(percent)
    if key not in _STRESSMARK_SPECS:
        design = design_at(key)
        spec, _ = tune_stressmark(design.pdn, design.config)
        _STRESSMARK_SPECS[key] = spec
    return _STRESSMARK_SPECS[key]


def clear_design_cache():
    """Drop every cached design and stressmark spec (tests)."""
    _DESIGNS.clear()
    _STRESSMARK_SPECS.clear()
