"""Public API facade.

The most common entry points, re-exported from their home packages::

    from repro.core import (
        MachineConfig, Machine, PowerModel,          # the processor
        SecondOrderPdn, PdnParameters,               # the supply network
        VoltageControlDesign,                        # the design flow
        run_workload,                                # one closed-loop run
        tune_stressmark, stressmark_stream,          # the dI/dt stressmark
        SPEC2000, get_profile,                       # synthetic benchmarks
    )

A minimal session (the quickstart example expands on this)::

    design = VoltageControlDesign(impedance_percent=200)
    spec, period = tune_stressmark(design.pdn, design.config)
    uncontrolled = design.run(stressmark_stream(spec))
    controlled = design.run(stressmark_stream(spec), delay=2)
"""

from repro.core.checkpoint import WarmupCache
from repro.core.design import VoltageControlDesign
from repro.core.factory import (
    clear_design_cache,
    design_at,
    register_design,
    tuned_stressmark_spec,
)
from repro.control.loop import run_workload, LoopResult
from repro.control.thresholds import (
    design_pdn,
    solve_target_impedance,
    solve_thresholds,
)
from repro.control.actuators import Actuator, ACTUATOR_KINDS
from repro.control.controller import ThresholdController
from repro.control.sensor import ThresholdSensor, VoltageLevel
from repro.pdn.rlc import PdnParameters, SecondOrderPdn
from repro.power.model import PowerModel
from repro.power.params import PowerParams
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine
from repro.workloads.spec import ACTIVE_BENCHMARKS, SPEC2000, get_profile
from repro.workloads.stressmark import (
    StressmarkSpec,
    stressmark_stream,
    tune_stressmark,
)

__all__ = [
    "WarmupCache",
    "VoltageControlDesign",
    "design_at",
    "register_design",
    "tuned_stressmark_spec",
    "clear_design_cache",
    "run_workload",
    "LoopResult",
    "design_pdn",
    "solve_target_impedance",
    "solve_thresholds",
    "Actuator",
    "ACTUATOR_KINDS",
    "ThresholdController",
    "ThresholdSensor",
    "VoltageLevel",
    "PdnParameters",
    "SecondOrderPdn",
    "PowerModel",
    "PowerParams",
    "MachineConfig",
    "Machine",
    "ACTIVE_BENCHMARKS",
    "SPEC2000",
    "get_profile",
    "StressmarkSpec",
    "stressmark_stream",
    "tune_stressmark",
]
