"""The end-to-end design flow (the paper's Figure 13) as one object.

``VoltageControlDesign`` packages the whole methodology:

1. analyze the processor (power envelope) and the package (resonance);
2. solve the target impedance and build the N%-of-target network;
3. solve thresholds for a sensor delay/error and an actuator's levers;
4. manufacture controllers and run closed-loop simulations.

Most benches and examples go through this class; the underlying pieces
remain importable individually for finer control.
"""

from repro.control.actuators import ACTUATOR_KINDS, Actuator
from repro.control.controller import ThresholdController
from repro.control.loop import run_workload
from repro.control.thresholds import (design_pdn, observe_thresholds,
                                      solve_thresholds)
from repro.power.model import PowerModel
from repro.uarch.config import MachineConfig


class VoltageControlDesign:
    """A solved dI/dt control design for one machine + package point.

    Args:
        config: machine configuration (Table 1 default).
        power_params: power model parameters.
        impedance_percent: package quality as a percentage of target
            impedance (the paper studies 200%).

    Attributes:
        config / power_model / pdn: the analyzed system.
        i_min / i_max: the processor current envelope.
    """

    def __init__(self, config=None, power_params=None,
                 impedance_percent=200.0):
        self.config = config or MachineConfig()
        self.power_model = PowerModel(self.config, power_params)
        self.impedance_percent = impedance_percent
        self.pdn = design_pdn(self.power_model,
                              impedance_percent=impedance_percent)
        self.i_min, self.i_max = self.power_model.current_envelope()
        self._threshold_cache = {}

    def response_currents(self, actuator_kind="ideal"):
        """``(i_reduce, i_boost)`` for an actuator kind's unit groups.

        The ideal actuator is credited with the full envelope (it can,
        by definition, force any reachable current); real actuators get
        the pessimistic lever from
        :meth:`repro.power.model.PowerModel.response_envelope`.
        """
        if actuator_kind == "ideal":
            return (self.power_model.gated_min_power()
                    / self.power_model.params.vdd, self.i_max)
        if actuator_kind == "observe":
            # A sensor-only actuator controls no groups: the pessimistic
            # lever is the envelope itself (a reduce command leaves the
            # machine free to draw i_max, a boost to idle at i_min).
            return (self.i_max, self.i_min)
        groups = ACTUATOR_KINDS[actuator_kind]
        return self.power_model.response_envelope(groups)

    def thresholds(self, delay=2, error=0.0, actuator_kind="ideal"):
        """Solve (and cache) the threshold design for one operating point.

        Returns:
            A :class:`~repro.control.thresholds.ThresholdDesign`.

        Raises:
            ControlInfeasibleError: when the actuator/delay combination
                cannot hold the +/-5% specification.
        """
        key = (delay, round(error, 6), actuator_kind)
        if key not in self._threshold_cache:
            if actuator_kind == "observe":
                # No lever to solve for: the degenerate observe design
                # pins the sensor to the spec band (solve_thresholds
                # would rightly call a zero-response actuator
                # infeasible at any delay).
                self._threshold_cache[key] = observe_thresholds(
                    self.i_min, self.i_max, delay, error=error)
            else:
                i_reduce, i_boost = self.response_currents(actuator_kind)
                self._threshold_cache[key] = solve_thresholds(
                    self.pdn, self.i_min, self.i_max, delay,
                    i_reduce=i_reduce, i_boost=i_boost, error=error)
        return self._threshold_cache[key]

    def controller_factory(self, delay=2, error=0.0, actuator_kind="ideal",
                           seed=0, low_groups=None, high_groups=None):
        """A factory suitable for :func:`repro.control.loop.run_workload`.

        Each run gets a fresh controller (sensors and actuators carry
        per-run state).
        """
        design = self.thresholds(delay=delay, error=error,
                                 actuator_kind=actuator_kind)

        def factory(machine, power_model):
            actuator = Actuator(actuator_kind, low_groups=low_groups,
                                high_groups=high_groups)
            return ThresholdController.from_design(design,
                                                   actuator=actuator,
                                                   seed=seed)
        return factory

    def run(self, stream, delay=None, error=0.0, actuator_kind="ideal",
            warmup_instructions=60000, max_cycles=30000,
            max_instructions=None, record_traces=False, seed=0,
            telemetry=None):
        """Closed-loop run of a workload under this design.

        Args:
            stream: the dynamic instruction stream.
            delay: sensor delay; ``None`` runs *uncontrolled* (the
                characterization / baseline mode).
            error: sensor error bound, volts.
            actuator_kind: one of :data:`~repro.control.actuators.ACTUATOR_KINDS`.
            warmup_instructions / max_cycles / max_instructions /
            record_traces / telemetry: forwarded to
                :func:`~repro.control.loop.run_workload`.

        Returns:
            A :class:`~repro.control.loop.LoopResult`.
        """
        factory = None
        if delay is not None:
            factory = self.controller_factory(delay=delay, error=error,
                                              actuator_kind=actuator_kind,
                                              seed=seed)
        return run_workload(stream, self.pdn, config=self.config,
                            power_model=self.power_model,
                            controller_factory=factory,
                            warmup_instructions=warmup_instructions,
                            max_cycles=max_cycles,
                            max_instructions=max_instructions,
                            record_traces=record_traces,
                            telemetry=telemetry)

    def __repr__(self):
        return ("VoltageControlDesign(impedance=%g%%, envelope=[%.1f, %.1f] A)"
                % (self.impedance_percent, self.i_min, self.i_max))
