"""Warm-state checkpoint cache for the cycle simulator.

Every campaign job starts the same way: build a machine, then
``fast_forward`` tens of thousands of instructions so caches and
predictors are warm before the timed region.  Across a sweep the same
(workload, seed, warm-up, config) tuple is warmed hundreds of times --
and because every impedance level shares the default machine
configuration, the warmed state is identical across the whole grid.

:class:`WarmupCache` memoizes the *pickled bytes* of the warmed
machine, keyed by a content hash of the machine configuration, a
caller-supplied stream description, and the warm-up length.  A hit
costs one ``pickle.loads`` (single-digit milliseconds) instead of the
full functional warm-up.  Handing out a fresh clone on *every* call --
including the miss that populated the entry -- keeps the contract
uniform: the caller always owns a private machine, and the cached bytes
are never aliased by a running simulation.

Streams that cannot be pickled (the stressmark sequencer carries a
generator) are detected once and remembered: those keys silently fall
back to returning the directly-warmed machine.

Set ``REPRO_WARM_CACHE_DIR`` to persist checkpoints on disk next to the
orchestrator's result cache; entries are written atomically (temp file
plus rename) so concurrent workers can share a directory.  Each disk
entry is a one-line JSON header (magic, schema, version salt, key, and
a SHA-256 checksum over the pickle blob) followed by the blob itself;
the read path verifies all of it before a single byte reaches
``pickle.loads``, and anything untrustworthy -- a torn write, a stale
format, bytes from another code version -- degrades to a counted
integrity miss and a re-warm, never a crash or a corrupt machine.
"""

import hashlib
import json
import os
import pickle
import tempfile

from repro import __version__
from repro.faults import iofault

#: Bump when the on-disk checkpoint format changes shape.
WARM_SCHEMA = 2

#: Magic tag opening every disk entry's header line.
WARM_MAGIC = "repro-warm"


def warm_salt():
    """Code-version salt: old checkpoints die with their code."""
    return "v%s-warm%d" % (__version__, WARM_SCHEMA)


class WarmupCache:
    """Per-process (optionally on-disk) cache of warmed machines.

    Args:
        root: directory for persistent checkpoints; ``None`` reads
            ``REPRO_WARM_CACHE_DIR`` (unset means memory-only).

    Attributes:
        hits / misses: lookup counters (observability only).
        integrity_misses: disk entries rejected by the read-path
            validation (bad header, checksum, salt, or key).
        write_errors: failed disk stores (counted, never raised -- the
            entry stays memory-only, matching the cache's *degrade*
            failure domain).
    """

    def __init__(self, root=None):
        if root is None:
            root = os.environ.get("REPRO_WARM_CACHE_DIR") or None
        self.root = root
        self.salt = warm_salt()
        self._blobs = {}
        self._unpicklable = set()
        self.hits = 0
        self.misses = 0
        self.integrity_misses = 0
        self.write_errors = 0

    @staticmethod
    def key_for(config, stream_desc, warmup):
        """Content key: config repr + stream description + warm-up.

        ``MachineConfig`` is a plain dataclass, so its ``repr`` is a
        stable, complete rendering of every timing parameter;
        ``stream_desc`` must be a JSON-ish tuple that pins the stream's
        identity (kind, workload, seed, tuning inputs...).
        """
        material = repr((repr(config), tuple(stream_desc), int(warmup)))
        return hashlib.sha256(material.encode()).hexdigest()

    def _disk_path(self, key):
        return os.path.join(self.root, key[:2], key + ".ckpt")

    def _encode_entry(self, key, blob):
        """Header line + pickle blob (the on-disk entry format)."""
        header = json.dumps({
            "magic": WARM_MAGIC,
            "schema": WARM_SCHEMA,
            "salt": self.salt,
            "key": key,
            "length": len(blob),
            "checksum": hashlib.sha256(blob).hexdigest(),
        }, sort_keys=True, separators=(",", ":"))
        return header.encode("ascii") + b"\n" + blob

    def verify_entry(self, path, key=None):
        """Scrub one disk entry; ``None`` if trustworthy, else a short
        reason string.  ``key`` (defaulting to the file name) must
        match the header, so a renamed entry cannot impersonate
        another checkpoint."""
        if key is None:
            key = os.path.basename(path)
            if key.endswith(".ckpt"):
                key = key[:-len(".ckpt")]
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
            head, sep, blob = raw.partition(b"\n")
            if not sep:
                return "missing header"
            header = json.loads(head.decode("ascii"))
            if not isinstance(header, dict) \
                    or header.get("magic") != WARM_MAGIC:
                return "bad magic"
            if header.get("schema") != WARM_SCHEMA:
                return "schema mismatch"
            if header.get("salt") != self.salt:
                return "salt mismatch"
            if header.get("key") != key:
                return "key mismatch"
            if header.get("length") != len(blob):
                return "length mismatch (torn write?)"
            if header.get("checksum") != \
                    hashlib.sha256(blob).hexdigest():
                return "blob checksum mismatch"
        except OSError as exc:
            return str(exc) or "unreadable"
        except (ValueError, UnicodeDecodeError):
            return "unparsable header"
        return None

    def _load_disk(self, key):
        """The validated pickle blob for ``key``, or ``None``.

        A missing file is a plain miss; a present-but-untrustworthy
        entry (torn header, checksum mismatch, another code version's
        salt, pre-header legacy format) is a counted integrity miss --
        the bytes never reach ``pickle.loads``.
        """
        path = self._disk_path(key)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError:
            return None
        head, sep, blob = raw.partition(b"\n")
        try:
            if not sep:
                raise ValueError("missing header")
            header = json.loads(head.decode("ascii"))
            if not isinstance(header, dict) \
                    or header.get("magic") != WARM_MAGIC \
                    or header.get("schema") != WARM_SCHEMA \
                    or header.get("salt") != self.salt \
                    or header.get("key") != key \
                    or header.get("length") != len(blob) \
                    or header.get("checksum") != \
                    hashlib.sha256(blob).hexdigest():
                raise ValueError("untrusted entry")
        except (ValueError, UnicodeDecodeError):
            self.integrity_misses += 1
            return None
        return blob

    def _store_disk(self, key, blob):
        """Atomically persist one entry; failures (ENOSPC, EIO, a
        rename that never lands -- injectable via
        ``REPRO_IOCHAOS=...@warm``) are counted in
        :attr:`write_errors` and otherwise ignored: the checkpoint
        stays memory-only."""
        path = self._disk_path(key)
        tmp = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                iofault.write("warm", fh, self._encode_entry(key, blob))
            iofault.replace("warm", tmp, path)
        except OSError:
            self.write_errors += 1
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    # Best-effort cleanup; a surviving temp file is
                    # reclaimed by ``repro-didt doctor``.
                    pass

    def warmed(self, config, stream_desc, warmup, factory):
        """A machine warmed by ``warmup`` instructions, cached.

        Args:
            config: the machine configuration (key material only; the
                ``factory`` must build its machine from the same one).
            stream_desc: hashable description pinning the stream.
            warmup: instructions to fast-forward.
            factory: zero-argument callable returning a *fresh, cold*
                machine on a cache miss.

        Returns:
            A machine equivalent to ``factory()`` after
            ``fast_forward(warmup)`` -- a private clone on cache hits
            *and* on the populating miss, or the directly-warmed
            machine when its stream cannot be pickled.
        """
        key = self.key_for(config, stream_desc, warmup)
        blob = self._blobs.get(key)
        if blob is None and self.root is not None and \
                key not in self._unpicklable:
            blob = self._load_disk(key)
            if blob is not None:
                self._blobs[key] = blob
        if blob is not None:
            self.hits += 1
            return pickle.loads(blob)
        self.misses += 1
        machine = factory()
        if warmup:
            machine.fast_forward(warmup)
        if key in self._unpicklable:
            return machine
        try:
            blob = pickle.dumps(machine, pickle.HIGHEST_PROTOCOL)
        except Exception:
            self._unpicklable.add(key)
            return machine
        self._blobs[key] = blob
        if self.root is not None:
            self._store_disk(key, blob)
        # Hand back a clone, not the pickled original: the cached bytes
        # must describe the *warmed* state forever, and the caller is
        # about to run cycles on the returned machine.
        return pickle.loads(blob)

    def clear(self):
        """Drop the in-memory entries (disk files are left alone)."""
        self._blobs.clear()
        self._unpicklable.clear()
        self.hits = 0
        self.misses = 0
        self.integrity_misses = 0
        self.write_errors = 0
