"""Warm-state checkpoint cache for the cycle simulator.

Every campaign job starts the same way: build a machine, then
``fast_forward`` tens of thousands of instructions so caches and
predictors are warm before the timed region.  Across a sweep the same
(workload, seed, warm-up, config) tuple is warmed hundreds of times --
and because every impedance level shares the default machine
configuration, the warmed state is identical across the whole grid.

:class:`WarmupCache` memoizes the *pickled bytes* of the warmed
machine, keyed by a content hash of the machine configuration, a
caller-supplied stream description, and the warm-up length.  A hit
costs one ``pickle.loads`` (single-digit milliseconds) instead of the
full functional warm-up.  Handing out a fresh clone on *every* call --
including the miss that populated the entry -- keeps the contract
uniform: the caller always owns a private machine, and the cached bytes
are never aliased by a running simulation.

Streams that cannot be pickled (the stressmark sequencer carries a
generator) are detected once and remembered: those keys silently fall
back to returning the directly-warmed machine.

Set ``REPRO_WARM_CACHE_DIR`` to persist checkpoints on disk next to the
orchestrator's result cache; entries are written atomically (temp file
plus rename) so concurrent workers can share a directory.
"""

import hashlib
import os
import pickle
import tempfile


class WarmupCache:
    """Per-process (optionally on-disk) cache of warmed machines.

    Args:
        root: directory for persistent checkpoints; ``None`` reads
            ``REPRO_WARM_CACHE_DIR`` (unset means memory-only).

    Attributes:
        hits / misses: lookup counters (observability only).
    """

    def __init__(self, root=None):
        if root is None:
            root = os.environ.get("REPRO_WARM_CACHE_DIR") or None
        self.root = root
        self._blobs = {}
        self._unpicklable = set()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(config, stream_desc, warmup):
        """Content key: config repr + stream description + warm-up.

        ``MachineConfig`` is a plain dataclass, so its ``repr`` is a
        stable, complete rendering of every timing parameter;
        ``stream_desc`` must be a JSON-ish tuple that pins the stream's
        identity (kind, workload, seed, tuning inputs...).
        """
        material = repr((repr(config), tuple(stream_desc), int(warmup)))
        return hashlib.sha256(material.encode()).hexdigest()

    def _disk_path(self, key):
        return os.path.join(self.root, key[:2], key + ".ckpt")

    def _load_disk(self, key):
        try:
            with open(self._disk_path(key), "rb") as fh:
                return fh.read()
        except OSError:
            return None

    def _store_disk(self, key, blob):
        path = self._disk_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def warmed(self, config, stream_desc, warmup, factory):
        """A machine warmed by ``warmup`` instructions, cached.

        Args:
            config: the machine configuration (key material only; the
                ``factory`` must build its machine from the same one).
            stream_desc: hashable description pinning the stream.
            warmup: instructions to fast-forward.
            factory: zero-argument callable returning a *fresh, cold*
                machine on a cache miss.

        Returns:
            A machine equivalent to ``factory()`` after
            ``fast_forward(warmup)`` -- a private clone on cache hits
            *and* on the populating miss, or the directly-warmed
            machine when its stream cannot be pickled.
        """
        key = self.key_for(config, stream_desc, warmup)
        blob = self._blobs.get(key)
        if blob is None and self.root is not None and \
                key not in self._unpicklable:
            blob = self._load_disk(key)
            if blob is not None:
                self._blobs[key] = blob
        if blob is not None:
            self.hits += 1
            return pickle.loads(blob)
        self.misses += 1
        machine = factory()
        if warmup:
            machine.fast_forward(warmup)
        if key in self._unpicklable:
            return machine
        try:
            blob = pickle.dumps(machine, pickle.HIGHEST_PROTOCOL)
        except Exception:
            self._unpicklable.add(key)
            return machine
        self._blobs[key] = blob
        if self.root is not None:
            self._store_disk(key, blob)
        # Hand back a clone, not the pickled original: the cached bytes
        # must describe the *warmed* state forever, and the caller is
        # about to run cycles on the returned machine.
        return pickle.loads(blob)

    def clear(self):
        """Drop the in-memory entries (disk files are left alone)."""
        self._blobs.clear()
        self._unpicklable.clear()
        self.hits = 0
        self.misses = 0
